// MUST NOT COMPILE under -Werror=thread-safety.
//
// Writes a GUARDED_BY field without its mutex — the unguarded-access bug
// class this PR's annotations exist to catch. If this compiles, the
// guarded-field declarations have been dropped or the analysis is off.
#include "mem/page_table.hpp"

namespace dsm {

void racy_downgrade(PageTable& table) {
  table.entry(0).state = PageState::kReadOnly;  // error: requires entry mutex
}

}  // namespace dsm
