// Control: MUST COMPILE cleanly with the same flags. Proves the include
// paths and warning flags are wired correctly, so a fixture "failing to
// compile" above means the analysis fired — not that the harness is broken.
#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "mem/page_table.hpp"

namespace dsm {

void ordered_walk(PageTable& table) {
  {
    PageEntry& e = table.entry(0);
    const MutexLock lock(e.mutex);
    e.state = PageState::kReadOnly;
  }
  const MutexLock outer(lock_order::fabric_gate);
  const MutexLock inner(lock_order::mailbox_gate);
}

}  // namespace dsm
