// MUST NOT COMPILE under -Werror=thread-safety-beta.
//
// Re-creates the PR 4 ABBA deadlock shape at the gate level: acquiring a
// fabric-layer capability while already inside the mailbox layer inverts
// the declared fabric_gate -> mailbox_gate edge. If this file ever starts
// compiling, the lock-order DAG in common/lock_order.hpp has lost its
// teeth and ci/check_thread_safety_fixtures.sh fails the build.
#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"

namespace dsm {

void abba_inversion() {
  const MutexLock inner(lock_order::mailbox_gate);
  const MutexLock outer(lock_order::fabric_gate);  // error: fabric BEFORE mailbox
}

}  // namespace dsm
