#!/usr/bin/env bash
# Compile-fail harness for the thread-safety annotations.
#
# Every *.cpp under ci/thread_safety_fixtures/ is syntax-checked with the
# same capability-analysis flags CMake applies on Clang builds. Files whose
# name starts with ok_ must COMPILE (they prove the harness itself works);
# every other fixture must FAIL to compile (it encodes a bug class — ABBA
# ordering, unguarded field access — that the annotations are supposed to
# make a compile error). Either direction going wrong exits non-zero.
#
# Usage: ci/check_thread_safety_fixtures.sh [path/to/clang++]
set -u

cd "$(dirname "$0")/.."
CXX="${1:-${CLANGXX:-clang++}}"

if ! command -v "$CXX" >/dev/null 2>&1; then
  echo "check_thread_safety_fixtures: $CXX not found" >&2
  exit 2
fi
if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "check_thread_safety_fixtures: $CXX is not clang (capability analysis is clang-only)" >&2
  exit 2
fi

FLAGS=(-std=c++20 -fsyntax-only -Isrc
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety -Werror=thread-safety-beta)

failures=0
for fixture in ci/thread_safety_fixtures/*.cpp; do
  name="$(basename "$fixture")"
  out="$("$CXX" "${FLAGS[@]}" "$fixture" 2>&1)"
  status=$?
  case "$name" in
    ok_*)
      if [ $status -ne 0 ]; then
        echo "FAIL $fixture: control fixture did not compile — harness is broken:" >&2
        echo "$out" >&2
        failures=$((failures + 1))
      else
        echo "ok   $fixture (compiles, as required)"
      fi
      ;;
    *)
      if [ $status -eq 0 ]; then
        echo "FAIL $fixture: compiled cleanly — the analysis no longer catches this bug class" >&2
        failures=$((failures + 1))
      elif ! echo "$out" | grep -q "thread-safety"; then
        echo "FAIL $fixture: failed for a non-thread-safety reason:" >&2
        echo "$out" >&2
        failures=$((failures + 1))
      else
        echo "ok   $fixture (rejected by capability analysis, as required)"
      fi
      ;;
  esac
done

if [ $failures -ne 0 ]; then
  echo "check_thread_safety_fixtures: $failures fixture(s) misbehaved" >&2
  exit 1
fi
echo "check_thread_safety_fixtures: all fixtures behaved"
