file(REMOVE_RECURSE
  "CMakeFiles/test_protocols.dir/proto/ec_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/ec_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/proto/erc_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/erc_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/proto/hlrc_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/hlrc_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/proto/ivy_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/ivy_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/proto/litmus_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/litmus_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/proto/lrc_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/lrc_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/proto/protocol_matrix_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/protocol_matrix_test.cpp.o.d"
  "CMakeFiles/test_protocols.dir/proto/random_drf_test.cpp.o"
  "CMakeFiles/test_protocols.dir/proto/random_drf_test.cpp.o.d"
  "test_protocols"
  "test_protocols.pdb"
  "test_protocols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
