
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/proto/ec_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/ec_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/ec_test.cpp.o.d"
  "/root/repo/tests/proto/erc_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/erc_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/erc_test.cpp.o.d"
  "/root/repo/tests/proto/hlrc_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/hlrc_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/hlrc_test.cpp.o.d"
  "/root/repo/tests/proto/ivy_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/ivy_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/ivy_test.cpp.o.d"
  "/root/repo/tests/proto/litmus_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/litmus_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/litmus_test.cpp.o.d"
  "/root/repo/tests/proto/lrc_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/lrc_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/lrc_test.cpp.o.d"
  "/root/repo/tests/proto/protocol_matrix_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/protocol_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/protocol_matrix_test.cpp.o.d"
  "/root/repo/tests/proto/random_drf_test.cpp" "tests/CMakeFiles/test_protocols.dir/proto/random_drf_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/proto/random_drf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/dsm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/dsm_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
