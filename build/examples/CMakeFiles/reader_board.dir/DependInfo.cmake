
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reader_board.cpp" "examples/CMakeFiles/reader_board.dir/reader_board.cpp.o" "gcc" "examples/CMakeFiles/reader_board.dir/reader_board.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/dsm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/dsm_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
