file(REMOVE_RECURSE
  "CMakeFiles/reader_board.dir/reader_board.cpp.o"
  "CMakeFiles/reader_board.dir/reader_board.cpp.o.d"
  "reader_board"
  "reader_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reader_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
