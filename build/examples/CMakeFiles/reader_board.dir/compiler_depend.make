# Empty compiler generated dependencies file for reader_board.
# This may be replaced when dependencies are built.
