# Empty dependencies file for reader_board.
# This may be replaced when dependencies are built.
