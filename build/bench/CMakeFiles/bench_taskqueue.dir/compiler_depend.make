# Empty compiler generated dependencies file for bench_taskqueue.
# This may be replaced when dependencies are built.
