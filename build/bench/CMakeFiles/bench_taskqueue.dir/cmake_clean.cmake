file(REMOVE_RECURSE
  "CMakeFiles/bench_taskqueue.dir/bench_taskqueue.cpp.o"
  "CMakeFiles/bench_taskqueue.dir/bench_taskqueue.cpp.o.d"
  "CMakeFiles/bench_taskqueue.dir/harness.cpp.o"
  "CMakeFiles/bench_taskqueue.dir/harness.cpp.o.d"
  "bench_taskqueue"
  "bench_taskqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taskqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
