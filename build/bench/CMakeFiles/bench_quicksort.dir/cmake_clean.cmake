file(REMOVE_RECURSE
  "CMakeFiles/bench_quicksort.dir/bench_quicksort.cpp.o"
  "CMakeFiles/bench_quicksort.dir/bench_quicksort.cpp.o.d"
  "CMakeFiles/bench_quicksort.dir/harness.cpp.o"
  "CMakeFiles/bench_quicksort.dir/harness.cpp.o.d"
  "bench_quicksort"
  "bench_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
