# Empty compiler generated dependencies file for bench_quicksort.
# This may be replaced when dependencies are built.
