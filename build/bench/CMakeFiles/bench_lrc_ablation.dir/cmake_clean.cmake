file(REMOVE_RECURSE
  "CMakeFiles/bench_lrc_ablation.dir/bench_lrc_ablation.cpp.o"
  "CMakeFiles/bench_lrc_ablation.dir/bench_lrc_ablation.cpp.o.d"
  "CMakeFiles/bench_lrc_ablation.dir/harness.cpp.o"
  "CMakeFiles/bench_lrc_ablation.dir/harness.cpp.o.d"
  "bench_lrc_ablation"
  "bench_lrc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lrc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
