
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/ec.cpp" "src/proto/CMakeFiles/dsm_proto.dir/ec.cpp.o" "gcc" "src/proto/CMakeFiles/dsm_proto.dir/ec.cpp.o.d"
  "/root/repo/src/proto/erc.cpp" "src/proto/CMakeFiles/dsm_proto.dir/erc.cpp.o" "gcc" "src/proto/CMakeFiles/dsm_proto.dir/erc.cpp.o.d"
  "/root/repo/src/proto/factory.cpp" "src/proto/CMakeFiles/dsm_proto.dir/factory.cpp.o" "gcc" "src/proto/CMakeFiles/dsm_proto.dir/factory.cpp.o.d"
  "/root/repo/src/proto/hlrc.cpp" "src/proto/CMakeFiles/dsm_proto.dir/hlrc.cpp.o" "gcc" "src/proto/CMakeFiles/dsm_proto.dir/hlrc.cpp.o.d"
  "/root/repo/src/proto/ivy_dynamic.cpp" "src/proto/CMakeFiles/dsm_proto.dir/ivy_dynamic.cpp.o" "gcc" "src/proto/CMakeFiles/dsm_proto.dir/ivy_dynamic.cpp.o.d"
  "/root/repo/src/proto/ivy_manager.cpp" "src/proto/CMakeFiles/dsm_proto.dir/ivy_manager.cpp.o" "gcc" "src/proto/CMakeFiles/dsm_proto.dir/ivy_manager.cpp.o.d"
  "/root/repo/src/proto/lrc.cpp" "src/proto/CMakeFiles/dsm_proto.dir/lrc.cpp.o" "gcc" "src/proto/CMakeFiles/dsm_proto.dir/lrc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dsm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
