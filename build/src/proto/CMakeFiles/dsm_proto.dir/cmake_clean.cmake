file(REMOVE_RECURSE
  "CMakeFiles/dsm_proto.dir/ec.cpp.o"
  "CMakeFiles/dsm_proto.dir/ec.cpp.o.d"
  "CMakeFiles/dsm_proto.dir/erc.cpp.o"
  "CMakeFiles/dsm_proto.dir/erc.cpp.o.d"
  "CMakeFiles/dsm_proto.dir/factory.cpp.o"
  "CMakeFiles/dsm_proto.dir/factory.cpp.o.d"
  "CMakeFiles/dsm_proto.dir/hlrc.cpp.o"
  "CMakeFiles/dsm_proto.dir/hlrc.cpp.o.d"
  "CMakeFiles/dsm_proto.dir/ivy_dynamic.cpp.o"
  "CMakeFiles/dsm_proto.dir/ivy_dynamic.cpp.o.d"
  "CMakeFiles/dsm_proto.dir/ivy_manager.cpp.o"
  "CMakeFiles/dsm_proto.dir/ivy_manager.cpp.o.d"
  "CMakeFiles/dsm_proto.dir/lrc.cpp.o"
  "CMakeFiles/dsm_proto.dir/lrc.cpp.o.d"
  "libdsm_proto.a"
  "libdsm_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
