file(REMOVE_RECURSE
  "CMakeFiles/dsm_net.dir/message.cpp.o"
  "CMakeFiles/dsm_net.dir/message.cpp.o.d"
  "CMakeFiles/dsm_net.dir/network.cpp.o"
  "CMakeFiles/dsm_net.dir/network.cpp.o.d"
  "libdsm_net.a"
  "libdsm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
