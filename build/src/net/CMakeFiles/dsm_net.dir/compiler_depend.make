# Empty compiler generated dependencies file for dsm_net.
# This may be replaced when dependencies are built.
