file(REMOVE_RECURSE
  "libdsm_mem.a"
)
