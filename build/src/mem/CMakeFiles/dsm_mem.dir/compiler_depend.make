# Empty compiler generated dependencies file for dsm_mem.
# This may be replaced when dependencies are built.
