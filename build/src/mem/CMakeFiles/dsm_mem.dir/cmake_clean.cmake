file(REMOVE_RECURSE
  "CMakeFiles/dsm_mem.dir/diff.cpp.o"
  "CMakeFiles/dsm_mem.dir/diff.cpp.o.d"
  "CMakeFiles/dsm_mem.dir/fault.cpp.o"
  "CMakeFiles/dsm_mem.dir/fault.cpp.o.d"
  "CMakeFiles/dsm_mem.dir/page_table.cpp.o"
  "CMakeFiles/dsm_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/dsm_mem.dir/region.cpp.o"
  "CMakeFiles/dsm_mem.dir/region.cpp.o.d"
  "libdsm_mem.a"
  "libdsm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
