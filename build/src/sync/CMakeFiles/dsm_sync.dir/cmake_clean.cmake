file(REMOVE_RECURSE
  "CMakeFiles/dsm_sync.dir/sync_agent.cpp.o"
  "CMakeFiles/dsm_sync.dir/sync_agent.cpp.o.d"
  "libdsm_sync.a"
  "libdsm_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
