# Empty compiler generated dependencies file for dsm_apps.
# This may be replaced when dependencies are built.
