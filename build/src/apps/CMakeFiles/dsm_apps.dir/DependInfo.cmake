
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gauss.cpp" "src/apps/CMakeFiles/dsm_apps.dir/gauss.cpp.o" "gcc" "src/apps/CMakeFiles/dsm_apps.dir/gauss.cpp.o.d"
  "/root/repo/src/apps/kernels.cpp" "src/apps/CMakeFiles/dsm_apps.dir/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/dsm_apps.dir/kernels.cpp.o.d"
  "/root/repo/src/apps/matmul.cpp" "src/apps/CMakeFiles/dsm_apps.dir/matmul.cpp.o" "gcc" "src/apps/CMakeFiles/dsm_apps.dir/matmul.cpp.o.d"
  "/root/repo/src/apps/quicksort.cpp" "src/apps/CMakeFiles/dsm_apps.dir/quicksort.cpp.o" "gcc" "src/apps/CMakeFiles/dsm_apps.dir/quicksort.cpp.o.d"
  "/root/repo/src/apps/sor.cpp" "src/apps/CMakeFiles/dsm_apps.dir/sor.cpp.o" "gcc" "src/apps/CMakeFiles/dsm_apps.dir/sor.cpp.o.d"
  "/root/repo/src/apps/task_queue.cpp" "src/apps/CMakeFiles/dsm_apps.dir/task_queue.cpp.o" "gcc" "src/apps/CMakeFiles/dsm_apps.dir/task_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/dsm_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/dsm_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
