file(REMOVE_RECURSE
  "CMakeFiles/dsm_apps.dir/gauss.cpp.o"
  "CMakeFiles/dsm_apps.dir/gauss.cpp.o.d"
  "CMakeFiles/dsm_apps.dir/kernels.cpp.o"
  "CMakeFiles/dsm_apps.dir/kernels.cpp.o.d"
  "CMakeFiles/dsm_apps.dir/matmul.cpp.o"
  "CMakeFiles/dsm_apps.dir/matmul.cpp.o.d"
  "CMakeFiles/dsm_apps.dir/quicksort.cpp.o"
  "CMakeFiles/dsm_apps.dir/quicksort.cpp.o.d"
  "CMakeFiles/dsm_apps.dir/sor.cpp.o"
  "CMakeFiles/dsm_apps.dir/sor.cpp.o.d"
  "CMakeFiles/dsm_apps.dir/task_queue.cpp.o"
  "CMakeFiles/dsm_apps.dir/task_queue.cpp.o.d"
  "libdsm_apps.a"
  "libdsm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
