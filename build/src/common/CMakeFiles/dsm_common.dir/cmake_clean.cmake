file(REMOVE_RECURSE
  "CMakeFiles/dsm_common.dir/logging.cpp.o"
  "CMakeFiles/dsm_common.dir/logging.cpp.o.d"
  "CMakeFiles/dsm_common.dir/serialize.cpp.o"
  "CMakeFiles/dsm_common.dir/serialize.cpp.o.d"
  "CMakeFiles/dsm_common.dir/stats.cpp.o"
  "CMakeFiles/dsm_common.dir/stats.cpp.o.d"
  "CMakeFiles/dsm_common.dir/vclock.cpp.o"
  "CMakeFiles/dsm_common.dir/vclock.cpp.o.d"
  "libdsm_common.a"
  "libdsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
