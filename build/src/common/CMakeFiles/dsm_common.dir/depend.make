# Empty dependencies file for dsm_common.
# This may be replaced when dependencies are built.
