// F7 — Twin/diff efficiency. Part 1 (google-benchmark): raw wall-clock
// encode/apply throughput. Part 2 (printed by the fixture at exit): diff
// wire bytes vs fraction of the page dirtied — the crossover against
// whole-page transfer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "mem/diff.hpp"

namespace {

using dsm::apply_diff;
using dsm::encode_diff;

std::vector<std::byte> dirty_fraction(const std::vector<std::byte>& base, double fraction,
                                      std::uint64_t seed) {
  auto page = base;
  dsm::SplitMix64 rng(seed);
  const auto words = page.size() / 8;
  const auto to_dirty = static_cast<std::size_t>(fraction * static_cast<double>(words));
  for (std::size_t i = 0; i < to_dirty; ++i) {
    const auto w = rng.next_below(words);
    page[w * 8] = std::byte{static_cast<unsigned char>(rng.next() | 1)};
  }
  return page;
}

void BM_EncodeDiff(benchmark::State& state) {
  const std::vector<std::byte> base(4096, std::byte{0});
  const auto page = dirty_fraction(base, static_cast<double>(state.range(0)) / 100.0, 99);
  for (auto _ : state) {
    auto diff = encode_diff(page, base);
    benchmark::DoNotOptimize(diff);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_EncodeDiff)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_ApplyDiff(benchmark::State& state) {
  const std::vector<std::byte> base(4096, std::byte{0});
  const auto page = dirty_fraction(base, static_cast<double>(state.range(0)) / 100.0, 7);
  const auto diff = encode_diff(page, base);
  auto target = base;
  for (auto _ : state) {
    apply_diff(target, diff);
    benchmark::DoNotOptimize(target);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(diff.size()));
}
BENCHMARK(BM_ApplyDiff)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_MakeTwin(benchmark::State& state) {
  const std::vector<std::byte> page(static_cast<std::size_t>(state.range(0)), std::byte{1});
  for (auto _ : state) {
    auto twin = dsm::make_twin(page);
    benchmark::DoNotOptimize(twin);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MakeTwin)->Arg(4096)->Arg(16384);

// Part 2: the wire-bytes table (F7 proper), printed once after the timing runs.
struct DiffSizeTable {
  ~DiffSizeTable() {
    std::printf("\n=== F7 — diff wire bytes vs dirtied fraction (4 KiB page) ===\n");
    std::printf("  %-12s %-12s %-12s %-10s\n", "dirty %", "diff bytes", "runs",
                "vs full page");
    const std::vector<std::byte> base(4096, std::byte{0});
    for (const int percent : {1, 5, 10, 25, 50, 75, 100}) {
      const auto page = dirty_fraction(base, percent / 100.0, 42);
      const auto diff = encode_diff(page, base);
      const auto stats = dsm::inspect_diff(diff);
      std::printf("  %-12d %-12zu %-12zu %.2fx\n", percent, diff.size(), stats.runs,
                  static_cast<double>(diff.size()) / 4096.0);
    }
    std::printf("  (crossover: a diff stops paying once dirty fraction nears 1)\n");
  }
} print_at_exit;

}  // namespace
