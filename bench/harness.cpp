#include "harness.hpp"

#include <cstdio>
#include <sstream>

namespace dsm::bench {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::note(const std::string& line) { notes_.push_back(line); }

void Table::add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void Table::print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  for (const auto& n : notes_) std::printf("  %s\n", n.c_str());

  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf(" ");
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) rule += std::string(widths[c] + 1, '-');
  std::printf(" %s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

const std::vector<ProtocolKind>& all_protocols() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kIvyCentral,    ProtocolKind::kIvyFixed,  ProtocolKind::kIvyDynamic,
      ProtocolKind::kErcInvalidate, ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
      ProtocolKind::kHlrc,          ProtocolKind::kEc,
  };
  return kinds;
}

Config base_config(std::size_t nodes, std::size_t n_pages, ProtocolKind protocol) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = n_pages;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = protocol;
  cfg.link.latency_ns = 10'000;  // 10 µs
  cfg.link.ns_per_byte = 100;    // 10 MB/s
  cfg.ns_per_op = 100;           // 10 MOPS sustained — a 1992 workstation
  return cfg;
}

std::string fmt_ms(VirtualTime ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", static_cast<double>(ns) / 1e6);
  return buffer;
}

std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int precision) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, v);
  return buffer;
}

}  // namespace dsm::bench
