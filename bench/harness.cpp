#include "harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dsm::bench {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::note(const std::string& line) { notes_.push_back(line); }

void Table::add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void Table::print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  for (const auto& n : notes_) std::printf("  %s\n", n.c_str());

  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf(" ");
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) rule += std::string(widths[c] + 1, '-');
  std::printf(" %s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

const std::vector<ProtocolKind>& all_protocols() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kIvyCentral,    ProtocolKind::kIvyFixed,  ProtocolKind::kIvyDynamic,
      ProtocolKind::kErcInvalidate, ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
      ProtocolKind::kHlrc,          ProtocolKind::kEc,
  };
  return kinds;
}

Config base_config(std::size_t nodes, std::size_t n_pages, ProtocolKind protocol) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = n_pages;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = protocol;
  cfg.link.latency_ns = 10'000;  // 10 µs
  cfg.link.ns_per_byte = 100;    // 10 MB/s
  cfg.ns_per_op = 100;           // 10 MOPS sustained — a 1992 workstation
  return cfg;
}

std::string fmt_ms(VirtualTime ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", static_cast<double>(ns) / 1e6);
  return buffer;
}

std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

std::string fmt_double(double v, int precision) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, v);
  return buffer;
}

bool under_dsmrun() { return std::getenv("DSM_TRANSPORT") != nullptr; }

bool apply_dsmrun_env(Config& cfg) {
  return transport_from_env(cfg.transport, &cfg.n_nodes);
}

std::vector<std::size_t> scaling_nodes(std::vector<std::size_t> wanted) {
  if (const char* env = std::getenv("DSM_NODES"); under_dsmrun() && env != nullptr) {
    return {static_cast<std::size_t>(std::strtoul(env, nullptr, 10))};
  }
  return wanted;
}

std::string trace_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) return arg.substr(8);
  }
  return "";
}

std::string json_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void write_json(const std::string& path, const std::vector<Table>& tables) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  os << "{\n  \"tables\": [\n";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const Table& table = tables[t];
    os << "    {\n      \"title\": \"" << json_escape(table.title()) << "\",\n";
    os << "      \"notes\": [";
    for (std::size_t i = 0; i < table.notes().size(); ++i) {
      os << (i != 0 ? ", " : "") << '"' << json_escape(table.notes()[i]) << '"';
    }
    os << "],\n      \"rows\": [\n";
    const auto& columns = table.columns();
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      const auto& row = table.rows()[r];
      os << "        {";
      // One key per column, always, in column order: every row object has
      // an identical shape, so files from two runs diff line-by-line.
      for (std::size_t c = 0; c < columns.size(); ++c) {
        const std::string cell = c < row.size() ? row[c] : std::string();
        os << (c != 0 ? ", " : "") << '"' << json_escape(columns[c]) << "\": \""
           << json_escape(cell) << '"';
      }
      os << '}' << (r + 1 != table.rows().size() ? "," : "") << '\n';
    }
    os << "      ]\n    }" << (t + 1 != tables.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  std::printf("\nwrote %zu table(s) to %s\n", tables.size(), path.c_str());
}

void write_trace(const std::string& path, const std::vector<TraceGroup>& groups,
                 std::uint64_t dropped) {
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  write_chrome_trace(os, groups, dropped);
  std::size_t spans = 0;
  for (const auto& g : groups) spans += g.events.size();
  std::printf("\nwrote %zu spans to %s (chrome://tracing or ui.perfetto.dev)\n",
              spans, path.c_str());
}

SpanDiff::SpanDiff(const Tracer& tracer) : tracer_(tracer), seen_(tracer.n_nodes()) {
  for (NodeId n = 0; n < seen_.size(); ++n) seen_[n] = tracer_.events(n).size();
}

std::vector<TraceEvent> SpanDiff::take() {
  std::vector<TraceEvent> out;
  for (NodeId n = 0; n < seen_.size(); ++n) {
    auto per_node = tracer_.events(n);
    for (std::size_t i = seen_[n]; i < per_node.size(); ++i) out.push_back(per_node[i]);
    seen_[n] = per_node.size();
  }
  return out;
}

VirtualTime median_duration(const std::vector<TraceEvent>& spans) {
  if (spans.empty()) return 0;
  std::vector<VirtualTime> d;
  d.reserve(spans.size());
  for (const auto& ev : spans) d.push_back(ev.vend - ev.vstart);
  std::nth_element(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(d.size() / 2), d.end());
  return d[d.size() / 2];
}

}  // namespace dsm::bench
