// F6 — Task-queue throughput across protocols (the HICSS'94 sibling's
// Figures 6/7 shape): one producer, N-1 consumers, two production/execution
// grain ratios. Protocols that move the queue page quickly with the lock
// keep consumers busy; demand-fetch ping-pong saturates first.
#include "apps/task_queue.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  bench::Table table("F6 — task farm: 1 producer + (N-1) consumers, 128 tasks",
                     {"grain ratio", "nodes", "protocol", "virt ms", "speedup", "msgs"});
  table.note("speedup vs 1 node executing serially; ratio = produce/process cost");

  for (const std::uint64_t ratio : {100u, 2000u}) {
    apps::TaskQueueParams params;
    params.n_tasks = 128;
    params.task_grain = 100 * ratio;  // produce_grain = 100 → ratio as labeled
    params.produce_grain = 100;

    // Serial baseline: all tasks on one node.
    VirtualTime t1;
    {
      System sys(bench::base_config(1, 16, ProtocolKind::kIvyDynamic));
      t1 = apps::run_task_queue(sys, params).virtual_ns;
    }

    for (const std::size_t nodes : {3u, 5u, 9u, 17u, 33u}) {
      for (const auto protocol :
           {ProtocolKind::kIvyDynamic, ProtocolKind::kErcUpdate, ProtocolKind::kLrc, ProtocolKind::kHlrc,
            ProtocolKind::kEc}) {
        System sys(bench::base_config(nodes, 16, protocol));
        const auto result = apps::run_task_queue(sys, params);
        const auto snap = sys.stats();
        const bool ok = result.tasks_executed == params.n_tasks;
        table.add_row(
            {"1/" + std::to_string(ratio), std::to_string(nodes),
             std::string(to_string(protocol)), bench::fmt_ms(result.virtual_ns),
             bench::fmt_double(static_cast<double>(t1) /
                                   static_cast<double>(
                                       std::max<VirtualTime>(result.virtual_ns, 1)),
                               2) +
                 (ok ? "" : " (LOST TASKS)"),
             bench::fmt_count(snap.counter("net.msgs"))});
      }
    }
  }
  table.print();
  return 0;
}
