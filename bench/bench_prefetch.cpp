// A2 — demand fetch vs prefetch vs eager sharing on Gaussian elimination:
// the three-way comparison of the era (the HICSS'94 sibling paper's Figure 5
// shape). Prefetch hides part of the demand latency; update-based "eager"
// propagation hides all of it by pushing data before it is asked for.
#include <atomic>

#include "apps/gauss.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  apps::GaussParams params;
  params.n = 256;

  bench::Table table("A2 — demand vs prefetch vs eager: Gaussian elimination, 256 eqns",
                     {"variant", "nodes", "virt ms", "speedup", "demand faults",
                      "prefetches"});
  table.note("demand/prefetch = ivy-dynamic; eager = erc-update (push at release)");

  struct Variant {
    const char* name;
    ProtocolKind protocol;
    std::size_t prefetch;
  };
  const Variant variants[] = {
      {"demand", ProtocolKind::kIvyDynamic, 0},
      {"prefetch-1", ProtocolKind::kIvyDynamic, 1},
      {"prefetch-4", ProtocolKind::kIvyDynamic, 4},
      {"eager (erc-upd)", ProtocolKind::kErcUpdate, 0},
      {"hlrc", ProtocolKind::kHlrc, 0},
  };

  // ---- Part 1: streaming broadcast read (prefetch's best case) ----------
  bench::Table scan_table(
      "A2a — sequential scan of a 64-page table written by node 0 (8 nodes)",
      {"variant", "virt ms of scan", "demand faults", "prefetches"});
  scan_table.note("each reader scans all pages in order; latency hiding is the whole game");
  for (const std::size_t depth : {0u, 1u, 2u, 4u, 8u}) {
    Config cfg = bench::base_config(8, 80, ProtocolKind::kIvyDynamic);
    cfg.prefetch_pages = depth;
    System sys(cfg);
    const std::size_t per_page = cfg.page_size / sizeof(std::uint64_t);
    const auto tbl = sys.alloc_page_aligned<std::uint64_t>(64 * per_page);
    sys.reset_clocks();
    std::atomic<std::uint64_t> sink{0};
    sys.run([&](Worker& w) {
      if (w.id() == 0) {
        for (std::size_t p = 0; p < 64; ++p) w.get(tbl)[p * per_page] = p;
      }
      w.barrier(0);
      std::uint64_t s = 0;
      for (std::size_t p = 0; p < 64; ++p) {
        s += w.get(tbl)[p * per_page];
        w.compute(per_page);  // touch-and-process pacing
      }
      sink += s;
      w.barrier(0);
    });
    const auto snap = sys.stats();
    scan_table.add_row({depth == 0 ? "demand" : ("prefetch-" + std::to_string(depth)),
                        bench::fmt_ms(sys.virtual_time()),
                        bench::fmt_count(snap.counter("proto.read_faults")),
                        bench::fmt_count(snap.counter("proto.prefetches"))});
  }
  scan_table.print();

  // ---- Part 2: gauss — where naive sequential prefetch backfires ---------
  for (const auto& variant : variants) {
    VirtualTime t1 = 0;
    for (const std::size_t nodes : {1u, 4u, 8u, 16u}) {
      Config cfg = bench::base_config(nodes, 0, variant.protocol);
      cfg.n_pages = apps::gauss_pages_needed(params, cfg.page_size);
      cfg.prefetch_pages = variant.prefetch;
      System sys(cfg);
      const auto result = apps::run_gauss(sys, params);
      const auto snap = sys.stats();
      if (nodes == 1) t1 = result.virtual_ns;
      table.add_row({variant.name, std::to_string(nodes), bench::fmt_ms(result.virtual_ns),
                     bench::fmt_double(static_cast<double>(t1) /
                                           static_cast<double>(
                                               std::max<VirtualTime>(result.virtual_ns, 1)),
                                       2) +
                         (result.max_error < 1e-9 ? "" : " (BAD RESULT)"),
                     bench::fmt_count(snap.counter("proto.read_faults")),
                     bench::fmt_count(snap.counter("proto.prefetches"))});
    }
  }
  table.print();
  return 0;
}
