// R1 — the reliable-transport experiment. Part (a): what does the
// ack/retransmit sublayer cost when nothing is lost? (Answer it must give:
// virtual time identical to the fire-and-forget fabric; wall-clock within
// noise.) Part (b): with loss injected, completion degrades smoothly with
// the loss rate while every run still finishes with exact results — the
// retransmit/dup counters show the transport doing the work.
#include <chrono>
#include <cstdio>

#include "common/clock.hpp"
#include "apps/kernels.hpp"
#include "harness.hpp"

namespace {

using namespace dsm;

struct Run {
  apps::KernelResult result;
  double wall_ms = 0;
  StatsSnapshot snap;
  std::vector<TraceEvent> events;  // recorded spans (traced runs only)
  std::uint64_t trace_dropped = 0;
};

Run run_migratory_once(Config cfg, int rounds) {
  const bool traced = cfg.trace.enabled;
  System sys(std::move(cfg));
  apps::MigratoryParams params;
  params.rounds = rounds;
  Run r;
  const auto t0 = dsm::realclock::now();
  r.result = apps::run_migratory(sys, params);
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  dsm::realclock::now() - t0)
                  .count();
  r.snap = sys.stats();
  if (traced) {
    r.events = sys.tracer()->all_events();
    r.trace_dropped = sys.tracer()->dropped();
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(rounds) * sys.config().n_nodes;
  if (r.result.checksum != expected) {
    std::fprintf(stderr, "bench_chaos: checksum %llu != expected %llu\n",
                 static_cast<unsigned long long>(r.result.checksum),
                 static_cast<unsigned long long>(expected));
    std::abort();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::size_t kNodes = 4;
  constexpr int kRounds = 16;
  // --trace=FILE records every R1b lossy run and exports merged Chrome-trace
  // JSON; dsmcheck_offline replays it to verify the retransmit/dup story
  // (per-link seq contiguity, no lost or duplicated deliveries).
  const std::string trace_path = bench::trace_arg(argc, argv);
  std::vector<TraceGroup> groups;
  std::uint64_t trace_dropped = 0;

  bench::Table a(
      "R1a — reliable-sublayer overhead at 0% loss (4 nodes, migratory x16)",
      {"protocol", "transport", "virtual (ms)", "wall (ms)", "msgs", "acks"});
  a.note("at zero loss no retransmit fires and the sublayer adds no modeled");
  a.note("cost: per-message arrival stamps are identical, so virtual times");
  a.note("differ only by cross-source interleave jitter (as in the seed).");
  for (const auto protocol : bench::all_protocols()) {
    for (const bool reliable : {false, true}) {
      auto cfg = bench::base_config(kNodes, 16, protocol);
      cfg.reliability.enabled = reliable;
      const auto r = run_migratory_once(cfg, kRounds);
      a.add_row({std::string(to_string(protocol)),
                 reliable ? "reliable" : "fire-and-forget",
                 bench::fmt_ms(r.result.virtual_ns),
                 bench::fmt_double(r.wall_ms, 1),
                 bench::fmt_count(r.snap.counter("net.msgs")),
                 bench::fmt_count(r.snap.counter("net.acks"))});
    }
  }
  a.print();

  bench::Table b(
      "R1b — completion vs loss rate (4 nodes, migratory x16, seeded chaos)",
      {"protocol", "loss", "virtual (ms)", "wall (ms)", "retransmits", "dups",
       "gave_up"});
  b.note("every run still produces the exact checksum — loss shows up as");
  b.note("latency (one rto_virtual_ns surcharge per retransmit), not errors.");
  for (const auto protocol : bench::all_protocols()) {
    for (const double loss : {0.01, 0.05, 0.10}) {
      auto cfg = bench::base_config(kNodes, 16, protocol);
      cfg.reliability.rto_ms = 2;
      cfg.reliability.rto_max_ms = 32;
      cfg.chaos.enabled = true;
      cfg.chaos.seed = 1992;
      cfg.chaos.drop_probability = loss;
      cfg.chaos.duplicate_probability = loss / 5;
      cfg.watchdog_ms = 120'000;
      if (!trace_path.empty()) {
        cfg.trace.enabled = true;
        cfg.trace.buffer_spans = 1 << 16;  // keep every span for the replay
      }
      const auto r = run_migratory_once(cfg, kRounds);
      if (!trace_path.empty()) {
        groups.push_back(TraceGroup{std::string(to_string(protocol)) + "@" +
                                        bench::fmt_double(loss * 100, 0) + "%",
                                    kNodes, r.events});
        trace_dropped += r.trace_dropped;
      }
      b.add_row({std::string(to_string(protocol)),
                 bench::fmt_double(loss * 100, 0) + "%",
                 bench::fmt_ms(r.result.virtual_ns),
                 bench::fmt_double(r.wall_ms, 1),
                 bench::fmt_count(r.snap.counter("net.retransmits")),
                 bench::fmt_count(r.snap.counter("net.dups_suppressed")),
                 bench::fmt_count(r.snap.counter("net.gave_up"))});
    }
  }
  b.print();
  bench::write_trace(trace_path, groups, trace_dropped);
  return 0;
}
