// Shared scaffolding for the experiment binaries: aligned table printing,
// protocol enumeration, and config construction. Each bench regenerates one
// experiment from DESIGN.md's per-experiment index and prints
// self-describing rows to stdout.
#pragma once

#include <string>
#include <vector>

#include "core/dsm.hpp"

namespace dsm::bench {

/// Prints a title banner and an aligned table.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Free-form context lines printed under the title.
  void note(const std::string& line);
  void add_row(const std::vector<std::string>& cells);
  void print() const;

  const std::string& title() const { return title_; }
  const std::vector<std::string>& notes() const { return notes_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> notes_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// All seven protocol variants, in the order DESIGN.md lists them.
const std::vector<ProtocolKind>& all_protocols();

/// A config with the standard experiment cost model (10 µs links, 10 MB/s,
/// 10 MOPS sustained compute — an early-90s workstation LAN).
Config base_config(std::size_t nodes, std::size_t n_pages,
                   ProtocolKind protocol);

std::string fmt_ms(VirtualTime ns);
std::string fmt_count(std::uint64_t v);
std::string fmt_double(double v, int precision = 2);

// --- dsmrun (multi-process) support ----------------------------------------

/// True when this process is one rank of a `dsmrun` fleet (DSM_TRANSPORT is
/// present in the environment).
bool under_dsmrun();

/// Applies a dsmrun launch to `cfg` (UDP transport, fleet size, this rank's
/// identity); no-op outside dsmrun. Call on every Config a bench builds —
/// all ranks must construct their Systems in the same order so transport
/// epochs stay aligned across the fleet.
bool apply_dsmrun_env(Config& cfg);

/// The node counts a scaling loop should visit: `wanted` normally; under
/// dsmrun the fleet size is fixed at launch, so only that one count.
std::vector<std::size_t> scaling_nodes(std::vector<std::size_t> wanted);

// --- tracing support --------------------------------------------------------

/// Parses a `--trace=FILE` argument (any position); "" when absent.
std::string trace_arg(int argc, char** argv);

/// Parses a `--json=FILE` argument (any position); "" when absent.
std::string json_arg(int argc, char** argv);

/// Writes the tables as machine-readable JSON to `path` — each row becomes
/// an object keyed by column name, so CI jobs can assert on metrics without
/// scraping the aligned text output. Field order follows the column list
/// exactly (short rows are padded with empty strings), so diffing two runs'
/// files is meaningful. No-op when `path` is empty.
void write_json(const std::string& path, const std::vector<Table>& tables);

/// Writes merged trace groups as Chrome-trace JSON to `path` and prints a
/// confirmation line. No-op when `path` is empty.
void write_trace(const std::string& path, const std::vector<TraceGroup>& groups,
                 std::uint64_t dropped = 0);

/// Snapshot-diff over a tracer's rings: take() returns the events recorded
/// since construction or the previous take(), letting a bench attribute
/// spans to the scenario that produced them.
class SpanDiff {
 public:
  explicit SpanDiff(const Tracer& tracer);
  std::vector<TraceEvent> take();

 private:
  const Tracer& tracer_;
  std::vector<std::size_t> seen_;
};

/// Median duration (vend - vstart) of the given spans; 0 when empty.
VirtualTime median_duration(const std::vector<TraceEvent>& spans);

}  // namespace dsm::bench
