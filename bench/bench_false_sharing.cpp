// F2 — False sharing vs page size. The page-granularity problem that
// motivated multiple-writer protocols: interleave every node's counters on
// shared pages and watch single-writer invalidation ping-pong explode with
// page size while twin/diff protocols stay flat. The padded layout is the
// control.
#include "apps/kernels.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  bench::Table table("F2 — false sharing: stride-writer kernel, 8 nodes",
                     {"page KiB", "layout", "protocol", "virt ms", "msgs", "faults"});
  table.note("interleaved: every page written by all 8 nodes each iteration");
  table.note("padded: each node's counters on private pages (control)");

  const ProtocolKind kinds[] = {ProtocolKind::kIvyDynamic, ProtocolKind::kErcInvalidate,
                                ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
                                ProtocolKind::kHlrc};
  const auto os_page = ViewRegion::os_page_size();

  for (const std::size_t pages_per : {1u, 2u, 4u, 8u}) {
    for (const bool padded : {false, true}) {
      for (const auto protocol : kinds) {
        Config cfg = bench::base_config(8, 64, protocol);
        cfg.page_size = pages_per * os_page;
        System sys(cfg);
        apps::FalseSharingParams params;
        params.counters_per_node = 64;  // 512 B per node per "row"
        params.iterations = 8;
        params.padded = padded;
        const auto result = apps::run_false_sharing(sys, params);
        const auto snap = sys.stats();
        if (result.checksum != params.counters_per_node * 8u *
                                   static_cast<std::uint64_t>(params.iterations)) {
          table.add_row({"CHECKSUM MISMATCH", "", std::string(to_string(protocol)), "", "", ""});
          continue;
        }
        table.add_row({std::to_string(pages_per * os_page / 1024), padded ? "padded" : "interleaved",
                       std::string(to_string(protocol)), bench::fmt_ms(result.virtual_ns),
                       bench::fmt_count(snap.counter("net.msgs")),
                       bench::fmt_count(snap.counter("proto.read_faults") +
                                        snap.counter("proto.write_faults"))});
      }
    }
  }
  table.print();
  return 0;
}
