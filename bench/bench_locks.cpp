// F5 — Lock performance under contention: centralized vs forward-chain
// queue locks, and the EC/LRC "data rides the grant" advantage. N
// contenders hammer one lock guarding one page.
#include "harness.hpp"

int main() {
  using namespace dsm;

  bench::Table table("F5 — one hot lock, one hot page: N contenders, 20 CS each",
                     {"nodes", "policy", "protocol", "virt ms", "lock msgs",
                      "wait p50 (us)", "coherence msgs"});
  table.note("forward-chain grants flow holder->next; centralized bounces via the home");
  table.note("EC ships the guarded data inside the grant; LRC ships notices + lazy diffs");

  for (const std::size_t nodes : {2u, 4u, 8u, 16u, 32u}) {
    for (const auto policy : {LockPolicy::kCentralized, LockPolicy::kForwardChain}) {
      for (const auto protocol :
           {ProtocolKind::kIvyDynamic, ProtocolKind::kErcUpdate, ProtocolKind::kLrc, ProtocolKind::kHlrc,
            ProtocolKind::kEc}) {
        Config cfg = bench::base_config(nodes, 16, protocol);
        cfg.lock_policy = policy;
        System sys(cfg);
        const auto cell = sys.alloc_page_aligned<std::uint64_t>();

        sys.reset_clocks();
        sys.run([&](Worker& w) {
          if (sys.config().protocol == ProtocolKind::kEc) w.bind(1, cell);
          w.barrier(0);
          for (int i = 0; i < 20; ++i) {
            w.acquire(1);
            *w.get(cell) += 1;
            w.compute(2'000);  // 20 us critical section
            w.release(1);
          }
          w.barrier(0);
        });
        const auto snap = sys.stats();
        const auto lock_msgs = snap.counter("net.msgs.LockRequest") +
                               snap.counter("net.msgs.LockGrant") +
                               snap.counter("net.msgs.LockRelease");
        const auto coherence = snap.counter("net.msgs") - lock_msgs -
                               snap.counter("net.msgs.BarrierArrive") -
                               snap.counter("net.msgs.BarrierRelease");
        const auto wait = snap.histograms.count("sync.lock_wait_ns")
                              ? snap.histograms.at("sync.lock_wait_ns").p50
                              : 0;
        table.add_row({std::to_string(nodes),
                       policy == LockPolicy::kCentralized ? "central" : "chain",
                       std::string(to_string(protocol)), bench::fmt_ms(sys.virtual_time()),
                       bench::fmt_count(lock_msgs),
                       bench::fmt_double(static_cast<double>(wait) / 1000.0, 1),
                       bench::fmt_count(coherence)});
      }
    }
  }
  table.print();
  return 0;
}
