// F5 — Lock performance under contention: centralized vs forward-chain
// queue locks, and the EC/LRC "data rides the grant" advantage. N
// contenders hammer one lock guarding one page.
//
// Handoff latency is read back from lock-acquire trace spans (slow-path
// acquires only — cached re-acquires never open a span), so the printed
// p50 is the exact median, and `--trace=FILE` exports every configuration's
// spans for inspection.
#include <string_view>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace dsm;
  const std::string trace_path = bench::trace_arg(argc, argv);

  bench::Table table("F5 — one hot lock, one hot page: N contenders, 20 CS each",
                     {"nodes", "policy", "protocol", "virt ms", "lock msgs",
                      "wait p50 (us)", "coherence msgs"});
  table.note("forward-chain grants flow holder->next; centralized bounces via the home");
  table.note("EC ships the guarded data inside the grant; LRC ships notices + lazy diffs");
  table.note("wait p50: median lock-acquire span (slow-path handoff latency)");

  std::vector<TraceGroup> groups;
  std::uint64_t dropped = 0;

  for (const std::size_t nodes : {2u, 4u, 8u, 16u, 32u}) {
    for (const auto policy : {LockPolicy::kCentralized, LockPolicy::kForwardChain}) {
      for (const auto protocol :
           {ProtocolKind::kIvyDynamic, ProtocolKind::kErcUpdate, ProtocolKind::kLrc, ProtocolKind::kHlrc,
            ProtocolKind::kEc}) {
        Config cfg = bench::base_config(nodes, 16, protocol);
        cfg.lock_policy = policy;
        cfg.trace.enabled = true;
        System sys(cfg);
        const auto cell = sys.alloc_page_aligned<std::uint64_t>();

        sys.reset_clocks();
        sys.run([&](Worker& w) {
          if (sys.config().protocol == ProtocolKind::kEc) w.bind(1, cell);
          w.barrier(0);
          for (int i = 0; i < 20; ++i) {
            w.acquire(1);
            *w.get(cell) += 1;
            w.compute(2'000);  // 20 us critical section
            w.release(1);
          }
          w.barrier(0);
        });
        const auto snap = sys.stats();
        const auto lock_msgs = snap.counter("net.msgs.LockRequest") +
                               snap.counter("net.msgs.LockGrant") +
                               snap.counter("net.msgs.LockRelease");
        const auto coherence = snap.counter("net.msgs") - lock_msgs -
                               snap.counter("net.msgs.BarrierArrive") -
                               snap.counter("net.msgs.BarrierRelease");

        std::vector<TraceEvent> acquires;
        auto all = sys.tracer()->all_events();
        for (const auto& ev : all) {
          if (ev.cat == TraceCat::kSync && std::string_view(ev.name) == "lock-acquire") {
            acquires.push_back(ev);
          }
        }
        const auto wait = bench::median_duration(acquires);

        const std::string policy_name =
            policy == LockPolicy::kCentralized ? "central" : "chain";
        table.add_row({std::to_string(nodes), policy_name,
                       std::string(to_string(protocol)), bench::fmt_ms(sys.virtual_time()),
                       bench::fmt_count(lock_msgs),
                       bench::fmt_double(static_cast<double>(wait) / 1000.0, 1),
                       bench::fmt_count(coherence)});
        if (!trace_path.empty()) {
          groups.push_back(TraceGroup{std::to_string(nodes) + "/" + policy_name + "/" +
                                          std::string(to_string(protocol)),
                                      nodes, std::move(all)});
          dropped += sys.tracer()->dropped();
        }
      }
    }
  }
  table.print();
  bench::write_trace(trace_path, groups, dropped);
  return 0;
}
