// T3 — Space and traffic overhead per protocol on a real application run
// (SOR 64x64 on 8 nodes): bytes on the wire, messages per class, diff bytes
// created, and how many page copies exist at the end.
//
// `--check` instead measures the dsmcheck overhead: the same run per
// protocol at check_level off/count/assert, with real wall time and the
// check.* counters. "off" constructs no checker at all — its row is the
// zero-overhead baseline the other two are compared against.
#include <chrono>
#include <cstring>

#include "common/clock.hpp"
#include "apps/sor.hpp"
#include "harness.hpp"

namespace {

int run_check_overhead() {
  using namespace dsm;

  apps::SorParams params;
  params.rows = 64;
  params.cols = 64;
  params.iterations = 6;
  const std::size_t grid_bytes = (params.rows + 2) * (params.cols + 2) * sizeof(double);

  bench::Table table("dsmcheck overhead on SOR 64x64, 8 nodes, 6 sweeps",
                     {"protocol", "level", "wall ms", "overhead", "accesses",
                      "violations"});
  table.note("'off' builds no checker (hooks test a null pointer) — the baseline");
  table.note("'accesses' = faulting accesses observed by the race detector");

  constexpr CheckLevel kLevels[] = {CheckLevel::kOff, CheckLevel::kCount,
                                    CheckLevel::kAssert};
  for (const auto protocol : bench::all_protocols()) {
    double base_ms = 0.0;
    for (const auto level : kLevels) {
      Config cfg = bench::base_config(8, 0, protocol);
      cfg.n_pages = 2 * (grid_bytes / cfg.page_size + 2);
      cfg.check_level = level;
      System sys(cfg);
      const auto start = dsm::realclock::now();
      const auto result = apps::run_sor(sys, params);
      const auto wall = std::chrono::duration<double, std::milli>(
          dsm::realclock::now() - start);
      const double expected = apps::sor_reference_checksum(params);
      if (std::abs(result.checksum - expected) > 1e-6 * std::abs(expected)) {
        table.add_row({std::string(to_string(protocol)), to_string(level),
                       "BAD CHECKSUM", "", "", ""});
        continue;
      }
      if (level == CheckLevel::kOff) base_ms = wall.count();
      const auto snap = sys.stats();
      const double ratio = base_ms > 0.0 ? wall.count() / base_ms : 1.0;
      table.add_row({std::string(to_string(protocol)), to_string(level),
                     bench::fmt_double(wall.count(), 2),
                     level == CheckLevel::kOff ? "1.00x"
                                               : bench::fmt_double(ratio, 2) + "x",
                     bench::fmt_count(snap.counter("check.accesses")),
                     bench::fmt_count(snap.counter("check.violations"))});
    }
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) return run_check_overhead();
  }

  apps::SorParams params;
  params.rows = 64;
  params.cols = 64;
  params.iterations = 6;

  bench::Table table("T3 — overhead on SOR 64x64, 8 nodes, 6 sweeps",
                     {"protocol", "msgs", "KiB wire", "faults", "diff KiB",
                      "replicated pages", "KiB/sweep"});
  table.note("'replicated pages' = read-only copies across all nodes at the end");
  table.note("'diff KiB' = twin/diff payloads created (multiple-writer protocols)");

  const std::size_t grid_bytes = (params.rows + 2) * (params.cols + 2) * sizeof(double);

  for (const auto protocol : bench::all_protocols()) {
    Config cfg = bench::base_config(8, 0, protocol);
    cfg.n_pages = 2 * (grid_bytes / cfg.page_size + 2);
    System sys(cfg);
    const auto result = apps::run_sor(sys, params);
    const double expected = apps::sor_reference_checksum(params);
    if (std::abs(result.checksum - expected) > 1e-6 * std::abs(expected)) {
      table.add_row({std::string(to_string(protocol)), "BAD CHECKSUM", "", "", "", "", ""});
      continue;
    }
    const auto snap = sys.stats();
    std::size_t replicated = 0;
    for (NodeId n = 0; n < 8; ++n) {
      replicated += sys.table(n).count_in_state(PageState::kReadOnly);
    }
    const auto diff_bytes =
        snap.counter("erc.diff_bytes") + snap.counter("lrc.diff_bytes_created") +
        snap.counter("ec.diff_bytes");
    table.add_row(
        {std::string(to_string(protocol)), bench::fmt_count(snap.counter("net.msgs")),
         bench::fmt_count(snap.counter("net.bytes") / 1024),
         bench::fmt_count(snap.counter("proto.read_faults") +
                          snap.counter("proto.write_faults")),
         bench::fmt_count(diff_bytes / 1024), bench::fmt_count(replicated),
         bench::fmt_count(snap.counter("net.bytes") / 1024 /
                          static_cast<std::uint64_t>(params.iterations))});
  }
  table.print();
  return 0;
}
