// F9 — Distributed quicksort (IVY's celebrated application): dynamic work
// distribution over a shared stack; pages migrate with the ranges. The
// protocols that move data cheaply with ownership win; EC cannot express
// the dynamic bindings at all (see apps/quicksort.hpp).
#include "apps/quicksort.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  apps::QuicksortParams params;
  params.n = 64 * 1024;
  params.threshold = 2048;

  bench::Table table("F9 — quicksort of 64K words: traffic vs nodes",
                     {"protocol", "nodes", "virt ms", "speedup", "msgs", "ok"});
  table.note("entry consistency excluded: no static binding for dynamic ranges");
  table.note("NOTE: dynamic work stealing makes per-node load depend on the host");
  table.note("scheduler, so virtual speedup is noisy — compare the traffic column:");
  table.note("how much page motion each protocol needs for the same migratory work.");

  const ProtocolKind kinds[] = {ProtocolKind::kIvyCentral, ProtocolKind::kIvyDynamic,
                                ProtocolKind::kErcInvalidate, ProtocolKind::kErcUpdate,
                                ProtocolKind::kLrc, ProtocolKind::kHlrc};
  for (const auto protocol : kinds) {
    VirtualTime t1 = 0;
    for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
      Config cfg = bench::base_config(nodes, 0, protocol);
      cfg.n_pages = apps::quicksort_pages_needed(params, cfg.page_size);
      System sys(cfg);
      const auto result = apps::run_quicksort(sys, params);
      const auto snap = sys.stats();
      if (nodes == 1) t1 = result.virtual_ns;
      table.add_row({std::string(to_string(protocol)), std::to_string(nodes),
                     bench::fmt_ms(result.virtual_ns),
                     bench::fmt_double(static_cast<double>(t1) /
                                           static_cast<double>(
                                               std::max<VirtualTime>(result.virtual_ns, 1)),
                                       2),
                     bench::fmt_count(snap.counter("net.msgs")),
                     result.sorted && result.permutation_ok ? "yes" : "NO"});
    }
  }
  table.print();
  return 0;
}
