// T1 + T2 — Fault-path message counts and modeled latency per protocol.
// Re-derives the classic per-protocol cost tables (Li & Hudak §4;
// Nitzberg & Lo's protocol comparison): what does a cold read miss, a write
// miss on a read-shared page, and a lock-protected migratory update cost?
//
// Tracing is always on here: the fault p50 column and the T2 leg table are
// derived from recorded spans (fault-txn spans and net-transit spans), and
// `--trace=FILE` exports the exact same spans as Chrome-trace JSON — the
// printed tables are reproducible from the file.
#include <algorithm>
#include <chrono>
#include <map>
#include <string_view>

#include "common/clock.hpp"
#include "../tests/test_util.hpp"
#include "harness.hpp"
#include "mem/fault_engine.hpp"

namespace {

using namespace dsm;

struct Probe {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t fault_p50_ns = 0;
  std::vector<TraceEvent> spans;  // everything this scenario recorded
};

Probe measure(System& sys, const std::function<void(Worker&)>& body) {
  sys.reset_stats();
  bench::SpanDiff diff(*sys.tracer());
  sys.run(body);
  const auto snap = sys.stats();
  Probe p;
  p.msgs = snap.counter("net.msgs");
  p.bytes = snap.counter("net.bytes");
  p.spans = diff.take();
  // Fault service latency from fault-txn spans — the same request→grant
  // interval the protocols' fault paths time, but read back from the trace.
  std::vector<TraceEvent> txns;
  for (const auto& ev : p.spans) {
    if (ev.cat == TraceCat::kProto && std::string_view(ev.name) == "fault-txn") {
      txns.push_back(ev);
    }
  }
  p.fault_p50_ns = bench::median_duration(txns);
  return p;
}

/// One row per distinct message type seen in the scenario's net-transit
/// spans: how many wire legs of that type, and their total virtual cost.
void add_leg_rows(bench::Table& legs, ProtocolKind protocol, const char* scenario,
                  const std::vector<TraceEvent>& spans) {
  std::map<std::string, std::pair<std::uint64_t, VirtualTime>> by_type;
  for (const auto& ev : spans) {
    if (ev.cat != TraceCat::kNet) continue;
    const std::string_view name(ev.name);
    if (name == "send" || name == "retransmit") continue;  // point events
    auto& [count, total] = by_type[std::string(name)];
    ++count;
    total += ev.vend - ev.vstart;
  }
  for (const auto& [name, leg] : by_type) {
    legs.add_row({std::string(to_string(protocol)), scenario, name,
                  bench::fmt_count(leg.first),
                  bench::fmt_double(static_cast<double>(leg.second) / 1000.0, 1)});
  }
}

// --- trap-cost microbench ---------------------------------------------------
// Raw fault service cost per engine, protocol-free: one region, a handler
// that does nothing but install the final access right, wall-clock timed
// from the faulting thread (trap -> classify -> install -> resume). This is
// the number the engines differ on — everything above the seam is identical.

struct TrapCost {
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  double faults_per_sec = 0.0;
};

TrapCost summarize(std::vector<std::uint64_t>& samples) {
  TrapCost cost;
  if (samples.empty()) return cost;
  std::sort(samples.begin(), samples.end());
  cost.p50_ns = samples[samples.size() / 2];
  cost.p99_ns = samples[(samples.size() * 99) / 100];
  std::uint64_t total = 0;
  for (const auto s : samples) total += s;
  if (total > 0) {
    cost.faults_per_sec =
        static_cast<double>(samples.size()) * 1e9 / static_cast<double>(total);
  }
  return cost;
}

/// Times `iters` faults of one kind. `write_upgrade` selects the read-only →
/// read-write upgrade path (uffd: WP fault; sigsegv: write trap on a
/// PROT_READ page); otherwise the invalid → read install path (uffd: minor
/// fault; sigsegv: read trap on a PROT_NONE page). The per-iteration reset
/// (zap / downgrade) happens outside the timed window.
TrapCost measure_trap_cost(FaultEngine& engine, ViewRegion& view,
                           bool write_upgrade, int iters) {
  using clock = dsm::realclock::Clock;
  std::vector<std::uint64_t> samples;
  samples.reserve(static_cast<std::size_t>(iters));
  volatile std::byte* p = view.page_ptr(0);
  for (int i = 0; i < iters; ++i) {
    if (write_upgrade) {
      engine.protect(view, 0, Access::kNone);
      dsm::test::force_read(const_cast<const std::byte*>(view.page_ptr(0)));
      const auto t0 = clock::now();
      *p = std::byte{1};  // wp / write fault -> handler installs kReadWrite
      const auto t1 = clock::now();
      samples.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
    } else {
      engine.protect(view, 0, Access::kNone);
      const auto t0 = clock::now();
      dsm::test::force_read(const_cast<const std::byte*>(view.page_ptr(0)));
      const auto t1 = clock::now();
      samples.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
    }
  }
  return summarize(samples);
}

// --- mt throughput microbench -----------------------------------------------
// T4 — aggregate fault service throughput as app threads scale. Each thread
// hammers its own page (zap, fault, re-zap) so different-page faults can
// service in parallel; the whole parallel phase is wall-clock timed, reset
// included. On uffd the thread count also sizes the dispatcher's executor
// pool (RegionHooks::app_threads), so this measures the real mt fault path.
// The sigsegv engine is single-thread-only by design (the handler runs in
// the faulting thread's signal frame), so it gets the 1-thread row and
// visible n/a rows above that.

double measure_mt_throughput(FaultEngineKind kind, std::size_t threads,
                             int iters_per_thread) {
  StatsRegistry stats;
  auto engine = make_fault_engine(kind, &stats);
  ViewRegion view(kMaxAppThreads, ViewRegion::os_page_size());
  RegionHooks hooks;
  hooks.app_threads = threads;
  hooks.on_fault = [&](PageId page, std::size_t, bool is_write) {
    engine->protect(view, page,
                    is_write ? Access::kReadWrite : Access::kRead);
  };
  hooks.infer_write = [&](PageId) { return false; };
  const int token = engine->add_region(&view, hooks);

  using clock = dsm::realclock::Clock;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const auto page = static_cast<PageId>(t);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < iters_per_thread; ++i) {
        engine->protect(view, page, Access::kNone);
        dsm::test::force_read(const_cast<const std::byte*>(view.page_ptr(page)));
      }
    });
  }
  const auto t0 = clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const auto t1 = clock::now();
  engine->remove_region(token);

  const auto elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  if (elapsed_ns == 0) return 0.0;
  return static_cast<double>(threads) *
         static_cast<double>(iters_per_thread) * 1e9 /
         static_cast<double>(elapsed_ns);
}

void add_mt_rows(bench::Table& mt, FaultEngineKind kind, int iters) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    if (kind == FaultEngineKind::kSigsegv && threads > 1) {
      mt.add_row({"sigsegv", bench::fmt_count(threads), "n/a",
                  "single-thread engine"});
      continue;
    }
    const double per_sec = measure_mt_throughput(kind, threads, iters);
    mt.add_row({kind == FaultEngineKind::kSigsegv ? "sigsegv" : "uffd",
                bench::fmt_count(threads), bench::fmt_double(per_sec, 0), ""});
  }
}

void add_trap_rows(bench::Table& traps, FaultEngineKind kind, int iters) {
  StatsRegistry stats;
  auto engine = make_fault_engine(kind, &stats);
  ViewRegion view(4, ViewRegion::os_page_size());
  RegionHooks hooks;
  hooks.on_fault = [&](PageId page, std::size_t, bool is_write) {
    engine->protect(view, page,
                    is_write ? Access::kReadWrite : Access::kRead);
  };
  hooks.infer_write = [&](PageId) { return false; };
  const int token = engine->add_region(&view, hooks);

  for (const bool write_upgrade : {false, true}) {
    const auto cost = measure_trap_cost(*engine, view, write_upgrade, iters);
    traps.add_row({std::string(engine->name()),
                   write_upgrade ? "write-upgrade" : "read-install",
                   bench::fmt_count(cost.p50_ns), bench::fmt_count(cost.p99_ns),
                   bench::fmt_double(cost.faults_per_sec, 0)});
  }
  engine->remove_region(token);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = bench::trace_arg(argc, argv);
  const std::string json_path = bench::json_arg(argc, argv);

  bench::Table table("T1/T2 — fault-path cost per protocol (4 nodes, 10 us links, 10 MB/s)",
                     {"protocol", "scenario", "msgs", "bytes", "fault p50 (us)"});
  table.note("cold-read: node 1 first touch of a page homed at node 0");
  table.note("write-upgrade: write to a page all 4 nodes hold read-only (+release where eager)");
  table.note("migratory: one lock-protected counter update by a non-owner");
  table.note("EC has no page faults by design: data moves with its lock.");
  table.note("fault p50 is the median fault-txn span (request -> grant, virtual time)");

  bench::Table legs("T2 — transaction legs from trace spans (net transit per message type)",
                    {"protocol", "scenario", "leg", "count", "total (us)"});
  legs.note("each leg is one net-transit span: send_time -> arrival_time");

  bench::Table traps("T3 — raw trap cost per fault engine (wall clock, protocol-free)",
                     {"engine", "scenario", "p50 (ns)", "p99 (ns)", "faults/sec"});
  traps.note("read-install: invalid page -> read fault -> install read rights");
  traps.note("write-upgrade: read-only page -> write fault -> install rw rights");
  traps.note("timed on the faulting thread: trap -> classify -> install -> resume");
  traps.note("sigsegv resolves in the signal handler; uffd round-trips a poller thread");
  bench::Table mt("T4 — fault throughput vs app threads (wall clock, protocol-free)",
                  {"engine", "threads", "faults/sec", "note"});
  mt.note("each thread zaps + re-faults its own page; different-page faults");
  mt.note("service in parallel on uffd (executor pool sized by thread count)");
  mt.note("whole parallel phase timed, per-iteration reset included");
  {
    const int kTrapIters = 2000;
    add_trap_rows(traps, FaultEngineKind::kSigsegv, kTrapIters);
    add_mt_rows(mt, FaultEngineKind::kSigsegv, kTrapIters);
    std::string reason;
    if (uffd_available(&reason)) {
      add_trap_rows(traps, FaultEngineKind::kUffd, kTrapIters);
      add_mt_rows(mt, FaultEngineKind::kUffd, kTrapIters);
    } else {
      traps.note("[uffd unavailable] " + reason + " — sigsegv rows only");
      mt.note("[uffd unavailable] " + reason + " — sigsegv rows only");
    }
  }

  std::vector<TraceGroup> groups;
  std::uint64_t dropped = 0;

  for (const auto protocol : bench::all_protocols()) {
    Config cfg = bench::base_config(4, 16, protocol);
    cfg.trace.enabled = true;
    System sys(cfg);
    const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // page 0, home node 0
    const bool ec = protocol == ProtocolKind::kEc;

    // Preamble: EC binding.
    if (ec) {
      sys.run([&](Worker& w) {
        w.bind(1, cell);
        w.barrier(0);
      });
    }

    // --- cold read miss ---
    const auto cold = measure(sys, [&](Worker& w) {
      if (w.id() == 1) {
        if (ec) {
          w.acquire(1);
          dsm::test::force_read(w.get(cell));
          w.release(1);
        } else {
          dsm::test::force_read(w.get(cell));
        }
      }
    });
    table.add_row({std::string(to_string(protocol)), "cold-read",
                   bench::fmt_count(cold.msgs), bench::fmt_count(cold.bytes),
                   bench::fmt_double(static_cast<double>(cold.fault_p50_ns) / 1000.0, 1)});
    add_leg_rows(legs, protocol, "cold-read", cold.spans);

    // --- replicate everywhere, then write-upgrade by node 1 ---
    sys.run([&](Worker& w) {
      if (!ec) dsm::test::force_read(w.get(cell));
      w.barrier(0);
    });
    const auto upgrade = measure(sys, [&](Worker& w) {
      if (w.id() == 1) {
        if (ec) {
          w.acquire(1);
          *w.get(cell) += 1;
          w.release(1);
        } else {
          w.acquire(1);  // the RC protocols' writes only count with the release
          *w.get(cell) += 1;
          w.release(1);
        }
      }
    });
    table.add_row({std::string(to_string(protocol)), "write-upgrade",
                   bench::fmt_count(upgrade.msgs), bench::fmt_count(upgrade.bytes),
                   bench::fmt_double(static_cast<double>(upgrade.fault_p50_ns) / 1000.0, 1)});
    add_leg_rows(legs, protocol, "write-upgrade", upgrade.spans);

    // --- migratory: node 2 takes the counter from node 1 ---
    const auto migratory = measure(sys, [&](Worker& w) {
      if (w.id() == 2) {
        w.acquire(1);
        *w.get(cell) += 1;
        w.release(1);
      }
    });
    table.add_row({std::string(to_string(protocol)), "migratory",
                   bench::fmt_count(migratory.msgs), bench::fmt_count(migratory.bytes),
                   bench::fmt_double(static_cast<double>(migratory.fault_p50_ns) / 1000.0, 1)});
    add_leg_rows(legs, protocol, "migratory", migratory.spans);

    groups.push_back(TraceGroup{std::string(to_string(protocol)), cfg.n_nodes,
                                sys.tracer()->all_events()});
    dropped += sys.tracer()->dropped();
  }

  table.print();
  legs.print();
  traps.print();
  mt.print();
  bench::write_json(json_path, {table, legs, traps, mt});
  bench::write_trace(trace_path, groups, dropped);
  return 0;
}
