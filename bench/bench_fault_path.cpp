// T1 + T2 — Fault-path message counts and modeled latency per protocol.
// Re-derives the classic per-protocol cost tables (Li & Hudak §4;
// Nitzberg & Lo's protocol comparison): what does a cold read miss, a write
// miss on a read-shared page, and a lock-protected migratory update cost?
#include <atomic>

#include "../tests/test_util.hpp"
#include "harness.hpp"

namespace {

using namespace dsm;

struct Probe {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t fault_p50_ns = 0;
};

Probe measure(System& sys, const std::function<void(Worker&)>& body) {
  sys.reset_stats();
  sys.run(body);
  const auto snap = sys.stats();
  Probe p;
  p.msgs = snap.counter("net.msgs");
  p.bytes = snap.counter("net.bytes");
  const auto it = snap.histograms.find("proto.fault_service_ns");
  if (it != snap.histograms.end() && it->second.count > 0) p.fault_p50_ns = it->second.p50;
  return p;
}

}  // namespace

int main() {
  bench::Table table("T1/T2 — fault-path cost per protocol (4 nodes, 10 us links, 10 MB/s)",
                     {"protocol", "scenario", "msgs", "bytes", "fault p50 (us)"});
  table.note("cold-read: node 1 first touch of a page homed at node 0");
  table.note("write-upgrade: write to a page all 4 nodes hold read-only (+release where eager)");
  table.note("migratory: one lock-protected counter update by a non-owner");
  table.note("EC has no page faults by design: data moves with its lock.");

  for (const auto protocol : bench::all_protocols()) {
    System sys(bench::base_config(4, 16, protocol));
    const auto cell = sys.alloc_page_aligned<std::uint64_t>();  // page 0, home node 0
    const bool ec = protocol == ProtocolKind::kEc;

    // Preamble: EC binding.
    if (ec) {
      sys.run([&](Worker& w) {
        w.bind(1, cell);
        w.barrier(0);
      });
    }

    // --- cold read miss ---
    const auto cold = measure(sys, [&](Worker& w) {
      if (w.id() == 1) {
        if (ec) {
          w.acquire(1);
          dsm::test::force_read(w.get(cell));
          w.release(1);
        } else {
          dsm::test::force_read(w.get(cell));
        }
      }
    });
    table.add_row({std::string(to_string(protocol)), "cold-read",
                   bench::fmt_count(cold.msgs), bench::fmt_count(cold.bytes),
                   bench::fmt_double(static_cast<double>(cold.fault_p50_ns) / 1000.0, 1)});

    // --- replicate everywhere, then write-upgrade by node 1 ---
    sys.run([&](Worker& w) {
      if (!ec) dsm::test::force_read(w.get(cell));
      w.barrier(0);
    });
    const auto upgrade = measure(sys, [&](Worker& w) {
      if (w.id() == 1) {
        if (ec) {
          w.acquire(1);
          *w.get(cell) += 1;
          w.release(1);
        } else {
          w.acquire(1);  // the RC protocols' writes only count with the release
          *w.get(cell) += 1;
          w.release(1);
        }
      }
    });
    table.add_row({std::string(to_string(protocol)), "write-upgrade",
                   bench::fmt_count(upgrade.msgs), bench::fmt_count(upgrade.bytes),
                   bench::fmt_double(static_cast<double>(upgrade.fault_p50_ns) / 1000.0, 1)});

    // --- migratory: node 2 takes the counter from node 1 ---
    const auto migratory = measure(sys, [&](Worker& w) {
      if (w.id() == 2) {
        w.acquire(1);
        *w.get(cell) += 1;
        w.release(1);
      }
    });
    table.add_row({std::string(to_string(protocol)), "migratory",
                   bench::fmt_count(migratory.msgs), bench::fmt_count(migratory.bytes),
                   bench::fmt_double(static_cast<double>(migratory.fault_p50_ns) / 1000.0, 1)});
  }

  table.print();
  return 0;
}
