// F — the fault-tolerance experiment. Part (a): what does quorum
// replication cost when nothing fails? (Throughput of a lock-protected
// counter vs replication factor 1..3, on both transports.) Part (b): with a
// seeded kill-and-restart mid-run, every acknowledged write survives — the
// dsmcheck checker runs at assert level and would abort on a lost update —
// and the recovery-time histogram shows what a restarted replica pays to
// resync. Part (c): the ERC buddy-checkpoint cost sweep — snapshot traffic
// vs checkpoint period, the knob behind the bounded-loss guarantee.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/clock.hpp"
#include "harness.hpp"

namespace {

using namespace dsm;

struct FtRun {
  VirtualTime virtual_ns = 0;
  double wall_ms = 0;
  std::uint64_t total = 0;
  StatsSnapshot snap;
  std::vector<TraceEvent> events;  // recorded spans (traced runs only)
  std::uint64_t trace_dropped = 0;
};

Config ft_config(TransportKind transport, std::size_t repl) {
  auto cfg = bench::base_config(4, 16, ProtocolKind::kQrc);
  cfg.transport.kind = transport;
  cfg.ft.enabled = true;
  cfg.ft.replication = repl;
  cfg.check_level = CheckLevel::kAssert;
  return cfg;
}

// Each worker runs `rounds` lock-protected increments of one shared counter.
// When `kill_after` >= 0, `victim` jumps its virtual clock past the seeded
// kill_at deadline right after that round's release — its increments up to
// and including that round were quorum-acknowledged and must survive.
FtRun run_counter(Config cfg, int rounds, NodeId victim, int kill_after) {
  const std::size_t nodes = cfg.n_nodes;
  const bool traced = cfg.trace.enabled;
  if (kill_after >= 0) {
    cfg.ft.faults = {{victim, /*kill_at=*/1'000'000'000, /*restart=*/true}};
  }
  System sys(std::move(cfg));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  FtRun r;
  const auto t0 = dsm::realclock::now();
  sys.run([&](Worker& w) {
    for (int round = 0; round < rounds; ++round) {
      w.acquire(0);
      *w.get(cell) += 1;
      w.release(0);
      if (kill_after >= 0 && w.id() == victim && round == kill_after) {
        // 1e7 ops at the 100 ns/op cost model = 1 s of virtual compute,
        // which jumps this worker's clock past the seeded kill_at deadline.
        w.compute(10'000'000);  // dies at this op boundary, then restarts
      }
    }
    w.barrier(0);
    if (w.id() == 0) {
      volatile const std::uint64_t* p = w.get(cell);
      r.total = *p;
    }
    w.barrier(1);
  });
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  dsm::realclock::now() - t0)
                  .count();
  r.virtual_ns = sys.virtual_time();
  r.snap = sys.stats();
  if (traced) {
    r.events = sys.tracer()->all_events();
    r.trace_dropped = sys.tracer()->dropped();
  }
  const std::uint64_t expected =
      kill_after < 0 ? static_cast<std::uint64_t>(rounds) * nodes
                     : static_cast<std::uint64_t>(rounds) * (nodes - 1) +
                           static_cast<std::uint64_t>(kill_after) + 1;
  if (r.total != expected) {
    std::fprintf(stderr, "bench_ft: counter %llu != expected %llu (acked write lost)\n",
                 static_cast<unsigned long long>(r.total),
                 static_cast<unsigned long long>(expected));
    std::abort();
  }
  return r;
}

const char* transport_name(TransportKind k) {
  return k == TransportKind::kUdp ? "udp" : "inproc";
}

std::string fmt_hist(const StatsSnapshot& snap, const char* name) {
  const auto it = snap.histograms.find(name);
  if (it == snap.histograms.end() || it->second.count == 0) return "-";
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%llu/%llu/%llu",
                static_cast<unsigned long long>(it->second.p50),
                static_cast<unsigned long long>(it->second.p99),
                static_cast<unsigned long long>(it->second.max));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::under_dsmrun()) {
    // Faults here are seeded in virtual time against in-process workers;
    // the real-SIGKILL path is dsmrun --on-crash respawn (see ft_demo).
    std::fprintf(stderr, "bench_ft: runs standalone, not under dsmrun\n");
    return 0;
  }
  const std::string json_path = bench::json_arg(argc, argv);
  // --trace=FILE records the *fault-free* replication runs (Fa) and exports
  // merged Chrome-trace JSON; dsmcheck_offline replays it to prove the
  // quorum fan-out is lifecycle-clean (no lost/duplicated deliveries,
  // contiguous per-link seqs). Kill trials are untraced by design: a dead
  // node's in-flight messages are legitimately never delivered, which the
  // offline lifecycle check would (correctly, for a fault-free run) flag.
  const std::string trace_path = bench::trace_arg(argc, argv);
  std::vector<TraceGroup> groups;
  std::uint64_t trace_dropped = 0;
  constexpr int kRounds = 32;
  constexpr std::array kTransports = {TransportKind::kInproc, TransportKind::kUdp};

  bench::Table a(
      "Fa — quorum replication cost at zero faults (4 nodes, locked counter x32)",
      {"transport", "replication", "virtual (ms)", "wall (ms)", "incr/s (virtual)",
       "msgs", "flushes"});
  a.note("write-all-live: every release syncs the page to all live group");
  a.note("members, so throughput falls roughly linearly with the factor.");
  for (const auto transport : kTransports) {
    for (const std::size_t repl : {1U, 2U, 3U}) {
      auto cfg = ft_config(transport, repl);
      const std::size_t nodes = cfg.n_nodes;
      if (!trace_path.empty()) {
        cfg.trace.enabled = true;
        cfg.trace.buffer_spans = 1 << 16;  // keep every span for the replay
      }
      const auto r = run_counter(std::move(cfg), kRounds, 0, -1);
      if (!trace_path.empty()) {
        groups.push_back(TraceGroup{std::string(transport_name(transport)) +
                                        "@r" + std::to_string(repl),
                                    nodes, r.events});
        trace_dropped += r.trace_dropped;
      }
      const double incr_per_s =
          static_cast<double>(r.total) / (static_cast<double>(r.virtual_ns) / 1e9);
      a.add_row({transport_name(transport), std::to_string(repl),
                 bench::fmt_ms(r.virtual_ns), bench::fmt_double(r.wall_ms, 1),
                 bench::fmt_double(incr_per_s, 0),
                 bench::fmt_count(r.snap.counter("net.msgs")),
                 bench::fmt_count(r.snap.counter("qrc.flushes"))});
    }
  }
  a.print();

  bench::Table b(
      "Fb — seeded kill + restart mid-run (4 nodes, replication 3, assert-level checks)",
      {"transport", "victim", "kill after", "virtual (ms)", "takeovers",
       "recoveries", "recovery us p50/p99/max"});
  b.note("each trial kills one rank after a known number of acknowledged");
  b.note("increments and restarts it; the run aborts if any acked write is");
  b.note("lost. recovery us is wall-clock resync time at the restarted node.");
  for (const auto transport : kTransports) {
    for (const NodeId victim : {NodeId{1}, NodeId{2}, NodeId{3}}) {
      for (const int kill_after : {0, kRounds / 2}) {
        const auto r =
            run_counter(ft_config(transport, 3), kRounds, victim, kill_after);
        b.add_row({transport_name(transport), std::to_string(victim),
                   std::to_string(kill_after + 1) + " incr",
                   bench::fmt_ms(r.virtual_ns),
                   bench::fmt_count(r.snap.counter("qrc.takeovers")),
                   bench::fmt_count(r.snap.counter("qrc.recoveries")),
                   fmt_hist(r.snap, "ft.recovery_us")});
      }
    }
  }
  b.print();

  bench::Table c(
      "Fc — ERC buddy-checkpoint cost vs period (2 nodes, 32 home versions)",
      {"period", "virtual (ms)", "ckpt stores", "ckpt bytes", "max versions at risk"});
  c.note("every Nth home version of a page is snapshotted to the buddy; a");
  c.note("crash between snapshots loses at most period-1 versions per page.");
  for (const std::size_t period : {1U, 2U, 4U, 8U}) {
    auto cfg = bench::base_config(2, 8, ProtocolKind::kErcInvalidate);
    cfg.ft.enabled = true;
    cfg.ft.checkpoint_period = period;
    cfg.check_level = CheckLevel::kAssert;
    System sys(std::move(cfg));
    const auto cell = sys.alloc_page_aligned<std::uint64_t>();
    sys.run([&](Worker& w) {
      if (w.id() == 0) {
        for (int v = 0; v < 32; ++v) {
          w.acquire(0);
          *w.get(cell) += 1;
          w.release(0);  // each release publishes one new home version
        }
      }
      w.barrier(0);
    });
    const auto snap = sys.stats();
    c.add_row({std::to_string(period), bench::fmt_ms(sys.virtual_time()),
               bench::fmt_count(snap.counter("ft.ckpt_stores")),
               bench::fmt_count(snap.counter("ft.ckpt_bytes")),
               std::to_string(period - 1)});
  }
  c.print();

  bench::write_json(json_path, {a, b, c});
  bench::write_trace(trace_path, groups, trace_dropped);
  return 0;
}
