// A1 — ablation: how often should LRC settle up? Config::lrc_gc_period
// trades lazy-round cheapness against diff accumulation (faults between
// settles fetch ever-longer diff chains) and settle cost. period=1 is the
// eager-barrier strawman; large periods are maximally lazy.
#include "apps/sor.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  apps::SorParams params;
  params.rows = 128;
  params.cols = 128;
  params.iterations = 8;  // 16 half-sweep barriers: periods divide evenly

  bench::Table table("A1 — LRC settle-up period on SOR 128x128, 8 nodes",
                     {"gc period", "virt ms", "msgs", "KiB wire", "settles",
                      "diff fetches", "dropped copies"});
  table.note("period 1 = settle every barrier (eager strawman); 1000 = never settles here");

  const std::size_t grid_bytes = (params.rows + 2) * (params.cols + 2) * sizeof(double);
  for (const std::size_t period : {1u, 2u, 4u, 8u, 16u, 1000u}) {
    Config cfg = bench::base_config(8, 0, ProtocolKind::kLrc);
    cfg.n_pages = 2 * (grid_bytes / cfg.page_size + 2);
    cfg.lrc_gc_period = period;
    System sys(cfg);
    const auto result = apps::run_sor(sys, params);
    const double expected = apps::sor_reference_checksum(params);
    const auto snap = sys.stats();
    const bool ok = std::abs(result.checksum - expected) < 1e-6 * std::abs(expected);
    table.add_row({std::to_string(period),
                   bench::fmt_ms(result.virtual_ns) + (ok ? "" : " (BAD CHECKSUM)"),
                   bench::fmt_count(snap.counter("net.msgs")),
                   bench::fmt_count(snap.counter("net.bytes") / 1024),
                   bench::fmt_count(snap.counter("lrc.settle_barriers") / 8),
                   bench::fmt_count(snap.counter("lrc.diff_requests")),
                   bench::fmt_count(snap.counter("lrc.settle_dropped_copies"))});
  }
  table.print();
  return 0;
}
