// W1 — wire-level batching ablation: per-link coalescing, piggybacked acks,
// and payload compression, off vs on, over the release fan-out pattern the
// optimisation targets plus regenerated F1/F5 rows to show protocol message
// counts and orderings are untouched.
//
// The physical-datagram metric charges the unbatched transport one implied
// datagram per ack (its acks complete in-fabric and are not otherwise
// counted); with piggybacking on, standalone delayed acks are already
// physical sends inside net.datagrams.
//
// `--check` exits 1 if any batched configuration regresses above its
// unbatched baseline (or the erc fan-out misses the 40% reduction target),
// `--json=FILE` emits every table machine-readably, `--trace=FILE` exports
// the batched fan-out runs for dsmcheck_offline replay.
#include <atomic>
#include <string>
#include <vector>

#include "apps/kernels.hpp"
#include "harness.hpp"

namespace {

dsm::WireConfig wire_on() {
  dsm::WireConfig wire;
  wire.batching = true;
  wire.piggyback_acks = true;
  wire.compress_pages = true;
  wire.compress_diffs = true;
  return wire;
}

/// Physical datagrams including (implied or real) ack traffic — see header
/// comment.
std::uint64_t total_datagrams(const dsm::StatsSnapshot& snap, bool piggyback) {
  const auto data = snap.counter("net.datagrams");
  return piggyback ? data : data + snap.counter("net.acks");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsm;
  const std::string json_path = bench::json_arg(argc, argv);
  const std::string trace_path = bench::trace_arg(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") check = true;
  }
  int failures = 0;
  const auto fail = [&](const std::string& what) {
    ++failures;
    std::fprintf(stderr, "[bench_wire] CHECK FAILED: %s\n", what.c_str());
  };

  std::vector<TraceGroup> groups;
  std::uint64_t dropped = 0;

  // --- W1a: the pattern batching exists for — release-time fan-out --------
  // Every node writes its own word in each of 32 shared pages, then hits a
  // barrier; the eager protocols flush one diff per dirty page to the
  // page's home at that point, i.e. 4 same-link updates per remote home.
  bench::Table w1a("W1a — release fan-out: 8 nodes, 32 shared pages, 4 epochs",
                   {"protocol", "wire", "virt ms", "datagrams", "batches",
                    "batched msgs", "acks piggybacked", "acks standalone",
                    "bytes saved"});
  w1a.note("datagrams: physical sends + one implied datagram per unbatched ack");
  w1a.note("wire=on: batching + piggybacked acks + page/diff compression");

  const std::size_t kPages = 32;
  const ProtocolKind fanout_kinds[] = {ProtocolKind::kErcInvalidate,
                                       ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
                                       ProtocolKind::kHlrc};
  for (const auto protocol : fanout_kinds) {
    std::uint64_t baseline = 0;
    for (const bool on : {false, true}) {
      Config cfg = bench::base_config(8, 64, protocol);
      if (on) cfg.wire = wire_on();
      cfg.trace.enabled = on && !trace_path.empty();
      System sys(cfg);
      const std::size_t wpp = cfg.page_size / sizeof(std::uint64_t);
      const auto data = sys.alloc_page_aligned<std::uint64_t>(kPages * wpp);
      std::atomic<int> mismatches{0};
      sys.run([&](Worker& w) {
        auto* a = w.get(data);
        w.barrier(0);
        for (int epoch = 0; epoch < 4; ++epoch) {
          for (std::size_t p = 0; p < kPages; ++p) a[p * wpp + w.id()] += 1;
          w.barrier(0);
        }
        for (std::size_t p = 0; p < kPages; ++p) {
          if (a[p * wpp + w.id()] != 4) mismatches.fetch_add(1);
        }
      });
      const auto snap = sys.stats();
      const auto total = total_datagrams(snap, on);
      if (!on) baseline = total;
      if (mismatches.load() != 0) {
        fail(std::string(to_string(protocol)) + " fan-out produced wrong counters");
      }
      w1a.add_row({std::string(to_string(protocol)), on ? "on" : "off",
                   bench::fmt_ms(sys.virtual_time()), bench::fmt_count(total),
                   bench::fmt_count(snap.counter("net.batches")),
                   bench::fmt_count(snap.counter("net.batched_msgs")),
                   bench::fmt_count(snap.counter("net.acks_piggybacked")),
                   bench::fmt_count(snap.counter("net.acks_standalone")),
                   bench::fmt_count(snap.counter("net.bytes_saved"))});
      if (on) {
        if (total > baseline) {
          fail(std::string(to_string(protocol)) + " fan-out regressed: " +
               std::to_string(total) + " datagrams vs " + std::to_string(baseline));
        }
        const bool erc = protocol == ProtocolKind::kErcInvalidate ||
                         protocol == ProtocolKind::kErcUpdate;
        if (erc && total * 10 > baseline * 6) {
          fail(std::string(to_string(protocol)) + " fan-out reduction under 40%: " +
               std::to_string(total) + " of " + std::to_string(baseline));
        }
        if (!trace_path.empty()) {
          groups.push_back(TraceGroup{"w1a/" + std::string(to_string(protocol)), 8,
                                      sys.tracer()->all_events()});
          dropped += sys.tracer()->dropped();
        }
      }
    }
  }

  // --- W1b: F1 regen — batching must not change protocol message counts --
  bench::Table w1b("W1b — F1 regen: migratory counter, manager placement",
                   {"nodes", "protocol", "wire", "virt ms", "msgs/handoff",
                    "datagrams"});
  w1b.note("msgs/handoff must match the unbatched F1 rows exactly");
  const ProtocolKind ivy_kinds[] = {ProtocolKind::kIvyCentral, ProtocolKind::kIvyFixed,
                                    ProtocolKind::kIvyDynamic};
  for (const std::size_t nodes : {4u, 8u}) {
    for (const auto protocol : ivy_kinds) {
      double baseline_ratio = 0;
      std::uint64_t baseline_total = 0;
      for (const bool on : {false, true}) {
        Config cfg = bench::base_config(nodes, 16, protocol);
        if (on) cfg.wire = wire_on();
        System sys(cfg);
        apps::MigratoryParams params;
        params.rounds = 8;
        const auto result = apps::run_migratory(sys, params);
        const auto snap = sys.stats();
        if (result.checksum != 8u * nodes) {
          fail("migratory checksum wrong at " + std::to_string(nodes) + " nodes");
        }
        const std::uint64_t coherence =
            snap.counter("net.msgs.ReadRequest") + snap.counter("net.msgs.WriteRequest") +
            snap.counter("net.msgs.ReadForward") + snap.counter("net.msgs.WriteForward") +
            snap.counter("net.msgs.ReadReply") + snap.counter("net.msgs.WriteReply") +
            snap.counter("net.msgs.Invalidate") + snap.counter("net.msgs.InvalidateAck") +
            snap.counter("net.msgs.Confirm");
        const double ratio =
            static_cast<double>(coherence) / (8.0 * static_cast<double>(nodes));
        const auto total = total_datagrams(snap, on);
        if (!on) {
          baseline_ratio = ratio;
          baseline_total = total;
        } else {
          if (ratio != baseline_ratio) {
            fail("F1 msgs/handoff changed under batching at " +
                 std::to_string(nodes) + " nodes " + std::string(to_string(protocol)));
          }
          if (total > baseline_total) {
            fail("F1 datagrams regressed under batching at " + std::to_string(nodes) +
                 " nodes " + std::string(to_string(protocol)));
          }
        }
        w1b.add_row({std::to_string(nodes), std::string(to_string(protocol)),
                     on ? "on" : "off", bench::fmt_ms(result.virtual_ns),
                     bench::fmt_double(ratio, 2), bench::fmt_count(total)});
      }
    }
  }

  // --- W1c: payload compression on page transfers -------------------------
  // Node 0 seeds one word per page; the others read every page — the
  // fetched pages are almost all zero, the best case zero-run RLE targets.
  bench::Table w1c("W1c — page compression: sparse pages, 8 nodes, 16 pages",
                   {"protocol", "wire", "virt ms", "net bytes", "bytes saved"});
  const ProtocolKind read_kinds[] = {ProtocolKind::kIvyDynamic, ProtocolKind::kHlrc};
  for (const auto protocol : read_kinds) {
    std::uint64_t baseline_bytes = 0;
    for (const bool on : {false, true}) {
      Config cfg = bench::base_config(8, 16, protocol);
      if (on) cfg.wire = wire_on();
      System sys(cfg);
      const std::size_t wpp = cfg.page_size / sizeof(std::uint64_t);
      const auto data = sys.alloc_page_aligned<std::uint64_t>(16 * wpp);
      std::atomic<std::uint64_t> sum{0};
      sys.run([&](Worker& w) {
        auto* a = w.get(data);
        if (w.id() == 0) {
          for (std::size_t p = 0; p < 16; ++p) a[p * wpp] = p + 1;
        }
        w.barrier(0);
        std::uint64_t local = 0;
        for (std::size_t p = 0; p < 16; ++p) local += a[p * wpp];
        sum.fetch_add(local);
      });
      const auto snap = sys.stats();
      if (sum.load() != 8u * (16u * 17u / 2u)) {
        fail(std::string(to_string(protocol)) + " sparse-read checksum wrong");
      }
      if (!on) {
        baseline_bytes = snap.counter("net.bytes");
      } else if (snap.counter("net.bytes") >= baseline_bytes) {
        fail(std::string(to_string(protocol)) + " compression saved no bytes");
      }
      w1c.add_row({std::string(to_string(protocol)), on ? "on" : "off",
                   bench::fmt_ms(sys.virtual_time()),
                   bench::fmt_count(snap.counter("net.bytes")),
                   bench::fmt_count(snap.counter("net.bytes_saved"))});
    }
  }

  // --- W1d: F5 regen — lock handoff counts under batching ------------------
  bench::Table w1d("W1d — F5 regen: one hot lock, 8 contenders, 20 CS each",
                   {"policy", "protocol", "wire", "virt ms", "lock msgs",
                    "datagrams", "datagrams/msg"});
  w1d.note("central lock msgs are deterministic (3 per CS) and must not change;");
  w1d.note("chain counts are contention-timing dependent, so the batching check");
  w1d.note("is normalized: physical datagrams per protocol message must not rise");
  const ProtocolKind lock_kinds[] = {ProtocolKind::kIvyDynamic, ProtocolKind::kErcUpdate,
                                     ProtocolKind::kEc};
  for (const auto policy : {LockPolicy::kCentralized, LockPolicy::kForwardChain}) {
    for (const auto protocol : lock_kinds) {
      std::uint64_t baseline_locks = 0;
      double baseline_per_msg = 0;
      for (const bool on : {false, true}) {
        Config cfg = bench::base_config(8, 16, protocol);
        cfg.lock_policy = policy;
        if (on) cfg.wire = wire_on();
        System sys(cfg);
        const auto cell = sys.alloc_page_aligned<std::uint64_t>();
        sys.run([&](Worker& w) {
          if (sys.config().protocol == ProtocolKind::kEc) w.bind(1, cell);
          w.barrier(0);
          for (int i = 0; i < 20; ++i) {
            w.acquire(1);
            *w.get(cell) += 1;
            w.compute(2'000);
            w.release(1);
          }
          w.barrier(0);
        });
        const auto snap = sys.stats();
        const auto lock_msgs = snap.counter("net.msgs.LockRequest") +
                               snap.counter("net.msgs.LockGrant") +
                               snap.counter("net.msgs.LockRelease");
        const auto total = total_datagrams(snap, on);
        const double per_msg = static_cast<double>(total) /
                               static_cast<double>(snap.counter("net.msgs"));
        const std::string policy_name =
            policy == LockPolicy::kCentralized ? "central" : "chain";
        if (!on) {
          baseline_locks = lock_msgs;
          baseline_per_msg = per_msg;
        } else {
          if (policy == LockPolicy::kCentralized && lock_msgs != baseline_locks) {
            fail("F5 lock msgs changed under batching: " + policy_name + " " +
                 std::string(to_string(protocol)));
          }
          if (per_msg > baseline_per_msg) {
            fail("F5 datagrams per message regressed under batching: " + policy_name +
                 " " + std::string(to_string(protocol)));
          }
        }
        w1d.add_row({policy_name, std::string(to_string(protocol)), on ? "on" : "off",
                     bench::fmt_ms(sys.virtual_time()), bench::fmt_count(lock_msgs),
                     bench::fmt_count(total), bench::fmt_double(per_msg, 2)});
      }
    }
  }

  w1a.print();
  w1b.print();
  w1c.print();
  w1d.print();
  bench::write_json(json_path, {w1a, w1b, w1c, w1d});
  bench::write_trace(trace_path, groups, dropped);
  if (check) {
    if (failures == 0) {
      std::printf("\nall wire-batching checks passed\n");
    } else {
      std::printf("\n%d wire-batching check(s) FAILED\n", failures);
      return 1;
    }
  }
  return 0;
}
