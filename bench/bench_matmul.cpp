// F8 — Blocked matrix multiply: the coarse-grained control experiment.
// Sharing is read-mostly (B) and write-private (C rows), so every protocol
// should scale about the same — demonstrating that protocol choice only
// matters when sharing is fine-grained.
#include "apps/matmul.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  apps::MatmulParams params;
  params.n = 96;

  bench::Table table("F8 — matmul 96x96: speedup vs nodes (coarse-grain control)",
                     {"protocol", "nodes", "virt ms", "speedup", "msgs"});

  const std::size_t bytes = 3 * params.n * params.n * sizeof(double);
  const double expected = apps::matmul_reference_checksum(params);

  for (const auto protocol : bench::all_protocols()) {
    VirtualTime t1 = 0;
    for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
      Config cfg = bench::base_config(nodes, 0, protocol);
      cfg.n_pages = 2 * (bytes / cfg.page_size + 4);
      System sys(cfg);
      const auto result = apps::run_matmul(sys, params);
      const auto snap = sys.stats();
      if (nodes == 1) t1 = result.virtual_ns;
      const bool ok = result.checksum == expected;
      table.add_row({std::string(to_string(protocol)), std::to_string(nodes),
                     bench::fmt_ms(result.virtual_ns),
                     bench::fmt_double(static_cast<double>(t1) /
                                           static_cast<double>(
                                               std::max<VirtualTime>(result.virtual_ns, 1)),
                                       2) +
                         (ok ? "" : " (BAD CHECKSUM)"),
                     bench::fmt_count(snap.counter("net.msgs"))});
    }
  }
  table.print();
  return 0;
}
