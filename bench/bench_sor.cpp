// F3 — SOR speedup vs nodes per protocol (the TreadMarks/IVY headline
// figure). Near-linear scaling for the relaxed protocols on this
// boundary-sharing-only workload; single-writer invalidation pays on the
// partition boundaries.
#include "apps/sor.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  apps::SorParams params;
  params.rows = 256;
  params.cols = 256;
  params.iterations = 4;

  bench::Table table("F3 — red-black SOR 256x256, 4 sweeps: speedup vs nodes",
                     {"protocol", "nodes", "virt ms", "speedup", "msgs", "bytes/node"});
  table.note("speedup = virtual time on 1 node / virtual time on N nodes");

  const std::size_t grid_bytes = (params.rows + 2) * (params.cols + 2) * sizeof(double);

  for (const auto protocol : bench::all_protocols()) {
    VirtualTime t1 = 0;
    for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
      Config cfg = bench::base_config(nodes, 0, protocol);
      cfg.n_pages = 2 * (grid_bytes / cfg.page_size + 2);
      System sys(cfg);
      const auto result = apps::run_sor(sys, params);
      const double expected = apps::sor_reference_checksum(params);
      const auto snap = sys.stats();
      if (nodes == 1) t1 = result.virtual_ns;
      const bool ok = std::abs(result.checksum - expected) < 1e-6 * std::abs(expected);
      table.add_row(
          {std::string(to_string(protocol)), std::to_string(nodes),
           bench::fmt_ms(result.virtual_ns),
           bench::fmt_double(static_cast<double>(t1) /
                                 static_cast<double>(std::max<VirtualTime>(result.virtual_ns, 1)),
                             2) +
               (ok ? "" : " (BAD CHECKSUM)"),
           bench::fmt_count(snap.counter("net.msgs")),
           bench::fmt_count(snap.counter("net.bytes") / nodes)});
    }
  }
  table.print();
  return 0;
}
