// F1 — Manager algorithms: central vs fixed vs dynamic as N grows.
// Re-derives Li & Hudak's comparison: on a migratory page, the dynamic
// distributed manager's probable-owner chains (with path compression) beat
// the fixed round trip through a manager, and the central manager becomes a
// hot spot the moment many pages are in flight.
#include "apps/kernels.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  bench::Table table(
      "F1 — manager placement on a migratory counter (lock-ordered ring)",
      {"nodes", "protocol", "virt ms", "msgs", "forwards", "msgs/handoff"});
  table.note("workload: run_migratory — one counter circulates rounds x N times");
  table.note("'forwards' = probable-owner chain hops (dynamic manager only)");
  if (bench::under_dsmrun()) {
    // One rank of a dsmrun fleet: the fleet size is fixed at launch, and
    // message/forward counters are rank-local (this process's arrivals
    // only). Virtual time is fleet-global — causally propagated, so ranks
    // agree to within the final barrier-release hop. See EXPERIMENTS.md
    // "F1 on real sockets".
    table.note("dsmrun: counters are rank-local; virtual time is fleet-global");
  }

  const ProtocolKind kinds[] = {ProtocolKind::kIvyCentral, ProtocolKind::kIvyFixed,
                                ProtocolKind::kIvyDynamic};
  for (const std::size_t nodes : bench::scaling_nodes({2, 4, 8, 16, 32})) {
    for (const auto protocol : kinds) {
      Config cfg = bench::base_config(nodes, 16, protocol);
      bench::apply_dsmrun_env(cfg);
      System sys(cfg);
      apps::MigratoryParams params;
      params.rounds = 8;
      const auto result = apps::run_migratory(sys, params);
      const auto snap = sys.stats();
      const double handoffs = static_cast<double>(params.rounds) * static_cast<double>(nodes);
      // Barrier traffic dominates the raw count; charge only coherence types.
      const std::uint64_t coherence =
          snap.counter("net.msgs.ReadRequest") + snap.counter("net.msgs.WriteRequest") +
          snap.counter("net.msgs.ReadForward") + snap.counter("net.msgs.WriteForward") +
          snap.counter("net.msgs.ReadReply") + snap.counter("net.msgs.WriteReply") +
          snap.counter("net.msgs.Invalidate") + snap.counter("net.msgs.InvalidateAck") +
          snap.counter("net.msgs.Confirm");
      table.add_row({std::to_string(nodes), std::string(to_string(protocol)),
                     bench::fmt_ms(result.virtual_ns), bench::fmt_count(coherence),
                     bench::fmt_count(snap.counter("ivy.forwards")),
                     bench::fmt_double(static_cast<double>(coherence) / handoffs, 2)});
    }
  }
  table.print();
  return 0;
}
