// F1 — Manager algorithms: central vs fixed vs dynamic as N grows.
// Re-derives Li & Hudak's comparison: on a migratory page, the dynamic
// distributed manager's probable-owner chains (with path compression) beat
// the fixed round trip through a manager, and the central manager becomes a
// hot spot the moment many pages are in flight.
#include "apps/kernels.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  bench::Table table(
      "F1 — manager placement on a migratory counter (lock-ordered ring)",
      {"nodes", "protocol", "virt ms", "msgs", "forwards", "msgs/handoff"});
  table.note("workload: run_migratory — one counter circulates rounds x N times");
  table.note("'forwards' = probable-owner chain hops (dynamic manager only)");

  const ProtocolKind kinds[] = {ProtocolKind::kIvyCentral, ProtocolKind::kIvyFixed,
                                ProtocolKind::kIvyDynamic};
  for (const std::size_t nodes : {2u, 4u, 8u, 16u, 32u}) {
    for (const auto protocol : kinds) {
      System sys(bench::base_config(nodes, 16, protocol));
      apps::MigratoryParams params;
      params.rounds = 8;
      const auto result = apps::run_migratory(sys, params);
      const auto snap = sys.stats();
      const double handoffs = static_cast<double>(params.rounds) * static_cast<double>(nodes);
      // Barrier traffic dominates the raw count; charge only coherence types.
      const std::uint64_t coherence =
          snap.counter("net.msgs.ReadRequest") + snap.counter("net.msgs.WriteRequest") +
          snap.counter("net.msgs.ReadForward") + snap.counter("net.msgs.WriteForward") +
          snap.counter("net.msgs.ReadReply") + snap.counter("net.msgs.WriteReply") +
          snap.counter("net.msgs.Invalidate") + snap.counter("net.msgs.InvalidateAck") +
          snap.counter("net.msgs.Confirm");
      table.add_row({std::to_string(nodes), std::string(to_string(protocol)),
                     bench::fmt_ms(result.virtual_ns), bench::fmt_count(coherence),
                     bench::fmt_count(snap.counter("ivy.forwards")),
                     bench::fmt_double(static_cast<double>(coherence) / handoffs, 2)});
    }
  }
  table.print();
  return 0;
}
