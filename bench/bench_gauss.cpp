// F4 — Gaussian elimination speedup (IVY's original application). The
// broadcast-pivot-row pattern: one writer, N readers per step. Update-based
// propagation and read replication win; pure demand protocols pay a
// re-fetch per consumer per step.
#include "apps/gauss.hpp"
#include "harness.hpp"

int main() {
  using namespace dsm;

  apps::GaussParams params;
  params.n = 256;

  bench::Table table("F4 — Gaussian elimination, 256 equations: speedup vs nodes",
                     {"protocol", "nodes", "virt ms", "speedup", "read faults", "max err"});
  table.note("rows padded to page boundaries (the classic layout fix)");

  for (const auto protocol : bench::all_protocols()) {
    VirtualTime t1 = 0;
    for (const std::size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
      Config cfg = bench::base_config(nodes, 0, protocol);
      cfg.n_pages = apps::gauss_pages_needed(params, cfg.page_size);
      System sys(cfg);
      const auto result = apps::run_gauss(sys, params);
      const auto snap = sys.stats();
      if (nodes == 1) t1 = result.virtual_ns;
      table.add_row({std::string(to_string(protocol)), std::to_string(nodes),
                     bench::fmt_ms(result.virtual_ns),
                     bench::fmt_double(static_cast<double>(t1) /
                                           static_cast<double>(
                                               std::max<VirtualTime>(result.virtual_ns, 1)),
                                       2),
                     bench::fmt_count(snap.counter("proto.read_faults")),
                     bench::fmt_double(result.max_error, 12)});
    }
  }
  table.print();
  return 0;
}
