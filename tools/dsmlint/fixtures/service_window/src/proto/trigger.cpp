// dsmlint fixture: protocol code dereferencing the app view. A service
// thread running this re-enters the fault engine it must itself service.
#include <cstddef>
struct View {
  std::byte* base() const;
  std::byte* page_ptr(unsigned page) const;
};
void install_remote_page(View* view, const std::byte* data, std::size_t n) {
  std::byte* dst = view->page_ptr(0);  // VIOLATION: app view from proto code
  for (std::size_t i = 0; i < n; ++i) dst[i] = data[i];
}
