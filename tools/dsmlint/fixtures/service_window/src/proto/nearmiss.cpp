// dsmlint fixture near-miss: the same install routed through the service
// window, which is always writable and never faults.
#include <cstddef>
struct View {
  std::byte* alias_ptr(unsigned page) const;
};
void install_remote_page(View* view, const std::byte* data, std::size_t n) {
  std::byte* dst = view->alias_ptr(0);  // OK: service window
  for (std::size_t i = 0; i < n; ++i) dst[i] = data[i];
}
