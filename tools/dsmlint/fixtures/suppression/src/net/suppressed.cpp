// dsmlint fixture: a violation silenced by a justified allow comment, both
// the line-above form and the same-line form.
#include <sys/mman.h>
void special_case(void* p, unsigned long n) {
  // Fixture justification: proving the suppression syntax works.
  // dsmlint:allow(raw-mprotect)
  ::mprotect(p, n, PROT_NONE);
  ::mprotect(p, n, PROT_READ);  // dsmlint:allow(raw-mprotect)
}
