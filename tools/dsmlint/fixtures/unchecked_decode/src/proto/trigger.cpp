// dsmlint fixture: a try_* decoder's success flag dropped on the floor —
// the caller proceeds as if untrusted bytes parsed.
#include <cstddef>
#include <span>
bool try_apply_diff(std::span<std::byte> page, std::span<const std::byte> diff);
void ingest(std::span<std::byte> page, std::span<const std::byte> wire) {
  try_apply_diff(page, wire);  // VIOLATION: result discarded
}
