// dsmlint fixture near-miss: every decoder result checked.
#include <cstddef>
#include <span>
bool try_apply_diff(std::span<std::byte> page, std::span<const std::byte> diff);
bool ingest(std::span<std::byte> page, std::span<const std::byte> wire) {
  if (!try_apply_diff(page, wire)) return false;  // OK: checked
  const bool ok = try_apply_diff(page, wire);     // OK: captured
  return ok;
}
