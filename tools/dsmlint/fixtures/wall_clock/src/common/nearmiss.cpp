// dsmlint fixture near-miss: time reads through the sanctioned doorway.
// (Mentioning steady_clock in a comment is fine — the scanner reads code.)
#include <cstdint>
namespace dsm::realclock {
std::uint64_t now_ns();
}
std::uint64_t stamp_ns() {
  return dsm::realclock::now_ns();  // OK: the one doorway
}
