// dsmlint fixture: direct monotonic-clock read outside the realclock seam.
#include <chrono>
long long stamp_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())  // VIOLATION
      .count();
}
