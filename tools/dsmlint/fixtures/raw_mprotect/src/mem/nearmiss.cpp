// dsmlint fixture near-miss: the same syscall inside src/mem/, where the
// fault engines legitimately own page rights.
#include <sys/mman.h>
void engine_protect(void* p, unsigned long n) {
  ::mprotect(p, n, PROT_READ);  // OK: src/mem/ is the engine layer
}
