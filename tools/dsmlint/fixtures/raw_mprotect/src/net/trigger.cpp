// dsmlint fixture: page-rights syscall outside src/mem/ bypasses the
// FaultEngine seam (uffd regions have no mprotect rights to flip).
#include <sys/mman.h>
void quiesce_buffer(void* p, unsigned long n) {
  ::mprotect(p, n, PROT_NONE);  // VIOLATION: raw mprotect outside src/mem/
}
