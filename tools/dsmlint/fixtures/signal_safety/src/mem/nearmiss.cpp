// dsmlint fixture near-miss: the handler sticks to async-signal-safe
// operations (atomics, write(2)); the printf lives outside its call graph.
#include <csignal>
#include <cstdio>
#include <unistd.h>
namespace {
void sigsegv_handler(int, siginfo_t* info, void*) {
  const char msg[] = "fault\n";
  ::write(STDERR_FILENO, msg, sizeof msg - 1);  // OK: async-signal-safe
  (void)info;
}
}  // namespace
void report_stats(unsigned long faults) {
  std::printf("%lu faults\n", faults);  // OK: not reachable from the handler
}
void install() {
  struct sigaction sa = {};
  sa.sa_sigaction = &sigsegv_handler;
  ::sigaction(SIGSEGV, &sa, nullptr);
}
