// dsmlint fixture: allocation inside a signal handler's call graph.
#include <csignal>
#include <cstdio>
namespace {
void log_fault(void* addr) {
  std::printf("fault at %p\n", addr);  // VIOLATION: stdio in signal frame
}
void sigsegv_handler(int, siginfo_t* info, void*) {
  log_fault(info->si_addr);
}
}  // namespace
void install() {
  struct sigaction sa = {};
  sa.sa_sigaction = &sigsegv_handler;
  ::sigaction(SIGSEGV, &sa, nullptr);
}
