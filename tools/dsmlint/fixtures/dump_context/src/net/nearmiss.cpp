// dsmlint fixture near-miss: debug_dump only try_locks and skips busy state.
#include <mutex>
#include <ostream>
struct Fabric {
  mutable std::mutex mu;
  int in_flight = 0;
  void debug_dump(std::ostream& os) const {
    if (!mu.try_lock()) {  // OK: never waits
      os << "busy - skipped\n";
      return;
    }
    os << "in-flight=" << in_flight << '\n';
    mu.unlock();
  }
  void drain() {
    const std::lock_guard<std::mutex> lock(mu);  // OK: not in debug_dump
    in_flight = 0;
  }
};
