// dsmlint fixture: a blocking lock inside debug_dump(). The dump runs on
// abort paths while the lock's owner may be the wedged thread being dumped.
#include <mutex>
#include <ostream>
struct Fabric {
  mutable std::mutex mu;
  int in_flight = 0;
  void debug_dump(std::ostream& os) const {
    const std::lock_guard<std::mutex> lock(mu);  // VIOLATION: blocking lock
    os << "in-flight=" << in_flight << '\n';
  }
};
