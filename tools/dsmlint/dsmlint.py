#!/usr/bin/env python3
"""dsmlint — repo-specific static checks for tutordsm.

Each rule encodes an invariant that a general-purpose tool cannot check and
that a past bug in this repo (or a standing design contract) motivates:

  service-window   Protocol code (src/proto/) must touch page contents only
                   through the service window (alias_ptr/alias_span), never
                   the app view (base()/page_ptr/page_span). A service-thread
                   or fault-handler deref of the app view re-enters the fault
                   engine from the thread that must service the fault — the
                   uffd poller self-deadlock class.
  signal-safety    The SIGSEGV/SIGBUS handler call graph must stay
                   async-signal-safe: no allocation, stdio, or blocking
                   locks between the trap and the protocol callback.
  raw-mprotect     mprotect/madvise are the fault engines' business; outside
                   src/mem/ they bypass the FaultEngine seam and desync the
                   engine's idea of page rights from the kernel's.
  wall-clock       Real-time reads go through dsm::realclock (common/
                   clock.hpp), the single sanctioned doorway. Scattered
                   steady_clock/system_clock calls defeat clock injection
                   and mix wall time into virtual-time results.
  unchecked-decode Every try_* decoder returns a success indicator; a call
                   in statement position drops it and treats untrusted bytes
                   as parsed. Decoders are total or their callers are wrong.
  dump-context     debug_dump() runs on watchdog/abort paths while other
                   threads may be wedged holding fabric locks. It may only
                   try_lock — a blocking acquisition turns a diagnostic into
                   an ABBA deadlock (the RacyLitmus hang class). This guards
                   a contract the compiler cannot see: the dump runs behind
                   a std::function boundary, so clang's capability analysis
                   never observes the caller's held locks.

Violations print as `path:line: [dsmlint:<rule>] message` and make the exit
status non-zero. Suppress a finding with a justification comment on the same
line or the line above:  // dsmlint:allow(<rule>): <why this is safe>

Backends: the built-in textual scanner (comment/string-aware, brace-matched
function extents) needs nothing installed. When python clang bindings and a
compile_commands.json are available, --backend=libclang resolves function
extents through the real AST instead; findings and output are identical.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

RULES = (
    "service-window",
    "signal-safety",
    "raw-mprotect",
    "wall-clock",
    "unchecked-decode",
    "dump-context",
)

SOURCE_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

ALLOW_RE = re.compile(r"dsmlint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str


@dataclass
class SourceFile:
    path: str      # as given on the command line (for printing)
    relpath: str   # workspace-relative with forward slashes (for rule scoping)
    raw: list[str] = field(default_factory=list)   # original lines
    code: list[str] = field(default_factory=list)  # comments/strings blanked
    allows: dict[int, set[str]] = field(default_factory=dict)  # line -> rules


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments, string literals, and char literals with spaces,
    preserving every newline so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                # C++14 digit separator (1'000'000): a quote sandwiched
                # between alphanumerics is not a char literal.
                prev = text[i - 1] if i > 0 else ""
                if prev.isalnum() and nxt.isalnum():
                    out.append(c)
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def load_file(path: str, root: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    rel = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
    sf = SourceFile(path=path, relpath=rel)
    sf.raw = text.splitlines()
    sf.code = strip_comments_and_strings(text).splitlines()
    for idx, line in enumerate(sf.raw, start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            # A trailing allow comment covers its own line; an allow comment
            # on a line of its own covers the next line too.
            sf.allows.setdefault(idx, set()).update(rules)
            sf.allows.setdefault(idx + 1, set()).update(rules)
    return sf


def suppressed(sf: SourceFile, line: int, rule: str) -> bool:
    return rule in sf.allows.get(line, set())


# --- function extents (textual backend) -------------------------------------

FUNC_HEAD_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\($")


def function_extents(sf: SourceFile) -> dict[str, list[tuple[int, int]]]:
    """Maps function name -> [(first_line, last_line)] of each definition
    body, via brace matching on the comment-stripped text. Heuristic, but
    exact enough for the rule scopes used here (free functions and methods
    written in the repo's style)."""
    text = "\n".join(sf.code)
    extents: dict[str, list[tuple[int, int]]] = {}
    # Find "name (" ... ")" followed by optional qualifiers then "{".
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", text):
        name = m.group(1)
        if name in ("if", "for", "while", "switch", "return", "sizeof",
                    "catch", "defined", "alignof", "decltype", "static_cast",
                    "reinterpret_cast", "const_cast", "dynamic_cast"):
            continue
        # Match the parameter list's parens.
        depth = 0
        j = m.end() - 1
        while j < len(text):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= len(text):
            continue
        # Skip qualifiers between ")" and "{"; bail at ";" (declaration).
        k = j + 1
        qual = ""
        while k < len(text) and text[k] not in "{;":
            qual += text[k]
            k += 1
        if k >= len(text) or text[k] != "{":
            continue
        if re.search(r"[^\sa-zA-Z:&>_)\]]", qual.replace("override", "")
                     .replace("const", "").replace("noexcept", "")
                     .replace("final", "")):
            continue
        # Brace-match the body.
        depth = 0
        end = k
        while end < len(text):
            if text[end] == "{":
                depth += 1
            elif text[end] == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        first = text.count("\n", 0, k) + 1
        last = text.count("\n", 0, end) + 1
        extents.setdefault(name, []).append((first, last))
    return extents


def libclang_extents(sf: SourceFile, compdb_dir: str | None):
    """AST-accurate replacement for function_extents when python clang
    bindings are importable. Returns None (caller falls back) otherwise."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        args = ["-std=c++20"]
        if compdb_dir:
            try:
                db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
                cmds = db.getCompileCommands(os.path.abspath(sf.path))
                if cmds:
                    args = [a for a in list(cmds[0].arguments)[1:-1]
                            if a != "-c" and not a.endswith(sf.path)]
            except cindex.CompilationDatabaseError:
                pass
        tu = index.parse(sf.path, args=args)
    except cindex.TranslationUnitLoadError:
        return None
    extents: dict[str, list[tuple[int, int]]] = {}
    kinds = (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD)

    def walk(cursor):
        for child in cursor.get_children():
            if child.kind in kinds and child.is_definition() and \
               child.location.file and child.location.file.name == sf.path:
                extents.setdefault(child.spelling, []).append(
                    (child.extent.start.line, child.extent.end.line))
            walk(child)

    walk(tu.cursor)
    return extents


# --- rules -------------------------------------------------------------------

APP_VIEW_RE = re.compile(r"(?:->|\.)(?:base|page_ptr|page_span)\s*\(")

def rule_service_window(sf: SourceFile) -> list[Violation]:
    if not sf.relpath.startswith("src/proto/"):
        return []
    out = []
    for idx, line in enumerate(sf.code, start=1):
        if APP_VIEW_RE.search(line):
            out.append(Violation(
                sf.path, idx, "service-window",
                "app-view access in protocol code; protocol handlers run on "
                "the service thread or in the fault handler, where an "
                "app-view deref re-faults — use the service window "
                "(alias_ptr/alias_span)"))
    return out


SIGNAL_UNSAFE_RE = re.compile(
    r"\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\(|"
    r"\bnew\b|\bdelete\b|"
    r"\b(?:f|s|sn|v|vf)?printf\s*\(|\bputs\s*\(|\bfputs\s*\(|"
    r"std::cout|std::cerr|std::clog|std::string\b|std::vector\b|"
    r"\bMutexLock\b|\block_guard\b|\bunique_lock\b|"
    r"(?<![\w.])(?<!try_)lock\s*\(\)")
HANDLER_NAME_RE = re.compile(r"^sig\w*_handler$")

def rule_signal_safety(sf: SourceFile, extents) -> list[Violation]:
    handler_names = [n for n in extents if HANDLER_NAME_RE.match(n)]
    if not handler_names:
        return []
    # Transitive closure of same-file callees, so a helper the handler calls
    # is held to the same standard.
    in_scope: set[str] = set()
    work = list(handler_names)
    while work:
        name = work.pop()
        if name in in_scope:
            continue
        in_scope.add(name)
        for first, last in extents.get(name, []):
            body = "\n".join(sf.code[first - 1:last])
            for callee in re.findall(r"\b([A-Za-z_]\w*)\s*\(", body):
                if callee in extents and callee not in in_scope:
                    work.append(callee)
    out = []
    for name in in_scope:
        for first, last in extents.get(name, []):
            for idx in range(first, last + 1):
                if SIGNAL_UNSAFE_RE.search(sf.code[idx - 1]):
                    out.append(Violation(
                        sf.path, idx, "signal-safety",
                        f"async-signal-unsafe call in the {name} call graph "
                        "(allocation, stdio, and blocking locks are undefined "
                        "behaviour in a signal frame)"))
    return out


MPROTECT_RE = re.compile(r"(?:::)?\b(?:mprotect|madvise)\s*\(")

def rule_raw_mprotect(sf: SourceFile) -> list[Violation]:
    if sf.relpath.startswith("src/mem/"):
        return []
    out = []
    for idx, line in enumerate(sf.code, start=1):
        if MPROTECT_RE.search(line):
            out.append(Violation(
                sf.path, idx, "raw-mprotect",
                "raw page-rights syscall outside src/mem/ bypasses the "
                "FaultEngine seam; route through ViewRegion::protect"))
    return out


WALL_CLOCK_RE = re.compile(
    r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b|"
    r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btimespec_get\s*\(")

def rule_wall_clock(sf: SourceFile) -> list[Violation]:
    if sf.relpath == "src/common/clock.hpp":
        return []
    out = []
    for idx, line in enumerate(sf.code, start=1):
        if WALL_CLOCK_RE.search(line):
            out.append(Violation(
                sf.path, idx, "wall-clock",
                "direct wall-clock read; go through dsm::realclock "
                "(common/clock.hpp), the single sanctioned doorway"))
    return out


# A try_* call whose line starts with the call itself (no assignment, no
# return, no condition) discards the success indicator.
UNCHECKED_TRY_RE = re.compile(
    r"^\s*(?:\(\s*void\s*\)\s*)?(?:[A-Za-z_]\w*(?:::|\.|->))*(try_\w+)\s*\(")

def rule_unchecked_decode(sf: SourceFile) -> list[Violation]:
    out = []
    for idx, line in enumerate(sf.code, start=1):
        m = UNCHECKED_TRY_RE.match(line)
        if m:
            out.append(Violation(
                sf.path, idx, "unchecked-decode",
                f"result of {m.group(1)}() discarded; try_* decoders return "
                "a success indicator that every caller must check"))
    return out


BLOCKING_LOCK_RE = re.compile(
    r"\bMutexLock\b|\bRecursiveMutexLock\b|\bRelockableMutexLock\b|"
    r"\block_guard\b|\bscoped_lock\b|"
    r"(?<![\w.])(?<!try_)lock\s*\(\)|"
    r"(?:->|\.)(?<!try_)lock\s*\(\)")
UNIQUE_LOCK_RE = re.compile(r"\bunique_lock\b(?![^;\n]*try_to_lock)")

def rule_dump_context(sf: SourceFile, extents) -> list[Violation]:
    out = []
    for first, last in extents.get("debug_dump", []):
        for idx in range(first, last + 1):
            line = sf.code[idx - 1]
            if BLOCKING_LOCK_RE.search(line) or UNIQUE_LOCK_RE.search(line):
                out.append(Violation(
                    sf.path, idx, "dump-context",
                    "blocking lock acquisition inside debug_dump(); the dump "
                    "runs on abort/watchdog paths while other threads may be "
                    "wedged holding this lock — try_lock and skip instead"))
    return out


NEEDS_EXTENTS = {"signal-safety", "dump-context"}


def lint_file(sf: SourceFile, rules, backend: str,
              compdb_dir: str | None) -> list[Violation]:
    extents = None
    if NEEDS_EXTENTS & set(rules):
        if backend in ("libclang", "auto"):
            extents = libclang_extents(sf, compdb_dir)
            if extents is None and backend == "libclang":
                print("dsmlint: libclang backend unavailable "
                      "(python clang bindings not importable)", file=sys.stderr)
                sys.exit(2)
        if extents is None:
            extents = function_extents(sf)

    found: list[Violation] = []
    if "service-window" in rules:
        found += rule_service_window(sf)
    if "signal-safety" in rules:
        found += rule_signal_safety(sf, extents)
    if "raw-mprotect" in rules:
        found += rule_raw_mprotect(sf)
    if "wall-clock" in rules:
        found += rule_wall_clock(sf)
    if "unchecked-decode" in rules:
        found += rule_unchecked_decode(sf)
    if "dump-context" in rules:
        found += rule_dump_context(sf, extents)
    return [v for v in found if not suppressed(sf, v.line, v.rule)]


def gather(paths, excludes) -> list[str]:
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames[:] = [d for d in dirnames
                           if not any(os.path.abspath(os.path.join(dirpath, d))
                                      .startswith(os.path.abspath(e))
                                      for e in excludes)]
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTENSIONS):
                    files.append(os.path.join(dirpath, fn))
    return files


def main() -> int:
    ap = argparse.ArgumentParser(
        prog="dsmlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument("--root", default=".",
                    help="workspace root; rule scoping (src/proto/, src/mem/) "
                         "is computed relative to it (default: cwd)")
    ap.add_argument("--rules", default=",".join(RULES),
                    help="comma-separated rule subset (default: all)")
    ap.add_argument("--exclude", action="append", default=[],
                    help="directory to skip (repeatable)")
    ap.add_argument("--backend", choices=("text", "libclang", "auto"),
                    default="auto",
                    help="function-extent resolver: built-in textual scanner, "
                         "python clang bindings, or best available (default)")
    ap.add_argument("--compdb", default=None,
                    help="directory containing compile_commands.json "
                         "(libclang backend)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = set(rules) - set(RULES)
    if unknown:
        print(f"dsmlint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    violations: list[Violation] = []
    for path in gather(args.paths, args.exclude):
        sf = load_file(path, root)
        violations += lint_file(sf, rules, args.backend, args.compdb)

    violations.sort(key=lambda v: (v.path, v.line))
    for v in violations:
        print(f"{v.path}:{v.line}: [dsmlint:{v.rule}] {v.message}")
    if violations:
        print(f"dsmlint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
