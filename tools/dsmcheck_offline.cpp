// dsmcheck_offline: replay a Chrome-trace JSON export (from `--trace=FILE`
// on any bench, or Tracer::write_json) and re-verify the fabric's structural
// invariants from the trace alone — no live System required:
//
//   1. Well-formedness: parseable JSON, a traceEvents array, every span
//      ("ph":"X") carrying numeric ts/dur and a pid named by metadata.
//   2. Span sanity: ts >= 0 and dur >= 0 (virtual spans never run backwards).
//   3. Message lifecycle: every non-loopback "send" instant has exactly one
//      matching transit span per (group, src, dst, seq) and vice versa —
//      the fabric neither loses nor duplicates.
//   4. Per-link contiguity: the send seqs on each (src, dst) link count
//      0..n-1 with no holes.
//   5. Happens-before consistency: a matched send and its transit span carry
//      the same send timestamp, and the transit's nonnegative dur puts
//      arrival after send.
//
// Checks 3–5 need every span retained; if the export records dropped > 0
// (ring-buffer overwrite) they are skipped with a note. Exit 0 when the
// trace verifies, 1 on any violation or parse error.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace {

// --- minimal JSON parser (objects, arrays, strings, numbers, literals) ----

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    std::ostringstream os;
    os << what << " (line " << line << ")";
    error_ = os.str();
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_literal(out);
    return parse_number(out);
  }

  bool parse_literal(JsonValue& out) {
    const auto match = [&](const char* word) {
      const std::size_t len = std::char_traits<char>::length(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("invalid value");
    const std::string slice = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number = std::strtod(slice.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("invalid number");
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            pos_ += 4;  // names in our exports are ASCII; keep a placeholder
            out.push_back('?');
            break;
          }
          default: return fail("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.type = JsonValue::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue elem;
      if (!parse_value(elem)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.type = JsonValue::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      skip_ws();
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- the verifier ---------------------------------------------------------

// Loopback and control traffic carry seq = kNoSeq = 2^64-1, which survives
// the JSON round trip as a double far above any real sequence number.
constexpr double kNoSeqThreshold = 1e18;

struct Verifier {
  int violations = 0;

  void violation(const std::string& text) {
    ++violations;
    std::cerr << "[dsmcheck-offline] VIOLATION: " << text << "\n";
  }

  /// pid → (group label, node id) from the process_name metadata.
  std::map<long long, std::pair<std::string, long long>> pids;

  bool number(const JsonValue& ev, const char* key, double& out) {
    const JsonValue* v = ev.find(key);
    if (v == nullptr || v->type != JsonValue::Type::kNumber) return false;
    out = v->number;
    return true;
  }

  void register_metadata(const JsonValue& ev) {
    const JsonValue* name = ev.find("name");
    if (name == nullptr || name->string != "process_name") return;
    double pid = 0;
    if (!number(ev, "pid", pid)) {
      violation("process_name metadata without numeric pid");
      return;
    }
    const JsonValue* args = ev.find("args");
    const JsonValue* pname = args != nullptr ? args->find("name") : nullptr;
    if (pname == nullptr || pname->type != JsonValue::Type::kString) {
      violation("process_name metadata without args.name");
      return;
    }
    // "node N" or "label/node N"
    const std::string& label = pname->string;
    const std::size_t at = label.rfind("node ");
    if (at == std::string::npos) {
      violation("process name '" + label + "' does not name a node");
      return;
    }
    const long long node = std::atoll(label.c_str() + at + 5);
    const std::string group = at >= 1 ? label.substr(0, at - 1) : std::string();
    pids[static_cast<long long>(pid)] = {group, node};
  }

  int run(const JsonValue& doc) {
    const JsonValue* events = doc.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
      violation("document has no traceEvents array");
      return 1;
    }

    double dropped = 0;
    if (const JsonValue* other = doc.find("otherData"); other != nullptr) {
      number(*other, "dropped", dropped);
    }

    for (const JsonValue& ev : events->array) {
      const JsonValue* ph = ev.find("ph");
      if (ph == nullptr || ph->type != JsonValue::Type::kString) {
        violation("event without ph");
        continue;
      }
      if (ph->string == "M") register_metadata(ev);
    }

    // (group, src, dst, seq) → send timestamp / transit count.
    using LinkKey = std::tuple<std::string, long long, long long, double>;
    std::map<LinkKey, std::vector<double>> sends;
    std::map<LinkKey, std::vector<double>> delivers;
    // (group, src, dst, departure ts) → send seqs at that instant; every
    // inner message of a kBatch envelope shares the envelope's departure.
    std::map<LinkKey, std::vector<double>> sends_at;
    // (group, src, dst, departure ts, inner count) per "batch" instant.
    std::vector<std::tuple<std::string, long long, long long, double, double>> batches;
    std::size_t spans = 0;

    for (const JsonValue& ev : events->array) {
      const JsonValue* ph = ev.find("ph");
      if (ph == nullptr || ph->string != "X") continue;
      ++spans;

      const JsonValue* name = ev.find("name");
      const JsonValue* cat = ev.find("cat");
      double pid = 0;
      double ts = 0;
      double dur = 0;
      if (name == nullptr || cat == nullptr || !number(ev, "pid", pid) ||
          !number(ev, "ts", ts) || !number(ev, "dur", dur)) {
        violation("span missing name/cat/pid/ts/dur");
        continue;
      }
      const auto pid_it = pids.find(static_cast<long long>(pid));
      if (pid_it == pids.end()) {
        violation("span on pid " + std::to_string(static_cast<long long>(pid)) +
                  " with no process_name metadata");
        continue;
      }
      if (ts < 0 || dur < 0) {
        std::ostringstream os;
        os << "span '" << name->string << "' on pid "
           << static_cast<long long>(pid) << " runs backwards (ts=" << ts
           << ", dur=" << dur << ")";
        violation(os.str());
      }
      if (cat->string != "net") continue;

      const auto& [group, node] = pid_it->second;
      const JsonValue* args = ev.find("args");
      double seq = 0;
      if (name->string == "send") {
        double dst = 0;
        if (args == nullptr || args->find("dst") == nullptr ||
            !number(*args, "dst", dst) || !number(*args, "seq", seq)) {
          violation("send instant without dst/seq args");
          continue;
        }
        if (seq >= kNoSeqThreshold) continue;  // loopback/control
        if (static_cast<long long>(dst) == node) continue;
        sends[{group, node, static_cast<long long>(dst), seq}].push_back(ts);
        sends_at[{group, node, static_cast<long long>(dst), ts}].push_back(seq);
      } else if (name->string == "batch") {
        // A kBatch envelope accepted at the destination: args carry the
        // source and inner-message count; ts is the envelope's departure.
        double src = 0;
        double count = 0;
        if (args == nullptr || !number(*args, "src", src) ||
            !number(*args, "count", count)) {
          violation("batch instant without src/count args");
          continue;
        }
        batches.emplace_back(group, static_cast<long long>(src), node, ts, count);
      } else if (name->string != "retransmit") {
        // A transit span: named by message type, stamped with src + seq on
        // the destination's net track.
        double src = 0;
        if (args == nullptr || args->find("src") == nullptr ||
            !number(*args, "src", src) || !number(*args, "seq", seq)) {
          continue;  // some other net-track span; nothing to pair
        }
        if (seq >= kNoSeqThreshold) continue;
        if (static_cast<long long>(src) == node) continue;
        delivers[{group, static_cast<long long>(src), node, seq}].push_back(ts);
      }
    }

    if (spans == 0) violation("trace contains no spans");

    if (dropped > 0) {
      std::cout << "[dsmcheck-offline] note: export recorded "
                << static_cast<long long>(dropped)
                << " dropped span(s); skipping lifecycle/contiguity checks\n";
    } else {
      verify_lifecycle(sends, delivers);
      verify_batches(batches, sends_at);
    }

    std::cout << "[dsmcheck-offline] " << spans << " spans, " << sends.size()
              << " reliable messages, " << batches.size() << " batch(es), "
              << violations << " violation(s)\n";
    return violations == 0 ? 0 : 1;
  }

  /// Best-effort envelope checks: every "batch" instant must be backed by
  /// send instants on its link at the envelope's departure ts, and when the
  /// pairing is unambiguous (one batch per instant) the inner seqs must be
  /// consecutive — batching may never reorder or leave holes inside an
  /// envelope.
  template <typename BatchList, typename LinkMap>
  void verify_batches(const BatchList& batches, const LinkMap& sends_at) {
    for (const auto& [group, src, dst, ts, count] : batches) {
      std::ostringstream where;
      if (!group.empty()) where << group << " ";
      where << "link " << src << "->" << dst << " at ts " << ts;
      if (count < 2) {
        violation("batch with fewer than 2 inner messages on " + where.str());
        continue;
      }
      const auto it = sends_at.find({group, src, dst, ts});
      const double found =
          it == sends_at.end() ? 0 : static_cast<double>(it->second.size());
      if (found < count) {
        violation("batch of " + std::to_string(static_cast<long long>(count)) +
                  " on " + where.str() + " lacks matching send instants");
        continue;
      }
      if (found != count) continue;  // two envelopes share a ts
      std::vector<double> seqs = it->second;
      std::sort(seqs.begin(), seqs.end());
      for (std::size_t i = 1; i < seqs.size(); ++i) {
        if (seqs[i] != seqs[i - 1] + 1) {
          violation("batch inner seqs not contiguous on " + where.str());
          break;
        }
      }
    }
  }

  template <typename LinkMap>
  void verify_lifecycle(const LinkMap& sends, const LinkMap& delivers) {
    const auto describe = [](const typename LinkMap::key_type& key) {
      std::ostringstream os;
      const auto& [group, src, dst, seq] = key;
      if (!group.empty()) os << group << " ";
      os << "link " << src << "->" << dst << " seq "
         << static_cast<long long>(seq);
      return os.str();
    };

    for (const auto& [key, stamps] : sends) {
      if (stamps.size() > 1) {
        violation("duplicate send: " + describe(key));
      }
      const auto it = delivers.find(key);
      if (it == delivers.end()) {
        violation("lost message: " + describe(key) +
                  " was sent but never delivered");
      } else {
        if (it->second.size() > 1) {
          violation("duplicate delivery: " + describe(key));
        }
        // HB consistency: the transit span starts at the send's stamp.
        if (it->second.front() != stamps.front()) {
          std::ostringstream os;
          os << "timestamp mismatch: " << describe(key) << " sent at ts "
             << stamps.front() << " but its transit span starts at ts "
             << it->second.front();
          violation(os.str());
        }
      }
    }
    for (const auto& [key, stamps] : delivers) {
      (void)stamps;
      if (sends.find(key) == sends.end()) {
        violation("spurious delivery: " + describe(key) +
                  " was delivered but never sent");
      }
    }

    // Per-link seq contiguity: group the send keys by link and require
    // 0..n-1. Keys iterate in (group, src, dst, seq) order, so each link's
    // seqs arrive sorted.
    std::tuple<std::string, long long, long long> link{"", -1, -1};
    double expected = 0;
    for (const auto& [key, stamps] : sends) {
      (void)stamps;
      const auto& [group, src, dst, seq] = key;
      if (std::tie(group, src, dst) != link) {
        link = {group, src, dst};
        expected = 0;
      }
      if (seq != expected) {
        std::ostringstream os;
        os << "seq hole on ";
        if (!group.empty()) os << group << " ";
        os << "link " << src << "->" << dst << ": expected seq "
           << static_cast<long long>(expected) << ", saw seq "
           << static_cast<long long>(seq);
        violation(os.str());
      }
      expected = seq + 1;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: dsmcheck_offline <trace.json>\n"
              << "Re-verifies a Chrome-trace export's span pairing, per-link\n"
              << "seq contiguity, and send/transit timestamp consistency.\n";
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "[dsmcheck-offline] cannot open " << argv[1] << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  JsonValue doc;
  JsonParser parser(text);
  if (!parser.parse(doc)) {
    std::cerr << "[dsmcheck-offline] VIOLATION: malformed JSON: "
              << parser.error() << "\n";
    return 1;
  }
  Verifier verifier;
  return verifier.run(doc);
}
