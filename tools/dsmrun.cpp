// dsmrun — multi-process launcher for tutordsm programs.
//
//   dsmrun --nodes N [options] -- <program> [args...]
//
// Forks N copies of <program>, one per rank, and hands each its identity
// through the environment (DSM_TRANSPORT=udp, DSM_NODES, DSM_NODE,
// DSM_PEERS, and — in fd mode — DSM_SOCKET_FD). A program opts in with one
// call: dsm::transport_from_env(cfg.transport, &cfg.n_nodes).
//
// Rendezvous modes:
//   (default)          fd mode: dsmrun binds N ephemeral loopback UDP
//                      sockets up front and passes rank r its socket as an
//                      inherited fd. No port races, no config files, works
//                      for parallel CI jobs.
//   --base-port P      fd mode on fixed ports P..P+N-1 (reproducible
//                      endpoints for debugging with tcpdump/ss).
//   --peers a:p,b:p,…  no sockets are pre-bound; each rank binds its own
//                      entry of the list. The only mode that spans hosts.
//   --config FILE      like --peers, one host:port per line ('#' comments);
//                      --nodes defaults to the line count.
//
// Exit: 0 when every rank exits 0. On the first failing rank the remaining
// ranks get SIGTERM, then SIGKILL after a 5 s grace, and dsmrun exits with
// the failing rank's code (128+signal for signal deaths). SIGINT/SIGTERM to
// dsmrun are forwarded to all ranks.
//
// Crash policy (--on-crash): a rank that dies by *signal* (SIGKILL, SIGSEGV —
// chaos or the OOM killer) is a crash, not a failure exit.
//   teardown (default)  tear the fleet down as for a failure, but exit with
//                       the distinct code 97 so harnesses can tell "a rank
//                       crashed" from "a rank failed".
//   respawn             re-bind the rank's endpoint and re-exec it with
//                       DSM_INCARNATION bumped; the UDP transport stamps the
//                       incarnation into its wire epoch, so the respawned
//                       process rejoins while pre-crash stragglers are
//                       dropped as stale. At most 3 respawns per rank, then
//                       teardown.
//
// Deliberately standalone (no tutordsm link), like dsmcheck_offline: plain
// POSIX, so it can launch any build of any tutordsm program.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

enum class OnCrash { kTeardown, kRespawn };

/// dsmrun's own exit code for "a rank died by signal" under the default
/// teardown policy — distinct from any program exit code or 128+signal.
constexpr int kCrashExit = 97;
constexpr unsigned kMaxRespawns = 3;

struct Options {
  std::size_t nodes = 0;        // 0 = unset (default 4, or peer-list size)
  int base_port = -1;           // -1 = ephemeral
  std::vector<std::string> peers;  // explicit endpoints (self-bind mode)
  bool verbose = false;
  OnCrash on_crash = OnCrash::kTeardown;
  std::vector<char*> command;   // program + args
};

volatile sig_atomic_t g_forward_signal = 0;

void on_signal(int sig) { g_forward_signal = sig; }

[[noreturn]] void usage_error(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "dsmrun: %s\n", msg);
  std::fprintf(stderr,
               "usage: dsmrun --nodes N [--base-port P | --peers LIST | "
               "--config FILE] [--on-crash teardown|respawn] [--verbose] "
               "-- <program> [args...]\n");
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> read_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dsmrun: cannot open config '%s'\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::string> peers;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::size_t last = line.find_last_not_of(" \t\r");
    peers.push_back(line.substr(first, last - first + 1));
  }
  return peers;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) usage_error((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (arg == "--") {
      ++i;
      break;
    }
    if (arg == "--nodes" || arg == "-n") {
      opt.nodes = static_cast<std::size_t>(std::strtoul(value("--nodes").c_str(), nullptr, 10));
    } else if (arg == "--base-port") {
      opt.base_port = static_cast<int>(std::strtol(value("--base-port").c_str(), nullptr, 10));
    } else if (arg == "--peers") {
      opt.peers = split_csv(value("--peers"));
    } else if (arg == "--config") {
      opt.peers = read_config(value("--config"));
    } else if (arg == "--on-crash") {
      const std::string policy = value("--on-crash");
      if (policy == "teardown") {
        opt.on_crash = OnCrash::kTeardown;
      } else if (policy == "respawn") {
        opt.on_crash = OnCrash::kRespawn;
      } else {
        usage_error("--on-crash must be 'teardown' or 'respawn'");
      }
    } else if (arg == "--verbose" || arg == "-v") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage_error(nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error(("unknown option " + arg).c_str());
    } else {
      break;  // first non-option starts the command
    }
  }
  for (; i < argc; ++i) opt.command.push_back(argv[i]);
  if (opt.command.empty()) usage_error("no program given");
  if (!opt.peers.empty()) {
    if (opt.nodes == 0) opt.nodes = opt.peers.size();
    if (opt.nodes != opt.peers.size()) usage_error("--nodes disagrees with the peer list");
    if (opt.base_port >= 0) usage_error("--base-port and --peers are exclusive");
  }
  if (opt.nodes == 0) opt.nodes = 4;
  if (opt.nodes > 512) usage_error("--nodes is implausibly large");
  return opt;
}

/// Binds one loopback UDP socket (port 0 = ephemeral); returns the fd and
/// writes the actual "127.0.0.1:port" endpoint.
int bind_loopback(int port, std::string* endpoint) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    std::perror("dsmrun: socket");
    std::exit(1);
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "dsmrun: bind 127.0.0.1:%d: %s\n", port, std::strerror(errno));
    std::exit(1);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *endpoint = "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  return fd;
}

std::string join_csv(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  return out;
}

int port_of(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  return colon == std::string::npos
             ? -1
             : static_cast<int>(std::strtol(endpoint.c_str() + colon + 1, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_args(argc, argv);

  // fd mode unless the user supplied endpoints.
  const bool fd_mode = opt.peers.empty();
  std::vector<int> fds;
  if (fd_mode) {
    opt.peers.resize(opt.nodes);
    fds.resize(opt.nodes, -1);
    for (std::size_t r = 0; r < opt.nodes; ++r) {
      const int port = opt.base_port >= 0 ? opt.base_port + static_cast<int>(r) : 0;
      fds[r] = bind_loopback(port, &opt.peers[r]);
    }
  }
  const std::string peers_csv = join_csv(opt.peers);

  if (opt.verbose) {
    std::fprintf(stderr, "dsmrun: %zu ranks of '%s', peers %s%s\n", opt.nodes,
                 opt.command[0], peers_csv.c_str(), fd_mode ? " (fd mode)" : "");
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;  // no SA_RESTART: waitpid must wake on signals
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGALRM, &sa, nullptr);

  std::vector<pid_t> pids(opt.nodes, -1);
  std::vector<unsigned> incarnations(opt.nodes, 0);
  // Forks rank r. `fd` is its socket in fd mode (-1 otherwise); `siblings`
  // lists the other ranks' fds to close at first launch (null on respawn —
  // the parent holds no sibling sockets by then).
  auto spawn = [&](std::size_t r, int fd, const std::vector<int>* siblings) -> pid_t {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    // Child = rank r. Keep only our own socket; a sibling's inherited fd
    // would hold its port open past that sibling's death.
    if (fd_mode) {
      if (siblings != nullptr) {
        for (std::size_t s = 0; s < opt.nodes; ++s) {
          if (s != r) ::close((*siblings)[s]);
        }
      }
      ::setenv("DSM_SOCKET_FD", std::to_string(fd).c_str(), 1);
    }
    ::setenv("DSM_TRANSPORT", "udp", 1);
    ::setenv("DSM_NODES", std::to_string(opt.nodes).c_str(), 1);
    ::setenv("DSM_NODE", std::to_string(r).c_str(), 1);
    ::setenv("DSM_PEERS", peers_csv.c_str(), 1);
    // The UDP transport stamps this into its wire epoch: a respawned rank's
    // fresh incarnation is how peers tell it from its pre-crash ghost.
    ::setenv("DSM_INCARNATION", std::to_string(incarnations[r]).c_str(), 1);
    std::vector<char*> args(opt.command);
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    std::fprintf(stderr, "dsmrun: exec %s: %s\n", args[0], std::strerror(errno));
    std::_Exit(127);
  };

  for (std::size_t r = 0; r < opt.nodes; ++r) {
    const pid_t pid = spawn(r, fd_mode ? fds[r] : -1, &fds);
    if (pid < 0) {
      std::perror("dsmrun: fork");
      for (const pid_t p : pids) {
        if (p > 0) ::kill(p, SIGKILL);
      }
      return 1;
    }
    pids[r] = pid;
  }
  // Parent keeps no sockets: the children own them now.
  for (const int fd : fds) ::close(fd);

  auto signal_all = [&](int sig) {
    for (const pid_t p : pids) {
      if (p > 0) ::kill(p, sig);
    }
  };

  int first_failure = 0;
  std::size_t live = opt.nodes;
  bool terminating = false;
  while (live > 0) {
    if (const int sig = g_forward_signal; sig != 0) {
      g_forward_signal = 0;
      if (sig == SIGALRM) {
        // Grace period expired with ranks still alive: no more mercy.
        signal_all(SIGKILL);
      } else {
        signal_all(sig);
        if (!terminating) {
          terminating = true;
          ::alarm(5);
        }
      }
    }
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;  // a signal woke us; re-check above
      break;
    }
    std::size_t rank = opt.nodes;
    for (std::size_t r = 0; r < opt.nodes; ++r) {
      if (pids[r] == pid) rank = r;
    }
    if (rank == opt.nodes) continue;  // not ours
    pids[rank] = -1;
    --live;

    const bool crashed = WIFSIGNALED(status);
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (crashed) {
      code = 128 + WTERMSIG(status);
    }
    if (opt.verbose || code != 0) {
      std::fprintf(stderr, "dsmrun: rank %zu (pid %d) %s %d\n", rank,
                   static_cast<int>(pid), crashed ? "killed by signal, code" : "exited",
                   code);
    }
    if (crashed && opt.on_crash == OnCrash::kRespawn && !terminating &&
        incarnations[rank] < kMaxRespawns) {
      ++incarnations[rank];
      int fd = -1;
      if (fd_mode) {
        // The crashed process took its socket with it; re-bind the same
        // endpoint (UDP: no TIME_WAIT, SO_REUSEADDR covers the rest).
        std::string endpoint;
        fd = bind_loopback(port_of(opt.peers[rank]), &endpoint);
      }
      std::fprintf(stderr, "dsmrun: respawning rank %zu (incarnation %u/%u)\n",
                   rank, incarnations[rank], kMaxRespawns);
      const pid_t child = spawn(rank, fd, nullptr);
      if (fd >= 0) ::close(fd);
      if (child > 0) {
        pids[rank] = child;
        ++live;
        continue;
      }
      std::perror("dsmrun: fork (respawn)");
      // Fall through to teardown.
    }
    if (code != 0 && first_failure == 0) {
      first_failure = crashed ? kCrashExit : code;
      if (live > 0 && !terminating) {
        // One rank down means the fleet can only hang (its peers' requests
        // would retransmit forever): terminate, grace, then kill.
        std::fprintf(stderr, "dsmrun: terminating %zu remaining rank(s)\n", live);
        signal_all(SIGTERM);
        terminating = true;
        ::alarm(5);  // SIGALRM interrupts a wedged waitpid above
      }
    }
  }
  ::alarm(0);
  return first_failure;
}
