// Heat diffusion on a plate via red-black SOR — the PDE workload the DSM
// literature built its case on. Shows the public API driving a real solver
// and prints a per-protocol comparison of virtual makespan and traffic.
//
//   ./heat_diffusion [rows cols iterations]
#include <cstdio>
#include <cstdlib>

#include "apps/sor.hpp"
#include "core/dsm.hpp"

int main(int argc, char** argv) {
  dsm::apps::SorParams params;
  params.rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  params.cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  params.iterations = argc > 3 ? std::atoi(argv[3]) : 8;

  const double reference = dsm::apps::sor_reference_checksum(params);
  std::printf("heat diffusion: %zux%zu grid, %d sweeps, reference checksum %.6f\n",
              params.rows, params.cols, params.iterations, reference);
  std::printf("%-16s %12s %12s %12s %8s\n", "protocol", "virt ms", "messages",
              "bytes", "ok");

  const dsm::ProtocolKind protocols[] = {
      dsm::ProtocolKind::kIvyCentral,  dsm::ProtocolKind::kIvyDynamic,
      dsm::ProtocolKind::kErcInvalidate, dsm::ProtocolKind::kErcUpdate,
      dsm::ProtocolKind::kLrc,         dsm::ProtocolKind::kHlrc,
      dsm::ProtocolKind::kEc,
  };
  for (const auto protocol : protocols) {
    dsm::Config cfg;
    cfg.n_nodes = 8;
    cfg.page_size = dsm::ViewRegion::os_page_size();
    const std::size_t grid_bytes = (params.rows + 2) * (params.cols + 2) * sizeof(double);
    cfg.n_pages = 2 * (grid_bytes / cfg.page_size + 2);
    cfg.protocol = protocol;

    dsm::System sys(cfg);
    const auto result = dsm::apps::run_sor(sys, params);
    const auto snap = sys.stats();
    const bool ok = std::abs(result.checksum - reference) < 1e-6;
    std::printf("%-16s %12.3f %12llu %12llu %8s\n", dsm::to_string(protocol),
                static_cast<double>(result.virtual_ns) / 1e6,
                static_cast<unsigned long long>(snap.counter("net.msgs")),
                static_cast<unsigned long long>(snap.counter("net.bytes")),
                ok ? "yes" : "NO");
  }
  return 0;
}
