// tutordsm quickstart: the producer-consumer pattern every DSM tutorial
// opens with. Node 0 fills a shared buffer and raises a flag through a
// barrier; every other node reads the data as ordinary memory — the page
// faults, coherence messages, and data shipping all happen underneath.
//
//   ./quickstart [protocol] [--trace=FILE]
// where protocol is one of: ivy-central ivy-fixed ivy-dynamic
// erc-invalidate erc-update lrc hlrc ec (default ivy-dynamic).
// --trace=FILE records every fault, protocol leg, sync wait, and message
// as Chrome-trace JSON — open it in chrome://tracing or ui.perfetto.dev.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/dsm.hpp"

namespace {

dsm::ProtocolKind parse_protocol(const char* name) {
  using dsm::ProtocolKind;
  const std::string s = name;
  if (s == "ivy-central") return ProtocolKind::kIvyCentral;
  if (s == "ivy-fixed") return ProtocolKind::kIvyFixed;
  if (s == "ivy-dynamic") return ProtocolKind::kIvyDynamic;
  if (s == "erc-invalidate") return ProtocolKind::kErcInvalidate;
  if (s == "erc-update") return ProtocolKind::kErcUpdate;
  if (s == "lrc") return ProtocolKind::kLrc;
  if (s == "hlrc") return ProtocolKind::kHlrc;
  if (s == "ec") return ProtocolKind::kEc;
  std::fprintf(stderr, "unknown protocol '%s', using ivy-dynamic\n", name);
  return ProtocolKind::kIvyDynamic;
}

}  // namespace

int main(int argc, char** argv) {
  dsm::Config cfg;
  cfg.n_nodes = 4;
  cfg.n_pages = 32;
  cfg.page_size = dsm::ViewRegion::os_page_size();

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      cfg.trace.enabled = true;
    } else {
      cfg.protocol = parse_protocol(argv[i]);
    }
  }
  // Under `dsmrun ./quickstart`, this process becomes one rank of a
  // multi-process launch: the environment carries the transport, node
  // count, and peer endpoints.
  dsm::transport_from_env(cfg.transport, &cfg.n_nodes);

  dsm::System sys(cfg);
  constexpr std::size_t kWords = 1024;
  const auto buffer = sys.alloc_page_aligned<std::uint64_t>(kWords);

  std::printf("tutordsm quickstart: %zu nodes, protocol %s\n", cfg.n_nodes,
              dsm::to_string(cfg.protocol));

  sys.run([&](dsm::Worker& w) {
    if (sys.config().protocol == dsm::ProtocolKind::kEc) {
      w.bind_barrier(0, buffer, kWords);  // EC: annotate what the barrier guards
    }
    if (w.id() == 0) {
      std::uint64_t* data = w.get(buffer);
      for (std::size_t i = 0; i < kWords; ++i) data[i] = i * i;
      std::printf("  node 0 produced %zu words\n", kWords);
    }
    w.barrier(0);

    // Consumers: plain loads; the DSM faults in whatever pages are missing.
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kWords; ++i) sum += w.get(buffer)[i];
    std::printf("  node %u consumed: sum = %llu\n", w.id(),
                static_cast<unsigned long long>(sum));
    w.barrier(0);
  });

  const auto snap = sys.stats();
  std::printf("run complete: %llu messages, %llu bytes on the wire, "
              "%llu read faults, virtual time %.2f ms\n",
              static_cast<unsigned long long>(snap.counter("net.msgs")),
              static_cast<unsigned long long>(snap.counter("net.bytes")),
              static_cast<unsigned long long>(snap.counter("proto.read_faults")),
              static_cast<double>(sys.virtual_time()) / 1e6);

  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    sys.tracer()->write_json(os);
    std::printf("trace written to %s (chrome://tracing or ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}
