// A lock-based task farm: one producer, N-1 consumers sharing a bounded
// queue through DSM locks. Demonstrates mutual exclusion, the lock policies,
// and how protocol choice changes a synchronization-heavy workload.
//
//   ./task_farm [nodes tasks grain]
#include <cstdio>
#include <cstdlib>

#include "apps/task_queue.hpp"
#include "core/dsm.hpp"

int main(int argc, char** argv) {
  dsm::apps::TaskQueueParams params;
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
  params.n_tasks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 128;
  params.task_grain = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10'000;

  std::printf("task farm: %zu nodes (1 producer), %zu tasks, grain %llu ops\n",
              nodes, params.n_tasks,
              static_cast<unsigned long long>(params.task_grain));
  std::printf("%-16s %-12s %12s %12s %16s\n", "protocol", "lock policy", "virt ms",
              "lock msgs", "tasks/consumer");

  for (const auto protocol :
       {dsm::ProtocolKind::kIvyDynamic, dsm::ProtocolKind::kLrc,
        dsm::ProtocolKind::kHlrc, dsm::ProtocolKind::kEc}) {
    for (const auto policy :
         {dsm::LockPolicy::kCentralized, dsm::LockPolicy::kForwardChain}) {
      dsm::Config cfg;
      cfg.n_nodes = nodes;
      cfg.n_pages = 32;
      cfg.page_size = dsm::ViewRegion::os_page_size();
      cfg.protocol = protocol;
      cfg.lock_policy = policy;

      dsm::System sys(cfg);
      const auto result = dsm::apps::run_task_queue(sys, params);
      const auto snap = sys.stats();
      const auto lock_msgs = snap.counter("net.msgs.LockRequest") +
                             snap.counter("net.msgs.LockGrant") +
                             snap.counter("net.msgs.LockRelease");

      std::string spread;
      for (std::size_t n = 1; n < nodes; ++n) {
        spread += std::to_string(result.per_consumer[n]);
        if (n + 1 < nodes) spread += ",";
      }
      std::printf("%-16s %-12s %12.3f %12llu %16s%s\n", dsm::to_string(protocol),
                  policy == dsm::LockPolicy::kCentralized ? "centralized" : "chain",
                  static_cast<double>(result.virtual_ns) / 1e6,
                  static_cast<unsigned long long>(lock_msgs), spread.c_str(),
                  result.tasks_executed == params.n_tasks ? "" : "  (LOST TASKS!)");
    }
  }
  return 0;
}
