// Reader-writer locks over DSM: one publisher updates a shared quote board,
// everyone else reads it concurrently under read locks. Shows the rw-lock
// API plus how protocol choice changes a read-mostly workload (update-based
// protocols keep reader copies warm; invalidation makes every publish
// refault the audience).
//
//   ./reader_board [nodes updates]
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "core/dsm.hpp"

namespace {

constexpr std::size_t kEntries = 64;
constexpr dsm::LockId kBoardLock = 1;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::uint64_t updates = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20;

  std::printf("reader board: %zu nodes (1 publisher), %llu publishes, %zu entries\n",
              nodes, static_cast<unsigned long long>(updates), kEntries);
  std::printf("%-16s %10s %12s %14s %12s\n", "protocol", "virt ms", "msgs",
              "read faults", "consistent");

  for (const auto protocol :
       {dsm::ProtocolKind::kIvyDynamic, dsm::ProtocolKind::kErcUpdate,
        dsm::ProtocolKind::kLrc, dsm::ProtocolKind::kHlrc, dsm::ProtocolKind::kEc}) {
    dsm::Config cfg;
    cfg.n_nodes = nodes;
    cfg.n_pages = 32;
    cfg.page_size = dsm::ViewRegion::os_page_size();
    cfg.protocol = protocol;
    dsm::System sys(cfg);

    // board[0] is a version stamp; each publish rewrites the whole board so
    // that board[i] == version + i for all i — readers verify atomicity.
    const auto board = sys.alloc_page_aligned<std::uint64_t>(kEntries);
    std::atomic<std::uint64_t> inconsistent{0};
    sys.reset_clocks();

    sys.run([&](dsm::Worker& w) {
      if (sys.config().protocol == dsm::ProtocolKind::kEc) {
        w.bind(kBoardLock, board, kEntries);
      }
      if (w.id() == 0) {
        // Establish the invariant at version 0 before anyone reads — under
        // the write lock, as entry consistency demands for bound data.
        w.acquire_write(kBoardLock);
        for (std::size_t i = 0; i < kEntries; ++i) w.get(board)[i] = i;
        w.release_write(kBoardLock);
      }
      w.barrier(0);
      if (w.id() == 0) {
        for (std::uint64_t v = 1; v <= updates; ++v) {
          w.acquire_write(kBoardLock);
          for (std::size_t i = 0; i < kEntries; ++i) w.get(board)[i] = v + i;
          w.compute(kEntries * 4);
          w.release_write(kBoardLock);
          w.compute(50'000);  // publish cadence
        }
      } else {
        for (std::uint64_t r = 0; r < updates; ++r) {
          w.acquire_read(kBoardLock);
          const std::uint64_t version = w.get(board)[0];
          for (std::size_t i = 1; i < kEntries; ++i) {
            if (w.get(board)[i] != version + i) inconsistent++;
          }
          w.compute(kEntries * 2);
          w.release_read(kBoardLock);
          w.compute(20'000);  // think time
        }
      }
      w.barrier(0);
    });

    const auto snap = sys.stats();
    std::printf("%-16s %10.3f %12llu %14llu %12s\n", dsm::to_string(protocol),
                static_cast<double>(sys.virtual_time()) / 1e6,
                static_cast<unsigned long long>(snap.counter("net.msgs")),
                static_cast<unsigned long long>(snap.counter("proto.read_faults")),
                inconsistent.load() == 0 ? "yes" : "NO");
  }
  return 0;
}
