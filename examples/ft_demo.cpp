// tutordsm fault-tolerance demo: survive a crashed node and keep the data.
//
// Standalone (single process, in-process transport):
//
//   ./ft_demo
//
// runs four workers over quorum-replicated RC (replication 3), seeds a kill
// of node 1 mid-run in *virtual* time, and lets the runtime restart it. The
// surviving workers finish, no acknowledged write is lost, and the restarted
// replica resyncs from the quorum before serving again.
//
// Multi-process (real SIGKILL, real respawn):
//
//   ./dsmrun -n 4 --on-crash respawn ./ft_demo
//
// Each rank is its own process. The last rank SIGKILLs itself on its first
// incarnation; dsmrun detects the crash, re-binds its endpoint, and respawns
// it with DSM_INCARNATION bumped so the UDP epoch guard rejects pre-crash
// stragglers. The respawned rank rejoins and the fleet completes. Without
// --on-crash respawn, dsmrun tears the fleet down and exits 97.
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "core/dsm.hpp"

namespace {

unsigned incarnation_from_env() {
  const char* s = std::getenv("DSM_INCARNATION");
  return s != nullptr ? static_cast<unsigned>(std::strtoul(s, nullptr, 10)) : 0;
}

}  // namespace

int main() {
  dsm::Config cfg;
  cfg.n_nodes = 4;
  cfg.n_pages = 16;
  cfg.page_size = dsm::ViewRegion::os_page_size();
  cfg.protocol = dsm::ProtocolKind::kQrc;
  cfg.ft.enabled = true;
  cfg.ft.replication = 3;

  const bool multiprocess = dsm::transport_from_env(cfg.transport, &cfg.n_nodes);
  if (multiprocess) {
    // Under dsmrun the crash is real: the last rank kills itself once, before
    // touching shared memory, and relies on the launcher to bring it back.
    const auto victim = static_cast<dsm::NodeId>(cfg.n_nodes - 1);
    if (cfg.transport.local_node == victim && incarnation_from_env() == 0) {
      std::fprintf(stderr, "ft_demo: rank %u raising SIGKILL (incarnation 0)\n",
                   victim);
      std::raise(SIGKILL);
    }
  } else {
    // Standalone: inject the crash in virtual time instead. Node 1 dies at
    // t=1s on its own clock and is restarted by the runtime.
    cfg.ft.faults = {{/*node=*/1, /*kill_at=*/1'000'000'000, /*restart=*/true}};
  }

  dsm::System sys(cfg);
  const auto counter = sys.alloc_page_aligned<std::uint64_t>();

  std::printf("ft_demo: %zu nodes, replication %zu, %s transport\n",
              cfg.n_nodes, cfg.ft.replication, multiprocess ? "udp" : "inproc");

  sys.run([&](dsm::Worker& w) {
    w.acquire(0);
    *w.get(counter) += 1;
    w.release(0);  // acknowledged against the replica quorum
    if (!multiprocess && w.id() == 1) {
      w.compute(1'000'000'000);  // jumps past kill_at: node 1 dies here
    }
    w.barrier(0);  // settles against the live worker set
    if (w.id() == 0) {
      volatile const std::uint64_t* cell = w.get(counter);
      std::printf("  node 0 reads counter = %llu\n",
                  static_cast<unsigned long long>(*cell));
    }
    w.barrier(1);
  });

  const auto snap = sys.stats();
  std::printf(
      "run complete: kills=%llu restarts=%llu takeovers=%llu recoveries=%llu "
      "stale datagrams dropped=%llu\n",
      static_cast<unsigned long long>(snap.counter("ft.kills")),
      static_cast<unsigned long long>(snap.counter("ft.restarts")),
      static_cast<unsigned long long>(snap.counter("qrc.takeovers")),
      static_cast<unsigned long long>(snap.counter("qrc.recoveries")),
      static_cast<unsigned long long>(snap.counter("net.stale_dropped")));
  return 0;
}
