// Distributed Gaussian elimination — IVY's original showcase application.
// Solves a diagonally dominant system with rows spread cyclically across
// nodes and verifies the solution, then reports how each protocol handled
// the broadcast-pivot-row sharing pattern.
//
//   ./gauss_solver [n nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/gauss.hpp"
#include "core/dsm.hpp"

int main(int argc, char** argv) {
  dsm::apps::GaussParams params;
  params.n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t nodes = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;

  std::printf("gauss solver: %zu equations on %zu nodes\n", params.n, nodes);
  std::printf("%-16s %12s %12s %14s %12s\n", "protocol", "virt ms", "messages",
              "read faults", "max |x-1|");

  for (const auto protocol :
       {dsm::ProtocolKind::kIvyCentral, dsm::ProtocolKind::kIvyFixed,
        dsm::ProtocolKind::kIvyDynamic, dsm::ProtocolKind::kErcInvalidate,
        dsm::ProtocolKind::kErcUpdate, dsm::ProtocolKind::kLrc,
        dsm::ProtocolKind::kHlrc, dsm::ProtocolKind::kEc}) {
    dsm::Config cfg;
    cfg.n_nodes = nodes;
    cfg.page_size = dsm::ViewRegion::os_page_size();
    cfg.n_pages = dsm::apps::gauss_pages_needed(params, cfg.page_size);
    cfg.protocol = protocol;

    dsm::System sys(cfg);
    const auto result = dsm::apps::run_gauss(sys, params);
    const auto snap = sys.stats();
    std::printf("%-16s %12.3f %12llu %14llu %12.2e\n", dsm::to_string(protocol),
                static_cast<double>(result.virtual_ns) / 1e6,
                static_cast<unsigned long long>(snap.counter("net.msgs")),
                static_cast<unsigned long long>(snap.counter("proto.read_faults")),
                result.max_error);
  }
  return 0;
}
