// Distributed synchronization: queue-based locks (two policies) and a
// centralized sense-counting barrier. The SyncAgent owns the mechanics;
// consistency protocols piggyback their payloads (write notices, bound data)
// through the Protocol hooks at well-defined points:
//
//   acquire:  fill_lock_request ──request──▶ grantor: fill_lock_grant
//             ◀──grant── on_lock_granted (service thread) → app resumes
//   release:  before_release (flush/interval close), then grant or release
//   barrier:  before_barrier + fill_barrier_arrive ──▶ manager collects
//             (on_barrier_collect), then fill_barrier_release ──▶ everyone
//             runs on_barrier_release.
//
// Lock policies (compared by bench_locks, F5):
//   * kCentralized — request/grant/release all via the lock's home node;
//     the home stores the last release payload and ships it with grants.
//   * kForwardChain — the home only remembers the chain tail and forwards
//     each request to it; grants flow holder → next holder directly, and an
//     uncontended re-acquire by the last holder is free (lock caching).
#pragma once

#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "core/context.hpp"
#include "net/message.hpp"
#include "proto/protocol.hpp"

namespace dsm {

class SyncAgent {
 public:
  SyncAgent(NodeContext& ctx, Protocol& protocol);

  // --- application-thread operations --------------------------------------
  void acquire(LockId lock);
  void release(LockId lock);
  /// Reader-writer mode: any number of concurrent readers OR one writer
  /// (via the plain acquire/release above on the same lock id). Managed at
  /// the lock's home under every policy; queued writers block new readers.
  /// Grants carry the same consistency payload as write grants, so a reader
  /// sees everything the last writer released.
  void acquire_read(LockId lock);
  void release_read(LockId lock);
  /// The writer side of reader-writer mode. (Distinct from acquire():
  /// rw locks are always home-managed and never cache the token.)
  void acquire_write(LockId lock);
  void release_write(LockId lock);
  void barrier(BarrierId barrier);

  /// True for message types this agent dispatches (the runtime routes all
  /// other types to the protocol).
  static bool handles(MsgType type);

  // --- service-thread dispatch ---------------------------------------------
  void on_message(const Message& msg);

  // --- peer liveness (crash fault tolerance) -------------------------------
  /// Service thread, every node: `peer` died. The lock home (node 0 under
  /// FT) regenerates tokens the dead holder held, purges its queued
  /// requests, and re-checks barrier rounds against the shrunk live worker
  /// set. Idempotent (the detector may announce a death twice).
  void on_peer_down(NodeId peer);
  /// Service thread: `peer` rejoined the memory fabric. Its worker stays
  /// dead (restarted nodes serve pages; they do not rejoin the computation),
  /// so lock and barrier state need no changes — kept for symmetry.
  void on_peer_up(NodeId peer);
  /// Restarting node's own service thread: wipe local lock state.
  void on_self_restart();

 private:
  struct HomeLock {
    bool held = false;                        // centralized: token is out
    NodeId holder = kNoNode;                  // centralized: who holds it (FT)
    std::deque<Message> waiting;              // centralized: queued requests
    std::vector<std::byte> release_payload;   // centralized: last release's payload
    NodeId tail = kNoNode;                    // forward-chain: last requester
    // Reader-writer extension (always home-managed). A lock id is used in
    // either mutex mode or rw mode by the application, not both at once.
    std::uint32_t readers_active = 0;
    bool rw_writer_active = false;
    NodeId rw_writer = kNoNode;               // FT: current writer identity
    std::set<NodeId> rw_readers;              // FT: current reader identities
    std::deque<Message> rw_read_queue;
    std::deque<Message> rw_write_queue;
  };
  struct LocalLock {
    bool have_token = false;
    bool in_cs = false;       // between acquire() return and release() call
    bool granted = false;     // grant arrived; app thread may resume
    bool in_read_cs = false;  // between acquire_read() and release_read()
    std::optional<Message> successor;  // forwarded request awaiting our release
    // Multi-threaded nodes: at most one app thread per (node, lock) may be
    // between acquire entry and release exit at a time. The gate keeps the
    // single request/grant/token plumbing above valid with N app threads —
    // a second local acquirer waits here and then rides the normal path
    // (for forward-chain, usually the cached-token fast path). `owner_ktid`
    // distinguishes a recursive acquire by the holding thread (still a bug,
    // still aborts) from a different thread waiting its turn.
    bool busy = false;
    std::uint32_t owner_ktid = 0;
  };

  void handle_lock_request(const Message& msg);
  void handle_lock_grant(const Message& msg);
  void handle_lock_release(const Message& msg);
  /// Home-side reader-writer state machine (request modes 2/3, releases).
  void handle_rw_request(const Message& msg, LockId lock, NodeId origin, bool write,
                         std::span<const std::byte> payload);
  void handle_rw_release(LockId lock, bool write, std::span<const std::byte> payload,
                         NodeId from);
  /// Grants every queued rw request that is now admissible.
  void rw_drain_queues(LockId lock);
  void handle_barrier_arrive(const Message& msg);
  void handle_barrier_release(const Message& msg);
  /// Manager: has every live worker arrived (phase 0) / acked (phase 1)?
  /// Completes the round if so. Called on arrival and on a peer death.
  void maybe_complete_barrier(BarrierId barrier);
  void broadcast_barrier_release(BarrierId barrier, std::uint8_t phase,
                                 std::vector<std::byte> payload);

  /// ThreadId of the calling app thread for checker epochs: the current
  /// thread's attachment if it belongs to this node, else 0 (service
  /// threads and single-thread runs).
  ThreadId self_tid() const;

  /// Home-side (forward-chain): route a fresh request to the chain tail.
  void route_to_tail(const Message& msg, LockId lock, NodeId origin);
  /// Holder-side: grant the token to `origin` now.
  void send_grant(LockId lock, NodeId origin, std::span<const std::byte> request_payload);
  void send_grant_centralized(LockId lock, NodeId origin);

  NodeContext& ctx_;
  Protocol& protocol_;

  // Held across checker lock/barrier hooks (sync → checker is a real
  // nesting edge) but never across sends — grants and broadcasts are
  // composed and shipped outside the guard scopes.
  Mutex mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  CondVar cv_;
  std::vector<HomeLock> home_ GUARDED_BY(mutex_);   // by LockId; home == self
  std::vector<LocalLock> local_ GUARDED_BY(mutex_); // indexed by LockId
  std::vector<std::uint64_t> barrier_gen_
      GUARDED_BY(mutex_);                           // client: generations released
  std::vector<std::uint64_t> barrier_entered_
      GUARDED_BY(mutex_);                           // client: generations entered
  // Multi-threaded nodes: serializes this node's app threads through a
  // barrier id one rendezvous at a time. The home collapses arrivals into a
  // per-round identity set, so two concurrent arrivals from one node would
  // merge into a single round and strand the second thread; gating turns
  // them into sequential rounds instead (every node must then enter the
  // barrier the same total number of times, the usual SPMD contract).
  std::vector<bool> barrier_busy_ GUARDED_BY(mutex_);
  // Manager-side rendezvous state, per barrier id. Identity sets instead of
  // counters so a round can settle against the *live* worker set when a
  // participant dies mid-round (a dead arrival must not stand in for a live
  // worker that has yet to arrive).
  std::vector<std::set<NodeId>> barrier_arrived_
      GUARDED_BY(mutex_);                           // manager: arrivals this round
  std::vector<std::set<NodeId>> barrier_acked_
      GUARDED_BY(mutex_);                           // manager: settlement acks
};

}  // namespace dsm
