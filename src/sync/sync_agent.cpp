#include "sync/sync_agent.hpp"

#include "check/checker.hpp"
#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/thread_attach.hpp"

namespace dsm {
namespace {

// Payload layouts:
//   kLockRequest   : u32 lock | u32 origin | u8 mode | bytes protocol payload
//                    mode: 0 = mutex fresh, 1 = mutex forwarded,
//                          2 = rw read, 3 = rw write
//   kLockGrant     : u32 lock | bytes protocol payload
//   kLockRelease   : u32 lock | u8 mode | bytes protocol payload
//                    mode: 0 = mutex (centralized), 2 = rw read, 3 = rw write
//   kBarrierArrive : u32 barrier | u8 phase | bytes protocol payload
//   kBarrierRelease: u32 barrier | u8 phase | bytes protocol payload

constexpr std::uint8_t kModeMutex = 0;
constexpr std::uint8_t kModeForwarded = 1;
constexpr std::uint8_t kModeRead = 2;
constexpr std::uint8_t kModeWrite = 3;

struct LockReq {
  LockId lock;
  NodeId origin;
  std::uint8_t mode;
  std::span<const std::byte> payload;
};

LockReq parse_lock_request(const Message& msg) {
  WireReader r(msg.payload);
  LockReq req;
  req.lock = r.get<LockId>();
  req.origin = r.get<NodeId>();
  req.mode = r.get<std::uint8_t>();
  req.payload = r.get_bytes();
  DSM_CHECK(r.done());
  return req;
}

}  // namespace

SyncAgent::SyncAgent(NodeContext& ctx, Protocol& protocol)
    : ctx_(ctx),
      protocol_(protocol),
      home_(ctx.cfg->n_locks),
      local_(ctx.cfg->n_locks),
      barrier_gen_(ctx.cfg->n_barriers, 0),
      barrier_entered_(ctx.cfg->n_barriers, 0),
      barrier_busy_(ctx.cfg->n_barriers, false),
      barrier_arrived_(ctx.cfg->n_barriers),
      barrier_acked_(ctx.cfg->n_barriers) {
  // Forward-chain: the token (and the chain tail) starts at each lock's home.
  for (LockId l = 0; l < ctx_.cfg->n_locks; ++l) {
    home_[l].tail = ctx_.lock_home(l);
    if (ctx_.lock_home(l) == ctx_.id) local_[l].have_token = true;
  }
}

bool SyncAgent::handles(MsgType type) {
  switch (type) {
    case MsgType::kLockRequest:
    case MsgType::kLockGrant:
    case MsgType::kLockRelease:
    case MsgType::kBarrierArrive:
    case MsgType::kBarrierRelease: return true;
    default: return false;
  }
}

ThreadId SyncAgent::self_tid() const {
  const ThreadAttachment* att = current_attachment();
  return att != nullptr && att->node == ctx_.id ? att->tid : 0;
}

void SyncAgent::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kLockRequest: handle_lock_request(msg); return;
    case MsgType::kLockGrant: handle_lock_grant(msg); return;
    case MsgType::kLockRelease: handle_lock_release(msg); return;
    case MsgType::kBarrierArrive: handle_barrier_arrive(msg); return;
    case MsgType::kBarrierRelease: handle_barrier_release(msg); return;
    default: DSM_CHECK_MSG(false, "sync: unexpected message " << to_string(msg.type));
  }
}

// --------------------------------------------------------------------------
// Locks: application-thread side
// --------------------------------------------------------------------------

void SyncAgent::acquire(LockId lock) {
  DSM_CHECK_MSG(lock < local_.size(), "lock id " << lock << " out of range");
  ctx_.stats->counter("sync.lock_acquires").add();
  {
    RelockableMutexLock guard(mutex_);
    auto& L = local_[lock];
    DSM_CHECK_MSG(!(L.busy && L.owner_ktid == current_ktid()),
                  "recursive acquire of lock " << lock);
    // Another app thread of this node is between acquire and release: wait
    // for it — the request/grant plumbing carries one transaction per
    // (node, lock) at a time.
    while (L.busy) cv_.wait(mutex_);
    L.busy = true;
    L.owner_ktid = current_ktid();
    if (ctx_.cfg->lock_policy == LockPolicy::kForwardChain && L.have_token) {
      // Lock caching: we were the last holder and nobody asked since.
      DSM_CHECK(!L.successor.has_value());
      L.in_cs = true;
      ctx_.stats->counter("sync.local_acquires").add();
      if (ctx_.check != nullptr) {
        ctx_.check->on_lock_acquired(ctx_.id, self_tid(), lock,
                                     DsmChecker::LockMode::kMutex);
      }
      return;
    }
  }

  const VirtualTime t0 = ctx_.clock->now();
  // Slow path only: cached re-acquires above never wait, so the span set
  // measures genuine handoff latency (bench_locks reads these).
  const TraceScope span(ctx_.trace, ctx_.id, TraceCat::kSync, "lock-acquire",
                        ctx_.clock, "lock", lock);
  WireWriter req(32);
  protocol_.fill_lock_request(lock, req);
  WireWriter w(req.size() + 16);
  w.put(lock);
  w.put(ctx_.id);
  w.put(kModeMutex);
  w.put_bytes(std::move(req).take());
  ctx_.send(MsgType::kLockRequest, ctx_.lock_home(lock), std::move(w).take());

  RelockableMutexLock guard(mutex_);
  auto& L = local_[lock];
  while (!L.granted) cv_.wait(mutex_);
  L.granted = false;
  L.have_token = true;
  L.in_cs = true;
  if (ctx_.check != nullptr) {
    ctx_.check->on_lock_acquired(ctx_.id, self_tid(), lock,
                                 DsmChecker::LockMode::kMutex);
  }
  ctx_.stats->histogram("sync.lock_wait_ns").record(ctx_.clock->now() - t0);
}

void SyncAgent::release(LockId lock) {
  DSM_CHECK_MSG(lock < local_.size(), "lock id " << lock << " out of range");
  const TraceScope span(ctx_.trace, ctx_.id, TraceCat::kSync, "lock-release",
                        ctx_.clock, "lock", lock);
  // Consistency actions must complete before anyone else can hold the lock.
  protocol_.before_release(lock);
  // Hook after the consistency flush but before any grant can be sent: the
  // checker's release edge must precede the next acquirer's acquire edge.
  if (ctx_.check != nullptr) {
    ctx_.check->on_lock_released(ctx_.id, self_tid(), lock,
                                 DsmChecker::LockMode::kMutex);
  }

  if (ctx_.cfg->lock_policy == LockPolicy::kForwardChain) {
    std::optional<Message> successor;
    {
      const MutexLock guard(mutex_);
      auto& L = local_[lock];
      DSM_CHECK_MSG(L.in_cs, "release of lock " << lock << " not held");
      L.in_cs = false;
      L.busy = false;
      L.owner_ktid = 0;
      if (L.successor.has_value()) {
        successor = std::move(L.successor);
        L.successor.reset();
        L.have_token = false;
      }
      // else: keep the token; a later request will be forwarded to us.
    }
    cv_.notify_all();
    if (successor.has_value()) {
      const auto req = parse_lock_request(*successor);
      send_grant(lock, req.origin, req.payload);
    }
    return;
  }

  // Centralized: hand the token (and the release payload) back to the home.
  {
    const MutexLock guard(mutex_);
    auto& L = local_[lock];
    DSM_CHECK_MSG(L.in_cs, "release of lock " << lock << " not held");
    L.in_cs = false;
    L.have_token = false;
    L.busy = false;
    L.owner_ktid = 0;
  }
  cv_.notify_all();
  WireWriter payload(64);
  protocol_.fill_lock_grant(lock, kNoNode, {}, payload);
  WireWriter w(payload.size() + 16);
  w.put(lock);
  w.put(kModeMutex);
  w.put_bytes(std::move(payload).take());
  ctx_.send(MsgType::kLockRelease, ctx_.lock_home(lock), std::move(w).take());
}

// --------------------------------------------------------------------------
// Reader-writer locks (always home-managed; no token caching)
// --------------------------------------------------------------------------

void SyncAgent::acquire_read(LockId lock) {
  DSM_CHECK_MSG(lock < local_.size(), "lock id " << lock << " out of range");
  ctx_.stats->counter("sync.rw_read_acquires").add();
  const VirtualTime t0 = ctx_.clock->now();
  const TraceScope span(ctx_.trace, ctx_.id, TraceCat::kSync, "rw-acquire-read",
                        ctx_.clock, "lock", lock);
  {
    RelockableMutexLock guard(mutex_);
    auto& L = local_[lock];
    DSM_CHECK_MSG(!(L.busy && L.owner_ktid == current_ktid()),
                  "rw lock " << lock << " already held here");
    while (L.busy) cv_.wait(mutex_);
    L.busy = true;
    L.owner_ktid = current_ktid();
  }
  WireWriter req(32);
  protocol_.fill_lock_request(lock, req);
  WireWriter w(req.size() + 16);
  w.put(lock);
  w.put(ctx_.id);
  w.put(kModeRead);
  w.put_bytes(std::move(req).take());
  ctx_.send(MsgType::kLockRequest, ctx_.lock_home(lock), std::move(w).take());

  RelockableMutexLock guard(mutex_);
  auto& L = local_[lock];
  while (!L.granted) cv_.wait(mutex_);
  L.granted = false;
  L.in_read_cs = true;
  if (ctx_.check != nullptr) {
    ctx_.check->on_lock_acquired(ctx_.id, self_tid(), lock,
                                 DsmChecker::LockMode::kRead);
  }
  ctx_.stats->histogram("sync.lock_wait_ns").record(ctx_.clock->now() - t0);
}

void SyncAgent::release_read(LockId lock) {
  // Conservative: a reader may have written *other* data; flush it so this
  // release is a proper release for the consistency protocol too.
  protocol_.before_release(lock);
  if (ctx_.check != nullptr) {
    ctx_.check->on_lock_released(ctx_.id, self_tid(), lock,
                                 DsmChecker::LockMode::kRead);
  }
  {
    const MutexLock guard(mutex_);
    auto& L = local_[lock];
    DSM_CHECK_MSG(L.in_read_cs, "release_read of lock " << lock << " not read-held");
    L.in_read_cs = false;
    L.busy = false;
    L.owner_ktid = 0;
  }
  cv_.notify_all();
  WireWriter payload(64);
  protocol_.fill_lock_grant(lock, kNoNode, {}, payload);
  WireWriter w(payload.size() + 16);
  w.put(lock);
  w.put(kModeRead);
  w.put_bytes(std::move(payload).take());
  ctx_.send(MsgType::kLockRelease, ctx_.lock_home(lock), std::move(w).take());
}

void SyncAgent::acquire_write(LockId lock) {
  DSM_CHECK_MSG(lock < local_.size(), "lock id " << lock << " out of range");
  ctx_.stats->counter("sync.rw_write_acquires").add();
  const VirtualTime t0 = ctx_.clock->now();
  const TraceScope span(ctx_.trace, ctx_.id, TraceCat::kSync, "rw-acquire-write",
                        ctx_.clock, "lock", lock);
  {
    RelockableMutexLock guard(mutex_);
    auto& L = local_[lock];
    DSM_CHECK_MSG(!(L.busy && L.owner_ktid == current_ktid()),
                  "rw lock " << lock << " already held here");
    while (L.busy) cv_.wait(mutex_);
    L.busy = true;
    L.owner_ktid = current_ktid();
  }
  WireWriter req(32);
  protocol_.fill_lock_request(lock, req);
  WireWriter w(req.size() + 16);
  w.put(lock);
  w.put(ctx_.id);
  w.put(kModeWrite);
  w.put_bytes(std::move(req).take());
  ctx_.send(MsgType::kLockRequest, ctx_.lock_home(lock), std::move(w).take());

  RelockableMutexLock guard(mutex_);
  auto& L = local_[lock];
  while (!L.granted) cv_.wait(mutex_);
  L.granted = false;
  L.in_cs = true;
  if (ctx_.check != nullptr) {
    ctx_.check->on_lock_acquired(ctx_.id, self_tid(), lock,
                                 DsmChecker::LockMode::kWrite);
  }
  ctx_.stats->histogram("sync.lock_wait_ns").record(ctx_.clock->now() - t0);
}

void SyncAgent::release_write(LockId lock) {
  protocol_.before_release(lock);
  if (ctx_.check != nullptr) {
    ctx_.check->on_lock_released(ctx_.id, self_tid(), lock,
                                 DsmChecker::LockMode::kWrite);
  }
  {
    const MutexLock guard(mutex_);
    auto& L = local_[lock];
    DSM_CHECK_MSG(L.in_cs, "release_write of lock " << lock << " not write-held");
    L.in_cs = false;
    L.busy = false;
    L.owner_ktid = 0;
  }
  cv_.notify_all();
  WireWriter payload(64);
  protocol_.fill_lock_grant(lock, kNoNode, {}, payload);
  WireWriter w(payload.size() + 16);
  w.put(lock);
  w.put(kModeWrite);
  w.put_bytes(std::move(payload).take());
  ctx_.send(MsgType::kLockRelease, ctx_.lock_home(lock), std::move(w).take());
}

void SyncAgent::handle_rw_request(const Message& msg, LockId lock, NodeId origin,
                                  bool write, std::span<const std::byte> /*payload*/) {
  DSM_CHECK(ctx_.lock_home(lock) == ctx_.id);
  bool grant_now = false;
  {
    const MutexLock guard(mutex_);
    auto& H = home_[lock];
    if (write) {
      if (H.rw_writer_active || H.readers_active > 0) {
        H.rw_write_queue.push_back(msg);
        ctx_.stats->counter("sync.lock_queued").add();
      } else {
        H.rw_writer_active = true;
        grant_now = true;
      }
    } else {
      // Queued writers block new readers (no writer starvation).
      if (H.rw_writer_active || !H.rw_write_queue.empty()) {
        H.rw_read_queue.push_back(msg);
        ctx_.stats->counter("sync.lock_queued").add();
      } else {
        ++H.readers_active;
        H.rw_readers.insert(origin);
        grant_now = true;
      }
    }
    if (grant_now && write) H.rw_writer = origin;
  }
  if (grant_now) send_grant_centralized(lock, origin);
}

void SyncAgent::handle_rw_release(LockId lock, bool write,
                                  std::span<const std::byte> payload, NodeId from) {
  {
    const MutexLock guard(mutex_);
    auto& H = home_[lock];
    // FT: stale release from a dead node whose grant was already regenerated.
    if (ctx_.cfg->ft.enabled &&
        (write ? H.rw_writer != from : H.rw_readers.find(from) == H.rw_readers.end())) {
      return;
    }
    // Knowledge dumps only grow between GCs, so the latest release payload
    // (reader or writer) always covers every prior one.
    H.release_payload.assign(payload.begin(), payload.end());
    if (write) {
      DSM_CHECK(H.rw_writer_active);
      H.rw_writer_active = false;
      H.rw_writer = kNoNode;
    } else {
      DSM_CHECK(H.readers_active > 0);
      --H.readers_active;
      H.rw_readers.erase(from);
    }
  }
  rw_drain_queues(lock);
}

void SyncAgent::rw_drain_queues(LockId lock) {
  // Writer preference: a queued writer goes next once readers drain;
  // otherwise admit every queued reader at once.
  std::vector<Message> grants;
  bool write_grant = false;
  {
    const MutexLock guard(mutex_);
    auto& H = home_[lock];
    if (H.rw_writer_active) return;
    if (!H.rw_write_queue.empty()) {
      if (H.readers_active > 0) return;  // writer waits for readers to drain
      grants.push_back(std::move(H.rw_write_queue.front()));
      H.rw_write_queue.pop_front();
      H.rw_writer_active = true;
      write_grant = true;
    } else {
      while (!H.rw_read_queue.empty()) {
        grants.push_back(std::move(H.rw_read_queue.front()));
        H.rw_read_queue.pop_front();
        ++H.readers_active;
      }
    }
  }
  for (const auto& g : grants) {
    const auto req = parse_lock_request(g);
    {
      const MutexLock guard(mutex_);
      auto& H = home_[lock];
      if (write_grant) H.rw_writer = req.origin;
      else H.rw_readers.insert(req.origin);
    }
    send_grant_centralized(lock, req.origin);
  }
}

// --------------------------------------------------------------------------
// Locks: service-thread side
// --------------------------------------------------------------------------

void SyncAgent::handle_lock_request(const Message& msg) {
  const auto req = parse_lock_request(msg);

  // FT: a request from an already-dead worker (its kPeerDown overtook the
  // request) must not be granted — the grant would be dead-dropped and the
  // token would be lost with no second regeneration coming.
  if (ctx_.cfg->ft.enabled && !ctx_.net->liveness().worker_live(req.origin)) return;

  if (req.mode == kModeRead || req.mode == kModeWrite) {
    handle_rw_request(msg, req.lock, req.origin, req.mode == kModeWrite, req.payload);
    return;
  }

  if (ctx_.cfg->lock_policy == LockPolicy::kCentralized) {
    DSM_CHECK(ctx_.lock_home(req.lock) == ctx_.id);
    bool grant_now = false;
    {
      const MutexLock guard(mutex_);
      auto& H = home_[req.lock];
      if (H.held) {
        H.waiting.push_back(msg);
        ctx_.stats->counter("sync.lock_queued").add();
      } else {
        H.held = true;
        H.holder = req.origin;
        grant_now = true;
      }
    }
    if (grant_now) send_grant_centralized(req.lock, req.origin);
    return;
  }

  // Forward-chain.
  if (req.mode != kModeForwarded) {
    DSM_CHECK(ctx_.lock_home(req.lock) == ctx_.id);
    route_to_tail(msg, req.lock, req.origin);
    return;
  }

  // Holder side: we are (or are about to become) the previous holder.
  bool grant_now = false;
  {
    const MutexLock guard(mutex_);
    auto& L = local_[req.lock];
    if (L.have_token && !L.in_cs) {
      L.have_token = false;
      grant_now = true;
    } else {
      DSM_CHECK_MSG(!L.successor.has_value(),
                    "two successors for lock " << req.lock << " at node " << ctx_.id);
      L.successor = msg;
    }
  }
  if (grant_now) send_grant(req.lock, req.origin, req.payload);
}

void SyncAgent::route_to_tail(const Message& msg, LockId lock, NodeId origin) {
  NodeId previous_tail;
  {
    const MutexLock guard(mutex_);
    auto& H = home_[lock];
    previous_tail = H.tail;
    H.tail = origin;
  }
  DSM_CHECK_MSG(previous_tail != origin,
                "lock " << lock << ": chain tail re-requesting without token");
  // Re-encode with the forwarded flag set; the protocol payload rides along.
  WireReader r(msg.payload);
  r.get<LockId>();
  r.get<NodeId>();
  r.get<std::uint8_t>();
  const auto payload = r.get_bytes();
  WireWriter w(payload.size() + 16);
  w.put(lock);
  w.put(origin);
  w.put(kModeForwarded);
  w.put_bytes(payload);
  ctx_.send(MsgType::kLockRequest, previous_tail, std::move(w).take());
}

void SyncAgent::send_grant(LockId lock, NodeId origin,
                           std::span<const std::byte> request_payload) {
  WireWriter payload(64);
  protocol_.fill_lock_grant(lock, origin, request_payload, payload);
  WireWriter w(payload.size() + 8);
  w.put(lock);
  w.put_bytes(std::move(payload).take());
  ctx_.send(MsgType::kLockGrant, origin, std::move(w).take());
}

void SyncAgent::send_grant_centralized(LockId lock, NodeId origin) {
  std::vector<std::byte> stored;
  {
    const MutexLock guard(mutex_);
    stored = home_[lock].release_payload;
  }
  WireWriter w(stored.size() + 8);
  w.put(lock);
  w.put_bytes(stored);
  ctx_.send(MsgType::kLockGrant, origin, std::move(w).take());
}

void SyncAgent::handle_lock_grant(const Message& msg) {
  WireReader r(msg.payload);
  const auto lock = r.get<LockId>();
  auto payload = r.get_bytes();
  WireReader payload_reader(payload);
  protocol_.on_lock_granted(lock, payload_reader);
  {
    const MutexLock guard(mutex_);
    local_[lock].granted = true;
  }
  cv_.notify_all();
}

void SyncAgent::handle_lock_release(const Message& msg) {
  WireReader r(msg.payload);
  const auto lock = r.get<LockId>();
  const auto mode = r.get<std::uint8_t>();
  const auto payload = r.get_bytes();
  DSM_CHECK(ctx_.lock_home(lock) == ctx_.id);

  if (mode == kModeRead || mode == kModeWrite) {
    handle_rw_release(lock, mode == kModeWrite, payload, msg.src);
    return;
  }
  DSM_CHECK(ctx_.cfg->lock_policy == LockPolicy::kCentralized);

  std::optional<Message> next;
  {
    const MutexLock guard(mutex_);
    auto& H = home_[lock];
    // FT: the holder died and its kPeerDown overtook this release in our
    // mailbox — the token was already regenerated, so the release is stale.
    if (ctx_.cfg->ft.enabled && (!H.held || H.holder != msg.src)) return;
    DSM_CHECK(H.held);
    H.release_payload.assign(payload.begin(), payload.end());
    if (H.waiting.empty()) {
      H.held = false;
      H.holder = kNoNode;
    } else {
      next = std::move(H.waiting.front());
      H.waiting.pop_front();
    }
  }
  if (next.has_value()) {
    const auto req = parse_lock_request(*next);
    {
      const MutexLock guard(mutex_);
      home_[lock].holder = req.origin;
    }
    send_grant_centralized(lock, req.origin);
  }
}

// --------------------------------------------------------------------------
// Barriers
// --------------------------------------------------------------------------

void SyncAgent::barrier(BarrierId barrier) {
  DSM_CHECK_MSG(barrier < barrier_gen_.size(), "barrier id " << barrier << " out of range");
  ctx_.stats->counter("sync.barriers").add();
  const VirtualTime t0 = ctx_.clock->now();
  const TraceScope span(ctx_.trace, ctx_.id, TraceCat::kSync, "barrier-wait",
                        ctx_.clock, "barrier", barrier);

  // Multi-threaded nodes: one app thread per node in the rendezvous at a
  // time (see barrier_busy_).
  {
    RelockableMutexLock gate(mutex_);
    while (barrier_busy_[barrier]) cv_.wait(mutex_);
    barrier_busy_[barrier] = true;
  }

  protocol_.before_barrier(barrier);
  WireWriter payload(64);
  protocol_.fill_barrier_arrive(barrier, payload);
  WireWriter w(payload.size() + 8);
  w.put(barrier);
  w.put(std::uint8_t{0});  // phase 0: arrive
  w.put_bytes(std::move(payload).take());

  std::uint64_t target;
  {
    const MutexLock guard(mutex_);
    target = ++barrier_entered_[barrier];
  }
  // Arrive hook strictly before the arrive message: the home releases only
  // after all N arrivals, so every arrive hook precedes every depart hook
  // for this round — the checker's accumulator is complete by departure.
  if (ctx_.check != nullptr) {
    ctx_.check->on_barrier_arrive(ctx_.id, self_tid(), barrier);
  }
  ctx_.send(MsgType::kBarrierArrive, ctx_.barrier_home(barrier), std::move(w).take());

  {
    RelockableMutexLock guard(mutex_);
    while (barrier_gen_[barrier] < target) cv_.wait(mutex_);
    if (ctx_.check != nullptr) {
      ctx_.check->on_barrier_depart(ctx_.id, self_tid(), barrier);
    }
    barrier_busy_[barrier] = false;
  }
  cv_.notify_all();
  ctx_.stats->histogram("sync.barrier_wait_ns").record(ctx_.clock->now() - t0);
}

void SyncAgent::handle_barrier_arrive(const Message& msg) {
  WireReader r(msg.payload);
  const auto barrier = r.get<BarrierId>();
  const auto phase = r.get<std::uint8_t>();
  const auto payload = r.get_bytes();
  DSM_CHECK(ctx_.barrier_home(barrier) == ctx_.id);

  if (phase == 1) {
    // Settlement ack (two-phase barrier): everyone applied the release.
    const MutexLock guard(mutex_);
    barrier_acked_[barrier].insert(msg.src);
  } else {
    WireReader payload_reader(payload);
    protocol_.on_barrier_collect(barrier, msg.src, payload_reader);
    const MutexLock guard(mutex_);
    barrier_arrived_[barrier].insert(msg.src);
  }
  maybe_complete_barrier(barrier);
}

void SyncAgent::maybe_complete_barrier(BarrierId barrier) {
  // A round completes when every *live* worker has arrived (or acked, for
  // the settlement phase). Without faults the live worker set is all N
  // nodes, so this degenerates to the classic full-count rendezvous. The
  // empty-set guard keeps an idle round (nothing arrived yet) from
  // completing spuriously when a death shrinks the target.
  const auto& live = ctx_.net->liveness();
  const auto covers = [&](const std::set<NodeId>& arrived) {
    if (arrived.empty()) return false;
    for (std::size_t n = 0; n < ctx_.n_nodes; ++n) {
      const auto node = static_cast<NodeId>(n);
      if (live.worker_live(node) && arrived.count(node) == 0) return false;
    }
    return true;
  };
  bool arrive_complete = false;
  bool ack_complete = false;
  {
    const MutexLock guard(mutex_);
    if (covers(barrier_arrived_[barrier])) {
      barrier_arrived_[barrier].clear();
      arrive_complete = true;
    }
    if (covers(barrier_acked_[barrier])) {
      barrier_acked_[barrier].clear();
      ack_complete = true;
    }
  }
  if (arrive_complete) {
    WireWriter release(64);
    protocol_.fill_barrier_release(barrier, release);
    broadcast_barrier_release(barrier, 0, std::move(release).take());
  }
  if (ack_complete) broadcast_barrier_release(barrier, 1, {});
}

void SyncAgent::broadcast_barrier_release(BarrierId barrier, std::uint8_t phase,
                                          std::vector<std::byte> payload) {
  WireWriter w(payload.size() + 16);
  w.put(barrier);
  w.put(phase);
  w.put_bytes(payload);
  const Message prototype =
      ctx_.make(MsgType::kBarrierRelease, kNoNode, std::move(w).take());
  std::vector<NodeId> everyone(ctx_.n_nodes);
  for (std::size_t n = 0; n < ctx_.n_nodes; ++n) everyone[n] = static_cast<NodeId>(n);
  ctx_.net->multicast(everyone, prototype);
}

void SyncAgent::handle_barrier_release(const Message& msg) {
  WireReader r(msg.payload);
  const auto barrier = r.get<BarrierId>();
  const auto phase = r.get<std::uint8_t>();
  const auto payload = r.get_bytes();

  if (phase == 0) {
    WireReader payload_reader(payload);
    protocol_.on_barrier_release(barrier, payload_reader);
    if (protocol_.barrier_needs_settlement()) {
      // Two-phase: ack, and only resume on the phase-1 broadcast, so no
      // node can observe a peer that has not yet applied the release.
      WireWriter w(16);
      w.put(barrier);
      w.put(std::uint8_t{1});
      w.put_bytes({});
      ctx_.send(MsgType::kBarrierArrive, ctx_.barrier_home(barrier), std::move(w).take());
      return;
    }
  }
  {
    const MutexLock guard(mutex_);
    ++barrier_gen_[barrier];
  }
  cv_.notify_all();
}

// --------------------------------------------------------------------------
// Crash fault tolerance
// --------------------------------------------------------------------------

void SyncAgent::on_peer_down(NodeId peer) {
  // Lock state lives at each lock's home (node 0 under FT, which is never a
  // kill victim), so only the home acts here. Re-running after a duplicate
  // death announcement is safe: the holder fields were already cleared.
  const auto purge = [&](std::deque<Message>& q) {
    for (auto it = q.begin(); it != q.end();) {
      if (parse_lock_request(*it).origin == peer) {
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  };
  for (LockId l = 0; l < ctx_.cfg->n_locks; ++l) {
    if (ctx_.lock_home(l) != ctx_.id) continue;
    std::optional<Message> next;
    bool drain_rw = false;
    {
      const MutexLock guard(mutex_);
      auto& H = home_[l];
      purge(H.waiting);
      purge(H.rw_read_queue);
      purge(H.rw_write_queue);
      if (H.held && H.holder == peer) {
        // The holder died inside its critical section: mint a replacement
        // token, exactly once (the checker audits the exactly-once part).
        ctx_.stats->counter("ft.token_regens").add();
        if (ctx_.check != nullptr) ctx_.check->on_token_regenerated(l, peer);
        H.holder = kNoNode;
        if (H.waiting.empty()) {
          H.held = false;
        } else {
          next = std::move(H.waiting.front());
          H.waiting.pop_front();
        }
      }
      if (H.rw_writer_active && H.rw_writer == peer) {
        ctx_.stats->counter("ft.token_regens").add();
        if (ctx_.check != nullptr) ctx_.check->on_token_regenerated(l, peer);
        H.rw_writer_active = false;
        H.rw_writer = kNoNode;
        drain_rw = true;
      }
      if (H.rw_readers.erase(peer) > 0) {
        DSM_CHECK(H.readers_active > 0);
        --H.readers_active;
        ctx_.stats->counter("ft.token_regens").add();
        if (ctx_.check != nullptr) ctx_.check->on_token_regenerated(l, peer);
        drain_rw = true;
      }
    }
    if (next.has_value()) {
      const auto req = parse_lock_request(*next);
      {
        const MutexLock guard(mutex_);
        home_[l].holder = req.origin;
      }
      send_grant_centralized(l, req.origin);
    }
    if (drain_rw) rw_drain_queues(l);
  }
  // A dead worker shrinks the rendezvous: a round it never arrived at may
  // now be complete with the arrivals already collected.
  for (BarrierId b = 0; b < ctx_.cfg->n_barriers; ++b) {
    if (ctx_.barrier_home(b) == ctx_.id) maybe_complete_barrier(b);
  }
}

void SyncAgent::on_peer_up(NodeId /*peer*/) {
  // A restarted node rejoins the memory fabric only; its worker never
  // re-enters the computation, so lock and barrier state are unaffected.
}

void SyncAgent::on_self_restart() {
  const MutexLock guard(mutex_);
  // Home-side state matters only at node 0, which never restarts under FT.
  for (auto& L : local_) L = LocalLock{};
}

}  // namespace dsm
