// Real-socket backend: every wire attempt the Network hands us is framed
// (transport.hpp codec) and sent through the kernel as one UDP datagram; a
// receiver thread per hosted node decodes arrivals and feeds them back into
// Network::receive. Loss is allowed everywhere — full send buffers, rcvbuf
// overflow, a peer that has not bound yet — because the reliable sublayer
// above the seam retransmits until acked. Nothing below the seam retries.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/assert.hpp"
#include "common/lock_order.hpp"
#include "common/logging.hpp"
#include "common/thread_annotations.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"

namespace dsm {
namespace {

/// Process-wide epoch ordinal (the low 16 bits of the wire epoch): each
/// UdpTransport (one per Network/System) gets the next ordinal. SPMD
/// processes construct their Systems in identical order, so ordinals agree
/// across a dsmrun fleet, and a straggler datagram from a finished System is
/// rejected by the next one sharing the inherited socket. The high 16 bits
/// carry the process *incarnation* (DSM_INCARNATION, bumped by dsmrun on
/// every respawn): a crashed-and-respawned rank's pre-crash datagrams carry
/// the old incarnation and are counted under net.stale_dropped, never
/// delivered, while a *higher* incarnation tells the receiver the peer was
/// respawned (Network::peer_restarted resets link state).
std::atomic<std::uint32_t> g_udp_epoch{0};

std::uint32_t incarnation_from_env() {
  const char* v = std::getenv("DSM_INCARNATION");
  if (v == nullptr) return 0;
  return static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10)) & 0xFFFFu;
}

sockaddr_in parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  DSM_CHECK_MSG(colon != std::string::npos && colon > 0,
                "bad peer endpoint '" << spec << "' (want host:port)");
  const std::string host = spec.substr(0, colon);
  char* end = nullptr;
  const unsigned long port = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  DSM_CHECK_MSG(end != nullptr && *end == '\0' && port <= 65535,
                "bad port in peer endpoint '" << spec << "'");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  DSM_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "bad host in peer endpoint '" << spec << "'");
  return addr;
}

std::string endpoint_string(const sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DSM_CHECK_MSG(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

class UdpTransport final : public Transport {
 public:
  UdpTransport(const TransportConfig& cfg, std::size_t n_nodes, Network* net,
               StatsRegistry* stats)
      : net_(net),
        n_nodes_(n_nodes),
        local_(cfg.local_node),
        epoch_((incarnation_from_env() << 16) |
               (g_udp_epoch.fetch_add(1, std::memory_order_relaxed) & 0xFFFFu)),
        peer_incarnation_(n_nodes, -1),
        malformed_(stats->counter("net.malformed_dropped")),
        stale_(stats->counter("net.stale_dropped")),
        send_errors_(stats->counter("net.send_errors")) {
    if (cfg.multiprocess()) {
      DSM_CHECK_MSG(cfg.peers.size() == n_nodes,
                    "udp transport: " << cfg.peers.size() << " peers for "
                                      << n_nodes << " nodes");
      addrs_.reserve(n_nodes);
      for (const std::string& peer : cfg.peers) addrs_.push_back(parse_endpoint(peer));
      hosted_.push_back(local_);
      if (cfg.socket_fd >= 0) {
        set_nonblocking(cfg.socket_fd);
        fds_.push_back(cfg.socket_fd);
        owned_.push_back(false);  // dsmrun's socket outlives this System
      } else {
        fds_.push_back(open_bound_socket(&addrs_[local_]));
        owned_.push_back(true);
      }
    } else {
      // Single-process loopback: one ephemeral socket per node; the OS
      // assigns ports, so parallel test processes never collide.
      addrs_.resize(n_nodes);
      for (NodeId node = 0; node < n_nodes; ++node) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = 0;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        fds_.push_back(open_bound_socket(&addr));
        owned_.push_back(true);
        hosted_.push_back(node);
        addrs_[node] = addr;
      }
    }
  }

  ~UdpTransport() override { stop(); }

  std::string_view name() const override { return "udp"; }
  bool wire_acks() const override { return true; }

  void start() override {
    receivers_.reserve(fds_.size());
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      receivers_.emplace_back([this, i] { recv_loop(i); });
    }
  }

  void stop() override {
    if (stopping_.exchange(true, std::memory_order_relaxed)) return;
    for (auto& t : receivers_) {
      if (t.joinable()) t.join();
    }
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      if (owned_[i]) ::close(fds_[i]);
    }
    fds_.clear();
  }

  void ship(Message msg, std::uint32_t attempt) override {
    const std::vector<std::byte> wire = encode_datagram(msg, attempt, epoch_);
    if (wire.size() > kMaxDatagramSize) {
      // Oversized frames cannot be recovered by retransmission either;
      // this is a configuration bug (max_batch_bytes vs page_size).
      send_errors_.add();
      DSM_LOG_WARN << "udp: datagram of " << wire.size() << " bytes exceeds "
                   << kMaxDatagramSize << " — dropped (" << to_string(msg.type) << ')';
      return;
    }
    const sockaddr_in& addr = addrs_[msg.dst];
    const ssize_t sent =
        ::sendto(fd_for(msg.src), wire.data(), wire.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (sent < 0 || static_cast<std::size_t>(sent) != wire.size()) {
      // Full buffer or unreachable peer: counted, then treated as wire loss.
      send_errors_.add();
    }
  }

  std::vector<std::string> endpoints() const override {
    std::vector<std::string> out;
    out.reserve(hosted_.size());
    for (const NodeId node : hosted_) out.push_back(endpoint_string(addrs_[node]));
    return out;
  }

  void debug_dump(std::ostream& os) const override {
    os << "  transport: udp epoch=" << epoch_ << " hosted=";
    for (std::size_t i = 0; i < hosted_.size(); ++i) {
      os << (i > 0 ? "," : "") << hosted_[i] << '@' << endpoint_string(addrs_[hosted_[i]]);
    }
    os << '\n';
  }

 private:
  int fd_for(NodeId src) const { return fds_.size() == 1 ? fds_[0] : fds_[src]; }

  /// Creates a non-blocking UDP socket bound to *addr; rewrites *addr with
  /// the actual (possibly ephemeral) binding.
  static int open_bound_socket(sockaddr_in* addr) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    DSM_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    // Burst tolerance: a barrier fan-in from 32 nodes must not overflow the
    // default rcvbuf into (recoverable, but slow) retransmit storms.
    const int rcvbuf = 1 << 20;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    DSM_CHECK_MSG(::bind(fd, reinterpret_cast<sockaddr*>(addr), sizeof *addr) == 0,
                  "bind(" << endpoint_string(*addr)
                          << ") failed: " << std::strerror(errno));
    socklen_t len = sizeof *addr;
    DSM_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(addr), &len) == 0);
    set_nonblocking(fd);
    return fd;
  }

  void recv_loop(std::size_t idx) {
    const NodeId hosted = hosted_[idx];
    std::vector<std::byte> buf(kMaxDatagramSize + 1);
    pollfd pfd{};
    pfd.fd = fds_[idx];
    pfd.events = POLLIN;
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
      if (ready <= 0) continue;
      for (;;) {
        const ssize_t got = ::recvfrom(pfd.fd, buf.data(), buf.size(), 0, nullptr, nullptr);
        if (got < 0) break;  // EAGAIN: drained
        auto dg = decode_datagram({buf.data(), static_cast<std::size_t>(got)}, n_nodes_);
        if (!dg.has_value()) {
          malformed_.add();
          continue;
        }
        // Low 16 bits: System ordinal — strict equality, as before, so
        // sequential Systems on one inherited socket reject each other.
        if ((dg->epoch & 0xFFFFu) != (epoch_ & 0xFFFFu)) {
          stale_.add();
          continue;
        }
        // High 16 bits: the sender's process incarnation. Lower than the
        // highest we have seen from this src = a pre-crash straggler;
        // higher = the peer was respawned and its links must reset.
        const std::uint32_t inc = dg->epoch >> 16;
        bool stale = false;
        bool respawned = false;
        {
          const MutexLock lock(incarnation_mutex_);
          std::int64_t& seen = peer_incarnation_[dg->msg.src];
          if (seen >= 0 && inc < static_cast<std::uint32_t>(seen)) {
            stale = true;
          } else {
            if (seen >= 0 && inc > static_cast<std::uint32_t>(seen)) respawned = true;
            seen = inc;
          }
        }
        if (stale) {
          stale_.add();
          continue;
        }
        if (respawned) net_->peer_restarted(dg->msg.src);
        if (dg->msg.dst != hosted) {
          // Structurally valid but aimed at an endpoint we are not — a
          // misdirected sender. Reject like any other malformed input.
          malformed_.add();
          continue;
        }
        net_->receive(std::move(dg->msg), dg->attempt);
      }
    }
  }

  Network* net_;
  std::size_t n_nodes_;
  NodeId local_;
  std::uint32_t epoch_;  ///< (incarnation << 16) | ordinal
  // Receiver threads call Network::peer_restarted (fabric locks) only after
  // releasing this, so it sits in the transport bracket with the fabric locks.
  Mutex incarnation_mutex_ ACQUIRED_AFTER(lock_order::fabric_gate)
      ACQUIRED_BEFORE(lock_order::mailbox_gate);
  std::vector<std::int64_t> peer_incarnation_
      GUARDED_BY(incarnation_mutex_);  ///< highest seen per src; -1 = none
  Counter& malformed_;
  Counter& stale_;
  Counter& send_errors_;
  std::vector<int> fds_;          // one per hosted node
  std::vector<bool> owned_;       // close on stop? (inherited fds are not ours)
  std::vector<NodeId> hosted_;    // hosted_[i] listens on fds_[i]
  std::vector<sockaddr_in> addrs_;  // destination endpoint per node
  std::vector<std::thread> receivers_;
  std::atomic<bool> stopping_{false};
};

}  // namespace

std::unique_ptr<Transport> make_udp_transport(const TransportConfig& cfg,
                                              std::size_t n_nodes, Network* net,
                                              StatsRegistry* stats) {
  return std::make_unique<UdpTransport>(cfg, n_nodes, net, stats);
}

}  // namespace dsm
