#include "net/transport.hpp"

#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "net/network.hpp"

namespace dsm {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInproc: return "inproc";
    case TransportKind::kUdp: return "udp";
  }
  return "unknown";
}

void Transport::debug_dump(std::ostream& os) const {
  os << "  transport: " << name() << '\n';
}

namespace {

// --- wire codec helpers -----------------------------------------------------

constexpr std::size_t kChecksumOffset = 60;  // last header field

void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, sizeof v); }
void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void put_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }

std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// FNV-1a (32-bit). Every step is bijective in the running hash, so two
/// equal-length buffers differing in any single byte always hash apart —
/// which makes single-bit-flip rejection in the fuzz suite deterministic.
std::uint32_t fnv1a(std::uint32_t h, std::span<const std::byte> data) {
  for (const std::byte b : data) {
    h ^= static_cast<std::uint32_t>(b);
    h *= 16777619u;
  }
  return h;
}

std::uint32_t datagram_checksum(std::span<const std::byte> bytes) {
  std::uint32_t h = 2166136261u;
  h = fnv1a(h, bytes.subspan(0, kChecksumOffset));
  h = fnv1a(h, bytes.subspan(kWireHeaderSize));
  return h;
}

/// Message types that legitimately travel on the wire. Shutdown and Wakeup
/// are always in-process self-sends, kPeerDown/kPeerUp are liveness posts
/// that only ever travel via Network::post_local; anything at or past
/// kCount_ is garbage.
bool wire_type_ok(std::uint16_t raw) {
  if (raw >= static_cast<std::uint16_t>(MsgType::kCount_)) return false;
  const auto type = static_cast<MsgType>(raw);
  return type != MsgType::kShutdown && type != MsgType::kWakeup &&
         type != MsgType::kPeerDown && type != MsgType::kPeerUp;
}

// --- environment helpers ----------------------------------------------------

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::uint64_t env_u64(const char* name) {
  const char* v = std::getenv(name);
  DSM_CHECK_MSG(v != nullptr, "dsmrun environment incomplete: " << name << " unset");
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v, &end, 10);
  DSM_CHECK_MSG(end != v && *end == '\0', name << " is not a number: " << v);
  return parsed;
}

// --- InprocTransport --------------------------------------------------------

/// The historical fabric: ship() hands the datagram straight to the
/// receiving half of the same Network. No serialization, no sockets, no
/// wire acks — behaviour (and every counter) is identical to the
/// pre-transport wire.
class InprocTransport final : public Transport {
 public:
  explicit InprocTransport(Network* net) : net_(net) {}
  std::string_view name() const override { return "inproc"; }
  bool wire_acks() const override { return false; }
  void ship(Message msg, std::uint32_t attempt) override {
    net_->receive(std::move(msg), attempt);
  }

 private:
  Network* net_;
};

}  // namespace

std::vector<std::byte> encode_datagram(const Message& msg, std::uint32_t attempt,
                                       std::uint32_t epoch) {
  std::vector<std::byte> out(kWireHeaderSize + msg.payload.size());
  std::byte* p = out.data();
  put_u32(p + 0, kWireMagic);
  put_u16(p + 4, kWireVersion);
  put_u16(p + 6, static_cast<std::uint16_t>(msg.type));
  put_u32(p + 8, msg.src);
  put_u32(p + 12, msg.dst);
  put_u32(p + 16, epoch);
  put_u32(p + 20, attempt);
  put_u64(p + 24, msg.seq);
  put_u64(p + 32, static_cast<std::uint64_t>(msg.send_time));
  put_u64(p + 40, static_cast<std::uint64_t>(msg.arrival_time));
  put_u64(p + 48, msg.ack_upto);
  put_u32(p + 56, static_cast<std::uint32_t>(msg.payload.size()));
  std::memcpy(p + kWireHeaderSize, msg.payload.data(), msg.payload.size());
  put_u32(p + kChecksumOffset, datagram_checksum(out));
  return out;
}

std::optional<WireDatagram> decode_datagram(std::span<const std::byte> bytes,
                                            std::size_t n_nodes) {
  if (bytes.size() < kWireHeaderSize) return std::nullopt;
  const std::byte* p = bytes.data();
  if (get_u32(p + 0) != kWireMagic) return std::nullopt;
  if (get_u16(p + 4) != kWireVersion) return std::nullopt;
  if (get_u32(p + kChecksumOffset) != datagram_checksum(bytes)) return std::nullopt;
  const std::uint32_t payload_len = get_u32(p + 56);
  if (payload_len != bytes.size() - kWireHeaderSize) return std::nullopt;

  const std::uint16_t raw_type = get_u16(p + 6);
  if (!wire_type_ok(raw_type)) return std::nullopt;
  const std::uint32_t src = get_u32(p + 8);
  const std::uint32_t dst = get_u32(p + 12);
  // Loopback (src == dst) is delivered in-process and never framed.
  if (src >= n_nodes || dst >= n_nodes || src == dst) return std::nullopt;

  WireDatagram dg;
  dg.msg.type = static_cast<MsgType>(raw_type);
  dg.msg.src = static_cast<NodeId>(src);
  dg.msg.dst = static_cast<NodeId>(dst);
  dg.epoch = get_u32(p + 16);
  dg.attempt = get_u32(p + 20);
  dg.msg.seq = get_u64(p + 24);
  dg.msg.send_time = static_cast<VirtualTime>(get_u64(p + 32));
  dg.msg.arrival_time = static_cast<VirtualTime>(get_u64(p + 40));
  dg.msg.ack_upto = get_u64(p + 48);
  dg.msg.payload.assign(bytes.begin() + kWireHeaderSize, bytes.end());

  // An envelope that passed the checksum can still be structural garbage if
  // the sender was buggy or hostile; reject before it can reach unpack.
  if (dg.msg.type == MsgType::kBatch && !batch_payload_well_formed(dg.msg.payload)) {
    return std::nullopt;
  }
  return dg;
}

std::unique_ptr<Transport> make_transport(const TransportConfig& cfg,
                                          std::size_t n_nodes, Network* net,
                                          StatsRegistry* stats) {
  switch (cfg.kind) {
    case TransportKind::kInproc:
      DSM_CHECK_MSG(!cfg.multiprocess(), "multi-process mode requires the udp transport");
      return std::make_unique<InprocTransport>(net);
    case TransportKind::kUdp:
      return make_udp_transport(cfg, n_nodes, net, stats);
  }
  DSM_CHECK_MSG(false, "unknown transport kind");
  return nullptr;
}

bool transport_from_env(TransportConfig& cfg, std::size_t* n_nodes) {
  const char* kind = std::getenv("DSM_TRANSPORT");
  if (kind == nullptr) return false;
  DSM_CHECK_MSG(std::string_view(kind) == "udp",
                "DSM_TRANSPORT must be 'udp', got '" << kind << "'");
  const std::uint64_t nodes = env_u64("DSM_NODES");
  const std::uint64_t local = env_u64("DSM_NODE");
  const char* peers = std::getenv("DSM_PEERS");
  DSM_CHECK_MSG(peers != nullptr, "dsmrun environment incomplete: DSM_PEERS unset");
  cfg.kind = TransportKind::kUdp;
  cfg.local_node = static_cast<NodeId>(local);
  cfg.peers = split_csv(peers);
  DSM_CHECK_MSG(nodes >= 1 && local < nodes,
                "DSM_NODE " << local << " out of range for DSM_NODES " << nodes);
  DSM_CHECK_MSG(cfg.peers.size() == nodes,
                "DSM_PEERS has " << cfg.peers.size() << " entries for DSM_NODES " << nodes);
  if (std::getenv("DSM_SOCKET_FD") != nullptr) {
    cfg.socket_fd = static_cast<int>(env_u64("DSM_SOCKET_FD"));
  }
  if (n_nodes != nullptr) *n_nodes = nodes;
  return true;
}

bool transport_kind_from_env(TransportConfig& cfg) {
  const char* kind = std::getenv("TUTORDSM_TRANSPORT");
  if (kind == nullptr) return false;
  const std::string_view s = kind;
  if (s == "udp") {
    cfg.kind = TransportKind::kUdp;
    return true;
  }
  if (s == "inproc") {
    cfg.kind = TransportKind::kInproc;
    return true;
  }
  DSM_CHECK_MSG(false, "TUTORDSM_TRANSPORT must be 'udp' or 'inproc', got '" << s << "'");
  return false;
}

}  // namespace dsm
