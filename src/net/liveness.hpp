// Peer-liveness table: the fabric-wide view of which nodes are alive, which
// still run application work, and each node's incarnation count. Owned by the
// Network (one table per fabric) and read lock-free by protocols, the sync
// agent, and the checker — the answer to ISSUE 6's "surface a per-link
// dead-peer state the protocol layer can observe" satellite: when the
// bounded-retry sublayer gives up on a peer, Network marks it dead here and
// announces kPeerDown instead of silently bumping net.gave_up.
//
// Two liveness notions, because a restarted node rejoins the *memory fabric*
// (it serves pages, replays checkpoints) but not the *computation* (its app
// thread is gone; barriers must stop waiting for it):
//   * alive(n)       — n's service side responds to messages
//   * worker_live(n) — n's app thread still participates in barriers
//
// Memory ordering: mark_restarted publishes with release so that a peer
// observing alive==true (acquire) also sees the link resets that preceded it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace dsm {

class Liveness {
 public:
  explicit Liveness(std::size_t n_nodes) : slots_(n_nodes) {
    for (auto& s : slots_) {
      s.alive.store(true, std::memory_order_relaxed);
      s.worker_live.store(true, std::memory_order_relaxed);
      s.incarnation.store(0, std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return slots_.size(); }

  bool alive(NodeId n) const {
    return slots_[n].alive.load(std::memory_order_acquire);
  }
  /// Does n's application thread still count toward barriers?
  bool worker_live(NodeId n) const {
    return slots_[n].worker_live.load(std::memory_order_acquire);
  }
  std::uint32_t incarnation(NodeId n) const {
    return slots_[n].incarnation.load(std::memory_order_acquire);
  }

  /// Number of nodes whose service side is up (quorum math).
  std::size_t live_count() const {
    std::size_t c = 0;
    for (std::size_t n = 0; n < slots_.size(); ++n) {
      if (alive(static_cast<NodeId>(n))) ++c;
    }
    return c;
  }
  /// Number of nodes still running application work (barrier math).
  std::size_t live_worker_count() const {
    std::size_t c = 0;
    for (std::size_t n = 0; n < slots_.size(); ++n) {
      if (worker_live(static_cast<NodeId>(n))) ++c;
    }
    return c;
  }

  void mark_dead(NodeId n) {
    slots_[n].alive.store(false, std::memory_order_release);
  }
  void mark_worker_dead(NodeId n) {
    slots_[n].worker_live.store(false, std::memory_order_release);
  }
  /// Rejoin the fabric with a fresh incarnation. The caller must finish all
  /// state/link resets *before* this: the release store is what makes them
  /// visible to senders that test alive() first.
  void mark_restarted(NodeId n) {
    slots_[n].incarnation.fetch_add(1, std::memory_order_relaxed);
    slots_[n].alive.store(true, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<bool> alive{true};
    std::atomic<bool> worker_live{true};
    std::atomic<std::uint32_t> incarnation{0};
  };
  // unique_ptr-free: vector of non-copyable atomics is fine because the
  // vector is sized once in the ctor and never resized.
  std::vector<Slot> slots_;
};

}  // namespace dsm
