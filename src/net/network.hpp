// The simulated interconnect: one mailbox per node, explicit messages, a
// configurable link cost model, per-type traffic accounting, and a reliable
// delivery sublayer (per-link sequence numbers, ack/retransmit with
// exponential backoff, duplicate suppression, in-order reassembly) driven
// against a seeded chaos injector. This is the substitution for the 1992
// workstation network — see DESIGN.md "Substitutions" and "Reliable
// transport & chaos".
//
// On top of the reliable sublayer sits an optional wire-optimisation layer
// (WireConfig): per-link message coalescing into kBatch envelopes via a
// scoped-batch API, and piggybacked cumulative acks with a delayed-ack
// fallback. Both default off; with every knob off the wire behaviour is
// bit-identical to the unbatched transport. See DESIGN.md "Wire-level
// batching & compression".
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/lock_order.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "net/chaos.hpp"
#include "net/liveness.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"

namespace dsm {

class Tracer;

/// Virtual-time cost of moving a message across one link.
struct LinkModel {
  /// Per-message base latency (wire + protocol stack), nanoseconds.
  VirtualTime latency_ns = 10'000;  // 10 µs, a fast early-90s LAN
  /// Per-byte transfer cost, nanoseconds (100 ns/B ≈ 10 MB/s).
  VirtualTime ns_per_byte = 100;
  /// Cost of a node messaging itself (loopback through the DSM layer).
  VirtualTime loopback_ns = 500;

  VirtualTime cost(NodeId src, NodeId dst, std::size_t bytes) const {
    if (src == dst) return loopback_ns;
    return latency_ns + ns_per_byte * static_cast<VirtualTime>(bytes);
  }
};

/// Ack/retransmit policy of the reliable sublayer. Timeouts are *real* time
/// (a lost message produces no virtual-time event to wait on); each
/// retransmit additionally charges `rto_virtual_ns` to the message's virtual
/// arrival so modeled completion times degrade with loss, like the real
/// thing. At zero loss no retransmit ever fires and virtual results are
/// bit-identical to an unreliable fabric.
struct ReliabilityConfig {
  /// Master switch. Off = the seed's fire-and-forget fabric (any lost
  /// message wedges its waiter forever); kept for overhead measurement.
  bool enabled = true;
  /// Base retransmit timeout, real milliseconds.
  std::uint32_t rto_ms = 5;
  /// Timeout multiplier per retry (exponential backoff).
  double backoff = 2.0;
  /// Backoff ceiling, real milliseconds.
  std::uint32_t rto_max_ms = 200;
  /// Retransmits before the sender gives up (net.gave_up). A permanently
  /// lost protocol message hangs its waiter — that is the watchdog's cue.
  std::uint32_t max_retries = 12;
  /// Virtual-time charge per retransmit (a 90s-era timeout constant).
  VirtualTime rto_virtual_ns = 200'000;
};

/// Wire-level optimisation knobs (all default off; defaults are
/// bit-identical to the unbatched, un-piggybacked, uncompressed wire).
struct WireConfig {
  /// Coalesce messages staged under a Network::BatchScope into kBatch
  /// envelopes: one datagram (one link latency) per same-(src,dst) group.
  bool batching = false;
  /// Max inner messages per envelope; a group larger than this is chunked.
  std::size_t max_batch_msgs = 16;
  /// Max summed wire bytes per envelope.
  std::size_t max_batch_bytes = 16 * 1024;
  /// Piggyback cumulative acks on reverse-direction traffic instead of
  /// completing in-flight entries instantly on accept. A quiet link falls
  /// back to a standalone kAck datagram after `delayed_ack_us`.
  bool piggyback_acks = false;
  /// Delayed-ack timer, real microseconds. Must stay well under the RTO or
  /// quiet-link acks lose the race against the retransmit daemon.
  std::uint32_t delayed_ack_us = 1000;
  /// Zero-run RLE for full-page transfers (consulted by proto/page_io).
  bool compress_pages = false;
  /// XOR-vs-twin + zero-run RLE coding for diffs (consulted by the ERC
  /// update path).
  bool compress_diffs = false;
};

/// Blocking MPSC queue of messages for one node's service thread.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a message is available or the mailbox is closed.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<Message> pop();
  /// Non-blocking variant for drain loops.
  std::optional<Message> try_pop();
  /// Blocks like pop() but takes *everything* queued under one lock
  /// acquisition. Returns an empty deque only after close() with an empty
  /// queue. Burst dispatch for the service loop: one lock + one wakeup per
  /// burst instead of per message.
  std::deque<Message> drain();
  void close();
  std::size_t size() const;

 private:
  // Innermost fabric lock: pushed to under links_/flight_mutex_, and the
  // delivery hook fires checker hooks from under it.
  mutable Mutex mutex_ ACQUIRED_AFTER(lock_order::mailbox_gate)
      ACQUIRED_BEFORE(lock_order::checker_gate);
  CondVar cv_;
  std::deque<Message> queue_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

/// N-endpoint fabric with reliable, per-link-FIFO delivery.
///
/// Delivery order: messages from the same (src,dst) pair are delivered in
/// send order (link FIFO), matching what DSM protocols of this era assumed
/// from their transport. The reliable sublayer preserves this invariant
/// under loss, duplication, and reordering: receivers suppress duplicate
/// sequence numbers and hold out-of-order arrivals until the gap fills.
/// A kBatch envelope occupies the seq range [seq, seq+count) and is deduped,
/// reordered, and retransmitted as a unit; on accept it unpacks into `count`
/// in-order deliveries. Cross-source interleaving at a destination is
/// arbitrary, as on a real network.
///
/// Acknowledgements are internal to the fabric (the in-process analogue of
/// a transport-level ack): accepting an eligible message completes the
/// sender's in-flight entry directly, unless chaos decides the ack was lost
/// — in which case the retransmit daemon resends and the receiver dedups.
/// With `wire.piggyback_acks` the receiver instead records a cumulative ack
/// for the link and attaches it to the next reverse-direction send
/// (Message::ack_upto), emitting a standalone kAck datagram only when the
/// delayed-ack timer expires first.
class Network {
 public:
  Network(std::size_t n_nodes, LinkModel link, StatsRegistry* stats,
          ReliabilityConfig reliability = {}, ChaosConfig chaos = {},
          WireConfig wire = {}, Tracer* tracer = nullptr,
          TransportConfig transport = {});
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t size() const { return mailboxes_.size(); }
  const LinkModel& link() const { return link_; }
  const ReliabilityConfig& reliability() const { return reliability_; }
  const WireConfig& wire() const { return wire_; }
  const Transport& transport() const { return *transport_; }
  const TransportConfig& transport_config() const { return transport_cfg_; }

  /// Receiver-side entry point for transport backends: a wire attempt has
  /// crossed the fabric and enters ack/dedup/reorder/delivery. Called by
  /// InprocTransport synchronously from the sender and by UdpTransport from
  /// its receiver threads.
  void receive(Message msg, std::uint32_t attempt);

  /// RAII batching window. While the calling thread holds an active scope,
  /// reliable-eligible sends on this network are staged instead of
  /// transmitted; closing the scope (or calling flush()) groups them by
  /// destination and ships each group as one kBatch envelope. Inert when
  /// batching is off, when `net` is null, or when nested inside another
  /// active scope on the same thread.
  class BatchScope {
   public:
    explicit BatchScope(Network* net);
    ~BatchScope();
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;
    /// Ships everything staged so far; the scope stays open for more.
    void flush();

   private:
    friend class Network;
    Network* net_ = nullptr;  // null when inert
    std::vector<Message> staged_;
  };

  /// Assigns a sequence number (protocol traffic between distinct nodes),
  /// tracks the message for retransmission, and attempts the wire transfer.
  /// Chaos may drop/duplicate/delay the attempt; the retransmit daemon
  /// recovers dropped attempts until `max_retries` is exhausted. Under an
  /// active BatchScope on this thread, eligible messages are staged instead.
  void send(Message msg);

  /// Ships the calling thread's staged batch (if a scope is open on this
  /// network); no-op otherwise.
  void flush();

  /// Sends a copy of `prototype` to every node in `destinations`
  /// (dst/arrival stamped per copy). Models point-to-point multicast.
  void multicast(std::span<const NodeId> destinations, const Message& prototype);

  /// Blocking receive for `node`'s service thread.
  std::optional<Message> recv(NodeId node);

  /// Blocking burst receive: everything queued for `node`, in order.
  /// Empty only after shutdown with an empty mailbox.
  std::deque<Message> recv_all(NodeId node);

  /// Stops the retransmit daemon and closes every mailbox, releasing all
  /// blocked receivers.
  void shutdown();

  /// Wire-level fault filter for deterministic tests: return true to drop
  /// this attempt. Applied before chaos; the reliable sublayer still
  /// retransmits. Install before traffic starts.
  void set_drop_hook(std::function<bool(const Message&)> hook) {
    drop_hook_ = std::move(hook);
  }

  /// Observer invoked for every message accepted into a mailbox (after
  /// dedup/reorder, in final delivery order). Used by dsmcheck to verify
  /// per-link sequence contiguity. Runs under internal locks — the hook
  /// must not call back into the Network. Install before traffic starts.
  void set_delivery_hook(std::function<void(const Message&)> hook) {
    delivery_hook_ = std::move(hook);
  }

  /// Observer invoked once per accepted kBatch envelope, before its inner
  /// messages are delivered. Used by dsmcheck to verify the envelope lands
  /// exactly at the link's expected seq. Same locking caveats as the
  /// delivery hook.
  void set_batch_hook(std::function<void(const Message&, std::uint32_t)> hook) {
    batch_hook_ = std::move(hook);
  }

  /// Injects a node stall: deliveries to `node` are held for `us` real
  /// microseconds from now (the chaos pause injector's explicit form).
  void inject_pause(NodeId node, std::uint32_t us);

  // --- peer liveness (crash fault tolerance) -------------------------------
  /// The fabric-wide liveness table. Always present; only consulted for
  /// dead-drops and give-up announcements when FT mode is on (set_ft).
  Liveness& liveness() { return liveness_; }
  const Liveness& liveness() const { return liveness_; }

  /// Enables FT behaviour: sends touching a dead endpoint are dropped
  /// (net.dead_dropped) instead of retransmitted into the void, and a link
  /// whose bounded retries are exhausted marks its peer dead and announces
  /// kPeerDown to every hosted node (net.peer_dead) — the observable
  /// dead-peer state behind the former count-only net.gave_up.
  void set_ft(bool enabled) { ft_ = enabled; }

  /// Declares `node` dead: marks the liveness table, purges all in-flight /
  /// delayed traffic touching it, and posts kPeerDown(node, restart) to every
  /// hosted node's mailbox (local post, never the wire). Idempotent.
  void announce_death(NodeId node, bool restart);

  /// Posts kPeerUp(node) to every hosted node. The caller (restart path)
  /// must have reset protocol/link state and marked the liveness table
  /// *before* this so observers of the announcement see consistent state.
  void announce_alive(NodeId node);

  /// Resets both directions of every link touching `node` to "next send seq"
  /// and clears reorder buffers — the in-process restart path, where send
  /// counters persist across the death.
  void reset_links_for(NodeId node);

  /// A peer's UDP datagrams arrived under a higher incarnation: the process
  /// behind `src` was respawned. Purges old flight state, zeroes both seq
  /// directions (the new process counts from 0 and expects us to), marks the
  /// peer alive again, and posts kPeerUp to the hosted node.
  void peer_restarted(NodeId src);

  /// Messages accepted into mailboxes so far (dedup-suppressed duplicates
  /// and dropped attempts excluded) — the count the service loops will see.
  std::uint64_t messages_sent() const { return messages_sent_.value(); }

  /// True when no unacked message awaits retransmission, no delayed
  /// delivery is pending, and no delayed ack is armed; with
  /// `messages_sent() == processed` this makes the fabric quiescent (see
  /// System::drain).
  bool idle() const;

  /// One-line-per-item diagnostic dump of in-flight and delayed messages
  /// and per-link reassembly state (watchdog reports).
  void debug_dump(std::ostream& os) const;

 private:
  using SteadyTime = realclock::TimePoint;

  /// Per-(src,dst) receiver-side reliable-channel state: `expected` is the
  /// next seq to deliver; later arrivals park in `reorder`. (The sender
  /// side is the lock-free `send_seq_` array.)
  struct LinkState {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Message> reorder;
  };

  /// An unacked reliable message awaiting (re)transmission. A kBatch
  /// envelope covers `count` consecutive seqs with one entry.
  struct InFlight {
    Message msg;
    std::uint32_t count = 1;    // seqs covered: [msg.seq, msg.seq + count)
    std::uint32_t attempt = 0;  // retransmits so far
    SteadyTime deadline;
  };
  /// Key: (src*n_nodes + dst, seq).
  using FlightKey = std::pair<std::size_t, std::uint64_t>;

  /// A chaos-delayed or pause-held delivery. `pre_wire` distinguishes the
  /// two: a chaos delay holds the attempt *before* it crosses the transport
  /// (re-shipped when due), a pause holds an already-arrived message on the
  /// receiver side (re-enters arrive when due).
  struct Delayed {
    SteadyTime due;
    Message msg;
    std::uint32_t attempt = 0;
    bool pre_wire = false;
  };

  /// A cumulative ack waiting to piggyback on reverse traffic; if nothing
  /// travels the reverse link by `due`, the daemon emits a standalone kAck.
  struct PendingAck {
    std::uint64_t upto = 0;  // acks every seq < upto on the keyed link
    SteadyTime due;
  };

  /// True for traffic the reliable sublayer covers: protocol messages
  /// between distinct nodes. Control (Shutdown/Wakeup) and loopback are
  /// delivered directly — an in-process self-send cannot be lost.
  static bool reliable_eligible(const Message& msg) {
    return msg.src != msg.dst && msg.type != MsgType::kShutdown &&
           msg.type != MsgType::kWakeup;
  }

  std::size_t link_index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * mailboxes_.size() + dst;
  }

  /// The non-staging send path: seq assignment, flight tracking, attempt 0.
  void send_now(Message msg);
  /// Groups staged messages by destination and ships each group as kBatch
  /// envelopes (singleton groups go out as plain messages).
  void flush_staged(std::vector<Message>& staged);
  /// Inserts the flight entry, attaches any pending reverse-link ack, and
  /// wakes the daemon — one flight_mutex_ critical section.
  void track_inflight(Message& msg, std::uint32_t count);
  /// One transfer attempt: test hook + chaos (drop/duplicate/delay), then
  /// arrival. Called from send paths (attempt 0) and the daemon.
  void wire_attempt(Message msg, std::uint32_t attempt);
  /// Receiver side: ack (unless chaos eats it), dedup, reorder, deliver.
  void arrive(Message msg, std::uint32_t attempt);
  /// Accepts the in-order message at the head of its link (caller holds
  /// links_mutex_): unpacks kBatch envelopes, advances `expected` by the
  /// seq span, and delivers.
  void accept_front(LinkState& st, Message msg) REQUIRES(links_mutex_);
  /// Final step: traffic accounting + mailbox push, in-order per link.
  void deliver(Message msg);
  /// Completes (erases) the sender's in-flight entry — the internal ack.
  void complete_inflight(const Message& msg);
  /// Completes every in-flight entry on `link` fully below `upto`
  /// (cumulative ack, piggybacked or standalone).
  void complete_upto(std::size_t link, std::uint64_t upto);
  /// Records/extends the pending cumulative ack for `link` (piggyback
  /// mode), arming the delayed-ack timer on first record.
  void note_pending_ack(std::size_t link, std::uint64_t upto);
  /// Emits a cumulative kAck datagram for `link` (data direction src→dst;
  /// the ack travels dst→src). Wire-ack transports only; upto == 0 (nothing
  /// delivered yet — 0 is the header's "no ack" sentinel) is skipped.
  void send_wire_ack(std::size_t link, std::uint64_t upto);
  /// Queues a delivery for the daemon at `due`.
  void defer(Message msg, std::uint32_t attempt, SteadyTime due, bool pre_wire);

  /// FT: true (and counted) when `msg` touches a dead endpoint and is not
  /// exempt control traffic — the send is dropped instead of tracked.
  bool dead_drop(const Message& msg);
  /// Purges in-flight / delayed entries and pending acks touching `node`.
  void purge_flight_state(NodeId node);
  /// Local-post helper: stamps arrival = send time and delivers directly to
  /// `dst`'s mailbox, bypassing seq assignment and the wire.
  void post_local(NodeId dst, Message msg);
  /// The nodes whose mailboxes live in this process (all of them inproc;
  /// just the local rank under dsmrun).
  std::vector<NodeId> hosted_nodes() const;

  void daemon_loop();
  void stop_daemon();

  static thread_local BatchScope* active_scope_;

  LinkModel link_;
  StatsRegistry* stats_;
  Tracer* tracer_;  // null when tracing is off
  ReliabilityConfig reliability_;
  ChaosEngine chaos_;
  WireConfig wire_;
  TransportConfig transport_cfg_;
  Liveness liveness_;
  bool ft_ = false;
  std::vector<Mailbox> mailboxes_;
  std::function<bool(const Message&)> drop_hook_;
  std::function<void(const Message&)> delivery_hook_;
  std::function<void(const Message&, std::uint32_t)> batch_hook_;

  // Sender-side seq assignment: lock-free per-link counters. Out-of-order
  // wire attempts that a race here could produce are already handled by the
  // receiver's reorder buffer.
  std::vector<std::atomic<std::uint64_t>> send_seq_;

  // Receiver channel state (dedup, reorder). Fabric layer: acquired under
  // entry/protocol locks (sends from the fault path) and above the mailbox
  // lock (accept_front delivers while holding it). Never nested with
  // flight_mutex_ — both sit in the same lock-order bracket.
  mutable Mutex links_mutex_ ACQUIRED_AFTER(lock_order::fabric_gate)
      ACQUIRED_BEFORE(lock_order::mailbox_gate);
  std::vector<LinkState> links_ GUARDED_BY(links_mutex_);

  // Retransmit daemon state: unacked messages, delayed deliveries, pending
  // delayed acks, pauses.
  mutable Mutex flight_mutex_ ACQUIRED_AFTER(lock_order::fabric_gate)
      ACQUIRED_BEFORE(lock_order::mailbox_gate);
  CondVar flight_cv_;
  std::map<FlightKey, InFlight> in_flight_ GUARDED_BY(flight_mutex_);
  std::vector<Delayed> delayed_ GUARDED_BY(flight_mutex_);  // min-heap by `due`
  std::unordered_map<std::size_t, PendingAck> pending_acks_
      GUARDED_BY(flight_mutex_);
  std::vector<SteadyTime> pause_until_ GUARDED_BY(flight_mutex_);
  bool stopping_ GUARDED_BY(flight_mutex_) = false;
  std::thread daemon_;

  /// The backend moving wire attempts. Constructed (and started) last in the
  /// ctor, stopped first in shutdown()/~Network: its receiver threads call
  /// back into a fully-built Network and must be joined before mailboxes
  /// close or fabric state is torn down.
  std::unique_ptr<Transport> transport_;

  // Cached hot counters (StatsRegistry lookup is a lock + map walk).
  Counter messages_sent_;
  Counter& dropped_;
  Counter& retransmits_;
  Counter& dups_suppressed_;
  Counter& acks_;
  Counter& acks_dropped_;
  Counter& gave_up_;
  Counter& delayed_count_;
  Counter& pauses_;
  Counter& datagrams_;
  Counter& batches_;
  Counter& batched_msgs_;
  Counter& acks_piggybacked_;
  Counter& acks_standalone_;
  Counter& acks_wire_;
  Counter& bytes_saved_;
  Counter& dead_dropped_;
  Counter& peer_dead_;
};

/// kPeerDown / kPeerUp payload codec: u32 peer | u8 restart-intent.
std::vector<std::byte> pack_peer_event(NodeId peer, bool restart);
void unpack_peer_event(std::span<const std::byte> payload, NodeId* peer, bool* restart);

}  // namespace dsm
