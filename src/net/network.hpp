// The simulated interconnect: one mailbox per node, explicit messages, a
// configurable link cost model, per-type traffic accounting, and a reliable
// delivery sublayer (per-link sequence numbers, ack/retransmit with
// exponential backoff, duplicate suppression, in-order reassembly) driven
// against a seeded chaos injector. This is the substitution for the 1992
// workstation network — see DESIGN.md "Substitutions" and "Reliable
// transport & chaos".
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/chaos.hpp"
#include "net/message.hpp"

namespace dsm {

class Tracer;

/// Virtual-time cost of moving a message across one link.
struct LinkModel {
  /// Per-message base latency (wire + protocol stack), nanoseconds.
  VirtualTime latency_ns = 10'000;  // 10 µs, a fast early-90s LAN
  /// Per-byte transfer cost, nanoseconds (100 ns/B ≈ 10 MB/s).
  VirtualTime ns_per_byte = 100;
  /// Cost of a node messaging itself (loopback through the DSM layer).
  VirtualTime loopback_ns = 500;

  VirtualTime cost(NodeId src, NodeId dst, std::size_t bytes) const {
    if (src == dst) return loopback_ns;
    return latency_ns + ns_per_byte * static_cast<VirtualTime>(bytes);
  }
};

/// Ack/retransmit policy of the reliable sublayer. Timeouts are *real* time
/// (a lost message produces no virtual-time event to wait on); each
/// retransmit additionally charges `rto_virtual_ns` to the message's virtual
/// arrival so modeled completion times degrade with loss, like the real
/// thing. At zero loss no retransmit ever fires and virtual results are
/// bit-identical to an unreliable fabric.
struct ReliabilityConfig {
  /// Master switch. Off = the seed's fire-and-forget fabric (any lost
  /// message wedges its waiter forever); kept for overhead measurement.
  bool enabled = true;
  /// Base retransmit timeout, real milliseconds.
  std::uint32_t rto_ms = 5;
  /// Timeout multiplier per retry (exponential backoff).
  double backoff = 2.0;
  /// Backoff ceiling, real milliseconds.
  std::uint32_t rto_max_ms = 200;
  /// Retransmits before the sender gives up (net.gave_up). A permanently
  /// lost protocol message hangs its waiter — that is the watchdog's cue.
  std::uint32_t max_retries = 12;
  /// Virtual-time charge per retransmit (a 90s-era timeout constant).
  VirtualTime rto_virtual_ns = 200'000;
};

/// Blocking MPSC queue of messages for one node's service thread.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a message is available or the mailbox is closed.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<Message> pop();
  /// Non-blocking variant for drain loops.
  std::optional<Message> try_pop();
  void close();
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

/// N-endpoint fabric with reliable, per-link-FIFO delivery.
///
/// Delivery order: messages from the same (src,dst) pair are delivered in
/// send order (link FIFO), matching what DSM protocols of this era assumed
/// from their transport. The reliable sublayer preserves this invariant
/// under loss, duplication, and reordering: receivers suppress duplicate
/// sequence numbers and hold out-of-order arrivals until the gap fills.
/// Cross-source interleaving at a destination is arbitrary, as on a real
/// network.
///
/// Acknowledgements are internal to the fabric (the in-process analogue of
/// a transport-level ack): accepting an eligible message completes the
/// sender's in-flight entry directly, unless chaos decides the ack was lost
/// — in which case the retransmit daemon resends and the receiver dedups.
class Network {
 public:
  Network(std::size_t n_nodes, LinkModel link, StatsRegistry* stats,
          ReliabilityConfig reliability = {}, ChaosConfig chaos = {},
          Tracer* tracer = nullptr);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::size_t size() const { return mailboxes_.size(); }
  const LinkModel& link() const { return link_; }
  const ReliabilityConfig& reliability() const { return reliability_; }

  /// Assigns a sequence number (protocol traffic between distinct nodes),
  /// tracks the message for retransmission, and attempts the wire transfer.
  /// Chaos may drop/duplicate/delay the attempt; the retransmit daemon
  /// recovers dropped attempts until `max_retries` is exhausted.
  void send(Message msg);

  /// Sends a copy of `prototype` to every node in `destinations`
  /// (dst/arrival stamped per copy). Models point-to-point multicast.
  void multicast(std::span<const NodeId> destinations, const Message& prototype);

  /// Blocking receive for `node`'s service thread.
  std::optional<Message> recv(NodeId node);

  /// Stops the retransmit daemon and closes every mailbox, releasing all
  /// blocked receivers.
  void shutdown();

  /// Wire-level fault filter for deterministic tests: return true to drop
  /// this attempt. Applied before chaos; the reliable sublayer still
  /// retransmits. Install before traffic starts.
  void set_drop_hook(std::function<bool(const Message&)> hook) {
    drop_hook_ = std::move(hook);
  }

  /// Observer invoked for every message accepted into a mailbox (after
  /// dedup/reorder, in final delivery order). Used by dsmcheck to verify
  /// per-link sequence contiguity. Runs under internal locks — the hook
  /// must not call back into the Network. Install before traffic starts.
  void set_delivery_hook(std::function<void(const Message&)> hook) {
    delivery_hook_ = std::move(hook);
  }

  /// Injects a node stall: deliveries to `node` are held for `us` real
  /// microseconds from now (the chaos pause injector's explicit form).
  void inject_pause(NodeId node, std::uint32_t us);

  /// Messages accepted into mailboxes so far (dedup-suppressed duplicates
  /// and dropped attempts excluded) — the count the service loops will see.
  std::uint64_t messages_sent() const { return messages_sent_.value(); }

  /// True when no unacked message awaits retransmission and no delayed
  /// delivery is pending; with `messages_sent() == processed` this makes
  /// the fabric quiescent (see System::drain).
  bool idle() const;

  /// One-line-per-item diagnostic dump of in-flight and delayed messages
  /// and per-link reassembly state (watchdog reports).
  void debug_dump(std::ostream& os) const;

 private:
  using SteadyTime = std::chrono::steady_clock::time_point;

  /// Per-(src,dst) reliable-channel state. Sender side assigns `next_seq`;
  /// receiver side delivers `expected` and parks later seqs in `reorder`.
  struct LinkState {
    std::uint64_t next_seq = 0;
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Message> reorder;
  };

  /// An unacked reliable message awaiting (re)transmission.
  struct InFlight {
    Message msg;
    std::uint32_t attempt = 0;  // retransmits so far
    SteadyTime deadline;
  };
  /// Key: (src*n_nodes + dst, seq).
  using FlightKey = std::pair<std::size_t, std::uint64_t>;

  /// A chaos-delayed or pause-held delivery.
  struct Delayed {
    SteadyTime due;
    Message msg;
    std::uint32_t attempt = 0;
  };

  /// True for traffic the reliable sublayer covers: protocol messages
  /// between distinct nodes. Control (Shutdown/Wakeup) and loopback are
  /// delivered directly — an in-process self-send cannot be lost.
  static bool reliable_eligible(const Message& msg) {
    return msg.src != msg.dst && msg.type != MsgType::kShutdown &&
           msg.type != MsgType::kWakeup;
  }

  std::size_t link_index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * mailboxes_.size() + dst;
  }

  /// One transfer attempt: test hook + chaos (drop/duplicate/delay), then
  /// arrival. Called from send() (attempt 0) and the daemon (retransmits).
  void wire_attempt(Message msg, std::uint32_t attempt);
  /// Receiver side: ack (unless chaos eats it), dedup, reorder, deliver.
  void arrive(Message msg, std::uint32_t attempt);
  /// Final step: traffic accounting + mailbox push, in-order per link.
  void deliver(Message msg);
  /// Completes (erases) the sender's in-flight entry — the internal ack.
  void complete_inflight(const Message& msg);
  /// Queues a delivery for the daemon at `due`.
  void defer(Message msg, std::uint32_t attempt, SteadyTime due);

  void daemon_loop();
  void stop_daemon();

  LinkModel link_;
  StatsRegistry* stats_;
  Tracer* tracer_;  // null when tracing is off
  ReliabilityConfig reliability_;
  ChaosEngine chaos_;
  std::vector<Mailbox> mailboxes_;
  std::function<bool(const Message&)> drop_hook_;
  std::function<void(const Message&)> delivery_hook_;

  // Sender/receiver channel state (seq assignment, dedup, reorder).
  mutable std::mutex links_mutex_;
  std::vector<LinkState> links_;

  // Retransmit daemon state: unacked messages, delayed deliveries, pauses.
  mutable std::mutex flight_mutex_;
  std::condition_variable flight_cv_;
  std::map<FlightKey, InFlight> in_flight_;
  std::vector<Delayed> delayed_;  // min-heap by `due`
  std::vector<SteadyTime> pause_until_;
  bool stopping_ = false;
  std::thread daemon_;

  // Cached hot counters (StatsRegistry lookup is a lock + map walk).
  Counter messages_sent_;
  Counter& dropped_;
  Counter& retransmits_;
  Counter& dups_suppressed_;
  Counter& acks_;
  Counter& acks_dropped_;
  Counter& gave_up_;
  Counter& delayed_count_;
  Counter& pauses_;
};

}  // namespace dsm
