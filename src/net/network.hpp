// The simulated interconnect: one mailbox per node, explicit messages,
// a configurable link cost model, per-type traffic accounting, and a drop
// hook for fault-injection tests. This is the substitution for the 1992
// workstation network — see DESIGN.md "Substitutions".
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace dsm {

/// Virtual-time cost of moving a message across one link.
struct LinkModel {
  /// Per-message base latency (wire + protocol stack), nanoseconds.
  VirtualTime latency_ns = 10'000;  // 10 µs, a fast early-90s LAN
  /// Per-byte transfer cost, nanoseconds (100 ns/B ≈ 10 MB/s).
  VirtualTime ns_per_byte = 100;
  /// Cost of a node messaging itself (loopback through the DSM layer).
  VirtualTime loopback_ns = 500;

  VirtualTime cost(NodeId src, NodeId dst, std::size_t bytes) const {
    if (src == dst) return loopback_ns;
    return latency_ns + ns_per_byte * static_cast<VirtualTime>(bytes);
  }
};

/// Blocking MPSC queue of messages for one node's service thread.
class Mailbox {
 public:
  void push(Message msg);
  /// Blocks until a message is available or the mailbox is closed.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<Message> pop();
  /// Non-blocking variant for drain loops.
  std::optional<Message> try_pop();
  void close();
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

/// N-endpoint reliable, per-link-FIFO fabric.
///
/// Delivery order: messages from the same (src,dst) pair are delivered in
/// send order (link FIFO), matching what DSM protocols of this era assumed
/// from their transport. Cross-source interleaving at a destination is
/// arbitrary, as on a real network.
class Network {
 public:
  Network(std::size_t n_nodes, LinkModel link, StatsRegistry* stats);

  std::size_t size() const { return mailboxes_.size(); }
  const LinkModel& link() const { return link_; }

  /// Stamps arrival time, accounts traffic, and enqueues at `msg.dst`.
  /// If a drop hook is installed and returns true, the message vanishes
  /// (counted under net.dropped).
  void send(Message msg);

  /// Sends a copy of `prototype` to every node in `destinations`
  /// (dst/arrival stamped per copy). Models point-to-point multicast.
  void multicast(std::span<const NodeId> destinations, const Message& prototype);

  /// Blocking receive for `node`'s service thread.
  std::optional<Message> recv(NodeId node);

  /// Closes every mailbox, releasing all blocked receivers.
  void shutdown();

  /// Installs a fault-injection predicate; return true to drop the message.
  /// Not thread-safe with in-flight sends — install before traffic starts.
  void set_drop_hook(std::function<bool(const Message&)> hook) {
    drop_hook_ = std::move(hook);
  }

  /// Total messages sent so far (excluding dropped).
  std::uint64_t messages_sent() const { return messages_sent_.value(); }

 private:
  LinkModel link_;
  StatsRegistry* stats_;
  std::vector<Mailbox> mailboxes_;
  std::function<bool(const Message&)> drop_hook_;
  Counter messages_sent_;
};

}  // namespace dsm
