#include "net/message.hpp"

namespace dsm {

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kReadRequest: return "ReadRequest";
    case MsgType::kReadForward: return "ReadForward";
    case MsgType::kReadReply: return "ReadReply";
    case MsgType::kWriteRequest: return "WriteRequest";
    case MsgType::kWriteForward: return "WriteForward";
    case MsgType::kWriteReply: return "WriteReply";
    case MsgType::kInvalidate: return "Invalidate";
    case MsgType::kInvalidateAck: return "InvalidateAck";
    case MsgType::kConfirm: return "Confirm";
    case MsgType::kUpdate: return "Update";
    case MsgType::kUpdateAck: return "UpdateAck";
    case MsgType::kDiffRequest: return "DiffRequest";
    case MsgType::kDiffReply: return "DiffReply";
    case MsgType::kPageRequest: return "PageRequest";
    case MsgType::kPageReply: return "PageReply";
    case MsgType::kLockRequest: return "LockRequest";
    case MsgType::kLockGrant: return "LockGrant";
    case MsgType::kLockRelease: return "LockRelease";
    case MsgType::kBarrierArrive: return "BarrierArrive";
    case MsgType::kBarrierRelease: return "BarrierRelease";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kWakeup: return "Wakeup";
    case MsgType::kCount_: break;
  }
  return "Unknown";
}

std::size_t Message::wire_size() const {
  // Envelope header a real transport would carry:
  // type + src + dst + seq + length.
  constexpr std::size_t kHeader = 2 + 4 + 4 + 8 + 4;
  return kHeader + payload.size();
}

}  // namespace dsm
