#include "net/message.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/serialize.hpp"

namespace dsm {

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kReadRequest: return "ReadRequest";
    case MsgType::kReadForward: return "ReadForward";
    case MsgType::kReadReply: return "ReadReply";
    case MsgType::kWriteRequest: return "WriteRequest";
    case MsgType::kWriteForward: return "WriteForward";
    case MsgType::kWriteReply: return "WriteReply";
    case MsgType::kInvalidate: return "Invalidate";
    case MsgType::kInvalidateAck: return "InvalidateAck";
    case MsgType::kConfirm: return "Confirm";
    case MsgType::kUpdate: return "Update";
    case MsgType::kUpdateAck: return "UpdateAck";
    case MsgType::kDiffRequest: return "DiffRequest";
    case MsgType::kDiffReply: return "DiffReply";
    case MsgType::kPageRequest: return "PageRequest";
    case MsgType::kPageReply: return "PageReply";
    case MsgType::kLockRequest: return "LockRequest";
    case MsgType::kLockGrant: return "LockGrant";
    case MsgType::kLockRelease: return "LockRelease";
    case MsgType::kBarrierArrive: return "BarrierArrive";
    case MsgType::kBarrierRelease: return "BarrierRelease";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kWakeup: return "Wakeup";
    case MsgType::kExitReady: return "ExitReady";
    case MsgType::kExitGo: return "ExitGo";
    case MsgType::kAck: return "Ack";
    case MsgType::kBatch: return "Batch";
    case MsgType::kReplRead: return "ReplRead";
    case MsgType::kReplReadReply: return "ReplReadReply";
    case MsgType::kReplWrite: return "ReplWrite";
    case MsgType::kReplWriteAck: return "ReplWriteAck";
    case MsgType::kReplSync: return "ReplSync";
    case MsgType::kReplSyncAck: return "ReplSyncAck";
    case MsgType::kReplRecover: return "ReplRecover";
    case MsgType::kReplRecoverReply: return "ReplRecoverReply";
    case MsgType::kCkptStore: return "CkptStore";
    case MsgType::kCkptFetch: return "CkptFetch";
    case MsgType::kCkptData: return "CkptData";
    case MsgType::kPeerDown: return "PeerDown";
    case MsgType::kPeerUp: return "PeerUp";
    case MsgType::kCount_: break;
  }
  return "Unknown";
}

std::size_t Message::wire_size() const {
  // Envelope header a real transport would carry:
  // type + src + dst + seq + length.
  constexpr std::size_t kHeader = 2 + 4 + 4 + 8 + 4;
  return kHeader + payload.size();
}

std::vector<std::byte> pack_batch(const std::vector<Message>& inner) {
  WireWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(inner.size()));
  for (const Message& m : inner) {
    w.put<std::uint16_t>(static_cast<std::uint16_t>(m.type));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(m.payload.size()));
    w.put_raw(m.payload);
  }
  return std::move(w).take();
}

std::uint32_t batch_count(const Message& envelope) {
  DSM_CHECK(envelope.type == MsgType::kBatch);
  WireReader r(envelope.payload);
  return r.get<std::uint32_t>();
}

namespace {

/// Types allowed inside a kBatch frame: protocol traffic only. Envelopes,
/// acks, and runtime-control messages are never staged.
bool batch_inner_type_ok(std::uint16_t raw) {
  if (raw >= static_cast<std::uint16_t>(MsgType::kCount_)) return false;
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kShutdown:
    case MsgType::kWakeup:
    case MsgType::kExitReady:
    case MsgType::kExitGo:
    case MsgType::kAck:
    case MsgType::kBatch:
    case MsgType::kPeerDown:
    case MsgType::kPeerUp:
      return false;
    default:
      return true;
  }
}

}  // namespace

bool batch_payload_well_formed(std::span<const std::byte> payload) {
  // Manual bounds-checked walk: WireReader aborts on truncation, which is
  // the wrong failure mode for wire input.
  std::size_t pos = 0;
  auto read_u16 = [&](std::uint16_t* v) {
    if (payload.size() - pos < sizeof *v) return false;
    std::memcpy(v, payload.data() + pos, sizeof *v);
    pos += sizeof *v;
    return true;
  };
  auto read_u32 = [&](std::uint32_t* v) {
    if (payload.size() - pos < sizeof *v) return false;
    std::memcpy(v, payload.data() + pos, sizeof *v);
    pos += sizeof *v;
    return true;
  };
  std::uint32_t count = 0;
  if (!read_u32(&count) || count == 0) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint16_t type = 0;
    std::uint32_t len = 0;
    if (!read_u16(&type) || !batch_inner_type_ok(type)) return false;
    if (!read_u32(&len) || payload.size() - pos < len) return false;
    pos += len;
  }
  return pos == payload.size();
}

std::optional<std::vector<Message>> try_unpack_batch(const Message& envelope) {
  if (envelope.type != MsgType::kBatch) return std::nullopt;
  if (!batch_payload_well_formed(envelope.payload)) return std::nullopt;
  WireReader r(envelope.payload);
  const auto count = r.get<std::uint32_t>();
  std::vector<Message> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Message m;
    m.type = static_cast<MsgType>(r.get<std::uint16_t>());
    m.src = envelope.src;
    m.dst = envelope.dst;
    m.seq = envelope.seq + i;
    m.send_time = envelope.send_time;
    m.arrival_time = envelope.arrival_time;
    const auto len = r.get<std::uint32_t>();
    auto bytes = r.get_raw(len);
    m.payload.assign(bytes.begin(), bytes.end());
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Message> unpack_batch(const Message& envelope) {
  auto out = try_unpack_batch(envelope);
  DSM_CHECK_MSG(out.has_value(), "malformed batch envelope");
  return *std::move(out);
}

}  // namespace dsm
