// Protocol message envelope. One global message-type enum keeps traffic
// statistics comparable across protocols (every experiment reports the same
// per-type breakdown).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace dsm {

enum class MsgType : std::uint16_t {
  // --- page coherence (IVY family) ---
  kReadRequest,     ///< faulting node → manager/owner: want a read copy
  kReadForward,     ///< manager → owner: serve a read copy to requester
  kReadReply,       ///< owner → faulting node: page data, read grant
  kWriteRequest,    ///< faulting node → manager/owner: want ownership
  kWriteForward,    ///< manager → owner: transfer ownership to requester
  kWriteReply,      ///< owner → faulting node: page data + copyset + ownership
  kInvalidate,      ///< new owner → copyset holder: drop your copy
  kInvalidateAck,   ///< copyset holder → new owner: dropped
  kConfirm,         ///< requester → manager: transaction complete, unlock page
  // --- update-based coherence (Munin write-shared, ERC update mode) ---
  kUpdate,          ///< writer → copy holder: apply this diff
  kUpdateAck,       ///< copy holder → writer: applied
  // --- lazy release consistency (TreadMarks) ---
  kDiffRequest,     ///< faulting node → writer: send diffs for page ≥ interval
  kDiffReply,       ///< writer → faulting node: the diffs
  kPageRequest,     ///< faulting node → page home: full page (cold miss)
  kPageReply,       ///< page home → faulting node: full page data
  // --- synchronization ---
  kLockRequest,     ///< acquirer → lock home
  kLockGrant,       ///< lock home/previous holder → acquirer (may carry data)
  kLockRelease,     ///< holder → lock home
  kBarrierArrive,   ///< node → barrier manager (may carry intervals)
  kBarrierRelease,  ///< barrier manager → node (may carry merged notices)
  // --- runtime control ---
  kShutdown,        ///< runtime → service thread: drain and exit
  kWakeup,          ///< self-message used to replay parked work
  kExitReady,       ///< rank → rank 0: local work drained (multi-process exit)
  kExitGo,          ///< rank 0 → rank: all ranks drained, tear down
  // --- transport internal (never delivered to a protocol mailbox) ---
  kAck,             ///< standalone delayed ack (piggyback mode, quiet link)
  kBatch,           ///< coalescing envelope: several same-link messages in one datagram
  // --- quorum replication (QRC, SC-ABD-style) ---
  kReplRead,        ///< client → primary replica: want the current page value
  kReplReadReply,   ///< primary → client: page data + tag, read grant
  kReplWrite,       ///< writer → primary: apply this diff, replicate, then ack
  kReplWriteAck,    ///< primary → writer: stored on a quorum
  kReplSync,        ///< primary → backup replica: apply diff at tag
  kReplSyncAck,     ///< backup → primary: applied
  kReplRecover,     ///< new/recovering replica → group: send me your tag+value
  kReplRecoverReply,///< group member → recovering replica: my tag (+ data)
  // --- checkpoint mode (ERC home-replica snapshots) ---
  kCkptStore,       ///< page home → buddy: snapshot page at version
  kCkptFetch,       ///< restarted home → buddy: replay my snapshots
  kCkptData,        ///< buddy → restarted home: one page's last snapshot
  // --- liveness control (posted locally, never on the wire) ---
  kPeerDown,        ///< fabric → hosted nodes: peer died (payload: peer id)
  kPeerUp,          ///< fabric → hosted nodes: peer rejoined (payload: peer id)

  kCount_,          ///< number of message types (stats arrays)
};

/// Stable label for stats keys and logs, e.g. "ReadRequest".
std::string_view to_string(MsgType type);

/// The envelope the fabric moves. `arrival_time` is stamped by the network
/// from `send_time` plus the link-model cost; receivers advance their logical
/// clock to it (see DESIGN.md "Virtual time"). `seq` is the reliable
/// sublayer's per-(src,dst) sequence number, assigned by Network::send;
/// control traffic (Shutdown/Wakeup) and loopback carry kNoSeq.
struct Message {
  static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

  MsgType type = MsgType::kShutdown;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  std::uint64_t seq = kNoSeq;
  VirtualTime send_time = 0;
  VirtualTime arrival_time = 0;
  /// Piggybacked cumulative ack for the reverse link (dst→src traffic):
  /// 0 means "no ack", otherwise every reverse-link seq < ack_upto is acked.
  std::uint64_t ack_upto = 0;
  std::vector<std::byte> payload;

  std::size_t wire_size() const;
};

/// kBatch envelope framing. The payload is `u32 count` followed by `count`
/// frames of `u16 type | u32 len | len bytes`. All inner messages share the
/// envelope's (src, dst, send_time); their seqs are consecutive starting at
/// the envelope's seq, so one in-flight entry covers the whole range.
std::vector<std::byte> pack_batch(const std::vector<Message>& inner);

/// Number of frames in a kBatch envelope (reads the payload header only).
std::uint32_t batch_count(const Message& envelope);

/// Unpacks a kBatch envelope into delivery-ready messages: each inner message
/// inherits src/dst/send_time/arrival_time from the envelope and gets seq
/// `envelope.seq + i`. Aborts on a malformed payload (trusted, in-process
/// envelopes only — wire input goes through try_unpack_batch).
std::vector<Message> unpack_batch(const Message& envelope);

/// Total variant for untrusted (wire) envelopes: nullopt instead of aborting
/// on any framing defect.
std::optional<std::vector<Message>> try_unpack_batch(const Message& envelope);

/// True when `payload` parses as a valid kBatch payload: count ≥ 1, every
/// frame in bounds, no trailing bytes, and every inner type is one that may
/// travel inside an envelope (protocol traffic only — no nested batches,
/// acks, or runtime-control types).
bool batch_payload_well_formed(std::span<const std::byte> payload);

}  // namespace dsm
