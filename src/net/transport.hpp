// Pluggable transport backends. The Network owns all fabric *semantics* —
// sequencing, acks, retransmission, dedup, reorder, chaos, virtual-time
// stamping — and hands each finished wire attempt to a Transport, whose only
// job is moving already-framed datagrams from a source endpoint to a
// destination endpoint:
//
//   InprocTransport  hands the datagram straight back to the receiving side
//                    of the same Network object (the historical in-process
//                    fabric; bit-identical to the pre-transport wire).
//   UdpTransport     serializes the datagram (64-byte header + payload,
//                    FNV-1a checksummed) onto a real UDP socket; a receiver
//                    thread per hosted node decodes and feeds arrivals back
//                    into the Network. Kernel-level loss, duplication, and
//                    reordering are recovered by the same reliable sublayer
//                    that chaos testing exercises in-process.
//
// Chaos stays *above* the seam (in Network::wire_attempt / arrive), so the
// same seeds drive identical fault decisions on every backend.
//
// With `TransportConfig::local_node` set, the process hosts exactly one node
// and peers are separate processes (launched by tools/dsmrun); everything
// else about the Network is unchanged. See DESIGN.md "Transport backends".
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace dsm {

class Network;

enum class TransportKind : std::uint8_t {
  kInproc,  ///< in-process handoff (default; the historical fabric)
  kUdp,     ///< real UDP sockets (loopback single-process or dsmrun multi-process)
};

const char* to_string(TransportKind kind);

/// Which backend moves datagrams, and — for multi-process UDP runs — which
/// node this process hosts and where its peers listen.
struct TransportConfig {
  TransportKind kind = TransportKind::kInproc;
  /// kNoNode = this process hosts every node (single-process). Otherwise
  /// the one node this process is, with peers in separate processes.
  NodeId local_node = kNoNode;
  /// "host:port" per node, length n_nodes (multi-process UDP only; the
  /// single-process UDP backend binds ephemeral loopback ports itself).
  std::vector<std::string> peers;
  /// Pre-bound UDP socket for `local_node`, inherited from dsmrun (-1 =
  /// bind `peers[local_node]` ourselves). Fd passing avoids port races and
  /// keeps the endpoint alive across sequential System instances.
  int socket_fd = -1;

  bool multiprocess() const { return local_node != kNoNode; }
};

/// A transport backend: moves one already-framed wire attempt. Implementations
/// must be safe against concurrent ship() calls (service threads, app threads,
/// and the retransmit daemon all send).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string_view name() const = 0;

  /// Sender-side handoff of one wire attempt. The Network has already
  /// applied chaos and stamped `arrival_time`; the transport just moves the
  /// datagram (and may silently lose it — the reliable sublayer recovers).
  virtual void ship(Message msg, std::uint32_t attempt) = 0;

  /// True when delivery acknowledgements must travel on the wire as kAck
  /// datagrams. The in-process backend completes the sender's in-flight
  /// entry directly instead (both sides share one address space).
  virtual bool wire_acks() const = 0;

  /// Starts receiver machinery (called once, after the owning Network is
  /// fully constructed). stop() must be idempotent.
  virtual void start() {}
  virtual void stop() {}

  /// "host:port" per hosted node (empty for in-process). Lets tests inject
  /// raw datagrams at the socket.
  virtual std::vector<std::string> endpoints() const { return {}; }

  virtual void debug_dump(std::ostream& os) const;
};

// --- wire datagram codec ----------------------------------------------------
// Little-endian, fixed 64-byte header:
//   u32 magic | u16 version | u16 type | u32 src | u32 dst | u32 epoch |
//   u32 attempt | u64 seq | u64 send_time | u64 arrival_time | u64 ack_upto |
//   u32 payload_len | u32 checksum | payload bytes
// `attempt` travels so receiver-side chaos decisions (ack drop, pause) are
// keyed identically on both backends. `epoch` identifies the Network
// instance datagrams belong to: sequential System instances on one inherited
// socket (dsmrun benches) reject each other's stragglers. The checksum is
// FNV-1a over header (checksum field excluded) + payload; any truncation or
// single-bit flip is rejected deterministically.

constexpr std::uint32_t kWireMagic = 0x44534D57;  // "DSMW"
constexpr std::uint16_t kWireVersion = 1;
constexpr std::size_t kWireHeaderSize = 64;
/// Largest datagram ship() accepts (UDP practical limit on loopback).
constexpr std::size_t kMaxDatagramSize = 60 * 1024;

struct WireDatagram {
  Message msg;
  std::uint32_t attempt = 0;
  std::uint32_t epoch = 0;
};

std::vector<std::byte> encode_datagram(const Message& msg, std::uint32_t attempt,
                                       std::uint32_t epoch);

/// Total parser for untrusted input: nullopt (never abort) on any malformed
/// datagram — short buffer, bad magic/version/checksum, length mismatch,
/// out-of-range endpoints, a type that never travels on the wire, or a
/// structurally invalid kBatch payload. Callers count rejects as
/// `net.malformed_dropped`.
std::optional<WireDatagram> decode_datagram(std::span<const std::byte> bytes,
                                            std::size_t n_nodes);

// --- construction & environment --------------------------------------------

/// Builds the configured backend. `net` receives arrivals via
/// Network::receive; `stats` carries the transport's counters
/// (net.malformed_dropped, net.stale_dropped, net.send_errors).
std::unique_ptr<Transport> make_transport(const TransportConfig& cfg,
                                          std::size_t n_nodes, Network* net,
                                          StatsRegistry* stats);

/// Applies a dsmrun launch: reads DSM_TRANSPORT, DSM_NODES, DSM_NODE,
/// DSM_PEERS, and DSM_SOCKET_FD. Returns false (untouched) when
/// DSM_TRANSPORT is unset; aborts on a malformed environment. On success
/// `*n_nodes` is set to the launch's node count.
bool transport_from_env(TransportConfig& cfg, std::size_t* n_nodes);

/// Conformance-suite override: TUTORDSM_TRANSPORT=udp|inproc selects the
/// backend for programs that didn't pick one explicitly. Returns true when
/// the variable was set and applied.
bool transport_kind_from_env(TransportConfig& cfg);

/// Internal: the UDP backend factory (udp_transport.cpp).
std::unique_ptr<Transport> make_udp_transport(const TransportConfig& cfg,
                                              std::size_t n_nodes, Network* net,
                                              StatsRegistry* stats);

}  // namespace dsm
