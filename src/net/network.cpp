#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dsm {

void Mailbox::push(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DSM_CHECK_MSG(!closed_, "push to closed mailbox");
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

std::optional<Message> Mailbox::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<Message> Mailbox::try_pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

void Mailbox::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

namespace {

constexpr auto kNever = std::chrono::steady_clock::time_point::max();

/// Min-heap order for Network::Delayed (generic: the type is private).
struct DelayedOrder {
  bool operator()(const auto& a, const auto& b) const { return a.due > b.due; }
};

}  // namespace

Network::Network(std::size_t n_nodes, LinkModel link, StatsRegistry* stats,
                 ReliabilityConfig reliability, ChaosConfig chaos, Tracer* tracer)
    : link_(link),
      stats_(stats),
      tracer_(tracer),
      reliability_(reliability),
      chaos_(chaos),
      mailboxes_(n_nodes),
      links_(n_nodes * n_nodes),
      pause_until_(n_nodes, SteadyTime::min()),
      dropped_(stats->counter("net.dropped")),
      retransmits_(stats->counter("net.retransmits")),
      dups_suppressed_(stats->counter("net.dups_suppressed")),
      acks_(stats->counter("net.acks")),
      acks_dropped_(stats->counter("net.acks_dropped")),
      gave_up_(stats->counter("net.gave_up")),
      delayed_count_(stats->counter("net.chaos_delayed")),
      pauses_(stats->counter("net.chaos_pauses")) {
  DSM_CHECK(n_nodes > 0);
  DSM_CHECK(stats != nullptr);
  daemon_ = std::thread([this] { daemon_loop(); });
}

Network::~Network() { stop_daemon(); }

void Network::send(Message msg) {
  DSM_CHECK_MSG(msg.dst < mailboxes_.size(), "send to unknown node " << msg.dst);
  DSM_CHECK_MSG(msg.src < mailboxes_.size(), "send from unknown node " << msg.src);

  if (!reliable_eligible(msg)) {
    // Control traffic and loopback: an in-process self-send cannot be lost.
    msg.seq = Message::kNoSeq;
    msg.arrival_time = msg.send_time + link_.cost(msg.src, msg.dst, msg.wire_size());
    if (tracer_ != nullptr && msg.type != MsgType::kShutdown &&
        msg.type != MsgType::kWakeup) {
      tracer_->instant(msg.src, TraceCat::kNet, "send", msg.send_time, "dst", msg.dst,
                       "seq", msg.seq);
    }
    deliver(std::move(msg));
    return;
  }

  if (reliability_.enabled) {
    {
      const std::lock_guard<std::mutex> lock(links_mutex_);
      msg.seq = links_[link_index(msg.src, msg.dst)].next_seq++;
    }
    bool daemon_was_idle;
    {
      const std::lock_guard<std::mutex> lock(flight_mutex_);
      daemon_was_idle = in_flight_.empty() && delayed_.empty();
      in_flight_.emplace(
          FlightKey{link_index(msg.src, msg.dst), msg.seq},
          InFlight{msg, 0,
                   std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(reliability_.rto_ms)});
    }
    // A fresh entry's deadline is never earlier than an existing one's
    // (backoff only lengthens), so the daemon needs waking only from idle.
    if (daemon_was_idle) flight_cv_.notify_one();
  } else {
    msg.seq = Message::kNoSeq;
  }
  if (tracer_ != nullptr) {
    tracer_->instant(msg.src, TraceCat::kNet, "send", msg.send_time, "dst", msg.dst,
                     "seq", msg.seq);
  }
  wire_attempt(std::move(msg), 0);
}

void Network::wire_attempt(Message msg, std::uint32_t attempt) {
  if (drop_hook_ && drop_hook_(msg)) {
    dropped_.add();
    return;
  }
  if (chaos_.should_drop(msg, attempt)) {
    dropped_.add();
    return;
  }
  const std::uint32_t delay_us = chaos_.delay_us(msg, attempt);

  msg.arrival_time =
      msg.send_time + link_.cost(msg.src, msg.dst, msg.wire_size()) +
      static_cast<VirtualTime>(attempt) * reliability_.rto_virtual_ns +
      static_cast<VirtualTime>(delay_us) * 1000;

  if (chaos_.should_duplicate(msg, attempt)) {
    // The clone takes the direct path, so a delayed original is overtaken —
    // the reorder buffer and dedup both get exercised.
    arrive(msg, attempt);
  }
  if (delay_us > 0) {
    delayed_count_.add();
    defer(std::move(msg), attempt,
          std::chrono::steady_clock::now() + std::chrono::microseconds(delay_us));
    return;
  }
  arrive(std::move(msg), attempt);
}

void Network::arrive(Message msg, std::uint32_t attempt) {
  {
    const std::lock_guard<std::mutex> lock(flight_mutex_);
    const SteadyTime paused = pause_until_[msg.dst];
    if (paused > std::chrono::steady_clock::now()) {
      delayed_.push_back(Delayed{paused, std::move(msg), attempt});
      std::push_heap(delayed_.begin(), delayed_.end(), DelayedOrder{});
      flight_cv_.notify_one();
      return;
    }
  }
  if (chaos_.should_pause_dst(msg, attempt)) {
    pauses_.add();
    inject_pause(msg.dst, chaos_.config().pause_us);
  }

  if (msg.seq == Message::kNoSeq || !reliability_.enabled) {
    deliver(std::move(msg));
    return;
  }

  // Transport-level ack: completing the sender's in-flight entry. A lost
  // ack leaves the entry live — the daemon retransmits, we dedup below.
  if (chaos_.should_drop_ack(msg, attempt)) {
    acks_dropped_.add();
  } else {
    complete_inflight(msg);
  }

  const std::lock_guard<std::mutex> lock(links_mutex_);
  LinkState& st = links_[link_index(msg.src, msg.dst)];
  if (msg.seq < st.expected) {
    dups_suppressed_.add();
    return;
  }
  if (msg.seq > st.expected) {
    // Hole in the link: park until the gap fills (retransmit or delayed
    // original). emplace refuses duplicates of an already-parked seq.
    if (!st.reorder.emplace(msg.seq, std::move(msg)).second) dups_suppressed_.add();
    return;
  }
  deliver(std::move(msg));
  ++st.expected;
  for (auto it = st.reorder.begin();
       it != st.reorder.end() && it->first == st.expected;
       it = st.reorder.erase(it), ++st.expected) {
    deliver(std::move(it->second));
  }
}

void Network::deliver(Message msg) {
  messages_sent_.add();
  if (msg.type == MsgType::kShutdown || msg.type == MsgType::kWakeup) {
    // Runtime control, not protocol traffic: deliver but do not account.
    mailboxes_[msg.dst].push(std::move(msg));
    return;
  }
  if (delivery_hook_) delivery_hook_(msg);
  const std::size_t bytes = msg.wire_size();
  if (tracer_ != nullptr) {
    // The transit leg: virtual span from the sender's stamp to the modeled
    // arrival, on the destination's "net" track. to_string returns a
    // literal, so .data() is a stable NUL-terminated name.
    tracer_->complete(msg.dst, TraceCat::kNet, to_string(msg.type).data(),
                      msg.send_time, msg.arrival_time, "src", msg.src, "seq", msg.seq);
  }
  stats_->counter("net.msgs").add();
  stats_->counter("net.bytes").add(bytes);
  stats_->counter(std::string("net.msgs.") + std::string(to_string(msg.type))).add();
  stats_->histogram("net.msg_size").record(bytes);
  if (log_enabled(LogLevel::kTrace)) {
    DSM_LOG_TRACE << "deliver " << to_string(msg.type) << ' ' << msg.src << "->"
                  << msg.dst << " seq=" << msg.seq << " bytes=" << bytes
                  << " t=" << msg.send_time;
  }
  mailboxes_[msg.dst].push(std::move(msg));
}

void Network::complete_inflight(const Message& msg) {
  const std::lock_guard<std::mutex> lock(flight_mutex_);
  if (in_flight_.erase(FlightKey{link_index(msg.src, msg.dst), msg.seq}) > 0) {
    acks_.add();
  }
}

void Network::defer(Message msg, std::uint32_t attempt, SteadyTime due) {
  {
    const std::lock_guard<std::mutex> lock(flight_mutex_);
    delayed_.push_back(Delayed{due, std::move(msg), attempt});
    std::push_heap(delayed_.begin(), delayed_.end(), DelayedOrder{});
  }
  flight_cv_.notify_one();
}

void Network::inject_pause(NodeId node, std::uint32_t us) {
  DSM_CHECK(node < mailboxes_.size());
  const std::lock_guard<std::mutex> lock(flight_mutex_);
  pause_until_[node] = std::max(
      pause_until_[node], std::chrono::steady_clock::now() + std::chrono::microseconds(us));
}

void Network::daemon_loop() {
  std::unique_lock<std::mutex> lock(flight_mutex_);
  while (!stopping_) {
    SteadyTime next = kNever;
    if (!delayed_.empty()) next = std::min(next, delayed_.front().due);
    for (const auto& [key, entry] : in_flight_) next = std::min(next, entry.deadline);

    if (next == kNever) {
      flight_cv_.wait(lock);
    } else {
      flight_cv_.wait_until(lock, next);
    }
    if (stopping_) break;

    const auto now = std::chrono::steady_clock::now();

    std::vector<Delayed> due_now;
    while (!delayed_.empty() && delayed_.front().due <= now) {
      std::pop_heap(delayed_.begin(), delayed_.end(), DelayedOrder{});
      due_now.push_back(std::move(delayed_.back()));
      delayed_.pop_back();
    }

    std::vector<std::pair<Message, std::uint32_t>> resends;
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      InFlight& entry = it->second;
      if (entry.deadline > now) {
        ++it;
        continue;
      }
      if (entry.attempt >= reliability_.max_retries) {
        gave_up_.add();
        DSM_LOG_WARN << "reliable: giving up on " << to_string(entry.msg.type) << ' '
                     << entry.msg.src << "->" << entry.msg.dst << " seq="
                     << entry.msg.seq << " after " << entry.attempt << " retransmits";
        it = in_flight_.erase(it);
        continue;
      }
      ++entry.attempt;
      const double scaled = static_cast<double>(reliability_.rto_ms) *
                            std::pow(reliability_.backoff, entry.attempt);
      const auto rto_ms = std::min<double>(scaled, reliability_.rto_max_ms);
      entry.deadline = now + std::chrono::microseconds(
                                 static_cast<std::int64_t>(rto_ms * 1000.0));
      resends.emplace_back(entry.msg, entry.attempt);
      ++it;
    }

    lock.unlock();
    for (auto& d : due_now) arrive(std::move(d.msg), d.attempt);
    for (auto& [msg, attempt] : resends) {
      retransmits_.add();
      if (tracer_ != nullptr) {
        tracer_->instant(msg.src, TraceCat::kNet, "retransmit", msg.send_time, "seq",
                         msg.seq, "attempt", attempt);
      }
      wire_attempt(msg, attempt);
    }
    lock.lock();
  }
}

void Network::stop_daemon() {
  {
    const std::lock_guard<std::mutex> lock(flight_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  flight_cv_.notify_all();
  if (daemon_.joinable()) daemon_.join();
}

void Network::multicast(std::span<const NodeId> destinations, const Message& prototype) {
  for (const NodeId dst : destinations) {
    Message copy = prototype;
    copy.dst = dst;
    send(std::move(copy));
  }
}

std::optional<Message> Network::recv(NodeId node) {
  DSM_CHECK(node < mailboxes_.size());
  return mailboxes_[node].pop();
}

bool Network::idle() const {
  const std::lock_guard<std::mutex> lock(flight_mutex_);
  return in_flight_.empty() && delayed_.empty();
}

void Network::debug_dump(std::ostream& os) const {
  {
    const std::lock_guard<std::mutex> lock(flight_mutex_);
    os << "  net: in-flight=" << in_flight_.size() << " delayed=" << delayed_.size()
       << '\n';
    for (const auto& [key, entry] : in_flight_) {
      os << "    unacked " << to_string(entry.msg.type) << ' ' << entry.msg.src << "->"
         << entry.msg.dst << " seq=" << entry.msg.seq << " attempt=" << entry.attempt
         << '\n';
    }
  }
  {
    const std::lock_guard<std::mutex> lock(links_mutex_);
    const std::size_t n = mailboxes_.size();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const LinkState& st = links_[i];
      if (st.next_seq == 0 && st.reorder.empty()) continue;
      if (!st.reorder.empty() || st.expected != st.next_seq) {
        os << "    link " << i / n << "->" << i % n << ": sent=" << st.next_seq
           << " delivered=" << st.expected << " parked=" << st.reorder.size() << '\n';
      }
    }
  }
  for (std::size_t node = 0; node < mailboxes_.size(); ++node) {
    os << "    mailbox[" << node << "] backlog=" << mailboxes_[node].size() << '\n';
  }
}

void Network::shutdown() {
  stop_daemon();
  {
    const std::lock_guard<std::mutex> lock(flight_mutex_);
    in_flight_.clear();
    delayed_.clear();
  }
  for (auto& mb : mailboxes_) mb.close();
}

}  // namespace dsm
