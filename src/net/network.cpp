#include "net/network.hpp"

#include <string>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace dsm {

void Mailbox::push(Message msg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DSM_CHECK_MSG(!closed_, "push to closed mailbox");
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

std::optional<Message> Mailbox::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<Message> Mailbox::try_pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

void Mailbox::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

Network::Network(std::size_t n_nodes, LinkModel link, StatsRegistry* stats)
    : link_(link), stats_(stats), mailboxes_(n_nodes) {
  DSM_CHECK(n_nodes > 0);
  DSM_CHECK(stats != nullptr);
}

void Network::send(Message msg) {
  DSM_CHECK_MSG(msg.dst < mailboxes_.size(), "send to unknown node " << msg.dst);
  DSM_CHECK_MSG(msg.src < mailboxes_.size(), "send from unknown node " << msg.src);
  if (drop_hook_ && drop_hook_(msg)) {
    stats_->counter("net.dropped").add();
    return;
  }
  const std::size_t bytes = msg.wire_size();
  msg.arrival_time = msg.send_time + link_.cost(msg.src, msg.dst, bytes);

  messages_sent_.add();
  if (msg.type == MsgType::kShutdown || msg.type == MsgType::kWakeup) {
    // Runtime control, not protocol traffic: deliver but do not account.
    mailboxes_[msg.dst].push(std::move(msg));
    return;
  }
  stats_->counter("net.msgs").add();
  stats_->counter("net.bytes").add(bytes);
  stats_->counter(std::string("net.msgs.") + std::string(to_string(msg.type))).add();
  stats_->histogram("net.msg_size").record(bytes);
  if (log_enabled(LogLevel::kTrace)) {
    DSM_LOG_TRACE << "send " << to_string(msg.type) << ' ' << msg.src << "->" << msg.dst
                  << " bytes=" << bytes << " t=" << msg.send_time;
  }

  mailboxes_[msg.dst].push(std::move(msg));
}

void Network::multicast(std::span<const NodeId> destinations, const Message& prototype) {
  for (const NodeId dst : destinations) {
    Message copy = prototype;
    copy.dst = dst;
    send(std::move(copy));
  }
}

std::optional<Message> Network::recv(NodeId node) {
  DSM_CHECK(node < mailboxes_.size());
  return mailboxes_[node].pop();
}

void Network::shutdown() {
  for (auto& mb : mailboxes_) mb.close();
}

}  // namespace dsm
