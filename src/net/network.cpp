#include "net/network.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iterator>
#include <string>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "trace/trace.hpp"

namespace dsm {

void Mailbox::push(Message msg) {
  {
    const MutexLock lock(mutex_);
    DSM_CHECK_MSG(!closed_, "push to closed mailbox");
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

std::optional<Message> Mailbox::pop() {
  const MutexLock lock(mutex_);
  while (!closed_ && queue_.empty()) cv_.wait(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<Message> Mailbox::try_pop() {
  const MutexLock lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::deque<Message> Mailbox::drain() {
  const MutexLock lock(mutex_);
  while (!closed_ && queue_.empty()) cv_.wait(mutex_);
  std::deque<Message> out;
  out.swap(queue_);
  return out;
}

void Mailbox::close() {
  {
    const MutexLock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::size() const {
  const MutexLock lock(mutex_);
  return queue_.size();
}

namespace {

constexpr auto kNever = realclock::never();

/// Min-heap order for Network::Delayed (generic: the type is private).
struct DelayedOrder {
  bool operator()(const auto& a, const auto& b) const { return a.due > b.due; }
};

}  // namespace

thread_local Network::BatchScope* Network::active_scope_ = nullptr;

Network::Network(std::size_t n_nodes, LinkModel link, StatsRegistry* stats,
                 ReliabilityConfig reliability, ChaosConfig chaos, WireConfig wire,
                 Tracer* tracer, TransportConfig transport)
    : link_(link),
      stats_(stats),
      tracer_(tracer),
      reliability_(reliability),
      chaos_(chaos),
      wire_(wire),
      transport_cfg_(std::move(transport)),
      liveness_(n_nodes),
      mailboxes_(n_nodes),
      send_seq_(n_nodes * n_nodes),
      links_(n_nodes * n_nodes),
      pause_until_(n_nodes, SteadyTime::min()),
      dropped_(stats->counter("net.dropped")),
      retransmits_(stats->counter("net.retransmits")),
      dups_suppressed_(stats->counter("net.dups_suppressed")),
      acks_(stats->counter("net.acks")),
      acks_dropped_(stats->counter("net.acks_dropped")),
      gave_up_(stats->counter("net.gave_up")),
      delayed_count_(stats->counter("net.chaos_delayed")),
      pauses_(stats->counter("net.chaos_pauses")),
      datagrams_(stats->counter("net.datagrams")),
      batches_(stats->counter("net.batches")),
      batched_msgs_(stats->counter("net.batched_msgs")),
      acks_piggybacked_(stats->counter("net.acks_piggybacked")),
      acks_standalone_(stats->counter("net.acks_standalone")),
      acks_wire_(stats->counter("net.acks_wire")),
      bytes_saved_(stats->counter("net.bytes_saved")),
      dead_dropped_(stats->counter("net.dead_dropped")),
      peer_dead_(stats->counter("net.peer_dead")) {
  DSM_CHECK(n_nodes > 0);
  DSM_CHECK(stats != nullptr);
  transport_ = make_transport(transport_cfg_, n_nodes, this, stats);
  transport_->start();
  daemon_ = std::thread([this] { daemon_loop(); });
}

Network::~Network() {
  // Receiver threads call back into arrive/deliver; join them before any
  // fabric state (daemon, mailboxes) goes away.
  transport_->stop();
  stop_daemon();
}

void Network::receive(Message msg, std::uint32_t attempt) {
  arrive(std::move(msg), attempt);
}

Network::BatchScope::BatchScope(Network* net) {
  // Inert when batching is off or another scope already owns this thread
  // (the outer scope keeps collecting; nested flushes would fragment it).
  if (net == nullptr || !net->wire_.batching || !net->reliability_.enabled ||
      active_scope_ != nullptr) {
    return;
  }
  net_ = net;
  active_scope_ = this;
}

Network::BatchScope::~BatchScope() {
  if (net_ == nullptr) return;
  flush();
  active_scope_ = nullptr;
}

void Network::BatchScope::flush() {
  if (net_ == nullptr || staged_.empty()) return;
  net_->flush_staged(staged_);
  staged_.clear();
}

void Network::flush() {
  if (active_scope_ != nullptr && active_scope_->net_ == this) active_scope_->flush();
}

bool Network::dead_drop(const Message& msg) {
  if (!ft_) return false;
  // Self-sends and runtime control always go through: a dead node's service
  // thread still drains its mailbox (it is the restart executor).
  if (msg.src == msg.dst || msg.type == MsgType::kShutdown ||
      msg.type == MsgType::kWakeup) {
    return false;
  }
  if (liveness_.alive(msg.src) && liveness_.alive(msg.dst)) return false;
  dead_dropped_.add();
  return true;
}

void Network::send(Message msg) {
  DSM_CHECK_MSG(msg.dst < mailboxes_.size(), "send to unknown node " << msg.dst);
  DSM_CHECK_MSG(msg.src < mailboxes_.size(), "send from unknown node " << msg.src);

  // A dead endpoint means the message can never be delivered or acked: drop
  // before seq assignment so the link's seq space stays contiguous for a
  // later restart.
  if (dead_drop(msg)) return;

  if (!reliable_eligible(msg)) {
    // Control traffic and loopback: an in-process self-send cannot be lost.
    msg.seq = Message::kNoSeq;
    msg.arrival_time = msg.send_time + link_.cost(msg.src, msg.dst, msg.wire_size());
    if (tracer_ != nullptr && msg.type != MsgType::kShutdown &&
        msg.type != MsgType::kWakeup) {
      tracer_->instant(msg.src, TraceCat::kNet, "send", msg.send_time, "dst", msg.dst,
                       "seq", msg.seq);
    }
    deliver(std::move(msg));
    return;
  }

  if (BatchScope* scope = active_scope_; scope != nullptr && scope->net_ == this) {
    scope->staged_.push_back(std::move(msg));
    return;
  }
  send_now(std::move(msg));
}

void Network::send_now(Message msg) {
  if (reliability_.enabled) {
    msg.seq = send_seq_[link_index(msg.src, msg.dst)].fetch_add(
        1, std::memory_order_relaxed);
    track_inflight(msg, 1);
  } else {
    msg.seq = Message::kNoSeq;
  }
  if (tracer_ != nullptr) {
    tracer_->instant(msg.src, TraceCat::kNet, "send", msg.send_time, "dst", msg.dst,
                     "seq", msg.seq);
  }
  datagrams_.add();
  wire_attempt(std::move(msg), 0);
}

void Network::flush_staged(std::vector<Message>& staged) {
  // Group by (src,dst) preserving first-appearance order, so per-link FIFO
  // matches staging order.
  std::vector<std::pair<std::size_t, std::vector<Message>>> groups;
  for (Message& m : staged) {
    if (dead_drop(m)) continue;  // a peer may have died since staging
    const std::size_t key = link_index(m.src, m.dst);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [key](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.emplace_back(key, std::vector<Message>{});
      it = std::prev(groups.end());
    }
    it->second.push_back(std::move(m));
  }

  for (auto& [key, msgs] : groups) {
    std::size_t i = 0;
    while (i < msgs.size()) {
      // Chunk greedily under the msgs/bytes caps (always take ≥ 1).
      std::size_t j = i;
      std::size_t bytes = 0;
      while (j < msgs.size() && j - i < wire_.max_batch_msgs &&
             (j == i || bytes + msgs[j].wire_size() <= wire_.max_batch_bytes)) {
        bytes += msgs[j].wire_size();
        ++j;
      }
      if (j - i == 1) {
        // A batch of one would only add framing; send it plain.
        send_now(std::move(msgs[i]));
        i = j;
        continue;
      }

      std::vector<Message> chunk(
          std::make_move_iterator(msgs.begin() + static_cast<std::ptrdiff_t>(i)),
          std::make_move_iterator(msgs.begin() + static_cast<std::ptrdiff_t>(j)));
      i = j;
      const NodeId src = chunk.front().src;
      const NodeId dst = chunk.front().dst;
      const std::uint64_t base =
          send_seq_[key].fetch_add(chunk.size(), std::memory_order_relaxed);
      // Inner messages share the envelope's departure instant: the batch
      // leaves when its latest member was staged.
      VirtualTime departs = 0;
      for (const Message& m : chunk) departs = std::max(departs, m.send_time);
      for (std::size_t k = 0; k < chunk.size(); ++k) {
        chunk[k].seq = base + k;
        chunk[k].send_time = departs;
      }

      Message env;
      env.type = MsgType::kBatch;
      env.src = src;
      env.dst = dst;
      env.seq = base;
      env.send_time = departs;
      env.payload = pack_batch(chunk);

      std::size_t unbatched_bytes = 0;
      for (const Message& m : chunk) unbatched_bytes += m.wire_size();
      if (unbatched_bytes > env.wire_size()) {
        bytes_saved_.add(unbatched_bytes - env.wire_size());
      }
      if (tracer_ != nullptr) {
        for (const Message& m : chunk) {
          tracer_->instant(src, TraceCat::kNet, "send", departs, "dst", dst, "seq",
                           m.seq);
        }
      }
      batches_.add();
      batched_msgs_.add(chunk.size());
      track_inflight(env, static_cast<std::uint32_t>(chunk.size()));
      datagrams_.add();
      wire_attempt(std::move(env), 0);
    }
  }
}

void Network::track_inflight(Message& msg, std::uint32_t count) {
  bool daemon_was_idle;
  {
    const MutexLock lock(flight_mutex_);
    if (wire_.piggyback_acks) {
      // Reverse-direction traffic carries the pending cumulative ack.
      const auto it = pending_acks_.find(link_index(msg.dst, msg.src));
      if (it != pending_acks_.end()) {
        msg.ack_upto = std::max(msg.ack_upto, it->second.upto);
        pending_acks_.erase(it);
        acks_piggybacked_.add();
      }
    }
    daemon_was_idle = in_flight_.empty() && delayed_.empty() && pending_acks_.empty();
    in_flight_.emplace(FlightKey{link_index(msg.src, msg.dst), msg.seq},
                       InFlight{msg, count, 0,
                                realclock::now() +
                                    std::chrono::milliseconds(reliability_.rto_ms)});
  }
  // A fresh entry's deadline is never earlier than an existing one's
  // (backoff only lengthens), so the daemon needs waking only from idle.
  if (daemon_was_idle) flight_cv_.notify_one();
}

void Network::wire_attempt(Message msg, std::uint32_t attempt) {
  if (drop_hook_ && drop_hook_(msg)) {
    dropped_.add();
    return;
  }
  // Cumulative kAck datagrams are chaos-exempt: their chaos key is
  // degenerate (every ack on a link has seq == kNoSeq), so a seeded drop
  // decision would kill *all* acks on that link forever — a modeling
  // artifact, not a fault. Ack loss is modeled receiver-side instead
  // (should_drop_ack), which keys on the data message being acked.
  const bool chaos_eligible = msg.type != MsgType::kAck;
  if (chaos_eligible && chaos_.should_drop(msg, attempt)) {
    dropped_.add();
    return;
  }
  const std::uint32_t delay_us = chaos_eligible ? chaos_.delay_us(msg, attempt) : 0;

  msg.arrival_time =
      msg.send_time + link_.cost(msg.src, msg.dst, msg.wire_size()) +
      static_cast<VirtualTime>(attempt) * reliability_.rto_virtual_ns +
      static_cast<VirtualTime>(delay_us) * 1000;

  if (chaos_eligible && chaos_.should_duplicate(msg, attempt)) {
    // The clone takes the direct path, so a delayed original is overtaken —
    // the reorder buffer and dedup both get exercised.
    transport_->ship(msg, attempt);
  }
  if (delay_us > 0) {
    delayed_count_.add();
    defer(std::move(msg), attempt,
          realclock::now() + std::chrono::microseconds(delay_us),
          /*pre_wire=*/true);
    return;
  }
  transport_->ship(std::move(msg), attempt);
}

void Network::arrive(Message msg, std::uint32_t attempt) {
  {
    const MutexLock lock(flight_mutex_);
    const SteadyTime paused = pause_until_[msg.dst];
    if (paused > realclock::now()) {
      delayed_.push_back(Delayed{paused, std::move(msg), attempt, /*pre_wire=*/false});
      std::push_heap(delayed_.begin(), delayed_.end(), DelayedOrder{});
      flight_cv_.notify_one();
      return;
    }
  }
  if (chaos_.should_pause_dst(msg, attempt)) {
    pauses_.add();
    inject_pause(msg.dst, chaos_.config().pause_us);
  }

  // A piggybacked cumulative ack completes reverse-link flight entries no
  // matter what happens to the carrying message below (the header arrived).
  if (msg.ack_upto > 0 && reliability_.enabled) {
    complete_upto(link_index(msg.dst, msg.src), msg.ack_upto);
  }
  if (msg.type == MsgType::kAck) return;  // transport-internal, never delivered

  if (msg.seq == Message::kNoSeq || !reliability_.enabled) {
    deliver(std::move(msg));
    return;
  }

  // Transport-level ack: completing the sender's in-flight entry. A lost
  // ack leaves the entry live — the daemon retransmits, we dedup below.
  // In piggyback mode the ack is recorded per link instead and rides the
  // next reverse-direction send (or a delayed standalone kAck). On a
  // wire-ack transport (UDP) the sender's flight table may be in another
  // process — the ack must travel as a kAck datagram (below) either way.
  const bool ack_lost = chaos_.should_drop_ack(msg, attempt);
  if (ack_lost) {
    acks_dropped_.add();
  } else if (!wire_.piggyback_acks && !transport_->wire_acks()) {
    complete_inflight(msg);
  }

  const std::size_t link = link_index(msg.src, msg.dst);
  std::uint64_t ack_basis = 0;
  {
    const MutexLock lock(links_mutex_);
    LinkState& st = links_[link];
    const std::uint64_t span = msg.type == MsgType::kBatch ? batch_count(msg) : 1;
    if (msg.seq + span <= st.expected) {
      dups_suppressed_.add();
    } else if (msg.seq > st.expected) {
      // Hole in the link: park until the gap fills (retransmit or delayed
      // original). emplace refuses duplicates of an already-parked seq.
      if (!st.reorder.emplace(msg.seq, std::move(msg)).second) dups_suppressed_.add();
    } else {
      // Envelopes are retransmitted whole with a stable span, so an arrival
      // is either fully duplicate, fully future, or lands exactly on
      // `expected` — partial overlap means transport corruption.
      DSM_CHECK_MSG(msg.seq == st.expected,
                    "seq range straddles expected=" << st.expected);
      accept_front(st, std::move(msg));
      while (!st.reorder.empty() && st.reorder.begin()->first == st.expected) {
        Message next = std::move(st.reorder.begin()->second);
        st.reorder.erase(st.reorder.begin());
        accept_front(st, std::move(next));
      }
    }
    ack_basis = st.expected;
  }
  if (ack_lost) return;
  if (wire_.piggyback_acks) {
    note_pending_ack(link, ack_basis);
  } else if (transport_->wire_acks()) {
    // One cumulative ack per accepted datagram; duplicates re-ack, so a
    // lost ack is recovered by the very next retransmit round-trip.
    send_wire_ack(link, ack_basis);
  }
}

void Network::send_wire_ack(std::size_t link, std::uint64_t upto) {
  if (upto == 0) return;  // 0 is the header's "no ack" sentinel
  const std::size_t n = mailboxes_.size();
  Message ack;
  ack.type = MsgType::kAck;
  ack.src = static_cast<NodeId>(link % n);  // data receiver
  ack.dst = static_cast<NodeId>(link / n);  // data sender
  ack.seq = Message::kNoSeq;
  ack.ack_upto = upto;
  acks_wire_.add();
  datagrams_.add();
  wire_attempt(std::move(ack), 0);
}

void Network::accept_front(LinkState& st, Message msg) {
  if (msg.type == MsgType::kBatch) {
    std::vector<Message> inner = unpack_batch(msg);
    if (batch_hook_) batch_hook_(msg, static_cast<std::uint32_t>(inner.size()));
    if (tracer_ != nullptr) {
      tracer_->instant(msg.dst, TraceCat::kNet, "batch", msg.send_time, "src", msg.src,
                       "count", static_cast<std::uint64_t>(inner.size()));
    }
    st.expected += inner.size();
    for (Message& m : inner) deliver(std::move(m));
    return;
  }
  ++st.expected;
  deliver(std::move(msg));
}

void Network::deliver(Message msg) {
  // FT: protocol traffic addressed to a dead node is dropped at the door
  // (a crashed machine receives nothing). Control and liveness posts still
  // land — the dead node's service thread is the restart executor.
  if (ft_ && msg.src != msg.dst && !liveness_.alive(msg.dst) &&
      msg.type != MsgType::kShutdown && msg.type != MsgType::kWakeup &&
      msg.type != MsgType::kExitReady && msg.type != MsgType::kExitGo &&
      msg.type != MsgType::kPeerDown && msg.type != MsgType::kPeerUp) {
    dead_dropped_.add();
    return;
  }
  // kShutdown is excluded from the quiescence count: the service loop keeps
  // draining after it (multi-process arrivals can trail the local stop), so
  // counting it would skew messages_sent vs processed across runs.
  if (msg.type != MsgType::kShutdown) messages_sent_.add();
  if (msg.type == MsgType::kShutdown || msg.type == MsgType::kWakeup ||
      msg.type == MsgType::kExitReady || msg.type == MsgType::kExitGo) {
    // Runtime control, not protocol traffic: deliver but do not account.
    mailboxes_[msg.dst].push(std::move(msg));
    return;
  }
  if (delivery_hook_) delivery_hook_(msg);
  const std::size_t bytes = msg.wire_size();
  if (tracer_ != nullptr) {
    // The transit leg: virtual span from the sender's stamp to the modeled
    // arrival, on the destination's "net" track. to_string returns a
    // literal, so .data() is a stable NUL-terminated name.
    tracer_->complete(msg.dst, TraceCat::kNet, to_string(msg.type).data(),
                      msg.send_time, msg.arrival_time, "src", msg.src, "seq", msg.seq);
  }
  stats_->counter("net.msgs").add();
  stats_->counter("net.bytes").add(bytes);
  stats_->counter(std::string("net.msgs.") + std::string(to_string(msg.type))).add();
  stats_->histogram("net.msg_size").record(bytes);
  if (log_enabled(LogLevel::kTrace)) {
    DSM_LOG_TRACE << "deliver " << to_string(msg.type) << ' ' << msg.src << "->"
                  << msg.dst << " seq=" << msg.seq << " bytes=" << bytes
                  << " t=" << msg.send_time;
  }
  mailboxes_[msg.dst].push(std::move(msg));
}

void Network::complete_inflight(const Message& msg) {
  const MutexLock lock(flight_mutex_);
  if (in_flight_.erase(FlightKey{link_index(msg.src, msg.dst), msg.seq}) > 0) {
    acks_.add();
  }
}

void Network::complete_upto(std::size_t link, std::uint64_t upto) {
  const MutexLock lock(flight_mutex_);
  auto it = in_flight_.lower_bound(FlightKey{link, 0});
  while (it != in_flight_.end() && it->first.first == link &&
         it->first.second + it->second.count <= upto) {
    it = in_flight_.erase(it);
    acks_.add();
  }
}

void Network::note_pending_ack(std::size_t link, std::uint64_t upto) {
  bool armed = false;
  {
    const MutexLock lock(flight_mutex_);
    const auto due = realclock::now() +
                     std::chrono::microseconds(wire_.delayed_ack_us);
    const auto [it, inserted] = pending_acks_.try_emplace(link, PendingAck{upto, due});
    if (!inserted) {
      it->second.upto = std::max(it->second.upto, upto);
    }
    armed = inserted;
  }
  // A newly armed delayed-ack timer can be earlier than anything the daemon
  // is currently waiting on.
  if (armed) flight_cv_.notify_one();
}

void Network::defer(Message msg, std::uint32_t attempt, SteadyTime due, bool pre_wire) {
  {
    const MutexLock lock(flight_mutex_);
    delayed_.push_back(Delayed{due, std::move(msg), attempt, pre_wire});
    std::push_heap(delayed_.begin(), delayed_.end(), DelayedOrder{});
  }
  flight_cv_.notify_one();
}

void Network::inject_pause(NodeId node, std::uint32_t us) {
  DSM_CHECK(node < mailboxes_.size());
  const MutexLock lock(flight_mutex_);
  pause_until_[node] = std::max(
      pause_until_[node], realclock::now() + std::chrono::microseconds(us));
}

void Network::daemon_loop() {
  RelockableMutexLock lock(flight_mutex_);
  while (!stopping_) {
    SteadyTime next = kNever;
    if (!delayed_.empty()) next = std::min(next, delayed_.front().due);
    for (const auto& [key, entry] : in_flight_) next = std::min(next, entry.deadline);
    for (const auto& [link, ack] : pending_acks_) next = std::min(next, ack.due);

    if (next == kNever) {
      flight_cv_.wait(flight_mutex_);
    } else {
      flight_cv_.wait_until(flight_mutex_, next);
    }
    if (stopping_) break;

    const auto now = realclock::now();

    std::vector<Delayed> due_now;
    while (!delayed_.empty() && delayed_.front().due <= now) {
      std::pop_heap(delayed_.begin(), delayed_.end(), DelayedOrder{});
      due_now.push_back(std::move(delayed_.back()));
      delayed_.pop_back();
    }

    // Delayed acks whose timer expired with no reverse traffic to ride:
    // emit standalone kAck datagrams.
    std::vector<std::pair<std::size_t, std::uint64_t>> acks_due;
    for (auto it = pending_acks_.begin(); it != pending_acks_.end();) {
      if (it->second.due <= now) {
        acks_due.emplace_back(it->first, it->second.upto);
        it = pending_acks_.erase(it);
      } else {
        ++it;
      }
    }

    std::vector<std::pair<Message, std::uint32_t>> resends;
    std::vector<NodeId> dead_peers;
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      InFlight& entry = it->second;
      if (entry.deadline > now) {
        ++it;
        continue;
      }
      if (entry.attempt >= reliability_.max_retries) {
        gave_up_.add();
        DSM_LOG_WARN << "reliable: giving up on " << to_string(entry.msg.type) << ' '
                     << entry.msg.src << "->" << entry.msg.dst << " seq="
                     << entry.msg.seq << " after " << entry.attempt << " retransmits";
        // FT: exhausted retries are the failure detector — the destination
        // is declared dead (outside the lock, below) instead of the give-up
        // being a bare counter bump.
        if (ft_) dead_peers.push_back(entry.msg.dst);
        it = in_flight_.erase(it);
        continue;
      }
      ++entry.attempt;
      const double scaled = static_cast<double>(reliability_.rto_ms) *
                            std::pow(reliability_.backoff, entry.attempt);
      const auto rto_ms = std::min<double>(scaled, reliability_.rto_max_ms);
      entry.deadline = now + std::chrono::microseconds(
                                 static_cast<std::int64_t>(rto_ms * 1000.0));
      resends.emplace_back(entry.msg, entry.attempt);
      ++it;
    }

    const std::size_t n = mailboxes_.size();
    lock.unlock();
    for (auto& d : due_now) {
      // A chaos delay held the attempt before the transport; it crosses the
      // wire now. A pause held an arrived message; it re-enters the
      // receiver side directly.
      if (d.pre_wire) {
        transport_->ship(std::move(d.msg), d.attempt);
      } else {
        arrive(std::move(d.msg), d.attempt);
      }
    }
    for (const auto& [link, upto] : acks_due) {
      // `link` indexes the data direction src→dst; the ack travels dst→src.
      Message ack;
      ack.type = MsgType::kAck;
      ack.src = static_cast<NodeId>(link % n);
      ack.dst = static_cast<NodeId>(link / n);
      ack.seq = Message::kNoSeq;
      ack.ack_upto = upto;
      acks_standalone_.add();
      datagrams_.add();
      wire_attempt(std::move(ack), 0);
    }
    for (auto& [msg, attempt] : resends) {
      retransmits_.add();
      if (tracer_ != nullptr) {
        tracer_->instant(msg.src, TraceCat::kNet, "retransmit", msg.send_time, "seq",
                         msg.seq, "attempt", attempt);
      }
      wire_attempt(msg, attempt);
    }
    for (const NodeId d : dead_peers) {
      if (liveness_.alive(d)) announce_death(d, /*restart=*/false);
    }
    lock.lock();
  }
}

void Network::purge_flight_state(NodeId node) {
  const std::size_t n = mailboxes_.size();
  const MutexLock lock(flight_mutex_);
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    const std::size_t link = it->first.first;
    if (link / n == node || link % n == node) {
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(delayed_, [node](const Delayed& d) {
    return d.msg.src == node || d.msg.dst == node;
  });
  std::make_heap(delayed_.begin(), delayed_.end(), DelayedOrder{});
  for (auto it = pending_acks_.begin(); it != pending_acks_.end();) {
    if (it->first / n == node || it->first % n == node) {
      it = pending_acks_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<NodeId> Network::hosted_nodes() const {
  if (transport_cfg_.multiprocess()) return {transport_cfg_.local_node};
  std::vector<NodeId> all(mailboxes_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<NodeId>(i);
  return all;
}

void Network::post_local(NodeId dst, Message msg) {
  msg.dst = dst;
  msg.seq = Message::kNoSeq;
  msg.arrival_time = msg.send_time;
  deliver(std::move(msg));
}

void Network::announce_death(NodeId node, bool restart) {
  DSM_CHECK(node < mailboxes_.size());
  if (liveness_.alive(node)) peer_dead_.add();
  liveness_.mark_worker_dead(node);
  liveness_.mark_dead(node);
  purge_flight_state(node);
  DSM_LOG_WARN << "liveness: node " << node << " declared dead"
               << (restart ? " (restart pending)" : "");
  for (const NodeId host : hosted_nodes()) {
    Message msg;
    msg.type = MsgType::kPeerDown;
    msg.src = host;
    msg.payload = pack_peer_event(node, restart);
    post_local(host, std::move(msg));
  }
}

void Network::announce_alive(NodeId node) {
  for (const NodeId host : hosted_nodes()) {
    Message msg;
    msg.type = MsgType::kPeerUp;
    msg.src = host;
    msg.payload = pack_peer_event(node, /*restart=*/false);
    post_local(host, std::move(msg));
  }
}

void Network::reset_links_for(NodeId node) {
  purge_flight_state(node);
  const MutexLock lock(links_mutex_);
  const std::size_t n = mailboxes_.size();
  for (std::size_t p = 0; p < n; ++p) {
    for (const std::size_t link : {link_index(static_cast<NodeId>(p), node),
                                   link_index(node, static_cast<NodeId>(p))}) {
      LinkState& st = links_[link];
      st.reorder.clear();
      // The sender-side counters persist across an in-process restart, so
      // the receiver resumes at whatever the sender will assign next.
      st.expected = send_seq_[link].load(std::memory_order_relaxed);
    }
  }
}

void Network::peer_restarted(NodeId src) {
  purge_flight_state(src);
  {
    const MutexLock lock(links_mutex_);
    const std::size_t n = mailboxes_.size();
    for (std::size_t p = 0; p < n; ++p) {
      for (const std::size_t link : {link_index(static_cast<NodeId>(p), src),
                                     link_index(src, static_cast<NodeId>(p))}) {
        links_[link].reorder.clear();
        links_[link].expected = 0;
        // The respawned process counts from 0 in both directions.
        send_seq_[link].store(0, std::memory_order_relaxed);
      }
    }
  }
  liveness_.mark_restarted(src);
  DSM_LOG_WARN << "liveness: node " << src << " rejoined with a fresh incarnation";
  announce_alive(src);
}

std::vector<std::byte> pack_peer_event(NodeId peer, bool restart) {
  std::vector<std::byte> out(5);
  const std::uint32_t p = peer;
  std::memcpy(out.data(), &p, sizeof p);
  out[4] = static_cast<std::byte>(restart ? 1 : 0);
  return out;
}

void unpack_peer_event(std::span<const std::byte> payload, NodeId* peer, bool* restart) {
  DSM_CHECK_MSG(payload.size() >= 5, "short peer-event payload");
  std::uint32_t p = 0;
  std::memcpy(&p, payload.data(), sizeof p);
  *peer = static_cast<NodeId>(p);
  *restart = payload[4] != std::byte{0};
}

void Network::stop_daemon() {
  {
    const MutexLock lock(flight_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  flight_cv_.notify_all();
  if (daemon_.joinable()) daemon_.join();
}

void Network::multicast(std::span<const NodeId> destinations, const Message& prototype) {
  for (const NodeId dst : destinations) {
    Message copy = prototype;
    copy.dst = dst;
    send(std::move(copy));
  }
}

std::optional<Message> Network::recv(NodeId node) {
  DSM_CHECK(node < mailboxes_.size());
  return mailboxes_[node].pop();
}

std::deque<Message> Network::recv_all(NodeId node) {
  DSM_CHECK(node < mailboxes_.size());
  return mailboxes_[node].drain();
}

bool Network::idle() const {
  const MutexLock lock(flight_mutex_);
  return in_flight_.empty() && delayed_.empty() && pending_acks_.empty();
}

void Network::debug_dump(std::ostream& os) const {
  // Best-effort: the dump runs on abort and watchdog paths while other
  // threads may be wedged *holding* fabric locks — e.g. a delivery hook
  // blocked on the checker's mutex, which the aborting thread holds while
  // it dumps. Waiting here turns a diagnostic into an ABBA deadlock (the
  // RacyLitmus death test hung exactly this way), so a busy section is
  // skipped, never waited for.
  transport_->debug_dump(os);
  if (!flight_mutex_.try_lock()) {
    os << "  net: flight state busy — skipped\n";
  } else {
    os << "  net: in-flight=" << in_flight_.size() << " delayed=" << delayed_.size()
       << " pending-acks=" << pending_acks_.size() << '\n';
    for (const auto& [key, entry] : in_flight_) {
      os << "    unacked " << to_string(entry.msg.type) << ' ' << entry.msg.src << "->"
         << entry.msg.dst << " seq=" << entry.msg.seq;
      if (entry.count > 1) os << "+" << entry.count;
      os << " attempt=" << entry.attempt << '\n';
    }
    flight_mutex_.unlock();
  }
  if (!links_mutex_.try_lock()) {
    os << "    link state busy — skipped\n";
  } else {
    const std::size_t n = mailboxes_.size();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const LinkState& st = links_[i];
      const std::uint64_t sent = send_seq_[i].load(std::memory_order_relaxed);
      if (sent == 0 && st.reorder.empty()) continue;
      if (!st.reorder.empty() || st.expected != sent) {
        os << "    link " << i / n << "->" << i % n << ": sent=" << sent
           << " delivered=" << st.expected << " parked=" << st.reorder.size() << '\n';
      }
    }
    links_mutex_.unlock();
  }
  for (std::size_t node = 0; node < mailboxes_.size(); ++node) {
    os << "    mailbox[" << node << "] backlog=" << mailboxes_[node].size() << '\n';
  }
}

void Network::shutdown() {
  transport_->stop();
  stop_daemon();
  {
    const MutexLock lock(flight_mutex_);
    in_flight_.clear();
    delayed_.clear();
    pending_acks_.clear();
  }
  for (auto& mb : mailboxes_) mb.close();
}

}  // namespace dsm
