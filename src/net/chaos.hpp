// Deterministic chaos injection for the simulated interconnect. Every fault
// decision (drop / duplicate / delay / ack loss / node pause) is a pure
// function of (seed, src, dst, seq, attempt): the same message always gets
// the same fate, so injection adds no nondeterminism beyond the workload's
// own scheduling (a contended run can still order its traffic differently,
// as in the seed fabric). This replaces the old
// bare drop hook, which nothing could recover from; the reliability sublayer
// in Network (ack/retransmit/dedup) is what turns these faults into latency
// instead of hangs. See DESIGN.md "Reliable transport & chaos".
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace dsm {

/// Knobs for the seeded fault injector. All probabilities are per wire
/// attempt (a retransmit rolls fresh dice), in [0, 1].
struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 1;

  /// Probability a wire attempt vanishes (counted under net.dropped).
  double drop_probability = 0.0;
  /// Probability a wire attempt arrives twice (dedup suppresses the clone).
  double duplicate_probability = 0.0;
  /// Probability the (internal) delivery acknowledgement is lost: the sender
  /// retransmits a message that already arrived, exercising dedup.
  double ack_drop_probability = 0.0;
  /// Probability a wire attempt is held for a jittered real-time delay
  /// before arriving — later traffic overtakes it (reordering).
  double delay_probability = 0.0;
  /// Maximum hold for a delayed attempt, microseconds of real time. The
  /// same value is charged to the message's virtual arrival time.
  std::uint32_t delay_max_us = 500;
  /// Probability an accepted message freezes the destination node: all
  /// subsequent deliveries to it are held for `pause_us` (a GC stall / page
  /// daemon hiccup). Retransmits pile up against the pause and are deduped.
  double pause_probability = 0.0;
  std::uint32_t pause_us = 1000;

  /// Restrict injection to these message types; empty = every protocol
  /// type. Control traffic (Shutdown/Wakeup) and loopback are never faulted.
  std::vector<MsgType> only_types;
};

/// Stateless decision engine over a ChaosConfig. Thread-safe by construction
/// (no mutable state): decisions hash the identifying coordinates of the
/// wire attempt through SplitMix64.
class ChaosEngine {
 public:
  ChaosEngine() = default;
  explicit ChaosEngine(const ChaosConfig& cfg) : cfg_(cfg) {}

  const ChaosConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }

  /// True if this message type is eligible for injection.
  bool targets(MsgType type) const {
    if (!cfg_.enabled) return false;
    if (type == MsgType::kShutdown || type == MsgType::kWakeup) return false;
    if (cfg_.only_types.empty()) return true;
    for (const MsgType t : cfg_.only_types) {
      if (t == type) return true;
    }
    return false;
  }

  bool should_drop(const Message& msg, std::uint32_t attempt) const {
    return targets(msg.type) &&
           roll(msg, attempt, Salt::kDrop) < cfg_.drop_probability;
  }
  bool should_duplicate(const Message& msg, std::uint32_t attempt) const {
    return targets(msg.type) &&
           roll(msg, attempt, Salt::kDuplicate) < cfg_.duplicate_probability;
  }
  bool should_drop_ack(const Message& msg, std::uint32_t attempt) const {
    return targets(msg.type) &&
           roll(msg, attempt, Salt::kAck) < cfg_.ack_drop_probability;
  }
  bool should_pause_dst(const Message& msg, std::uint32_t attempt) const {
    return targets(msg.type) &&
           roll(msg, attempt, Salt::kPause) < cfg_.pause_probability;
  }
  /// 0 = deliver immediately; otherwise hold for this many microseconds.
  std::uint32_t delay_us(const Message& msg, std::uint32_t attempt) const {
    if (!targets(msg.type)) return 0;
    if (roll(msg, attempt, Salt::kDelay) >= cfg_.delay_probability) return 0;
    if (cfg_.delay_max_us == 0) return 0;
    const std::uint64_t h = mix(hash_base(msg, attempt, Salt::kDelayAmount));
    return 1 + static_cast<std::uint32_t>(h % cfg_.delay_max_us);
  }

 private:
  enum class Salt : std::uint64_t {
    kDrop = 0x9E6D,
    kDuplicate = 0x51CA,
    kAck = 0xAC4B,
    kDelay = 0xDE1A,
    kDelayAmount = 0xDE1B,
    kPause = 0x9A05,
  };

  std::uint64_t hash_base(const Message& msg, std::uint32_t attempt, Salt salt) const {
    std::uint64_t h = cfg_.seed;
    h = mix(h ^ (static_cast<std::uint64_t>(msg.src) << 32 | msg.dst));
    h = mix(h ^ msg.seq);
    h = mix(h ^ (static_cast<std::uint64_t>(attempt) << 16 |
                 static_cast<std::uint64_t>(salt)));
    return h;
  }

  /// Uniform double in [0, 1) from the attempt's identifying coordinates.
  double roll(const Message& msg, std::uint32_t attempt, Salt salt) const {
    return static_cast<double>(hash_base(msg, attempt, salt) >> 11) * 0x1.0p-53;
  }

  /// SplitMix64 finalizer (common/rng.hpp), usable as a stateless hash.
  static std::uint64_t mix(std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  ChaosConfig cfg_;
};

}  // namespace dsm
