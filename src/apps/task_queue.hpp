// Lock-guarded producer/consumer task farm: node 0 produces tasks into a
// shared bounded queue; the other nodes pop and process them. All traffic is
// one hot page guarded by one hot lock — the mutual-exclusion stress test
// (F6), echoing the task-management experiment of the HICSS'94 fast-locks
// paper.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dsm.hpp"

namespace dsm::apps {

struct TaskQueueParams {
  std::size_t n_tasks = 128;
  std::uint64_t task_grain = 10'000;  ///< compute ops per task
  std::uint64_t produce_grain = 100;  ///< compute ops to produce one task
  std::size_t capacity = 32;          ///< queue slots
  LockId lock = 0;
  BarrierId barrier = 0;
};

struct TaskQueueResult {
  VirtualTime virtual_ns = 0;
  std::size_t tasks_executed = 0;           ///< total across consumers
  std::vector<std::size_t> per_consumer;    ///< indexed by node id
};

TaskQueueResult run_task_queue(System& sys, const TaskQueueParams& params);

}  // namespace dsm::apps
