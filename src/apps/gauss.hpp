// Gaussian elimination on a diagonally dominant system (no pivoting), rows
// distributed cyclically — IVY's headline application (F4). Each elimination
// step broadcasts the pivot row through the coherence protocol: a
// single-writer/many-readers pattern that rewards read-replication and
// punishes ping-ponging ownership.
#pragma once

#include <cstddef>

#include "core/dsm.hpp"

namespace dsm::apps {

struct GaussParams {
  std::size_t n = 32;  ///< number of equations
  BarrierId barrier = 0;
};

struct GaussResult {
  VirtualTime virtual_ns = 0;
  double max_error = 0.0;  ///< max |x_i − 1| (the system is built so x ≡ 1)
};

GaussResult run_gauss(System& sys, const GaussParams& params);

/// Shared-heap pages run_gauss needs (rows are padded to whole pages).
std::size_t gauss_pages_needed(const GaussParams& params, std::size_t page_size);

}  // namespace dsm::apps
