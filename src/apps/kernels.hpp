// Microkernels for the pointed experiments: the false-sharing stride writer
// (F2), a migratory counter (F1's workload), and a page-aligned reduction
// (the "how to lay data out" counter-example).
#pragma once

#include <cstddef>

#include "core/dsm.hpp"

namespace dsm::apps {

struct FalseSharingParams {
  std::size_t counters_per_node = 8;
  int iterations = 16;
  bool padded = false;  ///< true: each node's counters page-aligned (no false sharing)
  BarrierId barrier = 0;
};

struct KernelResult {
  VirtualTime virtual_ns = 0;
  std::uint64_t checksum = 0;
};

/// Every node repeatedly increments its own counters. With `padded == false`
/// the counters interleave so every page is written by every node — pure
/// false sharing; with `padded == true` each node's counters live on private
/// pages. Correctness: counter values must equal `iterations` exactly.
KernelResult run_false_sharing(System& sys, const FalseSharingParams& params);

struct MigratoryParams {
  int rounds = 16;     ///< how many times the token value circulates
  LockId lock = 0;
  BarrierId barrier = 0;
};

/// A single counter cell is incremented by each node in turn under a lock —
/// the migratory-data pattern where dynamic ownership shines. Returns the
/// final counter value (must be rounds × n_nodes).
KernelResult run_migratory(System& sys, const MigratoryParams& params);

struct ReduceParams {
  std::size_t elements_per_node = 1024;
  BarrierId barrier = 0;
};

/// Each node sums a deterministic series into a page-aligned partial slot;
/// node 0 combines after a barrier. The checksum equals the closed form.
KernelResult run_reduce(System& sys, const ReduceParams& params);

}  // namespace dsm::apps
