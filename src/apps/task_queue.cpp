#include "apps/task_queue.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/assert.hpp"

namespace dsm::apps {
namespace {

/// The shared queue header + ring, kept in one struct so one EC binding (and
/// typically one page) covers it.
struct QueueHeader {
  std::uint64_t head = 0;  ///< next slot to pop
  std::uint64_t tail = 0;  ///< next slot to push
  std::uint32_t done = 0;  ///< producer finished
};

}  // namespace

TaskQueueResult run_task_queue(System& sys, const TaskQueueParams& params) {
  DSM_CHECK(params.capacity > 0);
  const auto header = sys.alloc_page_aligned<QueueHeader>();
  const auto slots = sys.alloc<std::uint64_t>(params.capacity);

  std::vector<std::atomic<std::size_t>> executed(sys.config().n_nodes);
  for (auto& e : executed) e.store(0);
  sys.reset_clocks();

  sys.run([&](Worker& w) {
    QueueHeader* q = w.get(header);
    std::uint64_t* ring = w.get(slots);

    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind(params.lock, header);
      w.bind(params.lock, slots, params.capacity);
    }
    w.barrier(params.barrier);

    if (w.n_nodes() == 1) {
      // Degenerate case: the producer executes its own tasks serially.
      for (std::size_t t = 0; t < params.n_tasks; ++t) {
        w.compute(params.produce_grain + params.task_grain);
        executed[0].fetch_add(1, std::memory_order_relaxed);
      }
      w.barrier(params.barrier);
      return;
    }

    if (w.id() == 0) {
      // Producer.
      for (std::size_t t = 0; t < params.n_tasks; ++t) {
        w.compute(params.produce_grain);
        for (;;) {
          w.acquire(params.lock);
          if (q->tail - q->head < params.capacity) {
            ring[q->tail % params.capacity] = t;
            ++q->tail;
            w.release(params.lock);
            break;
          }
          w.release(params.lock);
          std::this_thread::sleep_for(std::chrono::microseconds(100));  // real-time back-off only (see quicksort.cpp)
        }
      }
      w.acquire(params.lock);
      q->done = 1;
      w.release(params.lock);
    } else {
      // Consumer.
      for (;;) {
        w.acquire(params.lock);
        if (q->head < q->tail) {
          ++q->head;
          w.release(params.lock);
          w.compute(params.task_grain);
          executed[w.id()].fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const bool finished = q->done != 0;
        w.release(params.lock);
        if (finished) break;
        std::this_thread::sleep_for(std::chrono::microseconds(100));  // real-time poll back-off only
      }
    }
    w.barrier(params.barrier);
  });

  TaskQueueResult result;
  result.virtual_ns = sys.virtual_time();
  result.per_consumer.resize(executed.size());
  for (std::size_t i = 0; i < executed.size(); ++i) {
    result.per_consumer[i] = executed[i].load();
    result.tasks_executed += result.per_consumer[i];
  }
  return result;
}

}  // namespace dsm::apps
