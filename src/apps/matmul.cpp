#include "apps/matmul.hpp"

#include <algorithm>
#include <vector>

namespace dsm::apps {
namespace {

struct Block {
  std::size_t lo, hi;
};

Block rows_of(std::size_t n, std::size_t n_nodes, NodeId node) {
  const std::size_t base = n / n_nodes;
  const std::size_t extra = n % n_nodes;
  const std::size_t lo = node * base + std::min<std::size_t>(node, extra);
  return {lo, lo + base + (node < extra ? 1 : 0)};
}

}  // namespace

double matmul_a(std::size_t i, std::size_t j) {
  return static_cast<double>((i * 31 + j * 7) % 13) - 6.0;
}
double matmul_b(std::size_t i, std::size_t j) {
  return static_cast<double>((i * 17 + j * 3) % 11) - 5.0;
}

MatmulResult run_matmul(System& sys, const MatmulParams& params) {
  const std::size_t n = params.n;
  const auto a = sys.alloc_page_aligned<double>(n * n);
  const auto b = sys.alloc_page_aligned<double>(n * n);
  const auto c = sys.alloc_page_aligned<double>(n * n);

  double checksum = 0.0;
  std::vector<VirtualTime> start(sys.config().n_nodes, 0);
  std::vector<VirtualTime> finish(sys.config().n_nodes, 0);
  sys.reset_clocks();

  sys.run([&](Worker& w) {
    double* A = w.get(a);
    double* B = w.get(b);
    double* C = w.get(c);
    const auto [lo, hi] = rows_of(n, w.n_nodes(), w.id());

    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind_barrier(params.barrier, a, n * n);
      w.bind_barrier(params.barrier, b, n * n);
      w.bind_barrier(params.barrier, c, n * n);
    }

    // Distributed initialization: A's owner fills its rows; node 0 fills B.
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < n; ++j) A[i * n + j] = matmul_a(i, j);
    }
    if (w.id() == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) B[i * n + j] = matmul_b(i, j);
      }
    }
    w.barrier(params.barrier);
    start[w.id()] = w.now();  // timed: the multiply, not the initialization

    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k < n; ++k) sum += A[i * n + k] * B[k * n + j];
        C[i * n + j] = sum;
      }
      // Charge per row, not as one lump: coarse lumps stamp this node's
      // outgoing fault replies after the whole multiply, falsely
      // serializing other nodes behind it.
      w.compute(2 * n * n);  // one FMA per inner step
    }
    w.barrier(params.barrier);
    finish[w.id()] = w.now();  // timed section ends before the checksum gather

    if (w.id() == 0) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n * n; ++i) sum += C[i];
      checksum = sum;
    }
    w.barrier(params.barrier);
  });

  VirtualTime t_start = *std::min_element(start.begin(), start.end());
  VirtualTime t_end = 0;
  for (const auto t : finish) t_end = std::max(t_end, t);
  return MatmulResult{t_end - std::min(t_start, t_end), checksum};
}

double matmul_reference_checksum(const MatmulParams& params) {
  const std::size_t n = params.n;
  double sum = 0.0;
  std::vector<double> brow(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double cij = 0.0;
      for (std::size_t k = 0; k < n; ++k) cij += matmul_a(i, k) * matmul_b(k, j);
      sum += cij;
    }
  }
  return sum;
}

}  // namespace dsm::apps
