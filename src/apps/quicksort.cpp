#include "apps/quicksort.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace dsm::apps {
namespace {

/// Shared work-stack header; lives on its own page with the range slots.
struct StackHeader {
  std::uint64_t top = 0;        ///< number of ranges on the stack
  std::uint64_t done_count = 0; ///< elements in fully-sorted ranges
};
struct Range {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  // half-open
};

/// A pessimistic bound on simultaneous stack entries: every split leaves at
/// most one extra range per level, but nodes can interleave, so size for
/// the worst case of one range per threshold-sized block.
std::size_t stack_capacity(const QuicksortParams& p) {
  return 2 * (p.n / std::max<std::size_t>(p.threshold, 1) + 8);
}

}  // namespace

std::size_t quicksort_pages_needed(const QuicksortParams& params, std::size_t page_size) {
  const std::size_t array_bytes = params.n * sizeof(std::uint64_t);
  const std::size_t stack_bytes =
      sizeof(StackHeader) + stack_capacity(params) * sizeof(Range);
  return (array_bytes + page_size - 1) / page_size +
         (stack_bytes + page_size - 1) / page_size + 4;
}

QuicksortResult run_quicksort(System& sys, const QuicksortParams& params) {
  DSM_CHECK_MSG(sys.config().protocol != ProtocolKind::kEc,
                "quicksort's dynamic range ownership cannot be expressed as "
                "static entry-consistency bindings");
  const std::size_t n = params.n;
  const auto array = sys.alloc_page_aligned<std::uint64_t>(n);
  const auto header = sys.alloc_page_aligned<StackHeader>();
  const auto slots = sys.alloc<Range>(stack_capacity(params));
  const std::size_t capacity = stack_capacity(params);

  QuicksortResult result;
  std::vector<VirtualTime> start(sys.config().n_nodes, 0);
  std::vector<VirtualTime> finish(sys.config().n_nodes, 0);
  sys.reset_clocks();

  sys.run([&](Worker& w) {
    std::uint64_t* a = w.get(array);
    StackHeader* stack = w.get(header);
    Range* ranges = w.get(slots);

    if (w.id() == 0) {
      SplitMix64 rng(params.seed);
      for (std::size_t i = 0; i < n; ++i) a[i] = rng.next() % 1'000'000;
      stack->top = 1;
      stack->done_count = 0;
      ranges[0] = Range{0, n};
    }
    w.barrier(params.barrier);
    start[w.id()] = w.now();

    for (;;) {
      w.acquire(params.lock);
      if (stack->done_count == n) {
        w.release(params.lock);
        break;
      }
      if (stack->top == 0) {
        w.release(params.lock);
        // Idle back-off in REAL time only: it bounds how often this thread
        // re-polls on the host. Virtually the poll is nearly free — the
        // poller's clock just tracks the lock home's clock through the
        // grant's arrival time (advance_to is a max, not a sum).
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      const Range range = ranges[--stack->top];
      w.release(params.lock);

      const std::size_t len = range.hi - range.lo;
      if (len <= params.threshold) {
        std::sort(a + range.lo, a + range.hi);
        // ~n log2 n comparisons plus data movement.
        std::uint64_t logn = 1;
        while ((1ull << logn) < len) ++logn;
        w.compute(16 * len * logn);  // ~1.6 us per element per level: a 1992 CPU
        w.acquire(params.lock);
        stack->done_count += len;
        w.release(params.lock);
        continue;
      }

      // Median-of-three partition, Hoare style.
      std::uint64_t* lo_it = a + range.lo;
      std::uint64_t* hi_it = a + range.hi;
      const std::uint64_t pivot = std::max(
          std::min(lo_it[0], hi_it[-1]),
          std::min(std::max(lo_it[0], hi_it[-1]), lo_it[len / 2]));
      std::size_t i = range.lo;
      std::size_t j = range.hi - 1;
      for (;;) {
        while (a[i] < pivot) ++i;
        while (a[j] > pivot) --j;
        if (i >= j) break;
        std::swap(a[i], a[j]);
        ++i;
        --j;
      }
      w.compute(8 * len);
      const std::size_t split = j + 1;

      if (split == range.lo || split == range.hi) {
        // Degenerate split. Unreachable for median-of-three with len > 2
        // (see the analysis in the tests), but stay correct regardless:
        // sort the whole range locally.
        std::sort(a + range.lo, a + range.hi);
        w.compute(8 * len);
        w.acquire(params.lock);
        stack->done_count += len;
        w.release(params.lock);
        continue;
      }
      w.acquire(params.lock);
      DSM_CHECK_MSG(stack->top + 2 <= capacity, "quicksort work stack overflow");
      ranges[stack->top++] = Range{range.lo, split};
      ranges[stack->top++] = Range{split, range.hi};
      w.release(params.lock);
    }
    finish[w.id()] = w.now();
    w.barrier(params.barrier);

    if (w.id() == 0) {
      bool sorted = true;
      std::uint64_t sum = 0;
      for (std::size_t k = 0; k < n; ++k) {
        if (k + 1 < n && a[k] > a[k + 1]) sorted = false;
        sum += a[k];
      }
      SplitMix64 rng(params.seed);
      std::uint64_t expected = 0;
      for (std::size_t k = 0; k < n; ++k) expected += rng.next() % 1'000'000;
      result.sorted = sorted;
      result.permutation_ok = sum == expected;
    }
    w.barrier(params.barrier);
  });

  const VirtualTime t_start = *std::min_element(start.begin(), start.end());
  VirtualTime t_end = 0;
  for (const auto t : finish) t_end = std::max(t_end, t);
  result.virtual_ns = t_end - std::min(t_start, t_end);
  return result;
}

}  // namespace dsm::apps
