// Blocked dense matrix multiply, C = A·B. A and C are row-partitioned; B is
// read-shared by everyone. Coarse-grained and read-mostly, so every protocol
// scales — the control experiment (F8) that shows the protocols only diverge
// when sharing is fine-grained.
#pragma once

#include <cstddef>

#include "core/dsm.hpp"

namespace dsm::apps {

struct MatmulParams {
  std::size_t n = 48;  ///< square matrix dimension
  BarrierId barrier = 0;
};

struct MatmulResult {
  VirtualTime virtual_ns = 0;
  double checksum = 0.0;  ///< sum of all C entries
};

MatmulResult run_matmul(System& sys, const MatmulParams& params);

/// Single-threaded reference checksum.
double matmul_reference_checksum(const MatmulParams& params);

/// The deterministic element generators (shared with the reference).
double matmul_a(std::size_t i, std::size_t j);
double matmul_b(std::size_t i, std::size_t j);

}  // namespace dsm::apps
