// Distributed quicksort — IVY's celebrated application. A shared array and a
// shared stack of unsorted ranges guarded by one lock; nodes pop ranges,
// partition big ones back onto the stack, and sort small ones in place. Work
// moves dynamically, so pages migrate with it: the workload that made
// ownership-migration protocols look good in 1989.
//
// Note: entry consistency is deliberately unsupported here — range ownership
// is dynamic, so no static region→lock binding exists (the annotation-model
// limitation the tutorial warns about).
#pragma once

#include <cstddef>

#include "core/dsm.hpp"

namespace dsm::apps {

struct QuicksortParams {
  std::size_t n = 4096;           ///< elements
  std::size_t threshold = 256;    ///< ranges at most this big sort locally
  std::uint64_t seed = 12345;
  LockId lock = 0;
  BarrierId barrier = 0;
};

struct QuicksortResult {
  VirtualTime virtual_ns = 0;
  bool sorted = false;            ///< ascending order verified
  bool permutation_ok = false;    ///< element sum preserved
};

QuicksortResult run_quicksort(System& sys, const QuicksortParams& params);

/// Shared-heap pages run_quicksort needs.
std::size_t quicksort_pages_needed(const QuicksortParams& params, std::size_t page_size);

}  // namespace dsm::apps
