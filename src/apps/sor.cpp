#include "apps/sor.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace dsm::apps {
namespace {

/// Ops charged per 5-point stencil update (4 adds, 1 mul, bookkeeping).
constexpr std::uint64_t kOpsPerCell = 6;

struct Partition {
  std::size_t lo, hi;  // interior rows [lo, hi) owned, 1-based within grid
};

Partition partition(std::size_t rows, std::size_t n_nodes, NodeId node) {
  const std::size_t base = rows / n_nodes;
  const std::size_t extra = rows % n_nodes;
  const std::size_t lo = 1 + node * base + std::min<std::size_t>(node, extra);
  const std::size_t len = base + (node < extra ? 1 : 0);
  return {lo, lo + len};
}

}  // namespace

SorResult run_sor(System& sys, const SorParams& params) {
  const std::size_t width = params.cols + 2;
  const std::size_t height = params.rows + 2;
  const auto grid = sys.alloc_page_aligned<double>(width * height);

  double checksum = 0.0;
  std::vector<VirtualTime> start(sys.config().n_nodes, 0);
  std::vector<VirtualTime> finish(sys.config().n_nodes, 0);
  sys.reset_clocks();

  sys.run([&](Worker& w) {
    double* g = w.get(grid);
    const auto at = [&](std::size_t i, std::size_t j) -> double& {
      return g[i * width + j];
    };
    const auto [lo, hi] = partition(params.rows, w.n_nodes(), w.id());

    if (sys.config().protocol == ProtocolKind::kEc) {
      // Entry consistency needs the data bound to its synchronization object.
      w.bind_barrier(params.barrier, grid, width * height);
    }

    // Each node initializes its own rows; the edges of the halo belong to
    // their neighbours (top: node 0, bottom: last node).
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < width; ++j) at(i, j) = 0.0;
    }
    if (w.id() == 0) {
      for (std::size_t j = 0; j < width; ++j) at(0, j) = params.top_temperature;
    }
    if (w.id() == w.n_nodes() - 1) {
      for (std::size_t j = 0; j < width; ++j) at(height - 1, j) = 0.0;
    }
    w.barrier(params.barrier);
    // Timed section: the sweeps. Initialization above is cold-start (the
    // classic papers measure steady state), the checksum below is
    // verification.
    start[w.id()] = w.now();

    for (int iter = 0; iter < params.iterations; ++iter) {
      for (int color = 0; color < 2; ++color) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = 1; j <= params.cols; ++j) {
            if ((i + j) % 2 != static_cast<std::size_t>(color)) continue;
            at(i, j) = 0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1));
          }
        }
        w.compute(kOpsPerCell * (hi - lo) * params.cols / 2);
        w.barrier(params.barrier);
      }
    }
    finish[w.id()] = w.now();

    if (w.id() == 0) {
      double sum = 0.0;
      for (std::size_t i = 1; i <= params.rows; ++i) {
        for (std::size_t j = 1; j <= params.cols; ++j) sum += at(i, j);
      }
      checksum = sum;
    }
    w.barrier(params.barrier);
  });

  VirtualTime t_start = start.empty() ? 0 : *std::min_element(start.begin(), start.end());
  VirtualTime t_end = 0;
  for (const auto t : finish) t_end = std::max(t_end, t);
  return SorResult{t_end - std::min(t_start, t_end), checksum};
}

double sor_reference_checksum(const SorParams& params) {
  const std::size_t width = params.cols + 2;
  const std::size_t height = params.rows + 2;
  std::vector<double> g(width * height, 0.0);
  const auto at = [&](std::size_t i, std::size_t j) -> double& { return g[i * width + j]; };
  for (std::size_t j = 0; j < width; ++j) at(0, j) = params.top_temperature;

  for (int iter = 0; iter < params.iterations; ++iter) {
    for (int color = 0; color < 2; ++color) {
      for (std::size_t i = 1; i <= params.rows; ++i) {
        for (std::size_t j = 1; j <= params.cols; ++j) {
          if ((i + j) % 2 != static_cast<std::size_t>(color)) continue;
          at(i, j) = 0.25 * (at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1));
        }
      }
    }
  }
  double sum = 0.0;
  for (std::size_t i = 1; i <= params.rows; ++i) {
    for (std::size_t j = 1; j <= params.cols; ++j) sum += at(i, j);
  }
  return sum;
}

}  // namespace dsm::apps
