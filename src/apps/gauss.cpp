#include "apps/gauss.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dsm::apps {
namespace {

// a(i,j) diagonally dominant; b_i = Σ_j a(i,j) so the exact solution is 1.
double elem(std::size_t n, std::size_t i, std::size_t j) {
  if (i == j) return static_cast<double>(n) + 1.0;
  return static_cast<double>((i * 7 + j * 5) % 5) * 0.25;
}

}  // namespace

std::size_t gauss_pages_needed(const GaussParams& params, std::size_t page_size) {
  const std::size_t row_bytes = (params.n + 1) * sizeof(double);
  const std::size_t pages_per_row = (row_bytes + page_size - 1) / page_size;
  return params.n * pages_per_row + 4;
}

GaussResult run_gauss(System& sys, const GaussParams& params) {
  const std::size_t n = params.n;
  const std::size_t width = n + 1;  // augmented column
  // Rows are padded to a whole number of pages — the classic DSM layout fix:
  // unaligned rows put 2-3 different owners on every page and turn each
  // elimination step into a false-sharing storm.
  const std::size_t page_doubles = sys.config().page_size / sizeof(double);
  const std::size_t stride = ((width + page_doubles - 1) / page_doubles) * page_doubles;
  const auto matrix = sys.alloc_page_aligned<double>(n * stride);

  double max_error = 0.0;
  std::vector<VirtualTime> start(sys.config().n_nodes, 0);
  std::vector<VirtualTime> finish(sys.config().n_nodes, 0);
  sys.reset_clocks();

  sys.run([&](Worker& w) {
    double* m = w.get(matrix);
    const auto row = [&](std::size_t i) { return m + i * stride; };
    const auto mine = [&](std::size_t i) { return i % w.n_nodes() == w.id(); };

    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind_barrier(params.barrier, matrix, n * stride);
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (!mine(i)) continue;
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row(i)[j] = elem(n, i, j);
        sum += row(i)[j];
      }
      row(i)[n] = sum;
    }
    w.barrier(params.barrier);
    start[w.id()] = w.now();  // timed: elimination, not initialization

    for (std::size_t k = 0; k < n; ++k) {
      // Row k is final (all updates with pivot < k applied last round).
      const double pivot = row(k)[k];
      std::uint64_t ops = 0;
      for (std::size_t i = k + 1; i < n; ++i) {
        if (!mine(i)) continue;
        const double factor = row(i)[k] / pivot;
        for (std::size_t j = k; j < width; ++j) row(i)[j] -= factor * row(k)[j];
        ops += 2 * (width - k);
      }
      w.compute(ops);
      w.barrier(params.barrier);
    }
    // The timed phase is the parallel elimination; back substitution below
    // is O(n²) sequential verification on node 0.
    finish[w.id()] = w.now();

    if (w.id() == 0) {
      std::vector<double> x(n);
      for (std::size_t ii = n; ii-- > 0;) {
        double sum = row(ii)[n];
        for (std::size_t j = ii + 1; j < n; ++j) sum -= row(ii)[j] * x[j];
        x[ii] = sum / row(ii)[ii];
      }
      double err = 0.0;
      for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(x[i] - 1.0));
      max_error = err;
    }
    w.barrier(params.barrier);
  });

  VirtualTime t_start = *std::min_element(start.begin(), start.end());
  VirtualTime t_end = 0;
  for (const auto t : finish) t_end = std::max(t_end, t);
  return GaussResult{t_end - std::min(t_start, t_end), max_error};
}

}  // namespace dsm::apps
