// Red-black successive over-relaxation on a 2-D grid — the canonical
// software-DSM benchmark (IVY's PDE solver, TreadMarks' SOR). Rows are
// block-partitioned across nodes; only the partition-boundary rows are truly
// shared, so page granularity and protocol choice dominate performance.
#pragma once

#include <cstddef>

#include "core/dsm.hpp"

namespace dsm::apps {

struct SorParams {
  std::size_t rows = 64;       ///< interior rows (grid adds a halo row each side)
  std::size_t cols = 64;       ///< interior cols (grid adds a halo col each side)
  int iterations = 10;
  double top_temperature = 100.0;  ///< fixed boundary condition on the top edge
  BarrierId barrier = 0;
};

struct SorResult {
  VirtualTime virtual_ns = 0;  ///< makespan of the parallel phase
  double checksum = 0.0;       ///< sum of interior cells after the last sweep
};

/// Runs red-black SOR on `sys` and returns the makespan and a checksum.
/// Under entry consistency the whole grid is bound to the barrier.
SorResult run_sor(System& sys, const SorParams& params);

/// Single-threaded reference for correctness checks (same sweep order).
double sor_reference_checksum(const SorParams& params);

}  // namespace dsm::apps
