#include "apps/kernels.hpp"

#include "common/assert.hpp"

namespace dsm::apps {

KernelResult run_false_sharing(System& sys, const FalseSharingParams& params) {
  const std::size_t n_nodes = sys.config().n_nodes;
  const std::size_t k = params.counters_per_node;
  const std::size_t page_counters = sys.config().page_size / sizeof(std::uint64_t);

  // Interleaved: counter (node, j) at j*n_nodes + node — neighbours on the
  // same page belong to different nodes. Padded: node-major with each node's
  // block page-aligned.
  Shared<std::uint64_t> counters;
  if (params.padded) {
    const std::size_t stride = ((k + page_counters - 1) / page_counters) * page_counters;
    counters = sys.alloc_page_aligned<std::uint64_t>(n_nodes * stride);
  } else {
    counters = sys.alloc_page_aligned<std::uint64_t>(n_nodes * k);
  }

  std::uint64_t checksum = 0;
  sys.reset_clocks();
  sys.run([&](Worker& w) {
    std::uint64_t* c = w.get(counters);
    const std::size_t stride =
        params.padded ? ((k + page_counters - 1) / page_counters) * page_counters : 0;
    const auto index = [&](std::size_t j) {
      return params.padded ? w.id() * stride + j : j * n_nodes + w.id();
    };
    if (sys.config().protocol == ProtocolKind::kEc) {
      const std::size_t total = params.padded ? n_nodes * stride : n_nodes * k;
      w.bind_barrier(params.barrier, counters, total);
    }
    for (std::size_t j = 0; j < k; ++j) c[index(j)] = 0;
    w.barrier(params.barrier);

    for (int it = 0; it < params.iterations; ++it) {
      for (std::size_t j = 0; j < k; ++j) c[index(j)] += 1;
      w.compute(2 * k);
      w.barrier(params.barrier);
    }

    if (w.id() == 0) {
      std::uint64_t sum = 0;
      for (std::size_t node = 0; node < n_nodes; ++node) {
        for (std::size_t j = 0; j < k; ++j) {
          sum += c[params.padded ? node * stride + j : j * n_nodes + node];
        }
      }
      checksum = sum;
    }
    w.barrier(params.barrier);
  });

  return KernelResult{sys.virtual_time(), checksum};
}

KernelResult run_migratory(System& sys, const MigratoryParams& params) {
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();

  std::uint64_t checksum = 0;
  sys.reset_clocks();
  sys.run([&](Worker& w) {
    std::uint64_t* c = w.get(cell);
    if (sys.config().protocol == ProtocolKind::kEc) w.bind(params.lock, cell);
    w.barrier(params.barrier);

    // Round-robin increments: node (r·N + id) takes the lock in turn. Using
    // the barrier to order turns keeps the access pattern purely migratory.
    for (int r = 0; r < params.rounds; ++r) {
      for (std::size_t turn = 0; turn < w.n_nodes(); ++turn) {
        if (turn == w.id()) {
          w.acquire(params.lock);
          *c += 1;
          w.release(params.lock);
        }
        w.barrier(params.barrier);
      }
    }

    if (w.id() == 0) {
      w.acquire(params.lock);
      checksum = *c;
      w.release(params.lock);
    }
    w.barrier(params.barrier);
  });

  return KernelResult{sys.virtual_time(), checksum};
}

KernelResult run_reduce(System& sys, const ReduceParams& params) {
  const std::size_t n_nodes = sys.config().n_nodes;
  const std::size_t page_u64 = sys.config().page_size / sizeof(std::uint64_t);
  const auto partials = sys.alloc_page_aligned<std::uint64_t>(n_nodes * page_u64);

  std::uint64_t checksum = 0;
  sys.reset_clocks();
  sys.run([&](Worker& w) {
    std::uint64_t* p = w.get(partials);
    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind_barrier(params.barrier, partials, n_nodes * page_u64);
    }
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < params.elements_per_node; ++i) {
      sum += w.id() * params.elements_per_node + i;
    }
    w.compute(params.elements_per_node);
    p[w.id() * page_u64] = sum;  // page-aligned slot: zero sharing
    w.barrier(params.barrier);

    if (w.id() == 0) {
      std::uint64_t total = 0;
      for (std::size_t node = 0; node < n_nodes; ++node) total += p[node * page_u64];
      checksum = total;
    }
    w.barrier(params.barrier);
  });

  return KernelResult{sys.virtual_time(), checksum};
}

}  // namespace dsm::apps
