#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "common/assert.hpp"
#include "common/clock.hpp"

namespace dsm {
namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Minimal JSON string escape (names are static strings, but keep the
/// exporter safe against anything).
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Virtual ns → Chrome-trace microseconds with ns resolution kept.
std::string fmt_us(VirtualTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

const char* to_string(TraceCat cat) {
  switch (cat) {
    case TraceCat::kFault: return "fault";
    case TraceCat::kProto: return "proto";
    case TraceCat::kSync: return "sync";
    case TraceCat::kNet: return "net";
    case TraceCat::kCount_: break;
  }
  return "unknown";
}

Tracer::Tracer(std::size_t n_nodes, const TraceConfig& cfg, Counter* dropped_counter)
    : capacity_(round_up_pow2(std::max<std::size_t>(cfg.buffer_spans, 2))),
      mask_(capacity_ - 1),
      dropped_counter_(dropped_counter),
      epoch_(realclock::now()) {
  DSM_CHECK(n_nodes > 0);
  rings_.reserve(n_nodes);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    rings_.push_back(std::make_unique<Ring>(capacity_));
  }
}

std::uint64_t Tracer::real_now() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(realclock::now() -
                                                           epoch_)
          .count());
}

void Tracer::record(const TraceEvent& ev) {
  DSM_CHECK(ev.node < rings_.size());
  Ring& ring = *rings_[ev.node];
  const std::uint64_t idx = ring.head.fetch_add(1, std::memory_order_relaxed);
  if (idx >= capacity_ && dropped_counter_ != nullptr) dropped_counter_->add();
  Slot& slot = ring.slots[idx & mask_];
  // The only way two writers meet here is a full ring wrap racing one
  // in-progress write; the flag turns that into a bounded spin.
  while (slot.busy.exchange(1, std::memory_order_acquire) != 0) {
  }
  slot.ev = ev;
  slot.busy.store(0, std::memory_order_release);
}

void Tracer::instant(NodeId node, TraceCat cat, const char* name, VirtualTime at,
                     const char* key0, std::uint64_t val0, const char* key1,
                     std::uint64_t val1) {
  complete(node, cat, name, at, at, key0, val0, key1, val1);
}

void Tracer::complete(NodeId node, TraceCat cat, const char* name, VirtualTime vstart,
                      VirtualTime vend, const char* key0, std::uint64_t val0,
                      const char* key1, std::uint64_t val1) {
  TraceEvent ev;
  ev.node = node;
  ev.cat = cat;
  ev.name = name;
  ev.vstart = vstart;
  ev.vend = vend;
  ev.rstart_ns = ev.rend_ns = real_now();
  ev.key0 = key0;
  ev.val0 = val0;
  ev.key1 = key1;
  ev.val1 = val1;
  record(ev);
}

void Tracer::scope_open(NodeId node) {
  DSM_CHECK(node < rings_.size());
  rings_[node]->opened.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::scope_close(NodeId node) {
  DSM_CHECK(node < rings_.size());
  rings_[node]->closed.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->head.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Tracer::dropped(NodeId node) const {
  DSM_CHECK(node < rings_.size());
  const auto head = rings_[node]->head.load(std::memory_order_relaxed);
  return head > capacity_ ? head - capacity_ : 0;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < rings_.size(); ++n) total += dropped(n);
  return total;
}

std::int64_t Tracer::open_spans(NodeId node) const {
  DSM_CHECK(node < rings_.size());
  const Ring& ring = *rings_[node];
  return static_cast<std::int64_t>(ring.opened.load(std::memory_order_relaxed)) -
         static_cast<std::int64_t>(ring.closed.load(std::memory_order_relaxed));
}

std::int64_t Tracer::open_spans() const {
  std::int64_t total = 0;
  for (NodeId n = 0; n < rings_.size(); ++n) total += open_spans(n);
  return total;
}

std::vector<TraceEvent> Tracer::snapshot_ring(const Ring& ring,
                                              std::size_t max_tail) const {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t survivors = std::min<std::uint64_t>(head, capacity_);
  const std::uint64_t take = std::min<std::uint64_t>(survivors, max_tail);
  std::vector<TraceEvent> out;
  out.reserve(take);
  for (std::uint64_t i = head - take; i < head; ++i) {
    Slot& slot = ring.slots[i & mask_];
    while (slot.busy.exchange(1, std::memory_order_acquire) != 0) {
    }
    out.push_back(slot.ev);
    slot.busy.store(0, std::memory_order_release);
  }
  return out;
}

std::vector<TraceEvent> Tracer::events(NodeId node) const {
  DSM_CHECK(node < rings_.size());
  return snapshot_ring(*rings_[node], capacity_);
}

std::vector<TraceEvent> Tracer::all_events() const {
  std::vector<TraceEvent> out;
  for (NodeId n = 0; n < rings_.size(); ++n) {
    auto per_node = events(n);
    out.insert(out.end(), per_node.begin(), per_node.end());
  }
  return out;
}

void Tracer::clear() {
  for (auto& ring : rings_) {
    ring->head.store(0, std::memory_order_relaxed);
    ring->opened.store(0, std::memory_order_relaxed);
    ring->closed.store(0, std::memory_order_relaxed);
  }
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceGroup>& groups,
                        std::uint64_t dropped) {
  std::size_t stride = 1;
  for (const auto& g : groups) stride = std::max(stride, g.n_nodes);

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Metadata: name each process (group/node) and thread (category).
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t n = 0; n < groups[g].n_nodes; ++n) {
      const std::size_t pid = g * stride + n;
      comma();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"";
      if (!groups[g].label.empty()) {
        write_escaped(os, groups[g].label.c_str());
        os << "/";
      }
      os << "node " << n << "\"}}";
      for (std::uint8_t c = 0; c < static_cast<std::uint8_t>(TraceCat::kCount_); ++c) {
        comma();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << static_cast<int>(c) << ",\"args\":{\"name\":\""
           << to_string(static_cast<TraceCat>(c)) << "\"}}";
      }
    }
  }
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const TraceEvent& ev : groups[g].events) {
      comma();
      os << "{\"name\":\"";
      write_escaped(os, ev.name != nullptr ? ev.name : "?");
      os << "\",\"cat\":\"" << to_string(ev.cat) << "\",\"ph\":\"X\",\"pid\":"
         << g * stride + ev.node << ",\"tid\":" << static_cast<int>(ev.cat)
         << ",\"ts\":" << fmt_us(ev.vstart) << ",\"dur\":" << fmt_us(ev.vend - ev.vstart)
         << ",\"args\":{";
      os << "\"real_start_ns\":" << ev.rstart_ns << ",\"real_end_ns\":" << ev.rend_ns;
      if (ev.key0 != nullptr) {
        os << ",\"";
        write_escaped(os, ev.key0);
        os << "\":" << ev.val0;
      }
      if (ev.key1 != nullptr) {
        os << ",\"";
        write_escaped(os, ev.key1);
        os << "\":" << ev.val1;
      }
      os << "}}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock\":\"virtual\","
     << "\"dropped\":" << dropped << "}}\n";
}

void Tracer::write_json(std::ostream& os) const {
  write_chrome_trace(os, {TraceGroup{"", rings_.size(), all_events()}}, dropped());
}

void Tracer::dump_tail(std::ostream& os, std::size_t per_node) const {
  os << "  trace: recorded=" << recorded() << " dropped=" << dropped()
     << " open=" << open_spans() << '\n';
  for (NodeId n = 0; n < rings_.size(); ++n) {
    const auto tail = snapshot_ring(*rings_[n], per_node);
    if (tail.empty()) continue;
    os << "    node " << n << " last " << tail.size() << " spans (open="
       << open_spans(n) << "):\n";
    for (const TraceEvent& ev : tail) {
      os << "      [" << to_string(ev.cat) << "] " << (ev.name != nullptr ? ev.name : "?")
         << " v=" << ev.vstart << ".." << ev.vend;
      if (ev.key0 != nullptr) os << ' ' << ev.key0 << '=' << ev.val0;
      if (ev.key1 != nullptr) os << ' ' << ev.key1 << '=' << ev.val1;
      os << '\n';
    }
  }
}

}  // namespace dsm
