// Virtual-time span tracer: the structural observability layer behind the
// T2 leg tables and the watchdog's post-mortem dumps. Every fault-path
// entry, protocol transaction leg, message lifecycle step, and sync wait
// opens/closes a span carrying (node, category, name, virtual start/end,
// real start/end, up to two named args). Spans land in per-node bounded
// ring buffers — lock-free in the common case, drop-oldest on overflow with
// a `trace.dropped` counter — and export as Chrome `chrome://tracing` /
// Perfetto JSON (ph=X complete events, pid = node, tid = category).
//
// Overhead contract: tracing is off by default (Config::trace.enabled).
// When off, no Tracer is constructed; every instrumentation site reduces to
// a null-pointer check. When on, recording never takes a global lock and
// never advances virtual time, so traced runs produce bit-identical
// virtual-time results to untraced runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace dsm {

/// Span taxonomy. One Chrome-trace "thread" (tid) per category, so each
/// node's fault, protocol, sync, and network activity renders on its own
/// track. See DESIGN.md "Observability".
enum class TraceCat : std::uint8_t {
  kFault,  ///< SIGSEGV entry → protocol fault service complete (app thread)
  kProto,  ///< one protocol transaction leg / message handled (service thread)
  kSync,   ///< lock acquire/release and barrier waits (app thread)
  kNet,    ///< message lifecycle: send, transit (send→deliver), retransmit
  kCount_,
};

const char* to_string(TraceCat cat);

/// Tracing knobs, embedded in dsm::Config.
struct TraceConfig {
  /// Master switch. Off = no tracer is allocated and every site is a null
  /// check (~zero overhead).
  bool enabled = false;
  /// Per-node ring capacity in spans, rounded up to a power of two. On
  /// overflow the oldest spans are dropped (accounted in `trace.dropped`).
  std::size_t buffer_spans = 1 << 13;
  /// Spans per node included in the watchdog's diagnostic dump.
  std::size_t dump_tail_spans = 16;
};

/// One recorded span. `name`/`key0`/`key1` must be static strings (the
/// tracer stores the pointers, not copies). A zero-width span (vstart ==
/// vend, recorded via Tracer::instant) marks a point event.
struct TraceEvent {
  const char* name = nullptr;
  const char* key0 = nullptr;  ///< nullptr = no arg
  const char* key1 = nullptr;
  std::uint64_t val0 = 0;
  std::uint64_t val1 = 0;
  VirtualTime vstart = 0;   ///< virtual ns
  VirtualTime vend = 0;
  std::uint64_t rstart_ns = 0;  ///< real ns since the tracer's epoch
  std::uint64_t rend_ns = 0;
  NodeId node = 0;
  TraceCat cat = TraceCat::kProto;
};

/// Per-node bounded span recorder + Chrome-trace exporter. One per System.
///
/// Thread safety: record() may be called concurrently from any thread
/// (app, service, network daemon). A slot is claimed with one atomic
/// fetch_add; a per-slot flag serializes the only possible write-write
/// collision (a full ring wrap racing one in-progress write — never seen
/// in practice, bounded spin when it is). Readers (export, dumps, tests)
/// are meant to run at quiescence — after System::run returns — except
/// dump_tail, which tolerates racing writers at the cost of possibly-torn
/// tail spans (acceptable in a crash dump).
class Tracer {
 public:
  Tracer(std::size_t n_nodes, const TraceConfig& cfg, Counter* dropped_counter = nullptr);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::size_t n_nodes() const { return rings_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Real nanoseconds since this tracer's construction (steady clock).
  std::uint64_t real_now() const;

  /// Appends a fully built span to `ev.node`'s ring. Counts one open and
  /// one close, so direct record()/instant()/complete() calls never unbalance
  /// open_spans(); only an un-destructed TraceScope can.
  void record(const TraceEvent& ev);

  /// Zero-width point event (e.g. a send or a retransmit).
  void instant(NodeId node, TraceCat cat, const char* name, VirtualTime at,
               const char* key0 = nullptr, std::uint64_t val0 = 0,
               const char* key1 = nullptr, std::uint64_t val1 = 0);

  /// A span whose endpoints are already known (e.g. message transit:
  /// send_time → arrival_time). Real timestamps are stamped "now".
  void complete(NodeId node, TraceCat cat, const char* name, VirtualTime vstart,
                VirtualTime vend, const char* key0 = nullptr, std::uint64_t val0 = 0,
                const char* key1 = nullptr, std::uint64_t val1 = 0);

  // --- TraceScope bookkeeping ----------------------------------------------
  void scope_open(NodeId node);
  void scope_close(NodeId node);

  // --- accounting -----------------------------------------------------------
  /// Total spans recorded (including ones since overwritten).
  std::uint64_t recorded() const;
  /// Spans lost to ring overflow, total and per node.
  std::uint64_t dropped() const;
  std::uint64_t dropped(NodeId node) const;
  /// Currently open (entered, not yet closed) spans. 0 after a clean run.
  std::int64_t open_spans() const;
  std::int64_t open_spans(NodeId node) const;

  // --- inspection (quiescent) ----------------------------------------------
  /// Surviving spans for one node, oldest first.
  std::vector<TraceEvent> events(NodeId node) const;
  /// Surviving spans for all nodes (per-node order preserved).
  std::vector<TraceEvent> all_events() const;
  /// Resets every ring and counter. Call only at quiescence.
  void clear();

  /// Chrome-trace / Perfetto JSON: one ph=X event per span, pid = node,
  /// tid = category, ts/dur in virtual microseconds; real timestamps and
  /// args ride in "args". Load via chrome://tracing or ui.perfetto.dev.
  void write_json(std::ostream& os) const;

  /// Human-readable last `per_node` spans per node (watchdog reports).
  void dump_tail(std::ostream& os, std::size_t per_node) const;

 private:
  struct Slot {
    std::atomic<std::uint32_t> busy{0};
    TraceEvent ev;
  };
  struct Ring {
    explicit Ring(std::size_t cap) : slots(new Slot[cap]) {}
    std::atomic<std::uint64_t> head{0};    // total spans ever pushed
    std::atomic<std::uint64_t> opened{0};  // TraceScope opens
    std::atomic<std::uint64_t> closed{0};  // TraceScope closes
    std::unique_ptr<Slot[]> slots;
  };

  std::vector<TraceEvent> snapshot_ring(const Ring& ring, std::size_t max_tail) const;

  std::size_t capacity_;  // power of two
  std::size_t mask_;
  Counter* dropped_counter_;
  realclock::TimePoint epoch_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// A named set of events for merged export — one entry per System when a
/// bench runs several (bench_fault_path: one per protocol). Group `g`,
/// node `n` renders as pid = g * stride + n labeled "label/node n".
struct TraceGroup {
  std::string label;       ///< "" = plain "node N" process names
  std::size_t n_nodes = 0;
  std::vector<TraceEvent> events;
};

/// Chrome-trace / Perfetto JSON for one or more Systems' traces in a single
/// file (ph=X complete events, tid = category, ts/dur in virtual µs).
/// Tracer::write_json is the single-group case.
void write_chrome_trace(std::ostream& os, const std::vector<TraceGroup>& groups,
                        std::uint64_t dropped);

/// RAII span: opens at construction (virtual + real start), records a
/// complete event at destruction. A null `tracer` makes every operation a
/// no-op — instrumentation sites pass the context's tracer pointer
/// unconditionally.
class TraceScope {
 public:
  TraceScope(Tracer* tracer, NodeId node, TraceCat cat, const char* name,
             const LogicalClock* clock, const char* key0 = nullptr,
             std::uint64_t val0 = 0, const char* key1 = nullptr,
             std::uint64_t val1 = 0)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    clock_ = clock;
    ev_.node = node;
    ev_.cat = cat;
    ev_.name = name;
    ev_.key0 = key0;
    ev_.val0 = val0;
    ev_.key1 = key1;
    ev_.val1 = val1;
    ev_.vstart = clock->now();
    ev_.rstart_ns = tracer_->real_now();
    tracer_->scope_open(node);
  }

  ~TraceScope() {
    if (tracer_ == nullptr) return;
    ev_.vend = clock_->now();
    ev_.rend_ns = tracer_->real_now();
    tracer_->scope_close(ev_.node);
    tracer_->record(ev_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_;
  const LogicalClock* clock_ = nullptr;
  TraceEvent ev_{};
};

}  // namespace dsm
