// dsmcheck: in-fabric verification of the DSM's two correctness contracts.
//
//  1. The *program* contract — data-race freedom. A FastTrack-style detector
//     keyed by the faulting address builds per-word epochs from the sync
//     layer's release/acquire and barrier edges and reports any pair of
//     conflicting accesses not ordered by happens-before. It observes only
//     accesses that fault (a page already mapped with sufficient rights is
//     invisible), so it under-approximates: every report is a real race, but
//     silence is not a proof. See DESIGN.md "dsmcheck".
//
//  2. The *protocol* contract — coherence invariants. State-transition hooks
//     in src/proto mirror every page-state assignment so the checker can
//     assert SWMR (IVY family: never two writable copies), copyset soundness
//     (holders ⊆ manager/home copyset), version and vector-clock monotonicity
//     (ERC/EC/LRC/HLRC), lock-token uniqueness (sync layer), and strict
//     per-link delivery order (reliable transport).
//
// Gated by Config::check_level: kOff constructs no checker at all (the hook
// sites test a null pointer — zero overhead), kCount records violations in
// check.* counters and keeps running, kAssert prints a report plus the
// watchdog-style diagnostic dump and aborts on the first violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "check/check_level.hpp"
#include "common/bitset.hpp"
#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/vclock.hpp"
#include "mem/page_table.hpp"
#include "net/message.hpp"

namespace dsm {

class DsmChecker {
 public:
  /// Which flavour of critical section a lock hook reports. Mutex and write
  /// sections are exclusive; read sections may overlap each other.
  enum class LockMode : std::uint8_t { kMutex, kRead, kWrite };

  /// Static wiring. The checker deliberately knows nothing about System or
  /// the protocol classes: the runtime distills what it needs into traits
  /// and callbacks, so src/check sits below src/proto, src/sync, src/core.
  struct Setup {
    std::size_t n_nodes = 0;
    std::size_t n_pages = 0;
    std::size_t page_size = 0;
    std::size_t n_locks = 0;
    std::size_t n_barriers = 0;
    CheckLevel level = CheckLevel::kCount;

    /// Protocol traits (see DESIGN.md "dsmcheck: invariant catalogue").
    bool swmr = false;          ///< IVY family: strict single-writer
    bool ivy_dynamic = false;   ///< owner found via is_owner, not a manager
    bool home_copyset = false;  ///< ERC: home tracks all non-home holders
    bool quorum = false;        ///< QRC: tagged quorum writes (acked-floor check)
    const char* protocol = "";

    /// Manager of a page (IVY central/fixed); unset for other protocols.
    std::function<NodeId(PageId)> manager_of;
    /// Static home of a page (ERC copyset checks).
    std::function<NodeId(PageId)> home_of;

    StatsRegistry* stats = nullptr;
    /// Full diagnostic dump (the watchdog path) emitted before an
    /// assert-mode abort. May be empty.
    std::function<void(std::ostream&)> dump;
  };

  explicit DsmChecker(Setup setup);

  // --- data-race detector (called from the fault path) -------------------
  /// One faulting access by app thread `tid` of `node` to `offset` within
  /// `page`. Granularity is the aligned 8-byte word, so false sharing within
  /// a word is the only source of over-reporting (and none of the repo's
  /// workloads pack unrelated data into one word). Epochs are kept per
  /// (node, thread) unit, so two app threads of one node race with each
  /// other exactly like two nodes do unless a lock or barrier orders them.
  void on_access(NodeId node, ThreadId tid, PageId page, std::size_t offset,
                 bool is_write);
  /// Single-thread convenience (tid 0) — the historical entry point.
  void on_access(NodeId node, PageId page, std::size_t offset, bool is_write) {
    on_access(node, 0, page, offset, is_write);
  }

  // --- happens-before edges (called from the sync agent) -----------------
  // Occupancy (token uniqueness, reader/writer exclusion) stays node-level —
  // the token lives per node and the sync agent serializes a node's app
  // threads through it — but the happens-before merge/tick applies to the
  // calling thread's (node, tid) unit, so lock chains order exactly the
  // threads that traversed them. The tid-less overloads are the historical
  // single-thread entry points (tid 0).
  void on_lock_acquired(NodeId node, ThreadId tid, LockId lock, LockMode mode);
  void on_lock_released(NodeId node, ThreadId tid, LockId lock, LockMode mode);
  void on_barrier_arrive(NodeId node, ThreadId tid, BarrierId barrier);
  void on_barrier_depart(NodeId node, ThreadId tid, BarrierId barrier);
  void on_lock_acquired(NodeId node, LockId lock, LockMode mode) {
    on_lock_acquired(node, 0, lock, mode);
  }
  void on_lock_released(NodeId node, LockId lock, LockMode mode) {
    on_lock_released(node, 0, lock, mode);
  }
  void on_barrier_arrive(NodeId node, BarrierId barrier) {
    on_barrier_arrive(node, 0, barrier);
  }
  void on_barrier_depart(NodeId node, BarrierId barrier) {
    on_barrier_depart(node, 0, barrier);
  }

  // --- protocol invariant hooks (called from src/proto) ------------------
  /// Mirror of every PageEntry::state assignment; checks SWMR for IVY.
  void on_page_state(NodeId node, PageId page, PageState state);
  /// ERC home version: must be strictly increasing per (node, page).
  void on_page_version(NodeId node, PageId page, std::uint32_t version);
  /// EC per-lock data version: must be non-decreasing per (node, lock).
  void on_lock_version(NodeId node, LockId lock, std::uint64_t version);
  /// LRC/HLRC node vector clock after a mutation: must dominate its
  /// previous value (intervals only ever advance).
  void on_vclock(NodeId node, const VectorClock& vc);

  // --- crash fault tolerance hooks (called from runtime/proto/sync) -------
  /// A quorum write on `page` was acknowledged to its writer at `tag`:
  /// raises the page's acked floor. Any later serve below the floor is an
  /// acknowledged write lost to a crash — the central FT invariant.
  void on_quorum_ack(PageId page, std::uint64_t tag);
  /// A (possibly failed-over) primary served `page` at `tag`.
  void on_quorum_serve(PageId page, std::uint64_t tag);
  /// The lock home regenerated `lock`'s token after holder `dead` crashed.
  /// Must happen at most once per (lock, dead node, incarnation): a second
  /// regeneration would mint two tokens.
  void on_token_regenerated(LockId lock, NodeId dead);
  /// `node` was killed: its occupancy/mirror state is frozen; structural
  /// end-of-run passes that assume a full fleet are relaxed.
  void on_node_killed(NodeId node);
  /// `node` restarted with a wiped memory fabric: reset its state mirror to
  /// all-invalid and let every link touching it adopt the next seen seq.
  void on_node_restarted(NodeId node);

  // --- fabric hook (called from Network::deliver) ------------------------
  /// Strict per-(src,dst) sequence contiguity for reliable traffic; the
  /// reliable sublayer promises dedup + in-order reassembly, so any gap or
  /// repeat here is a transport bug. Messages with kNoSeq (loopback,
  /// control, reliability off) are ignored.
  void on_deliver(const Message& msg);
  /// Called once per accepted kBatch envelope (before its inner messages
  /// are delivered): the envelope must land exactly on the link's next
  /// expected seq and cover a contiguous inner range — the subsequent
  /// per-inner on_deliver calls then advance the link cursor one by one.
  void on_batch(const Message& envelope, std::uint32_t count);

  // --- end-of-run structural checks --------------------------------------
  /// Called by System::run after all service threads have joined. Compares
  /// the state mirror against each node's real page table (catches missed
  /// instrumentation) and walks copysets against actual holders.
  /// Analysis suppressed (false positive): the fleet is quiescent — every
  /// app/service/daemon thread has joined — so the lock-free reads of other
  /// nodes' PageEntry fields here cannot race with anything.
  void at_quiescence(const std::vector<const PageTable*>& tables)
      NO_THREAD_SAFETY_ANALYSIS;

  std::uint64_t violations() const;
  std::string last_violation() const;
  /// Appends the last violation (if any) to a diagnostic dump, so a
  /// watchdog abort shows the coherence state that caused it.
  void dump_last_violation(std::ostream& os) const;

 private:
  /// No (node, thread) unit — see unit_of.
  static constexpr std::size_t kNoUnit = ~std::size_t{0};

  /// FastTrack-style per-word epochs. `write_clock`/`write_unit` is the
  /// epoch of the last write; `read_clocks[u]` the clock of unit u's last
  /// read. A clock of 0 means "never" (unit clocks start at 1).
  struct WordState {
    std::size_t write_unit = kNoUnit;
    std::uint32_t write_clock = 0;
    std::vector<std::uint32_t> read_clocks;
  };

  /// Per-(barrier, generation) rendezvous. The barrier home releases only
  /// after all N arrivals, so by the time any depart hook runs the
  /// accumulator holds every participant's clock.
  struct Round {
    VectorClock acc;
    std::size_t arrivals = 0;
    std::size_t departures = 0;
  };

  /// Lock occupancy per lock: at most one exclusive holder; readers may
  /// share only with each other.
  struct LockOccupancy {
    NodeId exclusive = kNoNode;
    NodeSet readers;
  };

  void report(Counter& category, const std::string& text, bool dump_ok)
      REQUIRES(mutex_);

  /// Race-detector clock index of app thread `tid` on `node`. Units are
  /// dense — every node reserves kMaxAppThreads slots whether or not the run
  /// attaches extra threads — so single-thread runs simply never touch the
  /// tid > 0 slots and their reports stay byte-identical to the historical
  /// per-node detector.
  static std::size_t unit_of(NodeId node, ThreadId tid) {
    return static_cast<std::size_t>(node) * kMaxAppThreads + tid;
  }
  /// "node N" for a primary unit, "node N (thread T)" for a sibling.
  static std::string actor(std::size_t unit);
  /// "C@N" for a primary unit, "C@N.T" for a sibling.
  static std::string epoch(std::size_t unit, std::uint32_t clock);

  const std::size_t n_nodes_;
  const std::size_t n_units_;  ///< n_nodes_ * kMaxAppThreads
  const std::size_t n_pages_;
  const std::size_t page_size_;
  const CheckLevel level_;
  const bool swmr_;
  const bool ivy_dynamic_;
  const bool home_copyset_;
  const bool quorum_;
  const char* const protocol_;
  const std::function<NodeId(PageId)> manager_of_;
  const std::function<NodeId(PageId)> home_of_;
  const std::function<void(std::ostream&)> dump_;

  // Recursive: an assert-mode report invokes dump_, which (via
  // System::dump_diagnostics) calls back into dump_last_violation.
  // Lock order: hooks fire under sync/entry and fabric locks, and reports
  // look up stats counters — strictly between checker_gate and leaf_gate.
  mutable RecursiveMutex mutex_ ACQUIRED_AFTER(lock_order::checker_gate)
      ACQUIRED_BEFORE(lock_order::leaf_gate);

  // Race detector state. Clocks span units, not nodes: vector clocks have
  // n_units_ components and vc_ holds one per (node, app thread).
  std::vector<VectorClock> vc_ GUARDED_BY(mutex_);  // per unit
  std::unordered_map<std::uint64_t, WordState> words_
      GUARDED_BY(mutex_);                           // word key → epochs
  std::vector<VectorClock> lock_vc_ GUARDED_BY(mutex_);   // per lock
  std::vector<LockOccupancy> occupancy_ GUARDED_BY(mutex_);  // per lock
  std::map<std::pair<BarrierId, std::uint64_t>, Round> rounds_ GUARDED_BY(mutex_);
  std::vector<std::uint64_t> arrive_gen_ GUARDED_BY(mutex_);  // per (barrier, node)
  std::vector<std::uint64_t> depart_gen_ GUARDED_BY(mutex_);  // per (barrier, node)

  // Protocol invariant state.
  std::vector<PageState> states_ GUARDED_BY(mutex_);  // mirror, node-major
  std::vector<std::uint32_t> page_version_ GUARDED_BY(mutex_);  // node-major
  std::map<std::pair<NodeId, LockId>, std::uint64_t> lock_version_
      GUARDED_BY(mutex_);
  std::vector<VectorClock> last_vc_ GUARDED_BY(mutex_);  // per node, LRC/HLRC
  std::vector<std::uint64_t> next_seq_ GUARDED_BY(mutex_);  // per (src, dst) link

  // Crash-fault-tolerance state. `kSeqAny` marks a link whose cursor was
  // reset by a restart: the next delivery is adopted unchecked (the sender
  // side may or may not have kept its counters across the restart).
  static constexpr std::uint64_t kSeqAny = ~std::uint64_t{0};
  std::vector<std::uint64_t> quorum_floor_ GUARDED_BY(mutex_);
  std::set<NodeId> dead_ GUARDED_BY(mutex_);         // killed, not restarted
  std::set<NodeId> worker_dead_ GUARDED_BY(mutex_);  // ever killed (monotone): a
                                             // restart revives the fabric only
  std::vector<std::uint64_t> incarnation_ GUARDED_BY(mutex_);  // bumped on restart
  std::set<std::tuple<LockId, NodeId, std::uint64_t>> regenerated_
      GUARDED_BY(mutex_);

  std::string last_violation_ GUARDED_BY(mutex_);

  // Cached counters (StatsRegistry lookup is a lock + map walk).
  Counter& accesses_;
  Counter& violations_;
  Counter& races_;
  Counter& swmr_violations_;
  Counter& copyset_violations_;
  Counter& version_violations_;
  Counter& vclock_violations_;
  Counter& token_violations_;
  Counter& order_violations_;
  Counter& mirror_violations_;
  Counter& quorum_violations_;
};

}  // namespace dsm
