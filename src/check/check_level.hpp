// CheckLevel lives in its own tiny header so core/context.hpp can carry the
// knob without pulling the checker (and its dependencies) into every
// translation unit that includes a NodeContext.
#pragma once

#include <cstdint>

namespace dsm {

/// How much online verification a run performs. See DESIGN.md "dsmcheck".
enum class CheckLevel : std::uint8_t {
  kOff = 0,     ///< no checker is constructed: zero overhead
  kCount = 1,   ///< violations increment check.* counters; the run continues
  kAssert = 2,  ///< first violation prints a report + diagnostic dump, aborts
};

const char* to_string(CheckLevel level);

}  // namespace dsm
