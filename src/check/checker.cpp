#include "check/checker.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <utility>

namespace dsm {

const char* to_string(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff: return "off";
    case CheckLevel::kCount: return "count";
    case CheckLevel::kAssert: return "assert";
  }
  return "?";
}

DsmChecker::DsmChecker(Setup setup)
    : n_nodes_(setup.n_nodes),
      n_units_(setup.n_nodes * kMaxAppThreads),
      n_pages_(setup.n_pages),
      page_size_(setup.page_size),
      level_(setup.level),
      swmr_(setup.swmr),
      ivy_dynamic_(setup.ivy_dynamic),
      home_copyset_(setup.home_copyset),
      quorum_(setup.quorum),
      protocol_(setup.protocol),
      manager_of_(std::move(setup.manager_of)),
      home_of_(std::move(setup.home_of)),
      dump_(std::move(setup.dump)),
      accesses_(setup.stats->counter("check.accesses")),
      violations_(setup.stats->counter("check.violations")),
      races_(setup.stats->counter("check.races")),
      swmr_violations_(setup.stats->counter("check.swmr")),
      copyset_violations_(setup.stats->counter("check.copyset")),
      version_violations_(setup.stats->counter("check.version")),
      vclock_violations_(setup.stats->counter("check.vclock")),
      token_violations_(setup.stats->counter("check.token")),
      order_violations_(setup.stats->counter("check.order")),
      mirror_violations_(setup.stats->counter("check.mirror")),
      quorum_violations_(setup.stats->counter("check.quorum")) {
  vc_.reserve(n_units_);
  for (std::size_t u = 0; u < n_units_; ++u) {
    VectorClock vc(n_units_);
    // Start every unit in its own interval 1, so a clock entry of 0 in an
    // epoch means "never accessed" and first-segment accesses are not
    // spuriously covered by the all-zero initial clocks.
    vc.tick(static_cast<NodeId>(u));
    vc_.push_back(std::move(vc));
  }
  lock_vc_.assign(setup.n_locks, VectorClock(n_units_));
  occupancy_.assign(setup.n_locks, LockOccupancy{kNoNode, NodeSet(n_nodes_)});
  arrive_gen_.assign(setup.n_barriers * n_nodes_, 0);
  depart_gen_.assign(setup.n_barriers * n_nodes_, 0);
  states_.assign(n_nodes_ * n_pages_, PageState::kInvalid);
  page_version_.assign(n_nodes_ * n_pages_, 0);
  last_vc_.assign(n_nodes_, VectorClock{});
  next_seq_.assign(n_nodes_ * n_nodes_, 0);
  quorum_floor_.assign(n_pages_, 0);
  incarnation_.assign(n_nodes_, 0);
}

std::string DsmChecker::actor(std::size_t unit) {
  const std::size_t node = unit / kMaxAppThreads;
  const std::size_t tid = unit % kMaxAppThreads;
  std::string s = "node " + std::to_string(node);
  if (tid != 0) s += " (thread " + std::to_string(tid) + ")";
  return s;
}

std::string DsmChecker::epoch(std::size_t unit, std::uint32_t clock) {
  const std::size_t node = unit / kMaxAppThreads;
  const std::size_t tid = unit % kMaxAppThreads;
  std::string s = std::to_string(clock) + "@" + std::to_string(node);
  if (tid != 0) s += "." + std::to_string(tid);
  return s;
}

void DsmChecker::report(Counter& category, const std::string& text, bool dump_ok) {
  // Caller holds mutex_ (recursive, so dump_ may call dump_last_violation).
  category.add();
  violations_.add();
  last_violation_ = text;
  if (level_ == CheckLevel::kAssert) {
    std::cerr << "[dsmcheck] VIOLATION (" << protocol_ << "): " << text << "\n";
    // dump_ok is false when the reporting hook runs under a Network lock
    // that the diagnostic dump would re-take (self-deadlock on the abort
    // path); the one-line report above still identifies the violation.
    if (dump_ok && dump_) dump_(std::cerr);
    std::cerr.flush();
    std::abort();
  }
}

void DsmChecker::on_access(NodeId node, ThreadId tid, PageId page,
                           std::size_t offset, bool is_write) {
  accesses_.add();
  const RecursiveMutexLock lk(mutex_);
  const std::uint64_t word = offset & ~std::uint64_t{7};
  const std::uint64_t key =
      static_cast<std::uint64_t>(page) * page_size_ + word;
  auto [it, fresh] = words_.try_emplace(key);
  WordState& ws = it->second;
  if (fresh) ws.read_clocks.assign(n_units_, 0);

  const std::size_t me = unit_of(node, tid);
  const NodeId mu = static_cast<NodeId>(me);
  const VectorClock& vc = vc_[me];
  const char* kind = is_write ? "write" : "read";

  // Conflict with the last write: racy unless this unit's clock has seen
  // the writer's interval (i.e. a release/acquire or barrier chain orders
  // the write before us). Two threads of one node are distinct units, so
  // intra-node conflicts are caught by the same rule.
  if (ws.write_unit != kNoUnit && ws.write_unit != me &&
      ws.write_clock > vc[static_cast<NodeId>(ws.write_unit)]) {
    std::ostringstream os;
    os << "data race on page " << page << " (word +" << word << "): " << kind
       << " by " << actor(me) << " at epoch " << epoch(me, vc[mu])
       << " conflicts with write at epoch "
       << epoch(ws.write_unit, ws.write_clock)
       << "; no happens-before edge (release/acquire or barrier) orders "
       << epoch(ws.write_unit, ws.write_clock) << " before this access"
       << " (" << actor(me) << " has seen only interval "
       << vc[static_cast<NodeId>(ws.write_unit)] << " of "
       << actor(ws.write_unit) << ")";
    report(races_, os.str(), true);
  }

  if (is_write) {
    // A write also conflicts with every unordered prior read.
    for (std::size_t m = 0; m < n_units_; ++m) {
      if (m == me) continue;
      const NodeId mn = static_cast<NodeId>(m);
      if (ws.read_clocks[m] > vc[mn]) {
        std::ostringstream os;
        os << "data race on page " << page << " (word +" << word
           << "): write by " << actor(me) << " at epoch "
           << epoch(me, vc[mu]) << " conflicts with read at epoch "
           << epoch(m, ws.read_clocks[m])
           << "; no happens-before edge (release/acquire or barrier) orders "
           << epoch(m, ws.read_clocks[m]) << " before this access"
           << " (" << actor(me) << " has seen only interval " << vc[mn]
           << " of " << actor(m) << ")";
        report(races_, os.str(), true);
      }
    }
    ws.write_unit = me;
    ws.write_clock = vc[mu];
  } else {
    ws.read_clocks[me] = vc[mu];
  }
}

void DsmChecker::on_lock_acquired(NodeId node, ThreadId tid, LockId lock,
                                  LockMode mode) {
  const RecursiveMutexLock lk(mutex_);
  LockOccupancy& occ = occupancy_[lock];
  if (mode == LockMode::kRead) {
    if (occ.exclusive != kNoNode) {
      std::ostringstream os;
      os << "lock token violation: read lock " << lock << " granted to node "
         << node << " while node " << occ.exclusive << " holds it exclusively";
      report(token_violations_, os.str(), true);
    }
    occ.readers.insert(node);
  } else {
    if (occ.exclusive != kNoNode) {
      std::ostringstream os;
      os << "lock token violation: lock " << lock
         << " granted exclusively to node " << node << " while node "
         << occ.exclusive << " still holds it";
      report(token_violations_, os.str(), true);
    }
    if (!occ.readers.empty()) {
      std::ostringstream os;
      os << "lock token violation: lock " << lock
         << " granted exclusively to node " << node << " while "
         << occ.readers.count() << " reader(s) hold it";
      report(token_violations_, os.str(), true);
    }
    occ.exclusive = node;
  }
  // The acquiring thread learns everything the last releaser knew.
  vc_[unit_of(node, tid)].merge(lock_vc_[lock]);
}

void DsmChecker::on_lock_released(NodeId node, ThreadId tid, LockId lock,
                                  LockMode mode) {
  const RecursiveMutexLock lk(mutex_);
  LockOccupancy& occ = occupancy_[lock];
  if (mode == LockMode::kRead) {
    if (!occ.readers.contains(node)) {
      std::ostringstream os;
      os << "lock token violation: node " << node << " released read lock "
         << lock << " it does not hold";
      report(token_violations_, os.str(), true);
    }
    occ.readers.erase(node);
  } else {
    if (occ.exclusive != node) {
      std::ostringstream os;
      os << "lock token violation: node " << node << " released lock " << lock
         << " held by "
         << (occ.exclusive == kNoNode ? std::string("nobody")
                                      : "node " + std::to_string(occ.exclusive));
      report(token_violations_, os.str(), true);
    }
    occ.exclusive = kNoNode;
  }
  // Publish this thread's knowledge to the next acquirer, then open a new
  // interval. (For read releases the merge is conservative: it can only
  // make later acquirers appear to know more, masking at worst — a sound
  // under-approximation, never a false positive.)
  const std::size_t me = unit_of(node, tid);
  lock_vc_[lock].merge(vc_[me]);
  vc_[me].tick(static_cast<NodeId>(me));
}

void DsmChecker::on_barrier_arrive(NodeId node, ThreadId tid,
                                   BarrierId barrier) {
  const RecursiveMutexLock lk(mutex_);
  // Generations are counted per node, not per unit: the sync agent
  // serializes a node's app threads through the barrier, so each round gets
  // exactly one arrival per live node no matter which thread carried it.
  const std::uint64_t gen = arrive_gen_[barrier * n_nodes_ + node]++;
  Round& round = rounds_[{barrier, gen}];
  if (round.acc.size() == 0) round.acc = VectorClock(n_units_);
  round.acc.merge(vc_[unit_of(node, tid)]);
  ++round.arrivals;
}

void DsmChecker::on_barrier_depart(NodeId node, ThreadId tid,
                                   BarrierId barrier) {
  const RecursiveMutexLock lk(mutex_);
  const std::uint64_t gen = depart_gen_[barrier * n_nodes_ + node]++;
  auto it = rounds_.find({barrier, gen});
  // The home broadcasts the release only after every *live* worker arrived
  // (all N when nothing died), and every arrive hook runs before its node's
  // arrive message is sent — so a depart with fewer recorded arrivals means
  // a hook was missed or a round completed without the live stragglers.
  const std::size_t needed = n_nodes_ - worker_dead_.size();
  if (it == rounds_.end() || it->second.arrivals < needed) {
    std::ostringstream os;
    os << "barrier order violation: node " << node << " departed barrier "
       << barrier << " round " << gen << " with only "
       << (it == rounds_.end() ? std::size_t{0} : it->second.arrivals) << "/"
       << needed << " recorded arrivals";
    report(order_violations_, os.str(), true);
  }
  const std::size_t me = unit_of(node, tid);
  if (it != rounds_.end()) {
    vc_[me].merge(it->second.acc);
    if (++it->second.departures >= needed) rounds_.erase(it);
  }
  vc_[me].tick(static_cast<NodeId>(me));
}

void DsmChecker::on_page_state(NodeId node, PageId page, PageState state) {
  const RecursiveMutexLock lk(mutex_);
  if (swmr_ && state != PageState::kInvalid) {
    for (std::size_t m = 0; m < n_nodes_; ++m) {
      if (m == node) continue;
      const PageState other = states_[m * n_pages_ + page];
      const bool two_writable =
          state == PageState::kReadWrite && other != PageState::kInvalid;
      const bool writer_with_reader =
          state == PageState::kReadOnly && other == PageState::kReadWrite;
      if (two_writable || writer_with_reader) {
        std::ostringstream os;
        os << "SWMR violation on page " << page << ": node " << node
           << " transitions to " << to_string(state) << " while node " << m
           << " holds " << to_string(other);
        report(swmr_violations_, os.str(), true);
      }
    }
  }
  states_[node * n_pages_ + page] = state;
}

void DsmChecker::on_page_version(NodeId node, PageId page,
                                 std::uint32_t version) {
  const RecursiveMutexLock lk(mutex_);
  std::uint32_t& stored = page_version_[node * n_pages_ + page];
  if (version <= stored) {
    std::ostringstream os;
    os << "version monotonicity violation: node " << node << " page " << page
       << " moved to version " << version << " after version " << stored;
    report(version_violations_, os.str(), true);
  }
  stored = version;
}

void DsmChecker::on_lock_version(NodeId node, LockId lock,
                                 std::uint64_t version) {
  const RecursiveMutexLock lk(mutex_);
  std::uint64_t& stored = lock_version_[{node, lock}];
  if (version < stored) {
    std::ostringstream os;
    os << "version monotonicity violation: node " << node << " lock " << lock
       << " regressed to data version " << version << " from " << stored;
    report(version_violations_, os.str(), true);
  }
  stored = version;
}

void DsmChecker::on_vclock(NodeId node, const VectorClock& vc) {
  const RecursiveMutexLock lk(mutex_);
  VectorClock& prev = last_vc_[node];
  if (prev.size() != 0 && !vc.dominates(prev)) {
    std::ostringstream os;
    os << "vector clock regression on node " << node << ": " << vc.to_string()
       << " does not dominate previous " << prev.to_string();
    report(vclock_violations_, os.str(), true);
  }
  prev = vc;
}

void DsmChecker::on_quorum_ack(PageId page, std::uint64_t tag) {
  if (!quorum_) return;
  const RecursiveMutexLock lk(mutex_);
  std::uint64_t& floor = quorum_floor_[page];
  if (tag > floor) floor = tag;
}

void DsmChecker::on_quorum_serve(PageId page, std::uint64_t tag) {
  if (!quorum_) return;
  const RecursiveMutexLock lk(mutex_);
  if (tag < quorum_floor_[page]) {
    std::ostringstream os;
    os << "quorum violation: page " << page << " served at tag " << tag
       << " below acked floor " << quorum_floor_[page]
       << " — an acknowledged write was lost across a failover";
    report(quorum_violations_, os.str(), true);
  }
}

void DsmChecker::on_token_regenerated(LockId lock, NodeId dead) {
  const RecursiveMutexLock lk(mutex_);
  if (!regenerated_.insert({lock, dead, incarnation_[dead]}).second) {
    std::ostringstream os;
    os << "lock token violation: token of lock " << lock
       << " regenerated twice for dead holder node " << dead
       << " (incarnation " << incarnation_[dead] << ") — two tokens minted";
    report(token_violations_, os.str(), true);
    return;
  }
  // The dead holder's occupancy is released by decree, not by a release
  // hook: clear it so the next grant is not a phantom double-grant.
  LockOccupancy& occ = occupancy_[lock];
  if (occ.exclusive == dead) occ.exclusive = kNoNode;
  occ.readers.erase(dead);
}

void DsmChecker::on_node_killed(NodeId node) {
  const RecursiveMutexLock lk(mutex_);
  dead_.insert(node);
  worker_dead_.insert(node);
}

void DsmChecker::on_node_restarted(NodeId node) {
  const RecursiveMutexLock lk(mutex_);
  dead_.erase(node);
  ++incarnation_[node];
  // The restarted fabric comes back all-invalid; note_state hooks re-mirror
  // from there. Page versions restart from the restored checkpoint (or from
  // zero), so the monotonicity floor resets too — the bounded version
  // rollback is the documented checkpoint loss, not a protocol bug.
  for (PageId p = 0; p < n_pages_; ++p) {
    states_[node * n_pages_ + p] = PageState::kInvalid;
    page_version_[node * n_pages_ + p] = 0;
  }
  // Links touching the node adopt whatever seq arrives next: an in-process
  // restart keeps the sender counters, a respawned process restarts at 0.
  for (std::size_t m = 0; m < n_nodes_; ++m) {
    next_seq_[node * n_nodes_ + m] = kSeqAny;
    next_seq_[m * n_nodes_ + node] = kSeqAny;
  }
}

void DsmChecker::on_deliver(const Message& msg) {
  if (msg.seq == Message::kNoSeq) return;
  const RecursiveMutexLock lk(mutex_);
  std::uint64_t& expected = next_seq_[msg.src * n_nodes_ + msg.dst];
  if (expected == kSeqAny) {
    expected = msg.seq + 1;
    return;
  }
  if (msg.seq != expected) {
    std::ostringstream os;
    os << "delivery order violation on link " << msg.src << "->" << msg.dst
       << ": " << to_string(msg.type) << " seq " << msg.seq
       << " delivered, expected seq " << expected
       << " (reliable sublayer must dedup and reassemble in order)";
    // dump_ok=false: deliver() runs under Network::links_mutex_, which the
    // diagnostic dump's debug_dump would re-take.
    report(order_violations_, os.str(), false);
  }
  expected = msg.seq + 1;
}

void DsmChecker::on_batch(const Message& envelope, std::uint32_t count) {
  if (envelope.seq == Message::kNoSeq) return;
  const RecursiveMutexLock lk(mutex_);
  const std::uint64_t expected = next_seq_[envelope.src * n_nodes_ + envelope.dst];
  if (expected == kSeqAny) return;  // restarted link: adopt via on_deliver
  if (envelope.seq != expected || count == 0) {
    std::ostringstream os;
    os << "batch envelope violation on link " << envelope.src << "->" << envelope.dst
       << ": envelope covers seqs [" << envelope.seq << ", " << envelope.seq + count
       << "), expected it to start at seq " << expected
       << " (envelopes must be accepted whole, in order)";
    // dump_ok=false: the hook runs under Network::links_mutex_, which the
    // diagnostic dump's debug_dump would re-take.
    report(order_violations_, os.str(), false);
  }
  // No cursor advance here: the per-inner on_deliver calls that follow walk
  // next_seq_ across the envelope's range one message at a time.
}

void DsmChecker::at_quiescence(const std::vector<const PageTable*>& tables) {
  // Snapshot every table's page states before taking mutex_. Protocols call
  // note_state with the page-table entry lock held and on_page_state then
  // takes mutex_; reading state_of (which takes the table lock) from under
  // mutex_ here would invert that order. The fleet is quiescent when this
  // runs, so the snapshot is exact.
  std::vector<PageState> snap(tables.size() * n_pages_);
  for (std::size_t n = 0; n < tables.size(); ++n) {
    for (PageId p = 0; p < n_pages_; ++p) {
      snap[n * n_pages_ + p] = tables[n]->state_of(p);
    }
  }
  const auto snap_of = [&](std::size_t n, PageId p) {
    return snap[n * n_pages_ + p];
  };
  const RecursiveMutexLock lk(mutex_);

  // A run that killed nodes ends with a deliberately ragged fleet: dead
  // nodes' tables are frozen mid-flight and survivors may reference them.
  // The per-run invariants (races, quorum floor, token uniqueness, delivery
  // order) were all checked online; only the full-fleet structural passes
  // below are relaxed.
  const bool had_deaths = !worker_dead_.empty();

  // 1. The mirror must agree with every real page table — a mismatch means
  //    a protocol mutated `state` without the note_state hook.
  for (std::size_t n = 0; n < n_nodes_; ++n) {
    if (dead_.count(static_cast<NodeId>(n)) != 0) continue;
    for (PageId p = 0; p < n_pages_; ++p) {
      const PageState actual = snap_of(n, p);
      const PageState mirrored = states_[n * n_pages_ + p];
      if (actual != mirrored) {
        std::ostringstream os;
        os << "state mirror mismatch: node " << n << " page " << p
           << " is " << to_string(actual) << " but hooks recorded "
           << to_string(mirrored) << " (missed instrumentation?)";
        report(mirror_violations_, os.str(), true);
      }
    }
  }

  // 2. IVY copyset soundness: every holder is known to the owner.
  if (swmr_ && !had_deaths) {
    for (PageId p = 0; p < n_pages_; ++p) {
      NodeId owner = kNoNode;
      if (ivy_dynamic_) {
        for (std::size_t n = 0; n < n_nodes_; ++n) {
          if (!tables[n]->entry(p).is_owner) continue;
          if (owner != kNoNode) {
            std::ostringstream os;
            os << "copyset violation: page " << p << " has two owners (node "
               << owner << " and node " << n << ")";
            report(copyset_violations_, os.str(), true);
          }
          owner = static_cast<NodeId>(n);
        }
      } else {
        owner = tables[manager_of_(p)]->entry(p).owner;
      }
      if (owner == kNoNode || owner >= n_nodes_) {
        std::ostringstream os;
        os << "copyset violation: page " << p << " has no owner at quiescence";
        report(copyset_violations_, os.str(), true);
        continue;
      }
      if (snap_of(owner, p) == PageState::kInvalid) {
        std::ostringstream os;
        os << "copyset violation: owner node " << owner << " of page " << p
           << " holds no copy";
        report(copyset_violations_, os.str(), true);
      }
      const PageEntry& oe = tables[owner]->entry(p);
      for (std::size_t n = 0; n < n_nodes_; ++n) {
        if (n == owner) continue;
        if (snap_of(n, p) == PageState::kInvalid) continue;
        if (!oe.copyset.contains(static_cast<NodeId>(n))) {
          std::ostringstream os;
          os << "copyset violation: node " << n << " holds page " << p
             << " (" << to_string(snap_of(n, p))
             << ") but is missing from owner " << owner << "'s copyset";
          report(copyset_violations_, os.str(), true);
        }
      }
    }
  }

  // 3. ERC home copyset soundness: the home knows every non-home holder
  //    (keepers included — handle_invalidate re-adds kept copies).
  if (home_copyset_ && !had_deaths) {
    for (PageId p = 0; p < n_pages_; ++p) {
      const NodeId home = home_of_(p);
      const PageEntry& he = tables[home]->entry(p);
      for (std::size_t n = 0; n < n_nodes_; ++n) {
        if (n == home) continue;
        if (snap_of(n, p) == PageState::kInvalid) continue;
        if (!he.copyset.contains(static_cast<NodeId>(n))) {
          std::ostringstream os;
          os << "copyset violation: node " << n << " holds page " << p
             << " (" << to_string(snap_of(n, p))
             << ") but is missing from home " << home << "'s copyset";
          report(copyset_violations_, os.str(), true);
        }
      }
    }
  }
}

std::uint64_t DsmChecker::violations() const { return violations_.value(); }

std::string DsmChecker::last_violation() const {
  const RecursiveMutexLock lk(mutex_);
  return last_violation_;
}

void DsmChecker::dump_last_violation(std::ostream& os) const {
  const RecursiveMutexLock lk(mutex_);
  if (last_violation_.empty()) return;
  os << "[dsmcheck] violations: " << violations_.value()
     << "; last: " << last_violation_ << "\n";
}

}  // namespace dsm
