#include "core/watchdog.hpp"

#include <cstdlib>
#include <iostream>

#include "common/assert.hpp"
#include "common/clock.hpp"

namespace dsm {

namespace {

std::int64_t steady_now_ns() {
  return static_cast<std::int64_t>(realclock::now_ns());
}

}  // namespace

Watchdog::Watchdog(std::size_t n_nodes, std::size_t threads_per_node,
                   std::uint32_t bound_ms, DumpFn dump)
    : bound_ms_(bound_ms),
      dump_(std::move(dump)),
      threads_per_node_(threads_per_node == 0 ? 1 : threads_per_node),
      slots_(n_nodes * (threads_per_node == 0 ? 1 : threads_per_node)) {
  if (enabled()) scanner_ = std::thread([this] { scan_loop(); });
}

void Watchdog::bind_thread(std::size_t slot, std::uint32_t ktid) {
  slots_[slot].ktid.store(ktid, std::memory_order_relaxed);
}

std::uint32_t Watchdog::bound_thread(std::size_t slot) const {
  return slots_[slot].ktid.load(std::memory_order_relaxed);
}

Watchdog::~Watchdog() {
  if (!scanner_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  scanner_.join();
}

Watchdog::Guard::Guard(Watchdog* wd, std::size_t slot, const char* what,
                       std::uint64_t detail)
    : wd_(wd), slot_(slot) {
  if (wd_ != nullptr) wd_->push(slot, what, detail);
}

Watchdog::Guard::~Guard() {
  if (wd_ != nullptr) wd_->pop(slot_);
}

void Watchdog::push(std::size_t slot, const char* what, std::uint64_t detail) {
  Slot& s = slots_[slot];
  const int d = s.depth.load(std::memory_order_relaxed);
  DSM_CHECK_MSG(d < kMaxDepth, "watchdog guard stack overflow on slot " << slot);
  Slot::Frame& f = s.frames[d];
  f.what.store(what, std::memory_order_relaxed);
  f.detail.store(detail, std::memory_order_relaxed);
  f.since_ns.store(steady_now_ns(), std::memory_order_relaxed);
  s.depth.store(d + 1, std::memory_order_release);
}

void Watchdog::pop(std::size_t slot) {
  Slot& s = slots_[slot];
  const int d = s.depth.load(std::memory_order_relaxed);
  DSM_CHECK(d > 0);
  s.depth.store(d - 1, std::memory_order_release);
}

void Watchdog::scan_loop() {
  const auto bound = std::chrono::milliseconds(bound_ms_);
  const auto tick = std::min<std::chrono::milliseconds>(bound / 4 + std::chrono::milliseconds(1),
                                                        std::chrono::milliseconds(250));
  const MutexLock lock(mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    cv_.wait_for(mutex_, tick);
    if (stopping_.load(std::memory_order_relaxed)) return;

    const std::int64_t now = steady_now_ns();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      const int d = s.depth.load(std::memory_order_acquire);
      if (d <= 0) continue;
      const Slot::Frame& f = s.frames[d - 1];
      const std::int64_t since = f.since_ns.load(std::memory_order_relaxed);
      const std::int64_t stuck_ms = (now - since) / 1'000'000;
      if (stuck_ms < static_cast<std::int64_t>(bound_ms_)) continue;

      const char* what = f.what.load(std::memory_order_relaxed);
      std::cerr << "[tutordsm] WATCHDOG: node " << i / threads_per_node_;
      if (threads_per_node_ > 1) {
        std::cerr << " thread " << i % threads_per_node_;
        const std::uint32_t ktid = s.ktid.load(std::memory_order_relaxed);
        if (ktid != 0) std::cerr << " (ktid " << ktid << ")";
      }
      std::cerr << " stuck in " << (what != nullptr ? what : "?") << " (detail="
                << f.detail.load(std::memory_order_relaxed) << ") for " << stuck_ms
                << " ms (bound " << bound_ms_ << " ms) — dumping state and aborting\n";
      if (dump_) dump_(std::cerr);
      std::cerr.flush();
      std::abort();
    }
  }
}

}  // namespace dsm
