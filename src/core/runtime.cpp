#include "core/runtime.hpp"

#include <chrono>
#include <cstdlib>
#include <ostream>
#include <set>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace dsm {

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

// Every sync operation can block on remote state, so each brackets itself
// with a watchdog guard — a wedged wait becomes a diagnostic abort. Each is
// also a fault-injection point: a seeded crash lands *between* operations
// (maybe_kill throws before the operation starts), never mid-transaction.
void Worker::acquire(LockId lock) {
  system_->maybe_kill(node_);
  const auto g = Watchdog::guard(system_->watchdog_.get(),
                                 system_->watchdog_->slot_of(node_, tid_),
                                 "lock-acquire", lock);
  system_->nodes_[node_]->sync->acquire(lock);
}
void Worker::release(LockId lock) {
  system_->maybe_kill(node_);
  const auto g = Watchdog::guard(system_->watchdog_.get(),
                                 system_->watchdog_->slot_of(node_, tid_),
                                 "lock-release", lock);
  system_->nodes_[node_]->sync->release(lock);
}
void Worker::acquire_read(LockId lock) {
  system_->maybe_kill(node_);
  const auto g = Watchdog::guard(system_->watchdog_.get(),
                                 system_->watchdog_->slot_of(node_, tid_),
                                 "rwlock-acquire-read", lock);
  system_->nodes_[node_]->sync->acquire_read(lock);
}
void Worker::release_read(LockId lock) {
  system_->maybe_kill(node_);
  const auto g = Watchdog::guard(system_->watchdog_.get(),
                                 system_->watchdog_->slot_of(node_, tid_),
                                 "rwlock-release-read", lock);
  system_->nodes_[node_]->sync->release_read(lock);
}
void Worker::acquire_write(LockId lock) {
  system_->maybe_kill(node_);
  const auto g = Watchdog::guard(system_->watchdog_.get(),
                                 system_->watchdog_->slot_of(node_, tid_),
                                 "rwlock-acquire-write", lock);
  system_->nodes_[node_]->sync->acquire_write(lock);
}
void Worker::release_write(LockId lock) {
  system_->maybe_kill(node_);
  const auto g = Watchdog::guard(system_->watchdog_.get(),
                                 system_->watchdog_->slot_of(node_, tid_),
                                 "rwlock-release-write", lock);
  system_->nodes_[node_]->sync->release_write(lock);
}
void Worker::barrier(BarrierId barrier) {
  system_->maybe_kill(node_);
  const auto g = Watchdog::guard(system_->watchdog_.get(),
                                 system_->watchdog_->slot_of(node_, tid_),
                                 "barrier", barrier);
  system_->nodes_[node_]->sync->barrier(barrier);
}

void Worker::compute(std::uint64_t ops) {
  system_->nodes_[node_]->clock.advance(ops * system_->config().ns_per_op);
  system_->maybe_kill(node_);
}

VirtualTime Worker::now() const { return system_->nodes_[node_]->clock.now(); }

void Worker::bind_region(LockId lock, std::size_t offset, std::size_t size) {
  system_->nodes_[node_]->protocol->bind_lock_region(lock, offset, size);
}

void Worker::bind_barrier_region(BarrierId barrier, std::size_t offset, std::size_t size) {
  system_->nodes_[node_]->protocol->bind_barrier_region(barrier, offset, size);
}

// ---------------------------------------------------------------------------
// System
// ---------------------------------------------------------------------------

System::System(Config cfg) : cfg_(cfg) {
  DSM_CHECK_MSG(cfg_.n_nodes >= 1, "need at least one node");
  DSM_CHECK_MSG(cfg_.page_size % ViewRegion::os_page_size() == 0,
                "page_size must be a multiple of the OS page size ("
                    << ViewRegion::os_page_size() << ")");
  if (cfg_.transport.kind == TransportKind::kInproc && !cfg_.transport.multiprocess()) {
    // Conformance-suite override: lets the whole existing test asset base
    // run against real sockets without touching each test's Config.
    transport_kind_from_env(cfg_.transport);
  }
  // Same override scheme for the fault engine (the ".uffd" conformance
  // copies). A run asking for uffd on a kernel without minor+WP userfaultfd
  // degrades to sigsegv with a visible note rather than aborting — the
  // conformance suites detect the same condition up front and skip instead.
  fault_engine_kind_from_env(cfg_.fault_engine);
  if (cfg_.fault_engine == FaultEngineKind::kUffd) {
    std::string reason;
    if (!uffd_available(&reason)) {
      DSM_LOG_WARN << "[uffd unavailable] " << reason
                   << "; falling back to the sigsegv fault engine";
      cfg_.fault_engine = FaultEngineKind::kSigsegv;
    }
  }
  // Conformance-suite override for the thread-count copies (".mt2"/".mt4"):
  // TUTORDSM_APP_THREADS=N hosts N app threads per node. Multi-threaded
  // nodes need the uffd engine — the sigsegv engine services faults
  // synchronously inside the faulting thread's signal frame with
  // process-global handler state, an inherently single-thread design — so a
  // sigsegv (or uffd-unavailable) run clamps back to one thread with a
  // visible note instead of racing.
  if (const char* threads = std::getenv("TUTORDSM_APP_THREADS");
      threads != nullptr && *threads != '\0') {
    cfg_.app_threads = static_cast<std::size_t>(std::strtoul(threads, nullptr, 10));
  }
  if (cfg_.app_threads < 1) cfg_.app_threads = 1;
  if (cfg_.app_threads > kMaxAppThreads) {
    DSM_LOG_WARN << "app_threads " << cfg_.app_threads << " capped at "
                 << kMaxAppThreads;
    cfg_.app_threads = kMaxAppThreads;
  }
  if (cfg_.app_threads > 1 && cfg_.fault_engine == FaultEngineKind::kSigsegv) {
    DSM_LOG_WARN << "app_threads " << cfg_.app_threads
                 << " requires the uffd fault engine (sigsegv fault service is "
                    "single-thread-only); clamping to 1";
    cfg_.app_threads = 1;
  }
  if (cfg_.app_threads > 1 && cfg_.transport.multiprocess()) {
    DSM_LOG_WARN << "app_threads > 1 is single-process only; clamping to 1";
    cfg_.app_threads = 1;
  }
  fault_engine_ = make_fault_engine(cfg_.fault_engine, &stats_);
  if (cfg_.transport.multiprocess()) {
    DSM_CHECK_MSG(cfg_.transport.kind == TransportKind::kUdp,
                  "multi-process mode requires the udp transport");
    DSM_CHECK_MSG(cfg_.transport.local_node < cfg_.n_nodes,
                  "local node " << cfg_.transport.local_node << " out of range for "
                                << cfg_.n_nodes << " nodes");
    DSM_CHECK_MSG(cfg_.transport.peers.size() == cfg_.n_nodes,
                  "need one peer endpoint per node");
    if (cfg_.check_level != CheckLevel::kOff) {
      // dsmcheck needs every node's accesses and deliveries in one address
      // space; a single rank's view would report false races.
      DSM_LOG_WARN << "dsmcheck is unavailable in multi-process mode; "
                      "forcing check_level=off";
      cfg_.check_level = CheckLevel::kOff;
    }
  }
  if (cfg_.ft.enabled) {
    DSM_CHECK_MSG(cfg_.protocol == ProtocolKind::kQrc ||
                      cfg_.protocol == ProtocolKind::kErcInvalidate,
                  "ft requires a crash-tolerant protocol: qrc (quorum "
                  "replication) or erc-invalidate (buddy checkpointing)");
    DSM_CHECK_MSG(cfg_.ft.replication >= 1 && cfg_.ft.replication <= cfg_.n_nodes,
                  "ft.replication " << cfg_.ft.replication << " out of range for "
                                    << cfg_.n_nodes << " nodes");
    if (cfg_.ft.checkpoint_period > 0) {
      DSM_CHECK_MSG(cfg_.protocol == ProtocolKind::kErcInvalidate,
                    "checkpointing is the erc-invalidate recovery path; "
                    "qrc recovers from its replica quorum");
    }
    DSM_CHECK_MSG(!(cfg_.transport.multiprocess() && !cfg_.ft.faults.empty()),
                  "virtual-time fault injection is single-process only; kill "
                  "real ranks with SIGKILL under dsmrun --on-crash=respawn");
    std::set<NodeId> victims;
    for (const auto& fault : cfg_.ft.faults) {
      DSM_CHECK_MSG(fault.node != 0,
                    "node 0 anchors locks and barriers under ft and cannot die");
      DSM_CHECK_MSG(fault.node < cfg_.n_nodes,
                    "fault victim " << fault.node << " out of range");
      DSM_CHECK_MSG(fault.kill_at > 0, "fault kill_at must be positive");
      DSM_CHECK_MSG(victims.insert(fault.node).second,
                    "duplicate fault for node " << fault.node);
      if (cfg_.protocol == ProtocolKind::kErcInvalidate) {
        // A page's only home died: without a restart to replay the buddy
        // checkpoint into, its pages would be unreachable forever.
        DSM_CHECK_MSG(fault.restart,
                      "erc-invalidate faults must restart (its pages have one "
                      "home); use qrc for kill-without-restart");
      }
    }
    if (cfg_.lock_policy == LockPolicy::kForwardChain) {
      // The chain routes grants holder-to-holder; a dead link wedges it.
      // Centralized keeps all token state at node 0, which never dies.
      DSM_LOG_WARN << "ft forces lock_policy=centralized (forward-chain has "
                      "no token regeneration path)";
      cfg_.lock_policy = LockPolicy::kCentralized;
    }
  }
  if (cfg_.trace.enabled) {
    tracer_ = std::make_unique<Tracer>(cfg_.n_nodes, cfg_.trace,
                                       &stats_.counter("trace.dropped"));
  }
  if (cfg_.check_level != CheckLevel::kOff) {
    // Distill the protocol's invariant profile into checker traits so
    // src/check never depends on src/proto or src/core.
    const bool ivy = cfg_.protocol == ProtocolKind::kIvyCentral ||
                     cfg_.protocol == ProtocolKind::kIvyFixed ||
                     cfg_.protocol == ProtocolKind::kIvyDynamic;
    DsmChecker::Setup setup;
    setup.n_nodes = cfg_.n_nodes;
    setup.n_pages = cfg_.n_pages;
    setup.page_size = cfg_.page_size;
    setup.n_locks = cfg_.n_locks;
    setup.n_barriers = cfg_.n_barriers;
    setup.level = cfg_.check_level;
    setup.swmr = ivy;
    setup.ivy_dynamic = cfg_.protocol == ProtocolKind::kIvyDynamic;
    setup.home_copyset = cfg_.protocol == ProtocolKind::kErcInvalidate ||
                         cfg_.protocol == ProtocolKind::kErcUpdate;
    setup.quorum = cfg_.protocol == ProtocolKind::kQrc;
    setup.protocol = to_string(cfg_.protocol);
    if (cfg_.protocol == ProtocolKind::kIvyCentral) {
      setup.manager_of = [](PageId) { return NodeId{0}; };
    } else {
      setup.manager_of = [n = cfg_.n_nodes](PageId p) {
        return static_cast<NodeId>(p % n);
      };
    }
    setup.home_of = [n = cfg_.n_nodes](PageId p) {
      return static_cast<NodeId>(p % n);
    };
    setup.stats = &stats_;
    setup.dump = [this](std::ostream& os) { dump_diagnostics(os); };
    checker_ = std::make_unique<DsmChecker>(std::move(setup));
  }
  network_ = std::make_unique<Network>(cfg_.n_nodes, cfg_.link, &stats_,
                                       cfg_.reliability, cfg_.chaos, cfg_.wire,
                                       tracer_.get(), cfg_.transport);
  if (cfg_.ft.enabled) network_->set_ft(true);
  if (checker_ != nullptr) {
    network_->set_delivery_hook(
        [chk = checker_.get()](const Message& msg) { chk->on_deliver(msg); });
    network_->set_batch_hook(
        [chk = checker_.get()](const Message& envelope, std::uint32_t count) {
          chk->on_batch(envelope, count);
        });
  }
  // One watchdog slot per (node, app thread); single-thread runs keep the
  // historical one-slot-per-node layout (slot == node id).
  watchdog_ = std::make_unique<Watchdog>(
      cfg_.n_nodes, cfg_.app_threads > 1 ? kMaxAppThreads : 1, cfg_.watchdog_ms,
      [this](std::ostream& os) { dump_diagnostics(os); });

  nodes_.reserve(cfg_.n_nodes);
  for (NodeId id = 0; id < cfg_.n_nodes; ++id) {
    if (!hosted(id)) {
      // Remote rank: lives in another process. The slot stays null so
      // NodeId indexing keeps working for the one node we do host.
      nodes_.push_back(nullptr);
      continue;
    }
    auto node = std::make_unique<Node>();
    node->view = std::make_unique<ViewRegion>(cfg_.n_pages, cfg_.page_size);
    node->table = std::make_unique<PageTable>(cfg_.n_pages, cfg_.n_nodes);
    node->ctx = NodeContext{
        .id = id,
        .n_nodes = cfg_.n_nodes,
        .cfg = &cfg_,
        .net = network_.get(),
        .view = node->view.get(),
        .table = node->table.get(),
        .clock = &node->clock,
        .stats = &stats_,
        .trace = tracer_.get(),
        .check = checker_.get(),
        .fault = fault_engine_.get(),
    };
    node->protocol = make_protocol(node->ctx);
    node->sync = std::make_unique<SyncAgent>(node->ctx, *node->protocol);
    for (const auto& fault : cfg_.ft.faults) {
      if (fault.node == id) {
        node->kill_at = fault.kill_at;
        node->kill_restart = fault.restart;
      }
    }

    Node* raw = node.get();
    RegionHooks hooks;
    hooks.on_fault = [this, raw](PageId page, std::size_t offset, bool is_write) {
      // Attribute the fault to the app thread that raised it: on the sigsegv
      // engine the handler runs *on* that thread (its attachment is ours);
      // on the uffd engine the handler runs on an executor thread and the
      // kernel's THREAD_ID stamp maps back through the attach table.
      ThreadId tid = 0;
      if (const ThreadAttachment* att = current_attachment();
          att != nullptr && att->node == raw->ctx.id) {
        tid = att->tid;
      } else if (const std::uint32_t ktid = current_fault_ktid(); ktid != 0) {
        tid = raw->tid_of_ktid(ktid);
      }
      const auto g = Watchdog::guard(watchdog_.get(),
                                     watchdog_->slot_of(raw->ctx.id, tid),
                                     is_write ? "write-fault" : "read-fault", page);
      const TraceScope span(tracer_.get(), raw->ctx.id, TraceCat::kFault,
                            is_write ? "write-fault" : "read-fault",
                            &raw->clock, "page", page);
      if (raw->ctx.check != nullptr) {
        raw->ctx.check->on_access(raw->ctx.id, tid, page, offset, is_write);
      }
      if (is_write) {
        raw->protocol->on_write_fault(page);
      } else {
        raw->protocol->on_read_fault(page);
      }
    };
    hooks.infer_write = [raw](PageId page) {
      // Architecture fallback: a readable page can only write-fault.
      return raw->table->state_of(page) != PageState::kInvalid;
    };
    hooks.trace = tracer_.get();
    hooks.clock = &raw->clock;
    hooks.node = id;
    hooks.app_threads = cfg_.app_threads;
    node->fault_token = fault_engine_->add_region(node->view.get(), std::move(hooks));
    nodes_.push_back(std::move(node));
  }

  if (cfg_.app_threads > 1) {
    // Scratch region for the sibling threads (see the member's comment).
    // Two pages: small enough that concurrent siblings keep colliding on
    // the same page, which is what exercises fault coalescing.
    scratch_view_ = std::make_unique<ViewRegion>(2, ViewRegion::os_page_size());
    ViewRegion* scratch = scratch_view_.get();
    RegionHooks hooks;
    hooks.on_fault = [scratch](PageId page, std::size_t, bool) {
      // Self-serve: install full rights; the sibling loop re-arms with a
      // zap after every touch so faults keep flowing.
      scratch->protect(page, Access::kReadWrite);
    };
    // Every hosted node's siblings share this region, so size its executor
    // pool for the whole process, not one node.
    hooks.app_threads = cfg_.app_threads * cfg_.n_nodes;
    scratch_token_ = fault_engine_->add_region(scratch, std::move(hooks));
  }
}

System::~System() {
  DSM_CHECK_MSG(!running_, "System destroyed while a run is in progress");
  if (scratch_token_ >= 0) fault_engine_->remove_region(scratch_token_);
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    if (node->fault_token >= 0) fault_engine_->remove_region(node->fault_token);
  }
}

ThreadId System::attach_thread(NodeId id) {
  DSM_CHECK_MSG(id < nodes_.size() && nodes_[id] != nullptr,
                "attach_thread to unknown node " << id);
  Node& node = *nodes_[id];
  const std::uint32_t ktid = current_ktid();
  ThreadId tid = kMaxAppThreads;
  // Slot 0 belongs to the primary body thread; siblings claim 1..N-1.
  for (ThreadId t = 1; t < kMaxAppThreads; ++t) {
    std::uint32_t vacant = 0;
    if (node.thread_ktid[t].compare_exchange_strong(vacant, ktid,
                                                    std::memory_order_acq_rel)) {
      tid = t;
      break;
    }
  }
  DSM_CHECK_MSG(tid < kMaxAppThreads, "node " << id << " already hosts "
                                               << kMaxAppThreads
                                               << " app threads (kMaxAppThreads)");
  attach_current_thread(id, tid);
  watchdog_->bind_thread(watchdog_->slot_of(id, tid), ktid);
  return tid;
}

void System::detach_thread(NodeId id, ThreadId tid) {
  const ThreadAttachment* att = current_attachment();
  DSM_CHECK_MSG(att != nullptr && att->node == id && att->tid == tid,
                "detach_thread(" << id << ", " << tid
                                 << ") from a thread not attached as that pair");
  detach_current_thread();
  watchdog_->bind_thread(watchdog_->slot_of(id, tid), 0);
  nodes_[id]->thread_ktid[tid].store(0, std::memory_order_release);
}

std::thread Worker::spawn(std::function<void(Worker&)> fn) {
  DSM_CHECK_MSG(system_->fault_engine().kind() == FaultEngineKind::kUffd,
                "Worker::spawn requires the uffd fault engine: sigsegv fault "
                "service runs in the faulting thread's signal frame and is "
                "single-thread-only (see DESIGN.md \"Threading model\")");
  System* system = system_;
  const NodeId node = node_;
  return std::thread([system, node, fn = std::move(fn)] {
    const ThreadId tid = system->attach_thread(node);
    Worker sibling(*system, node, tid);
    try {
      fn(sibling);
    } catch (const WorkerKilled&) {
      // Injected crash: the sibling stops like the primary body does.
    }
    system->detach_thread(node, tid);
  });
}

std::size_t System::alloc_bytes(std::size_t size, std::size_t align) {
  DSM_CHECK_MSG(!running_, "alloc during run is not supported");
  DSM_CHECK(align > 0 && (align & (align - 1)) == 0);
  heap_used_ = (heap_used_ + align - 1) & ~(align - 1);
  const std::size_t offset = heap_used_;
  heap_used_ += size;
  DSM_CHECK_MSG(heap_used_ <= cfg_.heap_bytes(),
                "shared heap exhausted: need " << heap_used_ << " of "
                                               << cfg_.heap_bytes()
                                               << " bytes; raise Config::n_pages");
  return offset;
}

VirtualTime System::virtual_time() const {
  VirtualTime t = 0;
  for (const auto& node : nodes_) {
    if (node != nullptr) t = std::max(t, node->clock.now());
  }
  return t;
}

void System::reset_clocks() {
  for (auto& node : nodes_) {
    if (node != nullptr) node->clock.reset();
  }
}

void System::maybe_kill(NodeId id) {
  Node& node = *nodes_[id];
  if (node.kill_at == 0 || node.killed.load(std::memory_order_relaxed)) return;
  if (node.clock.now() < node.kill_at) return;
  node.killed.store(true, std::memory_order_release);
  stats_.counter("ft.kills").add();
  DSM_LOG_WARN << "ft: node " << id << " crashes at t=" << node.clock.now()
               << "ns" << (node.kill_restart ? " (restart scheduled)" : "");
  // Checker first: the death-announcement fan-out below triggers failover
  // handlers (token regeneration, quorum takeover) that report to it.
  if (checker_ != nullptr) checker_->on_node_killed(id);
  network_->announce_death(id, node.kill_restart);
  throw WorkerKilled{};
}

void System::restart_node(Node& node) {
  const NodeId id = node.ctx.id;
  stats_.counter("ft.restarts").add();
  DSM_LOG_WARN << "ft: node " << id << " restarts (memory fabric only)";
  if (checker_ != nullptr) checker_->on_node_restarted(id);
  // Protocol state resets before the node is marked alive: a request racing
  // in after announce_alive must find the protocol already in recovery.
  node.protocol->on_self_restart();
  node.sync->on_self_restart();
  network_->reset_links_for(id);
  network_->liveness().mark_restarted(id);
  network_->announce_alive(id);
}

void System::service_loop(Node& node) {
  bool running = true;
  while (running) {
    // Burst dispatch: everything queued under one mailbox lock acquisition.
    std::deque<Message> burst = network_->recv_all(node.ctx.id);
    if (burst.empty()) break;  // mailbox closed
    std::size_t handled = 0;
    {
      // Replies generated while handling this burst coalesce per
      // destination into kBatch envelopes (inert when batching is off).
      Network::BatchScope batch(network_.get());
      for (Message& msg : burst) {
        if (msg.type == MsgType::kShutdown) {
          // Finish the burst before exiting: under multi-process transports
          // a trailing arrival can share a burst with the shutdown.
          running = false;
          continue;
        }
        if (msg.type == MsgType::kExitReady) {
          exit_ready_.fetch_add(1, std::memory_order_release);
          ++handled;
          continue;
        }
        if (msg.type == MsgType::kExitGo) {
          exit_go_.fetch_add(1, std::memory_order_release);
          ++handled;
          continue;
        }
        if (msg.type == MsgType::kPeerDown || msg.type == MsgType::kPeerUp) {
          NodeId peer = kNoNode;
          bool restart = false;
          unpack_peer_event(msg.payload, &peer, &restart);
          if (msg.type == MsgType::kPeerDown) {
            if (peer == node.ctx.id) {
              // Our own death notice: the worker is already gone; rejoin the
              // fabric if the fault schedule says so, else stay dark.
              if (restart) restart_node(node);
            } else {
              node.protocol->on_peer_down(peer);
              node.sync->on_peer_down(peer);
            }
          } else {
            // Delivered to the restarted node too: QRC hooks its own
            // post-restart resync off the self kPeerUp.
            node.protocol->on_peer_up(peer);
            node.sync->on_peer_up(peer);
          }
          ++handled;
          continue;
        }
        node.clock.advance_to(msg.arrival_time);
        node.clock.advance(cfg_.service_ns);
        const bool is_sync = SyncAgent::handles(msg.type);
        {
          // One span per message handled: the service-side half of a
          // protocol transaction leg (or a sync-agent step).
          const TraceScope span(tracer_.get(), node.ctx.id,
                                is_sync ? TraceCat::kSync : TraceCat::kProto,
                                to_string(msg.type).data(), &node.clock, "src",
                                msg.src, "seq", msg.seq);
          if (is_sync) {
            node.sync->on_message(msg);
          } else {
            node.protocol->on_message(msg);
          }
        }
        ++handled;
      }
    }
    // Count the burst only after the batch scope flushed: anything our
    // handlers sent is in flight (and counted) before `processed_` can make
    // sent == processed, so drain() cannot observe a false quiescence while
    // replies sit staged.
    processed_.fetch_add(handled, std::memory_order_release);
  }
}

void System::drain() {
  // A handler may send more messages before bumping `processed_`, so the
  // fabric is quiescent exactly when sent == processed (no app threads are
  // alive to inject new work at this point). Under chaos, a message may
  // additionally be awaiting retransmission or sitting in a delay queue
  // before it is ever counted as sent — hence the idle() check.
  for (;;) {
    const auto sent = network_->messages_sent();
    const auto processed = processed_.load(std::memory_order_acquire);
    if (sent == processed && network_->idle()) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void System::dump_diagnostics(std::ostream& os) const {
  os << "[tutordsm] diagnostic dump (" << to_string(cfg_.protocol) << ", "
     << cfg_.n_nodes << " nodes, " << cfg_.n_pages << " pages)\n";
  fault_engine_->debug_dump(os);
  network_->debug_dump(os);
  if (tracer_ != nullptr) tracer_->dump_tail(os, cfg_.trace.dump_tail_spans);
  for (const auto& node : nodes_) {
    if (node == nullptr) continue;
    os << "  node " << node->ctx.id << " clock=" << node->clock.now() << "ns";
    if (cfg_.app_threads > 1) {
      os << " threads:";
      for (ThreadId t = 0; t < kMaxAppThreads; ++t) {
        const std::uint32_t ktid =
            node->thread_ktid[t].load(std::memory_order_relaxed);
        if (ktid != 0) os << " tid" << t << "(ktid=" << ktid << ")";
      }
    }
    os << '\n';
    for (PageId p = 0; p < node->table->n_pages(); ++p) {
      const PageEntry& e = node->table->entry(p);
      // Racy reads by design: the dump runs while threads are wedged, and
      // must not take the entry mutex a stuck transaction may hold.
      const bool interesting = e.busy || e.manager_busy || e.acks_outstanding > 0 ||
                               !e.parked.empty() || !e.manager_parked.empty();
      if (!interesting) continue;
      os << "    page " << p << " state=" << to_string(e.state)
         << (e.busy ? " busy" : "") << (e.manager_busy ? " manager_busy" : "")
         << " owner=" << e.owner << " prob_owner=" << e.prob_owner
         << " acks_outstanding=" << e.acks_outstanding
         << " parked=" << e.parked.size()
         << " manager_parked=" << e.manager_parked.size() << '\n';
    }
  }
  const auto snap = stats_.snapshot();
  os << "  counters: msgs=" << snap.counter("net.msgs")
     << " retransmits=" << snap.counter("net.retransmits")
     << " dups_suppressed=" << snap.counter("net.dups_suppressed")
     << " acks=" << snap.counter("net.acks")
     << " gave_up=" << snap.counter("net.gave_up")
     << " dropped=" << snap.counter("net.dropped") << '\n';
  if (checker_ != nullptr) checker_->dump_last_violation(os);
}

void System::exit_rendezvous() {
  const NodeId me = cfg_.transport.local_node;
  Node& node = *nodes_[me];
  const auto n = static_cast<std::uint64_t>(cfg_.n_nodes);
  const auto g = Watchdog::guard(watchdog_.get(), me, "exit-rendezvous", run_ordinal_);
  if (me == 0) {
    while (exit_ready_.load(std::memory_order_acquire) < (n - 1) * run_ordinal_) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (NodeId rank = 1; rank < cfg_.n_nodes; ++rank) {
      network_->send(node.ctx.make(MsgType::kExitGo, rank));
    }
  } else {
    network_->send(node.ctx.make(MsgType::kExitReady, 0));
    while (exit_go_.load(std::memory_order_acquire) < run_ordinal_) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // Until the rendezvous traffic itself is acked (idle), a peer may still
  // be depending on our retransmit daemon and service thread.
  drain();
}

void System::run(const std::function<void(Worker&)>& body) {
  DSM_CHECK_MSG(!running_, "System::run is not reentrant");
  running_ = true;
  ++run_ordinal_;

  // First run only: later runs continue from the previous run's coherence
  // state (ownership may have migrated away from the homes; resetting would
  // lose the migrated data).
  if (!pages_initialized_) {
    for (auto& node : nodes_) {
      if (node != nullptr) node->protocol->init_pages();
    }
    pages_initialized_ = true;
  }

  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    node->service_thread = std::thread([this, raw = node.get()] { service_loop(*raw); });
  }

  std::vector<std::thread> app_threads;
  app_threads.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!hosted(id)) continue;
    app_threads.emplace_back([this, id, &body] {
      // The primary body thread is app thread 0 of its node.
      Node& node = *nodes_[id];
      node.thread_ktid[0].store(current_ktid(), std::memory_order_release);
      const ScopedThreadAttach attach(id, 0);
      watchdog_->bind_thread(watchdog_->slot_of(id, 0), current_ktid());
      Worker worker(*this, id);
      try {
        body(worker);
      } catch (const WorkerKilled&) {
        // Injected crash: the worker thread stops mid-body. The service
        // thread lives on (a restarted node keeps serving pages) until the
        // regular shutdown below.
      }
      watchdog_->bind_thread(watchdog_->slot_of(id, 0), 0);
      node.thread_ktid[0].store(0, std::memory_order_release);
    });
  }

  // Multi-threaded runs: each node hosts app_threads - 1 attached sibling
  // threads that loop read-faulting on the shared scratch region for the
  // body's whole duration — every fault goes through the real uffd
  // dispatcher/executor path, colliding faults coalesce (mem.fault_coalesced),
  // and none of it perturbs protocol or checker state (see scratch_view_).
  std::atomic<bool> siblings_done{false};
  std::vector<std::thread> sibling_threads;
  if (scratch_view_ != nullptr) {
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (!hosted(id)) continue;
      for (std::size_t s = 1; s < cfg_.app_threads; ++s) {
        sibling_threads.emplace_back([this, id, &siblings_done] {
          const ThreadId tid = attach_thread(id);
          ViewRegion& scratch = *scratch_view_;
          const std::byte* base = scratch.base();
          std::uint64_t i = 0;
          while (!siblings_done.load(std::memory_order_relaxed)) {
            const PageId page = static_cast<PageId>(i++ % scratch.n_pages());
            // Reads only: read-read overlap is not a data race, so the mt
            // suites stay TSan-clean. The touch MINOR-faults whenever the
            // PTE is absent; the zap below re-arms it.
            const volatile std::byte* touch = base + page * scratch.page_size();
            (void)*touch;
            scratch.protect(page, Access::kNone);
            std::this_thread::yield();
          }
          detach_thread(id, tid);
        });
      }
    }
  }

  for (auto& t : app_threads) t.join();
  siblings_done.store(true, std::memory_order_relaxed);
  for (auto& t : sibling_threads) t.join();

  drain();
  // Local quiescence is not global quiescence when ranks are separate
  // processes: hold the service thread until every rank has drained.
  if (multiprocess()) exit_rendezvous();
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    network_->send(node->ctx.make(MsgType::kShutdown, node->ctx.id));
  }
  for (auto& node : nodes_) {
    if (node != nullptr) node->service_thread.join();
  }
  if (checker_ != nullptr) {
    // All service and app threads are gone: compare the checker's state
    // mirror and copyset model against the real page tables.
    std::vector<const PageTable*> tables;
    tables.reserve(nodes_.size());
    for (const auto& node : nodes_) tables.push_back(node->table.get());
    checker_->at_quiescence(tables);
  }
  running_ = false;
}

}  // namespace dsm
