// NodeContext: everything one simulated node's protocol and sync machinery
// needs — its identity, its view of shared memory, its page table, the
// fabric, its logical clock, and the run configuration. Header-only so lower
// layers (proto, sync) can use it without a link-time dependency on the
// runtime.
#pragma once

#include <cstddef>
#include <span>

#include "check/check_level.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/fault_engine.hpp"
#include "mem/page_table.hpp"
#include "mem/region.hpp"
#include "net/network.hpp"
#include "trace/trace.hpp"

namespace dsm {

class DsmChecker;

/// Which coherence protocol a run uses. See DESIGN.md §System inventory.
enum class ProtocolKind {
  kIvyCentral,    ///< Li-Hudak write-invalidate, central manager (node 0)
  kIvyFixed,      ///< Li-Hudak, fixed distributed manager (page % N)
  kIvyDynamic,    ///< Li-Hudak, dynamic distributed manager (probable owners)
  kErcInvalidate, ///< eager release consistency, invalidate-on-release
  kErcUpdate,     ///< eager release consistency, update-on-release (Munin write-shared)
  kLrc,           ///< lazy release consistency (TreadMarks)
  kEc,            ///< entry consistency (Midway)
  kHlrc,          ///< home-based lazy release consistency (HLRC extension)
  kQrc,           ///< quorum-replicated release consistency (SC-ABD-style replicas)
};

const char* to_string(ProtocolKind kind);

/// How distributed locks are implemented (bench_locks compares these).
enum class LockPolicy {
  kCentralized,   ///< request/grant/release all via the lock's home
  kForwardChain,  ///< home forwards to last requester; grant flows holder→next
};

/// One scheduled node death. `kill_at` is virtual time: the victim's worker
/// checks it at every operation boundary (compute/acquire/release/barrier)
/// and dies at the first boundary past the deadline — crashes land between
/// operations, never mid-protocol-transaction on the app thread.
struct NodeFault {
  NodeId node = kNoNode;
  VirtualTime kill_at = 0;
  bool restart = false;  ///< rejoin the memory fabric after dying
};

/// Crash fault tolerance (off by default). When enabled, page state is kept
/// crash-redundant — by a majority quorum of replicas (kQrc) or by periodic
/// checkpoints to a buddy node (kErcInvalidate) — and the fabric survives the
/// seeded node deaths in `faults`. See DESIGN.md "Fault tolerance".
struct FtConfig {
  bool enabled = false;
  /// Replica-group size for kQrc: each page lives on `replication`
  /// consecutive nodes starting at its home. Tolerates floor((r-1)/2)
  /// crashes per group. 1 = no redundancy (baseline for bench_ft).
  std::size_t replication = 1;
  /// kErcInvalidate checkpoint mode: snapshot a page to its buddy every Nth
  /// version. 0 disables checkpointing.
  std::size_t checkpoint_period = 0;
  /// Seeded death schedule. Node 0 (lock/barrier home under FT) is never a
  /// valid victim.
  std::vector<NodeFault> faults;
};

/// One run's static configuration.
struct Config {
  std::size_t n_nodes = 4;
  std::size_t n_pages = 64;
  std::size_t page_size = 4096;   ///< must be a multiple of the OS page size
  std::size_t n_locks = 64;
  std::size_t n_barriers = 8;
  ProtocolKind protocol = ProtocolKind::kIvyDynamic;
  LockPolicy lock_policy = LockPolicy::kForwardChain;
  LinkModel link{};

  /// Ack/retransmit policy of the reliable transport sublayer (on by
  /// default; disable only to measure its overhead).
  ReliabilityConfig reliability{};
  /// Seeded fault injection (off by default). See DESIGN.md "Reliable
  /// transport & chaos".
  ChaosConfig chaos{};
  /// Wire-level optimisations: message coalescing, piggybacked acks, and
  /// payload compression (all off by default). See DESIGN.md "Wire-level
  /// batching & compression".
  WireConfig wire{};
  /// Which transport backend moves wire attempts (in-process handoff by
  /// default; real UDP sockets for conformance runs and dsmrun multi-process
  /// launches). See DESIGN.md "Transport backends".
  TransportConfig transport{};
  /// Which fault engine traps coherence faults on the app view: mprotect +
  /// SIGSEGV (default, the historical path) or userfaultfd minor+WP with a
  /// poller thread. Overridable per run via TUTORDSM_FAULT_ENGINE; falls
  /// back to kSigsegv with a warning when uffd is requested but the kernel
  /// lacks support. See DESIGN.md "Fault engines".
  FaultEngineKind fault_engine = FaultEngineKind::kSigsegv;
  /// Application threads per node. 1 (the historical model) runs exactly the
  /// pre-mt code paths. N > 1 requires the uffd engine (the SIGSEGV engine
  /// services faults synchronously on the faulting thread with thread-local
  /// state and stays single-thread-only); the runtime clamps to 1 with a
  /// warning when the effective engine is kSigsegv. Capped at kMaxAppThreads.
  /// Overridable per run via TUTORDSM_APP_THREADS. See DESIGN.md
  /// "Threading model".
  std::size_t app_threads = 1;
  /// An app thread blocked in the fault path or a sync operation longer
  /// than this (real milliseconds) triggers a diagnostic dump and a clean
  /// abort instead of an infinite hang. 0 disables the watchdog.
  std::uint32_t watchdog_ms = 30'000;
  /// Virtual-time span tracing (off by default; ~zero overhead when off).
  /// See DESIGN.md "Observability" and Tracer::write_json.
  TraceConfig trace{};
  /// In-fabric race detection + protocol invariant checking (dsmcheck).
  /// kOff constructs no checker at all; see DESIGN.md "dsmcheck".
  CheckLevel check_level = CheckLevel::kOff;
  /// Crash fault tolerance: replication / checkpointing and the seeded node
  /// death schedule (off by default). See DESIGN.md "Fault tolerance".
  FtConfig ft{};

  // Virtual-time cost model (see DESIGN.md "Virtual time").
  VirtualTime fault_ns = 5'000;    ///< trap + kernel + handler entry per fault
  VirtualTime service_ns = 2'000;  ///< protocol software overhead per message
  VirtualTime ns_per_op = 10;      ///< one unit of application compute

  /// Demand-fetch protocols (IVY family, ERC, HLRC): on a read miss, also
  /// request the next N sequential pages asynchronously. 0 = pure demand
  /// fetch. The knob behind the classic demand vs prefetch vs eager
  /// comparison (bench_prefetch).
  std::size_t prefetch_pages = 0;

  /// LRC: every Nth barrier is a *settle-up*: all diffs are exchanged and
  /// protocol metadata (intervals, notices, diff caches) garbage-collected.
  /// Other barriers move write notices only — the lazy part of LRC.
  /// 1 = settle every barrier (eager-barrier ablation).
  std::size_t lrc_gc_period = 16;

  std::uint64_t seed = 42;         ///< workload generator seed

  std::size_t heap_bytes() const { return n_pages * page_size; }
};

/// Per-node wiring handed to protocols and sync agents.
struct NodeContext {
  NodeId id = kNoNode;
  std::size_t n_nodes = 0;
  const Config* cfg = nullptr;
  Network* net = nullptr;
  ViewRegion* view = nullptr;
  PageTable* table = nullptr;
  LogicalClock* clock = nullptr;
  StatsRegistry* stats = nullptr;
  Tracer* trace = nullptr;      ///< null when tracing is off
  DsmChecker* check = nullptr;  ///< null when check_level is kOff
  FaultEngine* fault = nullptr; ///< the engine trapping this node's app view

  /// Static distribution of pages to their home nodes.
  NodeId home_of(PageId page) const {
    return static_cast<NodeId>(page % n_nodes);
  }
  /// Static distribution of locks to their home (manager) nodes. Under FT
  /// every lock is homed at node 0 — the one node the fault schedule may
  /// never kill — so lock *state* never needs re-homing and only the dead
  /// holder's token must be regenerated (SyncAgent::on_peer_down).
  NodeId lock_home(LockId lock) const {
    if (cfg != nullptr && cfg->ft.enabled) return 0;
    return static_cast<NodeId>(lock % n_nodes);
  }
  /// Barriers are all managed by node 0 (a 1992-style central barrier).
  NodeId barrier_home(BarrierId) const { return 0; }

  /// Builds a message stamped with this node's current virtual time.
  Message make(MsgType type, NodeId dst, std::vector<std::byte> payload = {}) const {
    Message msg;
    msg.type = type;
    msg.src = id;
    msg.dst = dst;
    msg.send_time = clock->now();
    msg.payload = std::move(payload);
    return msg;
  }

  void send(MsgType type, NodeId dst, std::vector<std::byte> payload = {}) const {
    net->send(make(type, dst, std::move(payload)));
  }
};

}  // namespace dsm
