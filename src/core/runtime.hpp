// The tutordsm runtime: constructs N simulated nodes (view + page table +
// protocol + sync agent + service thread), runs an SPMD body on one
// application thread per node, and tears everything down after draining the
// fabric. This is the library's public entry point — see core/dsm.hpp.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/thread_attach.hpp"
#include "core/context.hpp"
#include "core/shared.hpp"
#include "core/watchdog.hpp"
#include "mem/fault.hpp"
#include "mem/fault_engine.hpp"
#include "proto/protocol.hpp"
#include "sync/sync_agent.hpp"

namespace dsm {

class System;

/// Thrown through the application body when the seeded fault schedule kills
/// this worker at an operation boundary; run() absorbs it and the app thread
/// simply stops. Not derived from std::exception on purpose: application
/// catch(...) blocks aside, nothing should intercept a crash.
struct WorkerKilled {};

/// The per-node handle an SPMD body receives: identity, shared-memory
/// access, synchronization, compute-cost accounting, and EC bindings.
class Worker {
 public:
  NodeId id() const { return node_; }
  /// Which of the node's app threads this handle belongs to (0 = the
  /// primary thread running the SPMD body; siblings from spawn get 1..N-1).
  ThreadId tid() const { return tid_; }
  std::size_t n_nodes() const;

  /// Starts a sibling application thread on this node. The thread attaches
  /// to the node (System::attach_thread), runs `fn` with its own Worker
  /// handle, and detaches on return; the caller joins the returned thread
  /// before its own body finishes. Requires the uffd fault engine — the
  /// sigsegv engine's signal-frame fault service is single-thread-only
  /// (see DESIGN.md "Threading model").
  std::thread spawn(std::function<void(Worker&)> fn);

  /// Resolves a shared handle in this node's view. Accessing the result may
  /// page-fault into the coherence protocol — that is the point.
  template <typename T>
  T* get(Shared<T> handle) const {
    return reinterpret_cast<T*>(view_base() + handle.offset);
  }

  void acquire(LockId lock);
  void release(LockId lock);
  /// Reader-writer mode on a lock id (use instead of acquire/release for
  /// that id): any number of concurrent readers or one exclusive writer.
  /// Grants carry the same consistency payloads as mutex grants.
  void acquire_read(LockId lock);
  void release_read(LockId lock);
  void acquire_write(LockId lock);
  void release_write(LockId lock);
  void barrier(BarrierId barrier);

  /// Charges `ops` units of application compute to this node's virtual time.
  void compute(std::uint64_t ops);
  VirtualTime now() const;

  /// Entry-consistency annotations (no-ops under other protocols).
  template <typename T>
  void bind(LockId lock, Shared<T> handle, std::size_t count = 1) {
    bind_region(lock, handle.offset, count * sizeof(T));
  }
  template <typename T>
  void bind_barrier(BarrierId barrier, Shared<T> handle, std::size_t count = 1) {
    bind_barrier_region(barrier, handle.offset, count * sizeof(T));
  }

 private:
  friend class System;
  Worker(System& system, NodeId node, ThreadId tid = 0)
      : system_(&system), node_(node), tid_(tid) {}
  std::byte* view_base() const;
  void bind_region(LockId lock, std::size_t offset, std::size_t size);
  void bind_barrier_region(BarrierId barrier, std::size_t offset, std::size_t size);

  System* system_;
  NodeId node_;
  ThreadId tid_ = 0;
};

class System {
 public:
  explicit System(Config cfg);
  ~System();
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  const Config& config() const { return cfg_; }

  /// Allocates `count` T's from the shared heap. Offsets are global (the
  /// same on every node); memory starts zeroed. Must not be called while a
  /// run is in progress.
  template <typename T>
  Shared<T> alloc(std::size_t count = 1) {
    return Shared<T>{alloc_bytes(count * sizeof(T), alignof(T))};
  }
  /// Page-aligned variant, for workloads that lay data out page-by-page.
  template <typename T>
  Shared<T> alloc_page_aligned(std::size_t count = 1) {
    return Shared<T>{alloc_bytes(count * sizeof(T), cfg_.page_size)};
  }
  std::size_t alloc_bytes(std::size_t size, std::size_t align);
  /// Bytes of shared heap handed out so far.
  std::size_t heap_used() const { return heap_used_; }

  /// Runs `body` once per node, each on its own thread, and returns when all
  /// bodies have finished and the fabric has drained. May be called again.
  /// With Config::app_threads > 1 (uffd engine only) each node additionally
  /// hosts `app_threads - 1` attached sibling threads exercising the
  /// concurrent fault path; the body itself still runs once per node, so
  /// workload results are engine- and thread-count-independent.
  void run(const std::function<void(Worker&)>& body);

  /// Attaches the calling thread to `node` as a new app thread and returns
  /// its ThreadId. Aborts if the thread is already attached or the node's
  /// kMaxAppThreads slots are taken. Worker::spawn wraps this; tests may
  /// call it directly to drive the lifecycle.
  ThreadId attach_thread(NodeId node);
  /// Reverses attach_thread. Must be called on the attached thread itself.
  void detach_thread(NodeId node, ThreadId tid);

  /// Effective app threads per node (after the TUTORDSM_APP_THREADS
  /// override and the sigsegv single-thread clamp).
  std::size_t app_threads() const { return cfg_.app_threads; }

  // --- observability --------------------------------------------------------
  StatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }
  /// Max over node clocks: the run's virtual makespan.
  VirtualTime virtual_time() const;
  void reset_clocks();

  /// The span tracer, or nullptr when Config::trace.enabled is false.
  /// Export with tracer()->write_json(os) after run() returns.
  Tracer* tracer() { return tracer_.get(); }
  const Tracer* tracer() const { return tracer_.get(); }

  /// The dsmcheck verifier, or nullptr when Config::check_level is kOff.
  DsmChecker* checker() { return checker_.get(); }
  const DsmChecker* checker() const { return checker_.get(); }

  /// The fault engine trapping every hosted node's app view. Reflects the
  /// effective choice: Config::fault_engine after the TUTORDSM_FAULT_ENGINE
  /// override and the uffd-unavailable fallback have been applied.
  FaultEngine& fault_engine() { return *fault_engine_; }
  const FaultEngine& fault_engine() const { return *fault_engine_; }

  // --- white-box access (tests, benches) -----------------------------------
  Network& network() { return *network_; }
  PageTable& table(NodeId node) { return *nodes_[node]->table; }
  Protocol& protocol(NodeId node) { return *nodes_[node]->protocol; }
  ViewRegion& view(NodeId node) { return *nodes_[node]->view; }
  StatsRegistry& stats_registry() { return stats_; }

  /// Writes the watchdog's diagnostic report: per-node page-table state,
  /// parked work, mailbox backlogs, and the fabric's in-flight messages.
  void dump_diagnostics(std::ostream& os) const;

 private:
  friend class Worker;
  struct Node {
    NodeContext ctx;
    LogicalClock clock;
    std::unique_ptr<ViewRegion> view;
    std::unique_ptr<PageTable> table;
    std::unique_ptr<Protocol> protocol;
    std::unique_ptr<SyncAgent> sync;
    int fault_token = -1;
    std::thread service_thread;
    // Seeded crash (Config::ft.faults): die at the first operation boundary
    // past kill_at on this node's virtual clock.
    VirtualTime kill_at = 0;
    bool kill_restart = false;
    std::atomic<bool> killed{false};
    /// Kernel tid of each attached app thread (0 = slot vacant). Lock-free:
    /// fault attribution reads it from uffd executor threads concurrently
    /// with attach/detach. Slot 0 is the primary body thread.
    std::array<std::atomic<std::uint32_t>, kMaxAppThreads> thread_ktid{};
    /// ThreadId whose attachment owns `ktid`, or 0 (the primary) if unknown.
    ThreadId tid_of_ktid(std::uint32_t ktid) const {
      for (ThreadId t = 0; t < kMaxAppThreads; ++t) {
        if (thread_ktid[t].load(std::memory_order_acquire) == ktid) return t;
      }
      return 0;
    }
  };

  /// Fault injection: called at every worker operation boundary. Throws
  /// WorkerKilled when this node's scheduled death is due, after announcing
  /// the death to the fabric.
  void maybe_kill(NodeId node);
  /// Service-thread side of a kill_restart fault: wipe the node's protocol /
  /// sync / link state and rejoin the memory fabric (worker stays dead).
  void restart_node(Node& node);

  void service_loop(Node& node);
  /// Blocks until every sent message has been fully processed.
  void drain();

  bool multiprocess() const { return cfg_.transport.multiprocess(); }
  /// Does this process host `node`? (Always true single-process; exactly
  /// one node per process under dsmrun.)
  bool hosted(NodeId node) const {
    return !multiprocess() || node == cfg_.transport.local_node;
  }
  /// Multi-process exit barrier: every rank reports local quiescence to
  /// rank 0 (kExitReady) and waits for the all-clear (kExitGo) before
  /// stopping its service thread — a rank that tore down early would
  /// blackhole a peer's retransmits.
  void exit_rendezvous();

  Config cfg_;
  StatsRegistry stats_;
  std::unique_ptr<Tracer> tracer_;       // null when tracing is off
  std::unique_ptr<DsmChecker> checker_;  // null when check_level is kOff
  std::unique_ptr<FaultEngine> fault_engine_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<Watchdog> watchdog_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Process-wide scratch region the mt sibling threads fault on
  /// (app_threads > 1 only). Registered with the same engine — siblings go
  /// through the real dispatcher/executor/coalescing machinery — but its
  /// handler self-serves page rights and never touches protocol, network,
  /// clock, or checker state, so the SPMD workload's fault sequence,
  /// message flow, and checksums stay identical to the single-thread run.
  std::unique_ptr<ViewRegion> scratch_view_;
  int scratch_token_ = -1;
  std::size_t heap_used_ = 0;
  bool running_ = false;
  bool pages_initialized_ = false;
  std::atomic<std::uint64_t> processed_{0};
  /// Completed run() calls. Rendezvous counters below are cumulative and
  /// monotone (never reset — a reset would race a straggling increment from
  /// the previous run), so waits compare against ordinal-scaled targets.
  std::uint64_t run_ordinal_ = 0;
  std::atomic<std::uint64_t> exit_ready_{0};  ///< kExitReady received (rank 0)
  std::atomic<std::uint64_t> exit_go_{0};     ///< kExitGo received (rank != 0)
};

inline std::size_t Worker::n_nodes() const { return system_->config().n_nodes; }
inline std::byte* Worker::view_base() const {
  return system_->view(node_).base();
}

}  // namespace dsm
