// Typed handles into the shared address space. A Shared<T> is an *offset*,
// not a pointer: every node maps the shared space at a different base, so
// handles are resolved against a particular node's view (Worker::get).
#pragma once

#include <cstddef>

namespace dsm {

template <typename T>
struct Shared {
  std::size_t offset = 0;

  /// Handle to element `i` of a Shared array.
  Shared<T> operator+(std::size_t i) const { return Shared<T>{offset + i * sizeof(T)}; }
};

}  // namespace dsm
