// tutordsm public API — include this one header.
//
//   dsm::Config cfg;
//   cfg.n_nodes = 8;
//   cfg.protocol = dsm::ProtocolKind::kLrc;
//   dsm::System sys(cfg);
//   auto data = sys.alloc<double>(1024);
//   auto flag = sys.alloc<int>();
//   sys.run([&](dsm::Worker& w) {
//     if (w.id() == 0) { w.get(data)[0] = 3.14; w.acquire(0); ... w.release(0); }
//     w.barrier(0);
//     ...
//   });
//
// See README.md for the full tour and DESIGN.md for the architecture.
#pragma once

#include "common/stats.hpp"    // IWYU pragma: export
#include "common/types.hpp"    // IWYU pragma: export
#include "core/context.hpp"    // IWYU pragma: export
#include "core/runtime.hpp"    // IWYU pragma: export
#include "core/shared.hpp"     // IWYU pragma: export
