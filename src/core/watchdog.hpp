// Fault-path watchdog: turns a protocol deadlock into a debuggable failure.
//
// Every blocking entry point an application thread can wedge in — the
// SIGSEGV fault path and the sync operations (lock acquire, barrier) —
// brackets itself with a Guard. A background thread scans the guard table;
// any guard older than the configured bound means a protocol transaction
// lost its wakeup (a message permanently lost, a state-machine bug), so the
// watchdog prints a diagnostic dump (page-table state, mailbox backlogs,
// in-flight/parked messages — supplied by the runtime as a callback) and
// aborts the process instead of hanging forever. Real fault service is
// microseconds; the default bound is seconds — firing is always a bug or a
// chaos give-up, never a slow run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <thread>
#include <vector>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace dsm {

class Watchdog {
 public:
  /// Diagnostic dump callback, invoked (on the watchdog thread) right
  /// before abort. Receives the stream to write the report to.
  using DumpFn = std::function<void(std::ostream&)>;

  /// One watcher per System: one slot per (node, app thread) pair —
  /// `n_nodes * threads_per_node` slots, slot = node * threads_per_node +
  /// tid (see slot_of). `bound_ms == 0` disables the thread entirely.
  Watchdog(std::size_t n_nodes, std::size_t threads_per_node,
           std::uint32_t bound_ms, DumpFn dump);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  bool enabled() const { return bound_ms_ > 0; }

  /// RAII bracket around one blocking operation on `slot`'s app thread.
  /// Nests (a fault taken inside a release flush); cheap: two relaxed
  /// atomic stores each way.
  class Guard {
   public:
    Guard(Watchdog* wd, std::size_t slot, const char* what, std::uint64_t detail);
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Watchdog* wd_;
    std::size_t slot_;
  };

  /// Convenience factory (no-op guard when `wd` is null or disabled).
  static Guard guard(Watchdog* wd, std::size_t slot, const char* what,
                     std::uint64_t detail) {
    return Guard(wd != nullptr && wd->enabled() ? wd : nullptr, slot, what, detail);
  }

  /// Slot index of app thread `tid` on `node`.
  std::size_t slot_of(NodeId node, ThreadId tid) const {
    return static_cast<std::size_t>(node) * threads_per_node_ + tid;
  }

  /// Records which OS thread currently owns `slot` (0 = vacated), so the
  /// stuck-report and diagnostic dump can name the kernel thread id.
  void bind_thread(std::size_t slot, std::uint32_t ktid);

  /// Kernel tid bound to `slot`, or 0 if none (diagnostic dumps).
  std::uint32_t bound_thread(std::size_t slot) const;

 private:
  static constexpr int kMaxDepth = 4;

  /// One app thread's stack of active blocking operations. Written only by
  /// that thread; read by the watchdog thread (acquire on depth pairs with
  /// release on push, so a nonzero depth implies the frame is visible).
  struct Slot {
    struct Frame {
      std::atomic<const char*> what{nullptr};
      std::atomic<std::uint64_t> detail{0};
      std::atomic<std::int64_t> since_ns{0};  // realclock epoch offset
    };
    Frame frames[kMaxDepth];
    std::atomic<int> depth{0};
    std::atomic<std::uint32_t> ktid{0};  ///< OS thread bound to this slot
  };

  void push(std::size_t slot, const char* what, std::uint64_t detail);
  void pop(std::size_t slot);
  void scan_loop();

  std::uint32_t bound_ms_;
  DumpFn dump_;
  std::size_t threads_per_node_;
  std::vector<Slot> slots_;
  std::atomic<bool> stopping_{false};
  // Guards nothing (the slot table is all-atomic); the mutex exists only as
  // the scanner's interruptible-sleep anchor. It is held across dump_, which
  // reaches the checker and the network's try-lock dump sections, so it must
  // sit above the fabric in the lock order.
  Mutex mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  CondVar cv_;
  std::thread scanner_;
};

}  // namespace dsm
