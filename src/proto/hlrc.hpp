// Home-based lazy release consistency (HLRC, Zhou & Iftode's successor to
// TreadMarks — the "future work" direction the tutorial's material points
// at). Like LRC, nothing is broadcast and invalidations travel as write
// notices filtered by vector clocks at acquire time. Unlike LRC, every
// page has a *home* whose copy is kept current: a releaser flushes its
// diffs to the homes (and waits for acks) before the release completes, so
// a faulting acquirer simply fetches the whole page from the home — no
// per-writer diff requests, no diff caches, no accumulation, no GC.
//
// The trade (measured by the benches): releases pay eager unicast diffs
// like Munin, but acquire-side faults are one round trip to a single place
// like IVY, and barriers are pure notice exchanges.
#pragma once

#include <map>
#include <vector>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "common/vclock.hpp"
#include "proto/protocol.hpp"

namespace dsm {

class HlrcProtocol final : public Protocol {
 public:
  explicit HlrcProtocol(NodeContext& ctx);

  std::string_view name() const override;
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

  void fill_lock_request(LockId, WireWriter& out) override;
  void fill_lock_grant(LockId, NodeId to, std::span<const std::byte> request_payload,
                       WireWriter& out) override;
  void on_lock_granted(LockId, WireReader& in) override;
  void before_release(LockId) override;
  void before_barrier(BarrierId) override;
  void fill_barrier_arrive(BarrierId, WireWriter& out) override;
  void on_barrier_collect(BarrierId, NodeId from, WireReader& in) override;
  void fill_barrier_release(BarrierId, WireWriter& out) override;
  void on_barrier_release(BarrierId, WireReader& in) override;

  const VectorClock& vclock() const { return vc_; }

 private:
  struct IntervalRecord {
    NodeId node = kNoNode;
    std::uint32_t interval = 0;
    std::vector<PageId> pages;
  };

  /// Closes the open interval: encode diffs, flush them to the pages'
  /// homes, wait for acks, record the interval. App thread.
  void close_and_flush();

  /// Ingests interval records, invalidating noticed pages (except at their
  /// home, whose copy is authoritative and already flushed-to).
  void ingest_records(WireReader& in, std::size_t count) REQUIRES(meta_mutex_);
  void write_records_after(const VectorClock& horizon, WireWriter& out)
      REQUIRES(meta_mutex_);

  void handle_page_request(const Message& msg);
  void handle_page_reply(const Message& msg);
  /// Fire-and-forget fetches of the next Config::prefetch_pages pages.
  void prefetch_sequential(PageId page);
  void handle_flush(const Message& msg);      // home side: apply a diff
  void handle_flush_ack(const Message& msg);  // writer side

  // ---- metadata, guarded by meta_mutex_ ----
  mutable Mutex meta_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  VectorClock vc_ GUARDED_BY(meta_mutex_);
  std::vector<std::vector<IntervalRecord>> interval_log_ GUARDED_BY(meta_mutex_);

  // ---- flush rendezvous ----
  Mutex flush_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  CondVar flush_cv_;
  int flush_outstanding_ GUARDED_BY(flush_mutex_) = 0;

  // ---- dirty list ----
  // Appended by whichever thread services a write fault (uffd executors run
  // several concurrently), swapped out whole by close_and_flush — its own
  // leaf mutex, as in LRC.
  Mutex dirty_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::vector<PageId> dirty_pages_ GUARDED_BY(dirty_mutex_);

  // ---- barrier manager scratch ----
  std::vector<IntervalRecord> barrier_records_;
  VectorClock barrier_vc_;
};

}  // namespace dsm
