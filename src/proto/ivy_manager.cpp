#include "proto/ivy_manager.hpp"

#include <mutex>

#include "common/logging.hpp"
#include "proto/page_io.hpp"

namespace dsm {
namespace {

// Payload layouts (see WireWriter):
//   kReadRequest / kWriteRequest : u32 page | u32 requester
//   kReadForward / kWriteForward : u32 page | u32 requester
//   kReadReply                   : u32 page | raw page bytes
//   kWriteReply                  : u32 page | u32 n | n×u32 holders | raw page bytes
//   kInvalidate                  : u32 page | u32 new_owner
//   kInvalidateAck / kConfirm    : u32 page

struct PageReq {
  PageId page;
  NodeId requester;
};

PageReq parse_req(const Message& msg) {
  WireReader r(msg.payload);
  PageReq req{r.get<PageId>(), r.get<NodeId>()};
  DSM_CHECK(r.done());
  return req;
}

std::vector<std::byte> encode_req(PageId page, NodeId requester) {
  WireWriter w(8);
  w.put(page);
  w.put(requester);
  return std::move(w).take();
}

}  // namespace

IvyManagerProtocol::IvyManagerProtocol(NodeContext& ctx, Placement placement)
    : Protocol(ctx), placement_(placement) {}

std::string_view IvyManagerProtocol::name() const {
  return placement_ == Placement::kCentral ? "ivy-central" : "ivy-fixed";
}

NodeId IvyManagerProtocol::manager_of(PageId page) const {
  return placement_ == Placement::kCentral ? NodeId{0} : ctx_.home_of(page);
}

void IvyManagerProtocol::init_pages() {
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    e.owner = ctx_.home_of(p);  // meaningful at the manager; harmless elsewhere
    if (e.owner == ctx_.id) {
      e.state = PageState::kReadWrite;
      page_io::note_state(ctx_, p, PageState::kReadWrite);
      ctx_.view->protect(p, Access::kReadWrite);
    } else {
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, p, PageState::kInvalid);
      ctx_.view->protect(p, Access::kNone);
    }
    e.copyset.clear();
    e.busy = false;
    e.manager_busy = false;
    e.acks_outstanding = 0;
    e.parked.clear();
    e.manager_parked.clear();
  }
}

void IvyManagerProtocol::on_read_fault(PageId page) { fault(page, /*is_write=*/false); }
void IvyManagerProtocol::on_write_fault(PageId page) { fault(page, /*is_write=*/true); }

void IvyManagerProtocol::fault(PageId page, bool is_write) {
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  const auto sufficient = [&] {
    return is_write ? e.state == PageState::kReadWrite : e.state != PageState::kInvalid;
  };
  // The transaction may complete and the access be stolen again (the service
  // thread can grant a parked transfer right after finishing ours), so the
  // wait is for *our transaction* (!busy), not for the state — if access is
  // gone by the time we run, we simply request again. The faulting
  // instruction retries after this returns either way.
  for (;;) {
    if (sufficient()) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }
    e.busy = true;
    lock.unlock();

    ctx_.clock->advance(ctx_.cfg->fault_ns);
    const VirtualTime t0 = ctx_.clock->now();
    ctx_.stats->counter(is_write ? "proto.write_faults" : "proto.read_faults").add();
    ctx_.send(is_write ? MsgType::kWriteRequest : MsgType::kReadRequest, manager_of(page),
              encode_req(page, ctx_.id));
    if (!is_write) prefetch_sequential(page);

    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
    ctx_.stats->histogram("proto.fault_service_ns").record(ctx_.clock->now() - t0);
    if (ctx_.trace != nullptr)
      ctx_.trace->complete(ctx_.id, TraceCat::kProto, "fault-txn", t0,
                           ctx_.clock->now(), "page", page);
  }
}

void IvyManagerProtocol::prefetch_sequential(PageId page) {
  for (std::size_t k = 1; k <= ctx_.cfg->prefetch_pages; ++k) {
    const PageId next = page + static_cast<PageId>(k);
    if (next >= ctx_.table->n_pages()) return;
    auto& e = ctx_.table->entry(next);
    {
      const MutexLock lock(e.mutex);
      if (e.state != PageState::kInvalid || e.busy) continue;
      e.busy = true;  // async read transaction; the reply path completes it
    }
    ctx_.stats->counter("proto.prefetches").add();
    ctx_.send(MsgType::kReadRequest, manager_of(next), encode_req(next, ctx_.id));
  }
}

void IvyManagerProtocol::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kReadRequest:
    case MsgType::kWriteRequest: handle_request(msg); return;
    case MsgType::kReadForward: handle_read_forward(msg); return;
    case MsgType::kWriteForward: handle_write_forward(msg); return;
    case MsgType::kReadReply: handle_read_reply(msg); return;
    case MsgType::kWriteReply: handle_write_reply(msg); return;
    case MsgType::kInvalidate: handle_invalidate(msg); return;
    case MsgType::kInvalidateAck: handle_invalidate_ack(msg); return;
    case MsgType::kConfirm: handle_confirm(msg); return;
    default:
      DSM_CHECK_MSG(false, "ivy-manager: unexpected message " << to_string(msg.type));
  }
}

void IvyManagerProtocol::handle_request(const Message& msg) {
  const auto [page, requester] = parse_req(msg);
  auto& e = ctx_.table->entry(page);
  NodeId owner;
  {
    const MutexLock lock(e.mutex);
    if (e.manager_busy) {
      e.manager_parked.push_back(msg);
      ctx_.stats->counter("ivy.manager_parked").add();
      return;
    }
    e.manager_busy = true;
    owner = e.owner;
    if (msg.type == MsgType::kWriteRequest) e.owner = requester;  // next transactions route to the new owner once confirmed
  }
  const auto fwd = msg.type == MsgType::kReadRequest ? MsgType::kReadForward
                                                     : MsgType::kWriteForward;
  ctx_.send(fwd, owner, encode_req(page, requester));
}

void IvyManagerProtocol::handle_read_forward(const Message& msg) {
  const auto [page, requester] = parse_req(msg);
  auto& e = ctx_.table->entry(page);
  std::vector<std::byte> bytes;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK_MSG(e.state != PageState::kInvalid,
                  "ivy: non-owner " << ctx_.id << " asked to serve page " << page);
    if (e.state == PageState::kReadWrite) {
      ctx_.view->protect(page, Access::kRead);
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, page, PageState::kReadOnly);
    }
    e.copyset.insert(requester);
    bytes = page_io::read_page(ctx_, page, e.state);
  }
  WireWriter w(bytes.size() + 8);
  w.put(page);
  page_io::put_page(ctx_, w, bytes);
  ctx_.send(MsgType::kReadReply, requester, std::move(w).take());
}

void IvyManagerProtocol::handle_write_forward(const Message& msg) {
  const auto [page, requester] = parse_req(msg);
  auto& e = ctx_.table->entry(page);

  if (requester == ctx_.id) {
    // Owner upgrading its own read-only copy: no data moves; invalidate the
    // copyset and finish locally.
    bool done;
    {
      const MutexLock lock(e.mutex);
      DSM_CHECK(e.state != PageState::kInvalid);
      auto holders = e.copyset.members();
      e.copyset.clear();
      done = start_invalidation(page, e, holders);
    }
    if (done) e.cv.notify_all();
    return;
  }

  std::vector<std::byte> bytes;
  std::vector<NodeId> holders;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK_MSG(e.state != PageState::kInvalid,
                  "ivy: non-owner " << ctx_.id << " asked to transfer page " << page);
    // Revoke the app view BEFORE copying the bytes out. The old owner's app
    // thread may be storing to an unrelated word of this page right now
    // (it holds a different lock); with copy-first, a store landing between
    // the copy and the revocation stays local, dies with the zap, and the
    // new owner never sees it — a lost update. Revoke-first makes any
    // concurrent store fault and replay against the new owner instead. The
    // copy itself goes through the service alias, which a zap of the app
    // view cannot invalidate.
    const PageState had = e.state;
    // The old owner's copy dies right here — no invalidate message needed.
    ctx_.view->protect(page, Access::kNone);
    e.state = PageState::kInvalid;
    page_io::note_state(ctx_, page, PageState::kInvalid);
    bytes = page_io::read_page(ctx_, page, had);
    for (const NodeId n : e.copyset.members()) {
      if (n != requester) holders.push_back(n);
    }
    e.copyset.clear();
  }

  WireWriter w(bytes.size() + 16);
  w.put(page);
  w.put_vector(holders);
  page_io::put_page(ctx_, w, bytes);
  ctx_.send(MsgType::kWriteReply, requester, std::move(w).take());
}

void IvyManagerProtocol::handle_read_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto bytes = page_io::get_page(ctx_, r);
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    page_io::install_page(ctx_, page, bytes, Access::kRead);
    e.state = PageState::kReadOnly;
    page_io::note_state(ctx_, page, PageState::kReadOnly);
    e.busy = false;
  }
  e.cv.notify_all();
  ctx_.send(MsgType::kConfirm, manager_of(page), [&] {
    WireWriter w(4);
    w.put(page);
    return std::move(w).take();
  }());
}

void IvyManagerProtocol::handle_write_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto holders = r.get_vector<NodeId>();
  const auto bytes = page_io::get_page(ctx_, r);
  auto& e = ctx_.table->entry(page);
  bool done;
  {
    const MutexLock lock(e.mutex);
    // Install data but do not grant access until every stale copy is gone —
    // that ordering is what makes this protocol sequentially consistent.
    page_io::install_page(ctx_, page, bytes, Access::kReadWrite);
    start_invalidation(page, e, holders);
    done = e.busy == false;
  }
  if (done) e.cv.notify_all();
}

bool IvyManagerProtocol::start_invalidation(PageId page, PageEntry& e,
                                            const std::vector<NodeId>& holders) {
  // Entry lock held by the caller throughout. Sending while holding the
  // entry lock is safe: Mailbox::push only takes the mailbox mutex.
  if (holders.empty()) {
    finish_write(page, e);
    return true;
  }
  e.acks_outstanding = static_cast<int>(holders.size());
  WireWriter w(8);
  w.put(page);
  w.put(ctx_.id);
  const auto payload = std::move(w).take();
  for (const NodeId n : holders) {
    ctx_.send(MsgType::kInvalidate, n, payload);
  }
  return false;
}

void IvyManagerProtocol::finish_write(PageId page, PageEntry& e) {
  ctx_.view->protect(page, Access::kReadWrite);
  e.state = PageState::kReadWrite;
  page_io::note_state(ctx_, page, PageState::kReadWrite);
  e.busy = false;
  WireWriter w(4);
  w.put(page);
  ctx_.send(MsgType::kConfirm, manager_of(page), std::move(w).take());
}

void IvyManagerProtocol::handle_invalidate(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  r.get<NodeId>();  // new owner: used by the dynamic protocol, not here
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    if (e.state != PageState::kInvalid) {
      ctx_.view->protect(page, Access::kNone);
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, page, PageState::kInvalid);
    }
  }
  WireWriter w(4);
  w.put(page);
  ctx_.send(MsgType::kInvalidateAck, msg.src, std::move(w).take());
}

void IvyManagerProtocol::handle_invalidate_ack(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  auto& e = ctx_.table->entry(page);
  bool done = false;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.acks_outstanding > 0);
    if (--e.acks_outstanding == 0) {
      finish_write(page, e);
      done = true;
    }
  }
  if (done) e.cv.notify_all();
}

void IvyManagerProtocol::handle_confirm(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  {
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.manager_busy);
    e.manager_busy = false;
  }
  replay_manager_parked(page);
}

void IvyManagerProtocol::replay_manager_parked(PageId page) {
  auto& e = ctx_.table->entry(page);
  for (;;) {
    Message next;
    {
      const MutexLock lock(e.mutex);
      if (e.manager_busy || e.manager_parked.empty()) return;
      next = std::move(e.manager_parked.front());
      e.manager_parked.pop_front();
    }
    handle_request(next);
  }
}

}  // namespace dsm
