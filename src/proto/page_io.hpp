// Small helpers protocols share for moving page contents in and out of a
// node's view, independent of the page's current protection.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "check/checker.hpp"
#include "common/assert.hpp"
#include "core/context.hpp"
#include "mem/page_table.hpp"

namespace dsm::page_io {

/// Reports a page-state transition to dsmcheck (no-op when checking is
/// off). Protocols call this alongside every `entry.state` assignment so
/// the checker can mirror coherence state and assert SWMR; the quiescence
/// pass cross-checks the mirror against the real tables, which catches any
/// assignment that forgets this call.
inline void note_state(const NodeContext& ctx, PageId page, PageState state) {
  if (ctx.check != nullptr) ctx.check->on_page_state(ctx.id, page, state);
}

/// Copies the page's current contents out of the view (through the service
/// window, so any protection state is readable). The caller must hold the
/// page entry lock.
inline std::vector<std::byte> read_page(const NodeContext& ctx, PageId page,
                                        PageState current_state) {
  std::vector<std::byte> bytes(ctx.cfg->page_size);
  if (current_state == PageState::kInvalid) {
    // Owner invariant violations are protocol bugs; readable is required.
    DSM_CHECK_MSG(false, "read_page of invalid page " << page);
  }
  std::memcpy(bytes.data(), ctx.view->alias_ptr(page), bytes.size());
  return bytes;
}

/// Installs `bytes` into the view and leaves the page with `rights`.
/// The caller must hold the page entry lock and update entry.state itself.
/// The copy goes through the service window: the app view's protection is
/// set exactly once, never relaxed-then-restored, so a concurrent app-thread
/// store can never slip into a transiently writable page unrecorded.
inline void install_page(const NodeContext& ctx, PageId page,
                         std::span<const std::byte> bytes, Access rights) {
  DSM_CHECK(bytes.size() == ctx.cfg->page_size);
  std::memcpy(ctx.view->alias_ptr(page), bytes.data(), bytes.size());
  ctx.view->protect(page, rights);
}

/// Maps a PageState onto the mprotect rights that represent it.
inline Access rights_for(PageState state) {
  switch (state) {
    case PageState::kInvalid: return Access::kNone;
    case PageState::kReadOnly: return Access::kRead;
    case PageState::kReadWrite: return Access::kReadWrite;
  }
  return Access::kNone;
}

}  // namespace dsm::page_io
