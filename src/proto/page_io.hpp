// Small helpers protocols share for moving page contents in and out of a
// node's view, independent of the page's current protection.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "core/context.hpp"
#include "mem/page_table.hpp"

namespace dsm::page_io {

/// Copies the page's current contents out of the view. The caller must hold
/// the page entry lock; the page may be in any protection state.
inline std::vector<std::byte> read_page(const NodeContext& ctx, PageId page,
                                        PageState current_state) {
  std::vector<std::byte> bytes(ctx.cfg->page_size);
  if (current_state == PageState::kInvalid) {
    // Owner invariant violations are protocol bugs; readable is required.
    DSM_CHECK_MSG(false, "read_page of invalid page " << page);
  }
  std::memcpy(bytes.data(), ctx.view->page_ptr(page), bytes.size());
  return bytes;
}

/// Installs `bytes` into the view and leaves the page with `rights`.
/// The caller must hold the page entry lock and update entry.state itself.
inline void install_page(const NodeContext& ctx, PageId page,
                         std::span<const std::byte> bytes, Access rights) {
  DSM_CHECK(bytes.size() == ctx.cfg->page_size);
  ctx.view->protect(page, Access::kReadWrite);
  std::memcpy(ctx.view->page_ptr(page), bytes.data(), bytes.size());
  if (rights != Access::kReadWrite) ctx.view->protect(page, rights);
}

/// Maps a PageState onto the mprotect rights that represent it.
inline Access rights_for(PageState state) {
  switch (state) {
    case PageState::kInvalid: return Access::kNone;
    case PageState::kReadOnly: return Access::kRead;
    case PageState::kReadWrite: return Access::kReadWrite;
  }
  return Access::kNone;
}

}  // namespace dsm::page_io
