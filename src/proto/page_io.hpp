// Small helpers protocols share for moving page contents in and out of a
// node's view, independent of the page's current protection — plus the
// negotiated wire codec for full-page payloads (zero-run RLE with a raw
// escape, gated by Config::wire.compress_pages).
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "check/checker.hpp"
#include "common/assert.hpp"
#include "common/serialize.hpp"
#include "core/context.hpp"
#include "mem/diff.hpp"
#include "mem/page_table.hpp"

namespace dsm::page_io {

/// Reports a page-state transition to dsmcheck (no-op when checking is
/// off). Protocols call this alongside every `entry.state` assignment so
/// the checker can mirror coherence state and assert SWMR; the quiescence
/// pass cross-checks the mirror against the real tables, which catches any
/// assignment that forgets this call.
inline void note_state(const NodeContext& ctx, PageId page, PageState state) {
  if (ctx.check != nullptr) ctx.check->on_page_state(ctx.id, page, state);
}

/// Copies the page's current contents out of the view (through the service
/// window, so any protection state is readable). The caller must hold the
/// page entry lock.
inline std::vector<std::byte> read_page(const NodeContext& ctx, PageId page,
                                        PageState current_state) {
  std::vector<std::byte> bytes(ctx.cfg->page_size);
  if (current_state == PageState::kInvalid) {
    // Owner invariant violations are protocol bugs; readable is required.
    DSM_CHECK_MSG(false, "read_page of invalid page " << page);
  }
  std::memcpy(bytes.data(), ctx.view->alias_ptr(page), bytes.size());
  return bytes;
}

/// Installs `bytes` into the view and leaves the page with `rights`.
/// The caller must hold the page entry lock and update entry.state itself.
/// The copy goes through the service window: the app view's protection is
/// set exactly once, never relaxed-then-restored, so a concurrent app-thread
/// store can never slip into a transiently writable page unrecorded.
inline void install_page(const NodeContext& ctx, PageId page,
                         std::span<const std::byte> bytes, Access rights) {
  DSM_CHECK(bytes.size() == ctx.cfg->page_size);
  std::memcpy(ctx.view->alias_ptr(page), bytes.data(), bytes.size());
  ctx.view->protect(page, rights);
}

/// Maps a PageState onto the mprotect rights that represent it.
inline Access rights_for(PageState state) {
  switch (state) {
    case PageState::kInvalid: return Access::kNone;
    case PageState::kReadOnly: return Access::kRead;
    case PageState::kReadWrite: return Access::kReadWrite;
  }
  return Access::kNone;
}

// --- full-page wire codec ---------------------------------------------------
// With `Config::wire.compress_pages` off the page ships as raw bytes —
// bit-identical to the historical wire format. With it on, a 1-byte codec
// tag is negotiated per message: kZrle when zero-run RLE actually shrinks
// the page, kRaw as the incompressible escape. Both sides consult the same
// Config, so framing is never ambiguous. The page must be the *last* field
// of its payload (true for every kPageReply/kReadReply/kWriteReply today):
// the compressed body has no length prefix, it runs to the payload's end.

constexpr std::uint8_t kPageCodecRaw = 0;
constexpr std::uint8_t kPageCodecZrle = 1;

/// Appends `bytes` (one full page) to `w` under the negotiated codec.
inline void put_page(const NodeContext& ctx, WireWriter& w,
                     std::span<const std::byte> bytes) {
  DSM_CHECK(bytes.size() == ctx.cfg->page_size);
  if (!ctx.cfg->wire.compress_pages) {
    w.put_raw(bytes);
    return;
  }
  std::vector<std::byte> packed = zrle_encode(bytes);
  if (packed.size() + 1 < bytes.size()) {
    ctx.stats->counter("net.bytes_saved").add(bytes.size() - packed.size() - 1);
    w.put<std::uint8_t>(kPageCodecZrle);
    w.put_raw(packed);
  } else {
    w.put<std::uint8_t>(kPageCodecRaw);
    w.put_raw(bytes);
  }
}

/// Reads a full page written by put_page; consumes the rest of `r`.
inline std::vector<std::byte> get_page(const NodeContext& ctx, WireReader& r) {
  if (!ctx.cfg->wire.compress_pages) {
    const auto bytes = r.get_raw(ctx.cfg->page_size);
    return {bytes.begin(), bytes.end()};
  }
  const auto codec = r.get<std::uint8_t>();
  const auto body = r.get_raw(r.remaining());
  if (codec == kPageCodecRaw) {
    DSM_CHECK(body.size() == ctx.cfg->page_size);
    return {body.begin(), body.end()};
  }
  DSM_CHECK_MSG(codec == kPageCodecZrle, "unknown page codec " << int{codec});
  std::vector<std::byte> out = zrle_decode(body);
  DSM_CHECK_MSG(out.size() == ctx.cfg->page_size,
                "decompressed page is " << out.size() << " bytes");
  return out;
}

// --- diff wire codec --------------------------------------------------------
// Gated by `Config::wire.compress_diffs`; same negotiation shape as pages,
// but the coded diff travels as a length-prefixed *field* (put_bytes), so
// payload layouts — and the off-mode bytes — are unchanged. kDiffXorZrle
// additionally requires the decoder to hold a base equal to the encoder's
// twin for every diffed word (the ERC writer→home path guarantees this
// under DRF; see DESIGN.md). With compression off the field is the plain
// diff itself.

constexpr std::uint8_t kDiffCodecPlain = 0;
constexpr std::uint8_t kDiffCodecZrle = 1;     ///< zrle(value diff)
constexpr std::uint8_t kDiffCodecXorZrle = 2;  ///< zrle(xor-vs-twin diff)

/// Encodes a value diff as a wire field (no XOR form — safe for any
/// receiver).
inline std::vector<std::byte> pack_diff_field(const NodeContext& ctx,
                                              std::span<const std::byte> diff) {
  if (!ctx.cfg->wire.compress_diffs) return {diff.begin(), diff.end()};
  std::vector<std::byte> packed = zrle_encode(diff);
  std::vector<std::byte> field;
  if (packed.size() + 1 < diff.size()) {
    ctx.stats->counter("net.bytes_saved").add(diff.size() - packed.size() - 1);
    field.push_back(std::byte{kDiffCodecZrle});
    field.insert(field.end(), packed.begin(), packed.end());
  } else {
    field.push_back(std::byte{kDiffCodecPlain});
    field.insert(field.end(), diff.begin(), diff.end());
  }
  return field;
}

/// Encodes a diff choosing the best of plain / zrle(value) / zrle(xor).
/// `current`/`twin` are the encoder's live page and twin behind `diff`;
/// only use when the receiver's base is known to equal `twin` on every
/// diffed word.
inline std::vector<std::byte> pack_diff_field_xor(const NodeContext& ctx,
                                                  std::span<const std::byte> diff,
                                                  std::span<const std::byte> current,
                                                  std::span<const std::byte> twin) {
  if (!ctx.cfg->wire.compress_diffs) return {diff.begin(), diff.end()};
  std::vector<std::byte> xored = zrle_encode(encode_diff_xor(current, twin));
  std::vector<std::byte> packed = zrle_encode(diff);
  std::vector<std::byte> field;
  if (xored.size() <= packed.size() && xored.size() + 1 < diff.size()) {
    ctx.stats->counter("net.bytes_saved").add(diff.size() - xored.size() - 1);
    field.push_back(std::byte{kDiffCodecXorZrle});
    field.insert(field.end(), xored.begin(), xored.end());
  } else if (packed.size() + 1 < diff.size()) {
    ctx.stats->counter("net.bytes_saved").add(diff.size() - packed.size() - 1);
    field.push_back(std::byte{kDiffCodecZrle});
    field.insert(field.end(), packed.begin(), packed.end());
  } else {
    field.push_back(std::byte{kDiffCodecPlain});
    field.insert(field.end(), diff.begin(), diff.end());
  }
  return field;
}

/// Decodes a diff field back to a plain value diff. `base` is the
/// receiver's copy matching the encoder's twin (needed only for the XOR
/// form; ERC home decode passes the pre-apply home page).
inline std::vector<std::byte> unpack_diff_field(const NodeContext& ctx,
                                                std::span<const std::byte> field,
                                                std::span<const std::byte> base) {
  if (!ctx.cfg->wire.compress_diffs) return {field.begin(), field.end()};
  DSM_CHECK_MSG(!field.empty(), "empty diff field");
  const auto codec = static_cast<std::uint8_t>(field.front());
  const auto body = field.subspan(1);
  if (codec == kDiffCodecPlain) return {body.begin(), body.end()};
  if (codec == kDiffCodecZrle) return zrle_decode(body);
  DSM_CHECK_MSG(codec == kDiffCodecXorZrle, "unknown diff codec " << int{codec});
  return xor_diff_to_value(zrle_decode(body), base);
}

}  // namespace dsm::page_io
