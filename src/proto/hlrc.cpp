#include "proto/hlrc.hpp"

#include <algorithm>
#include <cstring>

#include "common/logging.hpp"
#include "mem/diff.hpp"
#include "proto/page_io.hpp"

namespace dsm {
namespace {

// Payload layouts:
//   lock request payload : u32 n | n×u32 vclock
//   lock grant payload   : u32 n | vclock | u32 nrec |
//                          nrec × { u32 node | u32 interval | u32 npages | pages }
//   barrier arrive/release: same as grant payload
//   kPageRequest         : u32 page | u32 requester
//   kPageReply           : u32 page | raw page bytes
//   kUpdate (flush)      : u32 page | bytes diff
//   kUpdateAck           : (empty)

void write_vclock(const VectorClock& vc, WireWriter& out) {
  out.put(static_cast<std::uint32_t>(vc.size()));
  for (std::size_t i = 0; i < vc.size(); ++i) out.put(vc[static_cast<NodeId>(i)]);
}

VectorClock read_vclock(WireReader& in) {
  const auto n = in.get<std::uint32_t>();
  VectorClock vc(n);
  for (std::uint32_t i = 0; i < n; ++i) vc.set(i, in.get<std::uint32_t>());
  return vc;
}

}  // namespace

HlrcProtocol::HlrcProtocol(NodeContext& ctx)
    : Protocol(ctx), vc_(ctx.n_nodes), interval_log_(ctx.n_nodes), barrier_vc_(ctx.n_nodes) {}

std::string_view HlrcProtocol::name() const { return "hlrc"; }

void HlrcProtocol::init_pages() {
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    if (ctx_.home_of(p) == ctx_.id) {
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, p, PageState::kReadOnly);
      ctx_.view->protect(p, Access::kRead);
    } else {
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, p, PageState::kInvalid);
      ctx_.view->protect(p, Access::kNone);
    }
    e.busy = false;
    e.dirty = false;
    e.twin.reset();
  }
  const MutexLock meta(meta_mutex_);
  vc_ = VectorClock(ctx_.n_nodes);
  for (auto& log : interval_log_) log.clear();
  {
    const MutexLock lock(dirty_mutex_);
    dirty_pages_.clear();
  }
  flush_outstanding_ = 0;
  barrier_records_.clear();
  barrier_vc_ = VectorClock(ctx_.n_nodes);
}

// --------------------------------------------------------------------------
// Faults
// --------------------------------------------------------------------------

void HlrcProtocol::on_read_fault(PageId page) {
  ctx_.stats->counter("proto.read_faults").add();
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  ctx_.clock->advance(ctx_.cfg->fault_ns);
  for (;;) {
    if (e.state != PageState::kInvalid) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }
    e.busy = true;
    lock.unlock();
    const VirtualTime t0 = ctx_.clock->now();
    WireWriter w(8);
    w.put(page);
    w.put(ctx_.id);
    ctx_.send(MsgType::kPageRequest, ctx_.home_of(page), std::move(w).take());
    prefetch_sequential(page);
    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
    ctx_.stats->histogram("proto.fault_service_ns").record(ctx_.clock->now() - t0);
    if (ctx_.trace != nullptr)
      ctx_.trace->complete(ctx_.id, TraceCat::kProto, "fault-txn", t0,
                           ctx_.clock->now(), "page", page);
  }
}

void HlrcProtocol::prefetch_sequential(PageId page) {
  for (std::size_t k = 1; k <= ctx_.cfg->prefetch_pages; ++k) {
    const PageId next = page + static_cast<PageId>(k);
    if (next >= ctx_.table->n_pages()) return;
    auto& e = ctx_.table->entry(next);
    {
      const MutexLock lock(e.mutex);
      if (e.state != PageState::kInvalid || e.busy) continue;
      e.busy = true;  // async fetch; handle_page_reply completes it
    }
    ctx_.stats->counter("proto.prefetches").add();
    WireWriter w(8);
    w.put(next);
    w.put(ctx_.id);
    ctx_.send(MsgType::kPageRequest, ctx_.home_of(next), std::move(w).take());
  }
}

void HlrcProtocol::on_write_fault(PageId page) {
  ctx_.stats->counter("proto.write_faults").add();
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  ctx_.clock->advance(ctx_.cfg->fault_ns);
  for (;;) {
    if (e.state == PageState::kReadWrite) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }
    if (e.state == PageState::kReadOnly) {
      if (e.twin == nullptr) e.twin = make_twin(ctx_.view->alias_span(page));
      ctx_.view->protect(page, Access::kReadWrite);
      e.state = PageState::kReadWrite;
      page_io::note_state(ctx_, page, PageState::kReadWrite);
      if (!e.dirty) {
        e.dirty = true;
        const MutexLock dirty(dirty_mutex_);
        dirty_pages_.push_back(page);
      }
      return;
    }
    e.busy = true;
    lock.unlock();
    WireWriter w(8);
    w.put(page);
    w.put(ctx_.id);
    ctx_.send(MsgType::kPageRequest, ctx_.home_of(page), std::move(w).take());
    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
  }
}

// --------------------------------------------------------------------------
// Intervals and flushes
// --------------------------------------------------------------------------

void HlrcProtocol::close_and_flush() {
  // Swap the dirty list out whole: a concurrent write fault on another app
  // thread may be appending. A racer that swaps an empty list still waits
  // out the outstanding acks below — no release completes before every
  // page dirtied under it is home-acknowledged.
  std::vector<PageId> dirty;
  {
    const MutexLock lock(dirty_mutex_);
    dirty.swap(dirty_pages_);
  }
  if (dirty.empty()) {
    RelockableMutexLock lock(flush_mutex_);
    while (flush_outstanding_ != 0) flush_cv_.wait(flush_mutex_);
    return;
  }
  {
    const MutexLock flush(flush_mutex_);
    flush_outstanding_ += static_cast<int>(dirty.size());
  }
  IntervalRecord rec;
  rec.node = ctx_.id;
  rec.pages = dirty;
  {
    const MutexLock meta(meta_mutex_);
    vc_.tick(ctx_.id);
    if (ctx_.check != nullptr) ctx_.check->on_vclock(ctx_.id, vc_);
    rec.interval = vc_[ctx_.id];
    for (const PageId page : dirty) {
      auto& e = ctx_.table->entry(page);
      const MutexLock lock(e.mutex);
      DSM_CHECK(e.dirty && e.twin != nullptr);
      // Read through the service window: the page may have been invalidated
      // (PROT_NONE) while dirty, and a fault here would self-deadlock.
      std::vector<std::byte> diff =
          encode_diff(ctx_.view->alias_span(page), {e.twin.get(), ctx_.cfg->page_size});
      ctx_.stats->counter("hlrc.flush_bytes").add(diff.size());
      e.twin.reset();
      e.dirty = false;
      // The copy stays readable: its content is exactly what we flushed.
      // A later write re-twins; remote writes arrive as notices.
      if (e.state != PageState::kInvalid) {
        ctx_.view->protect(page, Access::kRead);
        e.state = PageState::kReadOnly;
        page_io::note_state(ctx_, page, PageState::kReadOnly);
      }
      WireWriter w(diff.size() + 16);
      w.put(page);
      w.put_bytes(diff);
      ctx_.send(MsgType::kUpdate, ctx_.home_of(page), std::move(w).take());
    }
    interval_log_[ctx_.id].push_back(std::move(rec));
  }

  // Eager half of HLRC: the release is not complete (and no grant can be
  // filled) until every home acknowledged — homes are then hb-current.
  RelockableMutexLock lock(flush_mutex_);
  while (flush_outstanding_ != 0) flush_cv_.wait(flush_mutex_);
}

void HlrcProtocol::before_release(LockId) { close_and_flush(); }
void HlrcProtocol::before_barrier(BarrierId) { close_and_flush(); }

void HlrcProtocol::handle_flush(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto diff = r.get_bytes();
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK_MSG(ctx_.home_of(page) == ctx_.id, "hlrc: flush at non-home");
    // Arrival order is happens-before-consistent: an hb-later writer could
    // only have started after this diff was acknowledged. Apply through the
    // service window — relaxing the app view's protection would let a
    // concurrent app-thread store retire without faulting (lost update).
    apply_diff(ctx_.view->alias_span(page), diff);
    if (e.twin != nullptr) apply_diff({e.twin.get(), ctx_.cfg->page_size}, diff);
  }
  ctx_.send(MsgType::kUpdateAck, msg.src, {});
}

void HlrcProtocol::handle_flush_ack(const Message&) {
  bool done;
  {
    const MutexLock lock(flush_mutex_);
    DSM_CHECK(flush_outstanding_ > 0);
    done = --flush_outstanding_ == 0;
  }
  if (done) flush_cv_.notify_all();
}

// --------------------------------------------------------------------------
// Page fetches
// --------------------------------------------------------------------------

void HlrcProtocol::handle_page_request(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto requester = r.get<NodeId>();
  DSM_CHECK_MSG(ctx_.home_of(page) == ctx_.id, "hlrc: page request at non-home");
  auto& e = ctx_.table->entry(page);
  std::vector<std::byte> bytes(ctx_.cfg->page_size);
  {
    const MutexLock lock(e.mutex);
    std::memcpy(bytes.data(), ctx_.view->alias_ptr(page), bytes.size());
  }
  WireWriter w(bytes.size() + 8);
  w.put(page);
  page_io::put_page(ctx_, w, bytes);
  ctx_.send(MsgType::kPageReply, requester, std::move(w).take());
}

void HlrcProtocol::handle_page_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto bytes = page_io::get_page(ctx_, r);
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    if (e.twin != nullptr) {
      // We were mid-write when the copy was invalidated: preserve the
      // unflushed local words (disjoint from remote ones under DRF) by
      // re-applying our local diff over the fetched page. All moves go
      // through the service window — the page is PROT_NONE right now, and
      // a fault on the service thread would deadlock.
      const auto local = encode_diff(ctx_.view->alias_span(page),
                                     {e.twin.get(), ctx_.cfg->page_size});
      std::memcpy(ctx_.view->alias_ptr(page), bytes.data(), bytes.size());
      std::memcpy(e.twin.get(), bytes.data(), bytes.size());
      apply_diff(ctx_.view->alias_span(page), local);
      ctx_.view->protect(page, Access::kReadWrite);
      e.state = PageState::kReadWrite;
      page_io::note_state(ctx_, page, PageState::kReadWrite);
    } else {
      page_io::install_page(ctx_, page, bytes, Access::kRead);
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, page, PageState::kReadOnly);
    }
    e.busy = false;
  }
  e.cv.notify_all();
}

// --------------------------------------------------------------------------
// Notices (locks and barriers)
// --------------------------------------------------------------------------

void HlrcProtocol::fill_lock_request(LockId, WireWriter& out) {
  const MutexLock meta(meta_mutex_);
  write_vclock(vc_, out);
}

void HlrcProtocol::write_records_after(const VectorClock& horizon, WireWriter& out) {
  // meta_mutex_ held by the caller.
  std::uint32_t count = 0;
  for (const auto& log : interval_log_) {
    for (const auto& rec : log) {
      if (rec.interval > horizon[rec.node]) ++count;
    }
  }
  out.put(count);
  for (const auto& log : interval_log_) {
    for (const auto& rec : log) {
      if (rec.interval <= horizon[rec.node]) continue;
      out.put(rec.node);
      out.put(rec.interval);
      out.put_vector(rec.pages);
    }
  }
}

void HlrcProtocol::fill_lock_grant(LockId, NodeId /*to*/,
                                   std::span<const std::byte> request_payload,
                                   WireWriter& out) {
  VectorClock horizon(ctx_.n_nodes);
  if (!request_payload.empty()) {
    WireReader r(request_payload);
    horizon = read_vclock(r);
  }
  const MutexLock meta(meta_mutex_);
  write_vclock(vc_, out);
  write_records_after(horizon, out);
}

void HlrcProtocol::ingest_records(WireReader& in, std::size_t count) {
  // meta_mutex_ held by the caller.
  for (std::size_t i = 0; i < count; ++i) {
    IntervalRecord rec;
    rec.node = in.get<NodeId>();
    rec.interval = in.get<std::uint32_t>();
    rec.pages = in.get_vector<PageId>();
    if (vc_.covers(rec.node, rec.interval)) continue;
    for (const PageId page : rec.pages) {
      if (ctx_.home_of(page) == ctx_.id) continue;  // home copy is kept current
      auto& e = ctx_.table->entry(page);
      const MutexLock lock(e.mutex);
      if (e.state != PageState::kInvalid) {
        ctx_.view->protect(page, Access::kNone);
        e.state = PageState::kInvalid;
        page_io::note_state(ctx_, page, PageState::kInvalid);
        ctx_.stats->counter("hlrc.notice_invalidations").add();
      }
    }
    interval_log_[rec.node].push_back(std::move(rec));
  }
}

void HlrcProtocol::on_lock_granted(LockId, WireReader& in) {
  if (in.remaining() == 0) return;
  const VectorClock granter_vc = read_vclock(in);
  const auto count = in.get<std::uint32_t>();
  const MutexLock meta(meta_mutex_);
  ingest_records(in, count);
  vc_.merge(granter_vc);
  if (ctx_.check != nullptr) ctx_.check->on_vclock(ctx_.id, vc_);
}

void HlrcProtocol::fill_barrier_arrive(BarrierId, WireWriter& out) {
  const MutexLock meta(meta_mutex_);
  write_vclock(vc_, out);
  const auto& mine = interval_log_[ctx_.id];
  out.put(static_cast<std::uint32_t>(mine.size()));
  for (const auto& rec : mine) {
    out.put(rec.node);
    out.put(rec.interval);
    out.put_vector(rec.pages);
  }
}

void HlrcProtocol::on_barrier_collect(BarrierId, NodeId /*from*/, WireReader& in) {
  const VectorClock vc = read_vclock(in);
  const auto count = in.get<std::uint32_t>();
  barrier_vc_.merge(vc);
  for (std::uint32_t i = 0; i < count; ++i) {
    IntervalRecord rec;
    rec.node = in.get<NodeId>();
    rec.interval = in.get<std::uint32_t>();
    rec.pages = in.get_vector<PageId>();
    barrier_records_.push_back(std::move(rec));
  }
}

void HlrcProtocol::fill_barrier_release(BarrierId, WireWriter& out) {
  write_vclock(barrier_vc_, out);
  out.put(static_cast<std::uint32_t>(barrier_records_.size()));
  for (const auto& rec : barrier_records_) {
    out.put(rec.node);
    out.put(rec.interval);
    out.put_vector(rec.pages);
  }
  barrier_records_.clear();
}

void HlrcProtocol::on_barrier_release(BarrierId, WireReader& in) {
  const VectorClock merged = read_vclock(in);
  const auto count = in.get<std::uint32_t>();
  const MutexLock meta(meta_mutex_);
  ingest_records(in, count);
  vc_.merge(merged);
  if (ctx_.check != nullptr) ctx_.check->on_vclock(ctx_.id, vc_);
  // All homes were flushed before anyone arrived and everyone has now seen
  // every notice: the interval logs can be collected. (No diff caches exist
  // to collect — that is the point of HLRC.)
  for (auto& log : interval_log_) log.clear();
}

// --------------------------------------------------------------------------

void HlrcProtocol::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kPageRequest: handle_page_request(msg); return;
    case MsgType::kPageReply: handle_page_reply(msg); return;
    case MsgType::kUpdate: handle_flush(msg); return;
    case MsgType::kUpdateAck: handle_flush_ack(msg); return;
    default:
      DSM_CHECK_MSG(false, "hlrc: unexpected message " << to_string(msg.type));
  }
}

}  // namespace dsm
