#include "proto/qrc.hpp"

#include <algorithm>
#include <cstring>

#include "check/checker.hpp"
#include "common/logging.hpp"
#include "mem/diff.hpp"
#include "proto/page_io.hpp"

namespace dsm {
namespace {

// Payload layouts:
//   kReplRead        : u32 page | u32 requester
//   kReplReadReply   : u32 page | u64 tag | bytes page data
//   kReplWrite       : u32 page | u32 writer | bytes value-diff field
//   kReplWriteAck    : u32 page
//   kReplSync        : u32 page | u8 kind (0 = backup, 1 = keeper) | u64 tag | bytes diff
//   kReplSyncAck     : u32 page | u8 kind
//   kReplRecover     : u32 page | u32 requester
//   kReplRecoverReply: u32 page | u64 tag | bytes page data
//   kInvalidate      : u32 page | u32 unused          (shared with ERC)
//   kInvalidateAck   : u32 page | u8 kept             (shared with ERC)

constexpr std::uint8_t kToBackup = 0;
constexpr std::uint8_t kToKeeper = 1;

}  // namespace

QrcProtocol::QrcProtocol(NodeContext& ctx) : Protocol(ctx) {}

std::size_t QrcProtocol::repl() const {
  const std::size_t r = ctx_.cfg->ft.replication;
  return std::clamp<std::size_t>(r, 1, ctx_.n_nodes);
}

std::vector<NodeId> QrcProtocol::group_of(PageId page) const {
  const NodeId home = ctx_.home_of(page);
  std::vector<NodeId> grp;
  grp.reserve(repl());
  for (std::size_t i = 0; i < repl(); ++i) {
    grp.push_back(static_cast<NodeId>((home + i) % ctx_.n_nodes));
  }
  return grp;
}

bool QrcProtocol::in_group(PageId page, NodeId node) const {
  const auto grp = group_of(page);
  return std::find(grp.begin(), grp.end(), node) != grp.end();
}

NodeId QrcProtocol::primary_of(PageId page) const {
  const auto grp = group_of(page);
  for (const NodeId n : grp) {
    if (ctx_.net->liveness().alive(n)) return n;
  }
  // Every member dead: more failures than the group tolerates. Aim at the
  // home; the send dead-drops and the workload wedges into the watchdog.
  return grp.front();
}

std::vector<NodeId> QrcProtocol::live_members(PageId page, bool exclude_self) const {
  std::vector<NodeId> out;
  for (const NodeId n : group_of(page)) {
    if (exclude_self && n == ctx_.id) continue;
    if (ctx_.net->liveness().alive(n)) out.push_back(n);
  }
  return out;
}

void QrcProtocol::init_pages() {
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    // Every node starts as a client with no copy: even group members read
    // through the primary, so the client view and the replica store never
    // alias each other.
    e.state = PageState::kInvalid;
    page_io::note_state(ctx_, p, PageState::kInvalid);
    ctx_.view->protect(p, Access::kNone);
    e.copyset.clear();
    e.busy = false;
    e.manager_busy = false;
    e.dirty = false;
    e.twin.reset();
    e.acks_outstanding = 0;
    e.pending_node = kNoNode;
    e.parked.clear();
    e.manager_parked.clear();
  }
  store_.clear();
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    if (in_group(p, ctx_.id)) {
      store_[p] = Replica{0, std::vector<std::byte>(ctx_.cfg->page_size)};
    }
  }
  txns_.clear();
  parked_.clear();
  copyset_.clear();
  recovering_.clear();
  parked_syncs_.clear();
  dead_handled_.clear();
  {
    const MutexLock lock(dirty_mutex_);
    dirty_pages_.clear();
  }
  {
    const MutexLock lock(flush_mutex_);
    outstanding_.clear();
  }
  const MutexLock lock(client_mutex_);
  fetching_.clear();
}

void QrcProtocol::send_fetch(PageId page) {
  // Register before sending: the reply (which retires the registration)
  // cannot overtake the request.
  const NodeId target = primary_of(page);
  {
    const MutexLock lock(client_mutex_);
    fetching_[page] = target;
  }
  WireWriter w(8);
  w.put(page);
  w.put(ctx_.id);
  ctx_.send(MsgType::kReplRead, target, std::move(w).take());
}

void QrcProtocol::on_read_fault(PageId page) {
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  for (;;) {
    if (e.state != PageState::kInvalid) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }
    e.busy = true;
    lock.unlock();

    ctx_.clock->advance(ctx_.cfg->fault_ns);
    const VirtualTime t0 = ctx_.clock->now();
    ctx_.stats->counter("proto.read_faults").add();
    send_fetch(page);

    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
    ctx_.stats->histogram("proto.fault_service_ns").record(ctx_.clock->now() - t0);
  }
}

void QrcProtocol::on_write_fault(PageId page) {
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  ctx_.stats->counter("proto.write_faults").add();
  ctx_.clock->advance(ctx_.cfg->fault_ns);
  for (;;) {
    if (e.state == PageState::kReadWrite) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }
    if (e.state == PageState::kReadOnly) {
      // ERC's multiple-writer trick, unchanged: write locally behind a
      // twin, settle with the primary at the next release.
      e.twin = make_twin(ctx_.view->alias_span(page));
      ctx_.view->protect(page, Access::kReadWrite);
      e.state = PageState::kReadWrite;
      page_io::note_state(ctx_, page, PageState::kReadWrite);
      if (!e.dirty) {
        e.dirty = true;
        const MutexLock dirty(dirty_mutex_);
        dirty_pages_.push_back(page);
      }
      return;
    }
    e.busy = true;
    lock.unlock();
    send_fetch(page);
    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
  }
}

void QrcProtocol::flush_dirty() {
  // Swap the dirty list out whole: a concurrent write fault on another app
  // thread may be appending. A racer that swaps an empty list still waits
  // out `outstanding_` below — no release completes before every page
  // dirtied under it is quorum-acknowledged.
  std::vector<PageId> dirty;
  {
    const MutexLock lock(dirty_mutex_);
    dirty.swap(dirty_pages_);
  }
  if (dirty.empty()) {
    RelockableMutexLock lock(flush_mutex_);
    while (!outstanding_.empty()) flush_cv_.wait(flush_mutex_);
    return;
  }
  ctx_.stats->counter("qrc.flushes").add();
  {
    Network::BatchScope batch(ctx_.net);
    for (const PageId page : dirty) {
      auto& e = ctx_.table->entry(page);
      std::vector<std::byte> field;
      std::size_t diff_bytes = 0;
      {
        const MutexLock lock(e.mutex);
        DSM_CHECK(e.dirty && e.twin != nullptr);
        const auto current = ctx_.view->alias_span(page);
        const std::span<const std::byte> twin{e.twin.get(), ctx_.cfg->page_size};
        const auto diff = encode_diff(current, twin);
        diff_bytes = diff.size();
        // Always the value form: a failover may re-send this flush to a new
        // primary whose base already includes it — the value form re-applies
        // idempotently, the XOR form would un-apply it.
        field = page_io::pack_diff_field(ctx_, diff);
        e.twin.reset();
        e.dirty = false;
        // Drop the copy outright (ERC keeps it read-only). A copy served by
        // a since-failed primary may miss invalidations from its successor;
        // re-fetching after every release closes that staleness window.
        ctx_.view->protect(page, Access::kNone);
        e.state = PageState::kInvalid;
        page_io::note_state(ctx_, page, PageState::kInvalid);
      }
      ctx_.stats->counter("qrc.diff_bytes").add(diff_bytes);
      const NodeId target = primary_of(page);
      {
        const MutexLock lock(flush_mutex_);
        outstanding_[page] = Flush{field, target};
      }
      WireWriter w(field.size() + 16);
      w.put(page);
      w.put(ctx_.id);
      w.put_bytes(field);
      ctx_.send(MsgType::kReplWrite, target, std::move(w).take());
    }
  }

  RelockableMutexLock lock(flush_mutex_);
  while (!outstanding_.empty()) flush_cv_.wait(flush_mutex_);
}

void QrcProtocol::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kReplRead: handle_read(msg); return;
    case MsgType::kReplReadReply: handle_read_reply(msg); return;
    case MsgType::kReplWrite: handle_write(msg); return;
    case MsgType::kReplWriteAck: handle_write_ack(msg); return;
    case MsgType::kReplSync: handle_sync(msg); return;
    case MsgType::kReplSyncAck: handle_sync_ack(msg); return;
    case MsgType::kInvalidate: handle_invalidate(msg); return;
    case MsgType::kInvalidateAck: handle_invalidate_ack(msg); return;
    case MsgType::kReplRecover: handle_recover(msg); return;
    case MsgType::kReplRecoverReply: handle_recover_reply(msg); return;
    default:
      DSM_CHECK_MSG(false, "qrc: unexpected message " << to_string(msg.type));
  }
}

void QrcProtocol::handle_read(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto requester = r.get<NodeId>();

  if (recovering_.count(page) != 0) {
    parked_[page].push_back(msg);
    return;
  }
  if (primary_of(page) != ctx_.id) {
    // Aimed at a member that is not (any longer) the primary — a stale view
    // of liveness at the sender. Route onward instead of failing.
    ctx_.stats->counter("qrc.forwards").add();
    ctx_.send(MsgType::kReplRead, primary_of(page), msg.payload);
    return;
  }
  const auto it = store_.find(page);
  DSM_CHECK_MSG(it != store_.end(), "qrc: primary without a replica of page " << page);
  copyset_[page].insert(requester);
  if (ctx_.check != nullptr) ctx_.check->on_quorum_serve(page, it->second.tag);

  WireWriter w(it->second.data.size() + 16);
  w.put(page);
  w.put(it->second.tag);
  w.put_bytes(it->second.data);
  ctx_.send(MsgType::kReplReadReply, requester, std::move(w).take());
}

void QrcProtocol::handle_read_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  r.get<std::uint64_t>();  // tag: client copies are untagged
  const auto bytes = r.get_bytes();
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    if (!e.busy) return;  // duplicate reply after a failover re-send
    page_io::install_page(ctx_, page, bytes, Access::kRead);
    e.state = PageState::kReadOnly;
    page_io::note_state(ctx_, page, PageState::kReadOnly);
    e.busy = false;
  }
  {
    const MutexLock lock(client_mutex_);
    fetching_.erase(page);
  }
  e.cv.notify_all();
}

void QrcProtocol::handle_write(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto writer = r.get<NodeId>();
  const auto field = r.get_bytes();

  if (recovering_.count(page) != 0) {
    parked_[page].push_back(msg);
    return;
  }
  if (primary_of(page) != ctx_.id) {
    ctx_.stats->counter("qrc.forwards").add();
    ctx_.send(MsgType::kReplWrite, primary_of(page), msg.payload);
    return;
  }
  if (txns_.count(page) != 0) {
    // One write transaction per page at a time; later writers park.
    parked_[page].push_back(msg);
    return;
  }

  const auto sit = store_.find(page);
  DSM_CHECK_MSG(sit != store_.end(), "qrc: primary without a replica of page " << page);
  Replica& rep = sit->second;
  const auto diff = page_io::unpack_diff_field(ctx_, field, {});
  apply_diff({rep.data.data(), rep.data.size()}, diff);
  const std::uint64_t tag = ++rep.tag;

  Txn& txn = txns_[page];
  txn.writer = writer;
  txn.tag = tag;
  txn.diff.assign(diff.begin(), diff.end());
  for (const NodeId n : live_members(page, /*exclude_self=*/true)) {
    txn.pending_sync.insert(n);
  }
  auto& cs = copyset_[page];
  for (const NodeId n : cs) {
    if (n != writer && ctx_.net->liveness().alive(n)) txn.pending_inval.insert(n);
  }
  // Rebuilt from the acks: keepers re-add themselves, everyone else drops.
  cs.clear();

  if (!txn.pending_sync.empty()) {
    const auto fanout = page_io::pack_diff_field(ctx_, diff);
    WireWriter w(fanout.size() + 24);
    w.put(page);
    w.put(kToBackup);
    w.put(tag);
    w.put_bytes(fanout);
    const auto payload = std::move(w).take();
    for (const NodeId n : txn.pending_sync) ctx_.send(MsgType::kReplSync, n, payload);
  }
  if (!txn.pending_inval.empty()) {
    WireWriter w(8);
    w.put(page);
    w.put(NodeId{0});
    const auto payload = std::move(w).take();
    for (const NodeId n : txn.pending_inval) ctx_.send(MsgType::kInvalidate, n, payload);
  }
  txn_advance(page);
}

void QrcProtocol::handle_write_ack(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  bool done = false;
  {
    const MutexLock lock(flush_mutex_);
    const auto it = outstanding_.find(page);
    if (it == outstanding_.end()) return;  // duplicate ack after a re-send
    outstanding_.erase(it);
    done = outstanding_.empty();
  }
  if (done) flush_cv_.notify_all();
}

void QrcProtocol::handle_sync(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto kind = r.get<std::uint8_t>();
  const auto tag = r.get<std::uint64_t>();
  const auto field = r.get_bytes();

  if (kind == kToBackup) {
    if (recovering_.count(page) != 0) {
      // Mid-resync our base is stale; park and replay once the recovery
      // poll has installed an authoritative copy (tags dedup the overlap).
      parked_syncs_[page].push_back(msg);
      return;
    }
    const auto it = store_.find(page);
    DSM_CHECK_MSG(it != store_.end(), "qrc: sync at non-member for page " << page);
    Replica& rep = it->second;
    if (tag > rep.tag) {
      const auto diff = page_io::unpack_diff_field(ctx_, field, {});
      apply_diff({rep.data.data(), rep.data.size()}, diff);
      rep.tag = tag;
    }
  } else {
    // Keeper push: a concurrent writer kept its copy through the
    // invalidation; it must still observe the released words (live page and
    // twin, exactly like ERC's home→keeper update).
    const auto diff = page_io::unpack_diff_field(ctx_, field, {});
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    if (e.state != PageState::kInvalid) {
      apply_diff(ctx_.view->alias_span(page), diff);
    }
    if (e.twin != nullptr) {
      apply_diff({e.twin.get(), ctx_.cfg->page_size}, diff);
    }
  }
  WireWriter w(8);
  w.put(page);
  w.put(kind);
  ctx_.send(MsgType::kReplSyncAck, msg.src, std::move(w).take());
}

void QrcProtocol::handle_sync_ack(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto it = txns_.find(page);
  if (it == txns_.end()) return;  // txn already settled by a death
  it->second.pending_sync.erase(msg.src);
  txn_advance(page);
}

void QrcProtocol::handle_invalidate(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  auto& e = ctx_.table->entry(page);
  std::uint8_t kept = 0;
  {
    const MutexLock lock(e.mutex);
    if (e.dirty) {
      kept = 1;  // concurrent writer: its unflushed words must survive
    } else if (e.state != PageState::kInvalid) {
      ctx_.view->protect(page, Access::kNone);
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, page, PageState::kInvalid);
    }
  }
  WireWriter w(8);
  w.put(page);
  w.put(kept);
  ctx_.send(MsgType::kInvalidateAck, msg.src, std::move(w).take());
}

void QrcProtocol::handle_invalidate_ack(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto kept = r.get<std::uint8_t>();
  const auto it = txns_.find(page);
  if (it == txns_.end()) return;
  if (kept != 0) {
    it->second.keepers.push_back(msg.src);
    copyset_[page].insert(msg.src);
  }
  it->second.pending_inval.erase(msg.src);
  txn_advance(page);
}

void QrcProtocol::txn_advance(PageId page) {
  const auto it = txns_.find(page);
  if (it == txns_.end()) return;
  Txn& txn = it->second;
  if (!txn.keeper_phase && txn.pending_inval.empty()) {
    txn.keeper_phase = true;
    if (!txn.keepers.empty()) {
      ctx_.stats->counter("qrc.keeper_updates").add(txn.keepers.size());
      const auto field = page_io::pack_diff_field(ctx_, txn.diff);
      WireWriter w(field.size() + 24);
      w.put(page);
      w.put(kToKeeper);
      w.put(txn.tag);
      w.put_bytes(field);
      const auto payload = std::move(w).take();
      for (const NodeId n : txn.keepers) {
        if (!ctx_.net->liveness().alive(n)) continue;
        txn.pending_sync.insert(n);
        ctx_.send(MsgType::kReplSync, n, payload);
      }
      txn.keepers.clear();
    }
  }
  if (txn.keeper_phase && txn.pending_sync.empty() && txn.pending_inval.empty()) {
    txn_finish(page);
  }
}

void QrcProtocol::txn_finish(PageId page) {
  const Txn& txn = txns_.at(page);
  // Every live group member stores the tagged value: the write is now
  // crash-redundant and may be acknowledged.
  if (ctx_.check != nullptr) ctx_.check->on_quorum_ack(page, txn.tag);
  WireWriter w(8);
  w.put(page);
  ctx_.send(MsgType::kReplWriteAck, txn.writer, std::move(w).take());
  txns_.erase(page);
  replay_parked(page);
}

void QrcProtocol::replay_parked(PageId page) {
  for (;;) {
    if (txns_.count(page) != 0 || recovering_.count(page) != 0) return;
    const auto it = parked_.find(page);
    if (it == parked_.end() || it->second.empty()) return;
    const Message next = std::move(it->second.front());
    it->second.pop_front();
    on_message(next);
  }
}

void QrcProtocol::start_recovery(PageId page) {
  auto [it, fresh] = recovering_.try_emplace(page);
  Recovery& rec = it->second;
  if (fresh) rec.started = realclock::now();
  rec.pending.clear();
  for (const NodeId n : live_members(page, /*exclude_self=*/true)) {
    rec.pending.insert(n);
  }
  ctx_.stats->counter("qrc.recoveries").add();
  if (rec.pending.empty()) {
    // No other live member to poll: our replica is (by default) the best
    // surviving copy.
    finish_recovery(page);
    return;
  }
  WireWriter w(8);
  w.put(page);
  w.put(ctx_.id);
  const auto payload = std::move(w).take();
  for (const NodeId n : rec.pending) ctx_.send(MsgType::kReplRecover, n, payload);
}

void QrcProtocol::handle_recover(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto requester = r.get<NodeId>();
  const auto it = store_.find(page);
  DSM_CHECK_MSG(it != store_.end(), "qrc: recover poll at non-member for page " << page);
  WireWriter w(it->second.data.size() + 16);
  w.put(page);
  w.put(it->second.tag);
  w.put_bytes(it->second.data);
  ctx_.send(MsgType::kReplRecoverReply, requester, std::move(w).take());
}

void QrcProtocol::handle_recover_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto tag = r.get<std::uint64_t>();
  const auto bytes = r.get_bytes();
  const auto rit = recovering_.find(page);
  if (rit == recovering_.end()) return;  // late duplicate
  Replica& rep = store_.at(page);
  if (tag > rep.tag) {
    rep.data.assign(bytes.begin(), bytes.end());
    rep.tag = tag;
  }
  rit->second.pending.erase(msg.src);
  if (rit->second.pending.empty()) finish_recovery(page);
}

void QrcProtocol::finish_recovery(PageId page) {
  const auto it = recovering_.find(page);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      realclock::now() - it->second.started)
                      .count();
  ctx_.stats->histogram("ft.recovery_us").record(static_cast<std::uint64_t>(us));
  recovering_.erase(it);

  // Replay syncs parked mid-resync, in arrival order; the tag check inside
  // handle_sync skips any the recovery poll already covered.
  const auto ps = parked_syncs_.find(page);
  if (ps != parked_syncs_.end()) {
    std::deque<Message> q = std::move(ps->second);
    parked_syncs_.erase(ps);
    for (const Message& m : q) handle_sync(m);
  }
  replay_parked(page);
}

void QrcProtocol::on_peer_down(NodeId peer) {
  if (peer == ctx_.id) return;  // our own death is the runtime's business
  if (!dead_handled_.insert(peer).second) return;  // duplicate announcement

  // 1. Retire the dead member's outstanding acks in active transactions.
  std::vector<PageId> active;
  for (auto& [page, txn] : txns_) {
    txn.pending_sync.erase(peer);
    txn.pending_inval.erase(peer);
    active.push_back(page);
  }
  for (const PageId p : active) txn_advance(p);

  // 2. Forget it as a copy holder.
  for (auto& [page, cs] : copyset_) cs.erase(peer);

  // 3. Primaryship takeover: for every page whose acting primary the dead
  //    node was and whose next live member we are, poll the survivors and
  //    adopt the highest tag before serving again.
  for (const auto& [page, rep] : store_) {
    (void)rep;
    if (primary_of(page) != ctx_.id || recovering_.count(page) != 0) continue;
    const auto grp = group_of(page);
    const auto me = std::find(grp.begin(), grp.end(), ctx_.id);
    const auto dead = std::find(grp.begin(), grp.end(), peer);
    if (dead == grp.end() || dead >= me) continue;  // we were primary already
    ctx_.stats->counter("qrc.takeovers").add();
    start_recovery(page);
  }

  // 4. Client side: copies served by the dead node's group may miss the new
  //    primary's invalidations — drop clean read copies and re-fetch.
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    if (!in_group(p, peer)) continue;
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    if (e.state == PageState::kReadOnly && !e.dirty && !e.busy) {
      ctx_.view->protect(p, Access::kNone);
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, p, PageState::kInvalid);
    }
  }

  // 5. Re-aim outstanding fetches that targeted the dead node.
  {
    const MutexLock lock(client_mutex_);
    for (auto& [page, target] : fetching_) {
      if (ctx_.net->liveness().alive(target)) continue;
      target = primary_of(page);
      WireWriter w(8);
      w.put(page);
      w.put(ctx_.id);
      ctx_.send(MsgType::kReplRead, target, std::move(w).take());
    }
  }

  // 6. Re-send unacked flushes to the new primary (value diffs: idempotent
  //    even if the old primary stored them before dying).
  const MutexLock lock(flush_mutex_);
  for (auto& [page, flush] : outstanding_) {
    if (ctx_.net->liveness().alive(flush.target)) continue;
    flush.target = primary_of(page);
    WireWriter w(flush.field.size() + 16);
    w.put(page);
    w.put(ctx_.id);
    w.put_bytes(flush.field);
    ctx_.send(MsgType::kReplWrite, flush.target, std::move(w).take());
  }
}

void QrcProtocol::on_peer_up(NodeId peer) {
  dead_handled_.erase(peer);
  if (peer == ctx_.id) {
    // We just restarted: resync every hosted replica from the survivors
    // (on_self_restart already parked requests behind `recovering_`).
    for (const auto& [page, rep] : store_) {
      (void)rep;
      start_recovery(page);
    }
    return;
  }
  // The returning member reclaims primaryship of its pages, but our copyset
  // knowledge does not transfer to it: conservatively drop clean client
  // copies of its pages and forget copysets we no longer arbitrate.
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    if (!in_group(p, peer)) continue;
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    if (e.state == PageState::kReadOnly && !e.dirty && !e.busy) {
      ctx_.view->protect(p, Access::kNone);
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, p, PageState::kInvalid);
    }
  }
  for (auto& [page, cs] : copyset_) {
    if (in_group(page, peer) && primary_of(page) != ctx_.id) cs.clear();
  }
}

void QrcProtocol::on_self_restart() {
  // Client view back to all-invalid (the post-init_pages picture).
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    e.state = PageState::kInvalid;
    page_io::note_state(ctx_, p, PageState::kInvalid);
    ctx_.view->protect(p, Access::kNone);
    e.copyset.clear();
    e.busy = false;
    e.manager_busy = false;
    e.dirty = false;
    e.twin.reset();
    e.acks_outstanding = 0;
    e.pending_node = kNoNode;
    e.parked.clear();
    e.manager_parked.clear();
  }
  {
    const MutexLock lock(dirty_mutex_);
    dirty_pages_.clear();
  }
  {
    const MutexLock lock(flush_mutex_);
    outstanding_.clear();
  }
  flush_cv_.notify_all();
  {
    const MutexLock lock(client_mutex_);
    fetching_.clear();
  }
  txns_.clear();
  parked_.clear();
  copyset_.clear();
  parked_syncs_.clear();
  dead_handled_.clear();

  // The replica store restarts empty (the crash lost it) and every hosted
  // page is marked recovering *now*, before the fabric marks us alive: any
  // request that races in ahead of the kPeerUp resync parks safely.
  recovering_.clear();
  for (auto& [page, rep] : store_) {
    rep.tag = 0;
    rep.data.assign(ctx_.cfg->page_size, std::byte{0});
    recovering_[page].started = realclock::now();
  }
}

}  // namespace dsm
