#include "proto/lrc.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "mem/diff.hpp"
#include "proto/page_io.hpp"

namespace dsm {
namespace {

// Payload layouts:
//   lock request payload : u32 n | n×u32 vclock
//   lock grant payload   : u32 n | n×u32 vclock | u64 lamport | u32 nrec |
//                          nrec × { u32 node | u32 interval | u64 lamport |
//                                   u32 npages | npages×u32 }
//   kPageRequest         : u32 page | u32 requester
//   kPageReply           : u32 page | raw page bytes
//   kDiffRequest         : u32 page | u32 requester | u32 n | n×u32 intervals
//   kDiffReply           : u32 page | u32 n | n × { u32 interval | u64 lamport |
//                                                   bytes diff }
//   barrier arrive/release payloads: u32 n | vclock | u64 lamport | u32 nrec |
//       nrec × { u32 node | u32 interval | u64 lamport | u32 npages |
//                npages × { u32 page | bytes diff } }

void write_vclock(const VectorClock& vc, WireWriter& out) {
  out.put(static_cast<std::uint32_t>(vc.size()));
  for (std::size_t i = 0; i < vc.size(); ++i) out.put(vc[static_cast<NodeId>(i)]);
}

VectorClock read_vclock(WireReader& in) {
  const auto n = in.get<std::uint32_t>();
  VectorClock vc(n);
  for (std::uint32_t i = 0; i < n; ++i) vc.set(i, in.get<std::uint32_t>());
  return vc;
}

}  // namespace

LrcProtocol::LrcProtocol(NodeContext& ctx)
    : Protocol(ctx),
      vc_(ctx.n_nodes),
      interval_log_(ctx.n_nodes),
      pending_(ctx.cfg->n_pages),
      barrier_vc_(ctx.n_nodes) {}

std::string_view LrcProtocol::name() const { return "lrc"; }

void LrcProtocol::init_pages() {
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    if (ctx_.home_of(p) == ctx_.id) {
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, p, PageState::kReadOnly);
      e.has_base = true;
      ctx_.view->protect(p, Access::kRead);
    } else {
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, p, PageState::kInvalid);
      e.has_base = false;
      ctx_.view->protect(p, Access::kNone);
    }
    e.busy = false;
    e.dirty = false;
    e.twin.reset();
    e.acks_outstanding = 0;
    pending_[p].clear();
  }
  const MutexLock meta(meta_mutex_);
  vc_ = VectorClock(ctx_.n_nodes);
  lamport_ = 0;
  for (auto& log : interval_log_) log.clear();
  diff_cache_.clear();
  diff_inbox_.clear();
  {
    const MutexLock lock(dirty_mutex_);
    dirty_pages_.clear();
  }
  barrier_records_.clear();
  barrier_gen_.clear();
  barrier_settle_round_ = false;
  arriving_at_settle_ = false;
  last_release_was_settle_ = false;
  settle_buffer_.clear();
  push_outstanding_ = 0;
  barrier_vc_ = VectorClock(ctx_.n_nodes);
  barrier_lamport_ = 0;
}

// --------------------------------------------------------------------------
// Faults (application thread)
// --------------------------------------------------------------------------

void LrcProtocol::on_read_fault(PageId page) {
  ctx_.stats->counter("proto.read_faults").add();
  make_page_valid(page);
}

void LrcProtocol::on_write_fault(PageId page) {
  ctx_.stats->counter("proto.write_faults").add();
  auto& e = ctx_.table->entry(page);
  for (;;) {
    {
      const MutexLock lock(e.mutex);
      if (e.state == PageState::kReadWrite) return;
      if (e.state == PageState::kReadOnly) {
        // Multiple-writer upgrade: twin now, diff at the next sync. Local.
        if (e.twin == nullptr) e.twin = make_twin(ctx_.view->alias_span(page));
        ctx_.view->protect(page, Access::kReadWrite);
        e.state = PageState::kReadWrite;
        page_io::note_state(ctx_, page, PageState::kReadWrite);
        if (!e.dirty) {
          e.dirty = true;
          const MutexLock dirty(dirty_mutex_);
          dirty_pages_.push_back(page);
        }
        return;
      }
    }
    make_page_valid(page);
  }
}

void LrcProtocol::make_page_valid(PageId page) {
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  if (e.state != PageState::kInvalid) return;
  e.busy = true;
  const bool need_base = !e.has_base;
  std::vector<WriteNotice> notices = std::move(pending_[page]);
  pending_[page].clear();
  lock.unlock();

  ctx_.clock->advance(ctx_.cfg->fault_ns);
  const VirtualTime t0 = ctx_.clock->now();

  if (need_base) {
    WireWriter w(8);
    w.put(page);
    w.put(ctx_.id);
    ctx_.send(MsgType::kPageRequest, ctx_.home_of(page), std::move(w).take());
    lock.lock();
    while (!e.has_base) e.cv.wait(e.mutex);
    lock.unlock();
  }

  if (!notices.empty()) {
    // Group the unapplied notices by writer and fetch each writer's diffs.
    std::map<NodeId, std::vector<std::uint32_t>> by_writer;
    for (const auto& n : notices) by_writer[n.writer].push_back(n.interval);
    {
      const MutexLock g(e.mutex);
      e.acks_outstanding = static_cast<int>(by_writer.size());
    }
    for (const auto& [writer, intervals] : by_writer) {
      WireWriter w(16 + intervals.size() * 4);
      w.put(page);
      w.put(ctx_.id);
      w.put(static_cast<std::uint32_t>(intervals.size()));
      for (const auto i : intervals) w.put(i);
      ctx_.send(MsgType::kDiffRequest, writer, std::move(w).take());
      ctx_.stats->counter("lrc.diff_requests").add();
    }
    lock.lock();
    while (e.acks_outstanding != 0) e.cv.wait(e.mutex);
    lock.unlock();

    std::vector<DiffRecord> records;
    {
      const MutexLock meta(meta_mutex_);
      auto it = diff_inbox_.find(page);
      if (it != diff_inbox_.end()) {
        records = std::move(it->second);
        diff_inbox_.erase(it);
      }
    }
    std::sort(records.begin(), records.end(), [](const DiffRecord& a, const DiffRecord& b) {
      return a.lamport != b.lamport ? a.lamport < b.lamport : a.writer < b.writer;
    });
    lock.lock();
    // Service window: the page stays PROT_NONE while the diffs land.
    for (const auto& rec : records) {
      apply_diff(ctx_.view->alias_span(page), rec.bytes);
      if (e.twin != nullptr) {
        apply_diff({e.twin.get(), ctx_.cfg->page_size}, rec.bytes);
      }
    }
    lock.unlock();
  }

  lock.lock();
  if (e.twin != nullptr) {
    // We were mid-write when the page was invalidated: restore write access.
    ctx_.view->protect(page, Access::kReadWrite);
    e.state = PageState::kReadWrite;
    page_io::note_state(ctx_, page, PageState::kReadWrite);
  } else {
    ctx_.view->protect(page, Access::kRead);
    e.state = PageState::kReadOnly;
    page_io::note_state(ctx_, page, PageState::kReadOnly);
  }
  e.busy = false;
  ctx_.stats->histogram("proto.fault_service_ns").record(ctx_.clock->now() - t0);
  if (ctx_.trace != nullptr)
    ctx_.trace->complete(ctx_.id, TraceCat::kProto, "fault-txn", t0,
                         ctx_.clock->now(), "page", page);
}

// --------------------------------------------------------------------------
// Intervals and diffs
// --------------------------------------------------------------------------

void LrcProtocol::close_interval() {
  // Swap the dirty list out whole: a concurrent write fault on another app
  // thread may be appending while this thread closes its interval.
  std::vector<PageId> dirty;
  {
    const MutexLock lock(dirty_mutex_);
    dirty.swap(dirty_pages_);
  }
  if (dirty.empty()) return;
  const MutexLock meta(meta_mutex_);
  ++lamport_;
  vc_.tick(ctx_.id);
  if (ctx_.check != nullptr) ctx_.check->on_vclock(ctx_.id, vc_);
  const std::uint32_t interval = vc_[ctx_.id];

  IntervalRecord rec;
  rec.node = ctx_.id;
  rec.interval = interval;
  rec.lamport = lamport_;
  rec.pages = dirty;

  for (const PageId page : dirty) {
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.dirty && e.twin != nullptr);
    DiffRecord d;
    d.interval = interval;
    d.lamport = lamport_;
    d.writer = ctx_.id;
    // Read through the service window: the page may have been invalidated
    // (PROT_NONE) while dirty, and a fault here would deadlock on our own
    // entry lock.
    d.bytes = encode_diff(ctx_.view->alias_span(page), {e.twin.get(), ctx_.cfg->page_size});
    ctx_.stats->counter("lrc.diff_bytes_created").add(d.bytes.size());
    diff_cache_[page].push_back(std::move(d));
    e.twin.reset();
    e.dirty = false;
    if (pending_[page].empty()) {
      ctx_.view->protect(page, Access::kRead);
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, page, PageState::kReadOnly);
    } else {
      // Unseen remote writes exist: stay invalid so the next access fetches
      // their diffs before reading.
      ctx_.view->protect(page, Access::kNone);
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, page, PageState::kInvalid);
    }
  }
  interval_log_[ctx_.id].push_back(std::move(rec));
  ctx_.stats->counter("lrc.intervals").add();
}

void LrcProtocol::before_release(LockId) { close_interval(); }

void LrcProtocol::before_barrier(BarrierId barrier) {
  close_interval();
  const auto gen = ++barrier_gen_[barrier];
  arriving_at_settle_ =
      ctx_.cfg->lrc_gc_period <= 1 || gen % ctx_.cfg->lrc_gc_period == 0;
  if (arriving_at_settle_) push_diffs_to_homes();
}

void LrcProtocol::push_diffs_to_homes() {
  // Unicast every diff this node created this epoch to its page's home;
  // block until all are acknowledged. Every home therefore holds the whole
  // epoch before any node can arrive at the barrier — the release can then
  // move notices only, instead of broadcasting O(data × nodes).
  int sent = 0;
  {
    const MutexLock meta(meta_mutex_);
    sent = 0;
    for (const auto& [page, records] : diff_cache_) sent += static_cast<int>(records.size());
    if (sent == 0) return;
    {
      const MutexLock p(push_mutex_);
      push_outstanding_ += sent;
    }
    for (const auto& [page, records] : diff_cache_) {
      for (const auto& rec : records) {
        WireWriter w(rec.bytes.size() + 24);
        w.put(page);
        w.put(rec.interval);
        w.put(rec.lamport);
        w.put_bytes(rec.bytes);
        ctx_.send(MsgType::kUpdate, ctx_.home_of(page), std::move(w).take());
        ctx_.stats->counter("lrc.settle_push_bytes").add(rec.bytes.size());
      }
    }
  }
  RelockableMutexLock lock(push_mutex_);
  while (push_outstanding_ != 0) push_cv_.wait(push_mutex_);
}

void LrcProtocol::fill_lock_request(LockId, WireWriter& out) {
  const MutexLock meta(meta_mutex_);
  write_vclock(vc_, out);
}

void LrcProtocol::write_records_after(const VectorClock& horizon, WireWriter& out) {
  // meta_mutex_ held by the caller.
  std::uint32_t count = 0;
  for (const auto& log : interval_log_) {
    for (const auto& rec : log) {
      if (rec.interval > horizon[rec.node]) ++count;
    }
  }
  out.put(count);
  for (const auto& log : interval_log_) {
    for (const auto& rec : log) {
      if (rec.interval <= horizon[rec.node]) continue;
      out.put(rec.node);
      out.put(rec.interval);
      out.put(rec.lamport);
      out.put_vector(rec.pages);
    }
  }
}

void LrcProtocol::fill_lock_grant(LockId, NodeId /*to*/,
                                  std::span<const std::byte> request_payload,
                                  WireWriter& out) {
  VectorClock horizon(ctx_.n_nodes);
  if (!request_payload.empty()) {
    WireReader r(request_payload);
    horizon = read_vclock(r);
  }
  const MutexLock meta(meta_mutex_);
  write_vclock(vc_, out);
  out.put(lamport_);
  write_records_after(horizon, out);
}

void LrcProtocol::ingest_records(WireReader& in, std::size_t count) {
  // meta_mutex_ held by the caller.
  for (std::size_t i = 0; i < count; ++i) {
    IntervalRecord rec;
    rec.node = in.get<NodeId>();
    rec.interval = in.get<std::uint32_t>();
    rec.lamport = in.get<std::uint64_t>();
    rec.pages = in.get_vector<PageId>();
    if (vc_.covers(rec.node, rec.interval)) continue;  // already known
    for (const PageId page : rec.pages) {
      auto& e = ctx_.table->entry(page);
      const MutexLock lock(e.mutex);
      pending_[page].push_back(WriteNotice{rec.node, rec.interval, rec.lamport});
      if (e.state != PageState::kInvalid) {
        ctx_.view->protect(page, Access::kNone);
        e.state = PageState::kInvalid;
        page_io::note_state(ctx_, page, PageState::kInvalid);
        ctx_.stats->counter("lrc.notice_invalidations").add();
      }
    }
    interval_log_[rec.node].push_back(std::move(rec));
  }
}

void LrcProtocol::on_lock_granted(LockId, WireReader& in) {
  if (in.remaining() == 0) return;  // first-ever grant: nothing to learn
  const VectorClock granter_vc = read_vclock(in);
  const auto granter_lamport = in.get<std::uint64_t>();
  const auto count = in.get<std::uint32_t>();
  const MutexLock meta(meta_mutex_);
  ingest_records(in, count);
  vc_.merge(granter_vc);
  if (ctx_.check != nullptr) ctx_.check->on_vclock(ctx_.id, vc_);
  lamport_ = std::max(lamport_, granter_lamport);
}

// --------------------------------------------------------------------------
// Service-thread message handlers
// --------------------------------------------------------------------------

void LrcProtocol::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kPageRequest: handle_page_request(msg); return;
    case MsgType::kPageReply: handle_page_reply(msg); return;
    case MsgType::kDiffRequest: handle_diff_request(msg); return;
    case MsgType::kDiffReply: handle_diff_reply(msg); return;
    case MsgType::kUpdate: {
      // A settle-round diff push: buffer it for lamport-ordered application
      // at the barrier release, and acknowledge.
      WireReader r(msg.payload);
      const auto page = r.get<PageId>();
      DiffRecord rec;
      rec.interval = r.get<std::uint32_t>();
      rec.lamport = r.get<std::uint64_t>();
      rec.writer = msg.src;
      const auto bytes = r.get_bytes();
      rec.bytes.assign(bytes.begin(), bytes.end());
      {
        const MutexLock meta(meta_mutex_);
        DSM_CHECK_MSG(ctx_.home_of(page) == ctx_.id, "lrc: diff push at non-home");
        settle_buffer_[page].push_back(std::move(rec));
      }
      ctx_.send(MsgType::kUpdateAck, msg.src, {});
      return;
    }
    case MsgType::kUpdateAck: {
      bool done;
      {
        const MutexLock lock(push_mutex_);
        DSM_CHECK(push_outstanding_ > 0);
        done = --push_outstanding_ == 0;
      }
      if (done) push_cv_.notify_all();
      return;
    }
    default:
      DSM_CHECK_MSG(false, "lrc: unexpected message " << to_string(msg.type));
  }
}

void LrcProtocol::handle_page_request(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto requester = r.get<NodeId>();
  DSM_CHECK_MSG(ctx_.home_of(page) == ctx_.id, "lrc: page request at non-home");
  auto& e = ctx_.table->entry(page);
  std::vector<std::byte> bytes(ctx_.cfg->page_size);
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.has_base);
    // The home's bytes are always *some* consistent base (its applied-diff
    // prefix respects happens-before); the faulter layers its pending diffs
    // on top. Read through the service window: the copy may be
    // access-revoked here.
    std::memcpy(bytes.data(), ctx_.view->alias_ptr(page), bytes.size());
  }
  WireWriter w(bytes.size() + 8);
  w.put(page);
  page_io::put_page(ctx_, w, bytes);
  ctx_.send(MsgType::kPageReply, requester, std::move(w).take());
}

void LrcProtocol::handle_page_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto bytes = page_io::get_page(ctx_, r);
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK(!e.has_base && e.twin == nullptr);
    std::memcpy(ctx_.view->alias_ptr(page), bytes.data(), bytes.size());
    e.has_base = true;
  }
  e.cv.notify_all();
}

void LrcProtocol::handle_diff_request(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto requester = r.get<NodeId>();
  const auto n = r.get<std::uint32_t>();
  std::vector<std::uint32_t> intervals(n);
  for (auto& i : intervals) i = r.get<std::uint32_t>();

  WireWriter w(256);
  w.put(page);
  w.put(n);
  {
    const MutexLock meta(meta_mutex_);
    const auto it = diff_cache_.find(page);
    DSM_CHECK_MSG(it != diff_cache_.end(), "lrc: no cached diffs for page " << page);
    for (const auto interval : intervals) {
      const auto rec = std::find_if(it->second.begin(), it->second.end(),
                                    [&](const DiffRecord& d) { return d.interval == interval; });
      DSM_CHECK_MSG(rec != it->second.end(),
                    "lrc: diff for page " << page << " interval " << interval << " missing");
      w.put(rec->interval);
      w.put(rec->lamport);
      w.put_bytes(rec->bytes);
    }
  }
  ctx_.send(MsgType::kDiffReply, requester, std::move(w).take());
}

void LrcProtocol::handle_diff_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto n = r.get<std::uint32_t>();
  {
    const MutexLock meta(meta_mutex_);
    auto& inbox = diff_inbox_[page];
    for (std::uint32_t i = 0; i < n; ++i) {
      DiffRecord rec;
      rec.interval = r.get<std::uint32_t>();
      rec.lamport = r.get<std::uint64_t>();
      rec.writer = msg.src;
      const auto bytes = r.get_bytes();
      rec.bytes.assign(bytes.begin(), bytes.end());
      inbox.push_back(std::move(rec));
    }
  }
  auto& e = ctx_.table->entry(page);
  bool done;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.acks_outstanding > 0);
    done = --e.acks_outstanding == 0;
  }
  if (done) e.cv.notify_all();
}

// --------------------------------------------------------------------------
// Barriers: the global settle-up and GC point
// --------------------------------------------------------------------------

// Barrier payload layout (both directions, both round kinds):
//   u8 settle | u32 n | vclock | u64 lamport | u32 nrec |
//       nrec × { u32 node | u32 interval | u64 lamport | u32 npages | pages }
// Notices only: at a settle round the actual diffs were already unicast to
// each page's home (push_diffs_to_homes) before anyone arrived.

void LrcProtocol::fill_barrier_arrive(BarrierId, WireWriter& out) {
  const MutexLock meta(meta_mutex_);
  out.put(static_cast<std::uint8_t>(arriving_at_settle_ ? 1 : 0));
  write_vclock(vc_, out);
  out.put(lamport_);
  const auto& mine = interval_log_[ctx_.id];
  out.put(static_cast<std::uint32_t>(mine.size()));
  for (const auto& rec : mine) {
    out.put(rec.node);
    out.put(rec.interval);
    out.put(rec.lamport);
    out.put_vector(rec.pages);
  }
}

void LrcProtocol::on_barrier_collect(BarrierId, NodeId /*from*/, WireReader& in) {
  const bool settle = in.get<std::uint8_t>() != 0;
  if (barrier_records_.empty()) {
    barrier_settle_round_ = settle;
  } else {
    DSM_CHECK_MSG(barrier_settle_round_ == settle,
                  "lrc: nodes disagree about the settle round");
  }
  const VectorClock vc = read_vclock(in);
  const auto lamport = in.get<std::uint64_t>();
  const auto count = in.get<std::uint32_t>();
  barrier_vc_.merge(vc);
  barrier_lamport_ = std::max(barrier_lamport_, lamport);
  for (std::uint32_t i = 0; i < count; ++i) {
    IntervalRecord rec;
    rec.node = in.get<NodeId>();
    rec.interval = in.get<std::uint32_t>();
    rec.lamport = in.get<std::uint64_t>();
    rec.pages = in.get_vector<PageId>();
    barrier_records_.push_back(std::move(rec));
  }
}

void LrcProtocol::fill_barrier_release(BarrierId, WireWriter& out) {
  out.put(static_cast<std::uint8_t>(barrier_settle_round_ ? 1 : 0));
  write_vclock(barrier_vc_, out);
  out.put(barrier_lamport_);
  out.put(static_cast<std::uint32_t>(barrier_records_.size()));
  for (const auto& rec : barrier_records_) {
    out.put(rec.node);
    out.put(rec.interval);
    out.put(rec.lamport);
    out.put_vector(rec.pages);
  }
  barrier_records_.clear();
}

void LrcProtocol::on_barrier_release(BarrierId, WireReader& in) {
  const bool settle = in.get<std::uint8_t>() != 0;
  last_release_was_settle_ = settle;
  const VectorClock merged = read_vclock(in);
  const auto lamport = in.get<std::uint64_t>();
  const auto count = in.get<std::uint32_t>();

  if (!settle) {
    // Lazy round: learn the merged write notices; data stays where it is
    // until someone faults. Diff caches and pending notices are retained.
    const MutexLock meta(meta_mutex_);
    ingest_records(in, count);
    vc_.merge(merged);
    if (ctx_.check != nullptr) ctx_.check->on_vclock(ctx_.id, vc_);
    lamport_ = std::max(lamport_, lamport);
    ctx_.stats->counter("lrc.lazy_barriers").add();
    return;
  }

  // Settle-up. First learn any notices we missed (marks pages stale), then:
  //   * home pages: apply the epoch's pushed diffs in lamport order — every
  //     home is current afterwards;
  //   * other copies with unapplied notices: drop to cold (refetch later);
  // and garbage-collect every piece of epoch metadata.
  std::map<PageId, std::vector<DiffRecord>> pushed;
  {
    const MutexLock meta(meta_mutex_);
    ingest_records(in, count);
    vc_.merge(merged);
    if (ctx_.check != nullptr) ctx_.check->on_vclock(ctx_.id, vc_);
    lamport_ = std::max(lamport_, lamport);
    pushed = std::move(settle_buffer_);
    settle_buffer_.clear();
    for (auto& log : interval_log_) log.clear();
    diff_cache_.clear();
    DSM_CHECK(diff_inbox_.empty());
  }

  for (auto& [page, records] : pushed) {
    std::sort(records.begin(), records.end(), [](const DiffRecord& a, const DiffRecord& b) {
      return a.lamport != b.lamport ? a.lamport < b.lamport : a.writer < b.writer;
    });
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    DSM_CHECK_MSG(e.twin == nullptr && !e.dirty, "lrc: open interval at barrier");
    DSM_CHECK(e.has_base);
    for (const auto& rec : records) {
      apply_diff(ctx_.view->alias_span(page), rec.bytes);
    }
  }

  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    if (ctx_.home_of(p) == ctx_.id) {
      // Home: current after the diff application above.
      pending_[p].clear();
      if (e.state == PageState::kInvalid) {
        ctx_.view->protect(p, Access::kRead);
        e.state = PageState::kReadOnly;
        page_io::note_state(ctx_, p, PageState::kReadOnly);
      }
      continue;
    }
    if (!pending_[p].empty()) {
      // A copy with unapplied epoch writes — and the diffs are about to be
      // collected. Drop to cold; the next access refetches from the home.
      pending_[p].clear();
      if (e.state != PageState::kInvalid) {
        ctx_.view->protect(p, Access::kNone);
        e.state = PageState::kInvalid;
        page_io::note_state(ctx_, p, PageState::kInvalid);
      }
      e.has_base = false;
      ctx_.stats->counter("lrc.settle_dropped_copies").add();
    }
    // else: this copy applied everything it ever heard of — still current.
  }
  ctx_.stats->counter("lrc.settle_barriers").add();
}

std::size_t LrcProtocol::cached_diffs() const {
  const MutexLock meta(meta_mutex_);
  std::size_t n = 0;
  for (const auto& [page, records] : diff_cache_) n += records.size();
  return n;
}

}  // namespace dsm
