// Entry consistency (Midway). Shared data is explicitly *bound* to a
// synchronization object; a node may access bound data only while holding
// that object, and the data's updates travel *with* the lock grant (or the
// barrier release). There is no page faulting at all: the programmer's
// annotations replace the VM machinery — the tutorial's "performance for
// programmer effort" trade.
//
// Implementation (Midway's versioned updates): each lock's bound data
// carries a version number that travels with the token; every release that
// changed the data appends a (version, diffs) entry to a log carried along
// the token-holder chain. The acquirer announces the highest version it has
// seen in its lock request, and the grant ships exactly the log entries it
// is missing — or, if the acquirer is so far behind that entries have been
// pruned, the full region contents. This is what makes visibility
// *transitive*: a word written ten handoffs ago still reaches a brand-new
// acquirer.
//
// Barrier-bound regions are simpler: everyone's diffs are exchanged and
// applied at every barrier, so all copies converge each round.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "proto/protocol.hpp"

namespace dsm {

class EcProtocol final : public Protocol {
 public:
  explicit EcProtocol(NodeContext& ctx);

  std::string_view name() const override;
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

  void bind_lock_region(LockId lock, std::size_t offset, std::size_t size) override;
  void bind_barrier_region(BarrierId barrier, std::size_t offset, std::size_t size) override;

  void fill_lock_request(LockId, WireWriter& out) override;
  void fill_lock_grant(LockId, NodeId to, std::span<const std::byte> request_payload,
                       WireWriter& out) override;
  void on_lock_granted(LockId, WireReader& in) override;
  void fill_barrier_arrive(BarrierId, WireWriter& out) override;
  void on_barrier_collect(BarrierId, NodeId from, WireReader& in) override;
  void fill_barrier_release(BarrierId, WireWriter& out) override;
  void on_barrier_release(BarrierId, WireReader& in) override;

 private:
  struct Region {
    std::size_t offset = 0;
    std::size_t size = 0;
    /// Pristine copy from when this node last took the token / left the
    /// barrier; empty when this node does not hold the data.
    std::vector<std::byte> twin;
  };
  /// One release's worth of changes: per-region diffs at `version`.
  struct LogEntry {
    std::uint32_t version = 0;
    std::vector<std::vector<std::byte>> region_diffs;
  };
  struct LockData {
    std::vector<Region> regions;
    /// Highest version this node has observed (== current version while it
    /// holds the token).
    std::uint32_t seen_version = 0;
    /// Recent (version, diffs) entries, ascending; pruned to kLogCap.
    std::deque<LogEntry> log;
  };
  static constexpr std::size_t kLogCap = 16;

  std::span<std::byte> region_span(const Region& r) const {
    // Entry consistency never page-protects — data moves with lock tokens,
    // not faults — so an app-view deref cannot re-enter the fault engine.
    // dsmlint:allow(service-window)
    return {ctx_.view->base() + r.offset, r.size};
  }
  void snapshot(std::vector<Region>& regions);

  // Guards all maps (app + service threads).
  Mutex mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::map<LockId, LockData> lock_data_ GUARDED_BY(mutex_);
  std::map<BarrierId, std::vector<Region>> barrier_regions_ GUARDED_BY(mutex_);
  // Manager-side scratch: collected diffs per barrier round.
  std::map<BarrierId, std::vector<std::vector<std::byte>>> barrier_scratch_
      GUARDED_BY(mutex_);
};

}  // namespace dsm
