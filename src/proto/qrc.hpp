// Quorum-replicated release consistency (QRC) — the crash-fault-tolerant
// protocol family member. Page authority is not one home node but a replica
// group of `Config::ft.replication` consecutive nodes starting at the page's
// home; the group's first *live* member acts as primary. Clients (every
// node) fault pages in from the primary and, ERC-style, write locally behind
// twins, flushing value-form diffs to the primary at every release/barrier.
// The primary serializes writes per page, stamps each with a monotone tag
// (the SC-ABD-style write tag), pushes the diff to every live backup, and
// acks the writer only once every live group member stores the tagged value
// — a read-one/write-all-live quorum whose recovery protocol (kReplRecover:
// poll the group, adopt the max tag) preserves every acknowledged write as
// long as at most floor((replication-1)/2) group members are down at once.
//
// Failover is eager: on a kPeerDown announcement the next live member
// recovers primaryship (parking requests meanwhile), clients self-invalidate
// copies served by the dead primary and re-send outstanding fetches and
// flushes, and a restarted member resyncs through the same recovery flow
// before serving again. Diffs are always the value form (never XOR): a
// re-sent flush or replayed sync must be idempotent against any base.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/clock.hpp"
#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "proto/protocol.hpp"

namespace dsm {

class QrcProtocol final : public Protocol {
 public:
  explicit QrcProtocol(NodeContext& ctx);

  std::string_view name() const override { return "qrc"; }
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

  void before_release(LockId) override { flush_dirty(); }
  void before_barrier(BarrierId) override { flush_dirty(); }

  void on_peer_down(NodeId peer) override;
  void on_peer_up(NodeId peer) override;
  void on_self_restart() override;

  /// Replica-group membership (tests): the `replication` nodes starting at
  /// the page's home.
  bool in_group(PageId page, NodeId node) const;
  /// First live group member — the acting primary (tests).
  NodeId primary_of(PageId page) const;

 private:
  /// One member's durable copy of a page: the tagged value the quorum
  /// protocol replicates. Strictly off-view — a node's *client* copy of the
  /// same page lives in the view like any other protocol's.
  struct Replica {
    std::uint64_t tag = 0;
    std::vector<std::byte> data;
  };

  /// Primary-side per-page write transaction (one at a time per page; later
  /// writers park). `pending_*` are node sets, not counts, so a member's
  /// death can retire exactly its outstanding acks.
  struct Txn {
    NodeId writer = kNoNode;
    std::uint64_t tag = 0;
    std::vector<std::byte> diff;     // value form
    std::set<NodeId> pending_sync;   // backups + keeper pushes awaiting ack
    std::set<NodeId> pending_inval;  // copyset holders awaiting invalidate ack
    std::vector<NodeId> keepers;     // dirty holders to push the diff to
    bool keeper_phase = false;       // invalidations done, keeper pushes sent
  };

  /// An unacked release flush (client side), kept so a primary failover can
  /// re-send it verbatim — value diffs make the re-send idempotent.
  struct Flush {
    std::vector<std::byte> field;
    NodeId target = kNoNode;
  };

  /// An in-progress primaryship takeover or restart resync for one page.
  struct Recovery {
    std::set<NodeId> pending;
    realclock::TimePoint started;
  };

  std::size_t repl() const;
  std::vector<NodeId> group_of(PageId page) const;
  std::vector<NodeId> live_members(PageId page, bool exclude_self) const;

  void flush_dirty();
  void send_fetch(PageId page);

  // Service-thread handlers. All primary-side state (store_, txns_, parked_,
  // copyset_, recovering_) is touched by this node's service thread only —
  // single-threaded by construction, no locking needed.
  void handle_read(const Message& msg);
  void handle_read_reply(const Message& msg);
  void handle_write(const Message& msg);
  void handle_write_ack(const Message& msg);
  void handle_sync(const Message& msg);
  void handle_sync_ack(const Message& msg);
  void handle_invalidate(const Message& msg);
  void handle_invalidate_ack(const Message& msg);
  void handle_recover(const Message& msg);
  void handle_recover_reply(const Message& msg);

  /// Advance the txn state machine: start the keeper phase when
  /// invalidations settle, finish (ack writer, replay parked) when all
  /// pending sets drain.
  void txn_advance(PageId page);
  void txn_finish(PageId page);
  void replay_parked(PageId page);
  /// Begin recovering primaryship / membership for `page` by polling every
  /// other live group member.
  void start_recovery(PageId page);
  void finish_recovery(PageId page);

  // --- replica-group state (service thread only) ---------------------------
  std::map<PageId, Replica> store_;
  std::map<PageId, Txn> txns_;
  std::map<PageId, std::deque<Message>> parked_;
  std::map<PageId, std::set<NodeId>> copyset_;
  std::map<PageId, Recovery> recovering_;
  std::map<PageId, std::deque<Message>> parked_syncs_;  // backup mid-resync
  std::set<NodeId> dead_handled_;  // failover ran; makes kPeerDown idempotent

  // --- client state ---------------------------------------------------------
  // App-thread-only list of pages written since the last flush.
  // Appended by whichever thread services a write fault (uffd executors run
  // several concurrently), swapped out whole by flush_dirty — its own leaf
  // mutex, as in ERC.
  Mutex dirty_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::vector<PageId> dirty_pages_ GUARDED_BY(dirty_mutex_);

  // Outstanding release flushes: registered by the app thread, retired by
  // the service thread (ack), re-targeted by the service thread (failover).
  Mutex flush_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  CondVar flush_cv_;
  std::map<PageId, Flush> outstanding_ GUARDED_BY(flush_mutex_);

  // Outstanding page fetches and who they were sent to, so a failover can
  // re-aim them (app thread registers, service thread retires/re-sends).
  Mutex client_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::map<PageId, NodeId> fetching_ GUARDED_BY(client_mutex_);
};

}  // namespace dsm
