// Lazy release consistency (TreadMarks). Nothing moves at release time;
// instead each sync operation closes an *interval* whose modified pages are
// recorded as *write notices*. A lock grant piggybacks only the notices the
// acquirer has not seen (filtered by its vector clock); the acquirer
// invalidates those pages and fetches the actual *diffs* lazily, on its next
// fault, directly from the writers. Barriers are the global settle-up: every
// node ships its intervals *with* diffs to the manager, which broadcasts the
// merged set; everyone applies, and all protocol metadata is garbage
// collected.
//
// Diffs are applied in "lamport order": every interval carries a scalar
// Lamport stamp advanced at sync operations, which totally orders any two
// happens-before-related intervals. For data-race-free programs (the only
// programs LRC gives guarantees for) this reproduces the happens-before
// order of conflicting writes.
#pragma once

#include <map>
#include <vector>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "common/vclock.hpp"
#include "proto/protocol.hpp"

namespace dsm {

class LrcProtocol final : public Protocol {
 public:
  explicit LrcProtocol(NodeContext& ctx);

  std::string_view name() const override;
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

  void fill_lock_request(LockId, WireWriter& out) override;
  void fill_lock_grant(LockId, NodeId to, std::span<const std::byte> request_payload,
                       WireWriter& out) override;
  void on_lock_granted(LockId, WireReader& in) override;
  void before_release(LockId) override;
  void before_barrier(BarrierId) override;
  void fill_barrier_arrive(BarrierId, WireWriter& out) override;
  void on_barrier_collect(BarrierId, NodeId from, WireReader& in) override;
  void fill_barrier_release(BarrierId, WireWriter& out) override;
  void on_barrier_release(BarrierId, WireReader& in) override;
  /// Two-phase completion is required exactly for settle-up rounds (see
  /// Config::lrc_gc_period): after a GC the pending notices are gone, so a
  /// cold fault must not reach a home that has not applied the diffs yet.
  /// Lazy rounds retain notices and diff caches, making early resumption
  /// safe. The flag reflects the release processed last on this node's
  /// service thread, which is the thread that queries it.
  bool barrier_needs_settlement() const override { return last_release_was_settle_; }

  /// Test hooks.
  const VectorClock& vclock() const { return vc_; }
  std::size_t cached_diffs() const;

 private:
  /// One closed interval of one node: which pages it modified.
  struct IntervalRecord {
    NodeId node = kNoNode;
    std::uint32_t interval = 0;   // that node's interval counter value
    std::uint64_t lamport = 0;    // scalar sync stamp, for diff ordering
    std::vector<PageId> pages;
  };
  /// An unapplied write notice parked at a page.
  struct WriteNotice {
    NodeId writer = kNoNode;
    std::uint32_t interval = 0;
    std::uint64_t lamport = 0;
  };
  /// A cached or fetched diff.
  struct DiffRecord {
    std::uint32_t interval = 0;
    std::uint64_t lamport = 0;
    NodeId writer = kNoNode;
    std::vector<std::byte> bytes;
  };

  /// Closes the current interval if any pages are dirty: encodes and caches
  /// diffs, downgrades pages to read-only, records the interval. App thread.
  void close_interval();

  /// The common fault engine: ensure a base copy, fetch and apply pending
  /// diffs, and leave the page read-only. App thread.
  void make_page_valid(PageId page);

  void handle_page_request(const Message& msg);
  void handle_page_reply(const Message& msg);
  void handle_diff_request(const Message& msg);
  void handle_diff_reply(const Message& msg);

  /// Serializes interval records (without diffs) newer than `horizon`.
  void write_records_after(const VectorClock& horizon, WireWriter& out)
      REQUIRES(meta_mutex_);
  /// Ingests records from a grant; invalidates freshly-noticed pages.
  void ingest_records(WireReader& in, std::size_t count) REQUIRES(meta_mutex_);

  // ---- metadata, guarded by meta_mutex_ ----
  mutable Mutex meta_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  VectorClock vc_ GUARDED_BY(meta_mutex_);
  std::uint64_t lamport_ GUARDED_BY(meta_mutex_) = 0;
  /// interval_log_[n] = records of node n's intervals known here, ascending.
  std::vector<std::vector<IntervalRecord>> interval_log_ GUARDED_BY(meta_mutex_);
  /// My own diffs: page → records ascending by interval.
  std::map<PageId, std::vector<DiffRecord>> diff_cache_ GUARDED_BY(meta_mutex_);
  /// Diff replies parked for the faulting app thread: page → records.
  std::map<PageId, std::vector<DiffRecord>> diff_inbox_ GUARDED_BY(meta_mutex_);

  // ---- per-page pending notices, guarded by that page's entry mutex ----
  std::vector<std::vector<WriteNotice>> pending_;

  // ---- dirty list ----
  // Appended by whichever thread services a write fault (uffd executors run
  // several concurrently), swapped out whole by close_interval. Its own
  // leaf mutex: the push site already holds the page's entry mutex and
  // close_interval takes meta_mutex_ after releasing this, so neither
  // existing mutex could guard it without an ordering cycle.
  Mutex dirty_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::vector<PageId> dirty_pages_ GUARDED_BY(dirty_mutex_);

  /// Settle round, app-thread side: unicast every cached diff to its page's
  /// home and block until all are acknowledged. Runs in before_barrier, so
  /// every home holds the complete epoch before any node arrives.
  void push_diffs_to_homes();

  // ---- barrier bookkeeping ----
  /// Generations per barrier id (app thread only): deterministic and equal
  /// on every node, so all nodes agree on which rounds settle.
  std::map<BarrierId, std::uint64_t> barrier_gen_;
  /// Set in before_barrier (app thread), read by fill_barrier_arrive on the
  /// same thread: this round is a settle-up.
  bool arriving_at_settle_ = false;
  /// Set by on_barrier_release, read by barrier_needs_settlement() on the
  /// same service thread.
  bool last_release_was_settle_ = false;

  /// Home-side buffer of diffs pushed for the current settle round,
  /// applied in lamport order at the release.
  std::map<PageId, std::vector<DiffRecord>> settle_buffer_ GUARDED_BY(meta_mutex_);
  /// Push-acknowledgement rendezvous (app thread ↔ service thread).
  Mutex push_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  CondVar push_cv_;
  int push_outstanding_ GUARDED_BY(push_mutex_) = 0;

  // ---- barrier manager scratch (only used at the barrier home) ----
  std::vector<IntervalRecord> barrier_records_;
  bool barrier_settle_round_ = false;
  VectorClock barrier_vc_;
  std::uint64_t barrier_lamport_ = 0;
};

}  // namespace dsm
