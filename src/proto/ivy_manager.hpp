// Li & Hudak write-invalidate coherence with a *manager*: a distinguished
// node per page that serializes coherence transactions and tracks the owner.
// Two manager placements are provided:
//   * central — node 0 manages every page (the tutorial's simplest scheme,
//     and its scalability bottleneck), and
//   * fixed distributed — page p is managed by node p mod N.
// The owner keeps the copyset; a write faulter receives page + copyset from
// the owner and performs the invalidations itself, then confirms to the
// manager, which unlocks the page for the next transaction. Single writer /
// multiple readers ⇒ sequential consistency.
#pragma once

#include "proto/protocol.hpp"

namespace dsm {

class IvyManagerProtocol final : public Protocol {
 public:
  enum class Placement { kCentral, kFixedDistributed };

  IvyManagerProtocol(NodeContext& ctx, Placement placement);

  std::string_view name() const override;
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

 private:
  NodeId manager_of(PageId page) const;

  // App-thread fault engine shared by read and write paths.
  void fault(PageId page, bool is_write);

  // Service-thread handlers.
  void handle_request(const Message& msg);        // at the manager
  void handle_read_forward(const Message& msg);   // at the owner
  void handle_write_forward(const Message& msg);  // at the owner
  void handle_read_reply(const Message& msg);     // at the faulter
  void handle_write_reply(const Message& msg);    // at the faulter
  void handle_invalidate(const Message& msg);     // at a copy holder
  void handle_invalidate_ack(const Message& msg); // at the faulter
  void handle_confirm(const Message& msg);        // at the manager

  /// Completes a write acquisition: invalidate `holders`, then (on the last
  /// ack, or immediately if none) grant write access and confirm. Entry lock
  /// must be held by the caller. Returns true if the write finished inline
  /// (no holders) — the caller must notify the entry cv after unlocking.
  bool start_invalidation(PageId page, PageEntry& entry,
                          const std::vector<NodeId>& holders);
  void finish_write(PageId page, PageEntry& entry);

  /// Replays requests parked while the manager had the page locked.
  void replay_manager_parked(PageId page);
  /// Fire-and-forget read requests for the next Config::prefetch_pages pages.
  void prefetch_sequential(PageId page);

  Placement placement_;
};

}  // namespace dsm
