// The coherence-protocol interface. A protocol is a distributed state machine
// driven from two sides:
//   * the faulting application thread (on_read_fault / on_write_fault, which
//     block until access is legal), and
//   * the node's service thread (on_message), which must NEVER block on
//     remote state — it parks work on per-page pending queues instead
//     (DESIGN.md "No-blocking service rule").
// Synchronization-piggyback hooks let relaxed-consistency protocols move
// write notices and data with lock grants and barrier releases; they are
// invoked by the SyncAgent, which owns lock/barrier mechanics.
#pragma once

#include <memory>
#include <string_view>

#include "common/serialize.hpp"
#include "core/context.hpp"
#include "net/message.hpp"

namespace dsm {

class Protocol {
 public:
  explicit Protocol(NodeContext& ctx) : ctx_(ctx) {}
  virtual ~Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual std::string_view name() const = 0;

  /// Sets initial page states/protections (home ownership etc.). Called once
  /// per run on the runtime thread before any application thread starts.
  virtual void init_pages() = 0;

  // --- application-thread side -------------------------------------------
  /// Service a read miss on `page`; returns when the page is readable.
  virtual void on_read_fault(PageId page) = 0;
  /// Service a write miss/upgrade on `page`; returns when writable.
  virtual void on_write_fault(PageId page) = 0;

  // --- service-thread side -------------------------------------------------
  /// Dispatch for every coherence message type (sync types go to SyncAgent).
  virtual void on_message(const Message& msg) = 0;

  // --- peer liveness (crash fault tolerance; no-ops outside FT runs) -------
  /// Service thread: `peer` was declared dead (kPeerDown). FT protocols
  /// fail over (recompute primaries, re-send outstanding work); must be
  /// idempotent — the failure detector may announce the same death twice.
  virtual void on_peer_down(NodeId /*peer*/) {}
  /// Service thread: `peer` rejoined the fabric (kPeerUp).
  virtual void on_peer_up(NodeId /*peer*/) {}
  /// Service thread of the *restarting* node itself: wipe all protocol and
  /// page state back to the post-init_pages picture. Only the restarting
  /// node's own service thread calls this (race-free: sole toucher).
  virtual void on_self_restart() {}

  // --- synchronization piggyback hooks (no-ops for SC protocols) ----------
  /// App thread, acquirer: extra payload for the lock request (e.g. LRC
  /// vector clock, so the grantor can filter write notices).
  virtual void fill_lock_request(LockId, WireWriter&) {}
  /// Grantor (service or app thread): payload to ship with the grant.
  /// `request_payload` is the acquirer's fill_lock_request payload (may be
  /// empty under the centralized policy when the home grants a free lock).
  virtual void fill_lock_grant(LockId, NodeId /*to*/,
                               std::span<const std::byte> /*request_payload*/,
                               WireWriter&) {}
  /// Acquirer's service thread, before the blocked app thread resumes:
  /// consume the grant payload (apply diffs, invalidate noticed pages).
  virtual void on_lock_granted(LockId, WireReader&) {}
  /// App thread, holder: called before the release is performed anywhere
  /// (eager RC flushes and waits for acks here; LRC closes its interval).
  virtual void before_release(LockId) {}
  /// Holder: payload for a centralized-policy release message (the home
  /// stores it and ships it with the next grant).
  virtual void fill_lock_release(LockId, WireWriter&) {}

  // --- barrier hooks -------------------------------------------------------
  /// App thread, before sending the arrive (eager RC flush; LRC interval).
  virtual void before_barrier(BarrierId) {}
  /// App thread: payload on the arrive message (LRC notices+diffs, EC data).
  virtual void fill_barrier_arrive(BarrierId, WireWriter&) {}
  /// Manager's service thread, once per arriving node.
  virtual void on_barrier_collect(BarrierId, NodeId /*from*/, WireReader&) {}
  /// Manager's service thread, composing the release broadcast.
  virtual void fill_barrier_release(BarrierId, WireWriter&) {}
  /// Every node's service thread, on receiving the release (apply + GC).
  virtual void on_barrier_release(BarrierId, WireReader&) {}
  /// True if no application thread may leave the barrier until EVERY node
  /// has processed the release (two-phase barrier). LRC needs this: a node
  /// resuming early could fetch a base copy from a home that has not yet
  /// applied the barrier's diffs — after the notices were already GC'd.
  virtual bool barrier_needs_settlement() const { return false; }

  // --- entry-consistency annotations (no-ops elsewhere) --------------------
  /// Associates [offset, offset+size) with a lock: the region's writes move
  /// with that lock's grants.
  virtual void bind_lock_region(LockId, std::size_t /*offset*/, std::size_t /*size*/) {}
  /// Associates a region with a barrier: dirty data is exchanged at the
  /// barrier.
  virtual void bind_barrier_region(BarrierId, std::size_t /*offset*/, std::size_t /*size*/) {}

 protected:
  NodeContext& ctx_;
};

/// Instantiates the protocol selected by ctx.cfg->protocol.
std::unique_ptr<Protocol> make_protocol(NodeContext& ctx);

}  // namespace dsm
