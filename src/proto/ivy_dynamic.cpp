#include "proto/ivy_dynamic.hpp"

#include <mutex>

#include "common/logging.hpp"
#include "proto/page_io.hpp"

namespace dsm {
namespace {

// Payload layouts:
//   kReadRequest / kWriteRequest : u32 page | u32 requester
//   kReadReply                   : u32 page | raw page bytes
//   kWriteReply                  : u32 page | u32 n | n×u32 holders | raw bytes
//   kInvalidate                  : u32 page | u32 new_owner
//   kInvalidateAck               : u32 page

struct PageReq {
  PageId page;
  NodeId requester;
};

PageReq parse_req(const Message& msg) {
  WireReader r(msg.payload);
  PageReq req{r.get<PageId>(), r.get<NodeId>()};
  DSM_CHECK(r.done());
  return req;
}

std::vector<std::byte> encode_req(PageId page, NodeId requester) {
  WireWriter w(8);
  w.put(page);
  w.put(requester);
  return std::move(w).take();
}

}  // namespace

IvyDynamicProtocol::IvyDynamicProtocol(NodeContext& ctx) : Protocol(ctx) {}

std::string_view IvyDynamicProtocol::name() const { return "ivy-dynamic"; }

void IvyDynamicProtocol::init_pages() {
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    const NodeId home = ctx_.home_of(p);
    e.prob_owner = home;
    e.is_owner = home == ctx_.id;
    if (e.is_owner) {
      e.state = PageState::kReadWrite;
      page_io::note_state(ctx_, p, PageState::kReadWrite);
      ctx_.view->protect(p, Access::kReadWrite);
    } else {
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, p, PageState::kInvalid);
      ctx_.view->protect(p, Access::kNone);
    }
    e.copyset.clear();
    e.busy = false;
    e.discard_reply = false;
    e.acks_outstanding = 0;
    e.parked.clear();
  }
}

void IvyDynamicProtocol::on_read_fault(PageId page) { fault(page, /*is_write=*/false); }
void IvyDynamicProtocol::on_write_fault(PageId page) { fault(page, /*is_write=*/true); }

void IvyDynamicProtocol::fault(PageId page, bool is_write) {
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  const auto sufficient = [&] {
    return is_write ? e.state == PageState::kReadWrite : e.state != PageState::kInvalid;
  };
  // Wait for *our transaction* (!busy), not for the state: the service
  // thread may complete our acquisition and immediately grant a parked
  // transfer away again. If access is gone when we run, request again.
  for (;;) {
    if (sufficient()) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }

    ctx_.stats->counter(is_write ? "proto.write_faults" : "proto.read_faults").add();
    ctx_.clock->advance(ctx_.cfg->fault_ns);
    const VirtualTime t0 = ctx_.clock->now();

    if (is_write && e.is_owner) {
      // Owner holds a read-only copy (served readers earlier): invalidate
      // the copyset in place; no ownership motion.
      e.busy = true;
      auto holders = e.copyset.members();
      e.copyset.clear();
      if (holders.empty()) {
        ctx_.view->protect(page, Access::kReadWrite);
        e.state = PageState::kReadWrite;
        page_io::note_state(ctx_, page, PageState::kReadWrite);
        e.busy = false;
      } else {
        e.acks_outstanding = static_cast<int>(holders.size());
        WireWriter w(8);
        w.put(page);
        w.put(ctx_.id);
        const auto payload = std::move(w).take();
        for (const NodeId n : holders) ctx_.send(MsgType::kInvalidate, n, payload);
        while (e.busy) e.cv.wait(e.mutex);
      }
      ctx_.stats->histogram("proto.fault_service_ns").record(ctx_.clock->now() - t0);
      if (ctx_.trace != nullptr)
        ctx_.trace->complete(ctx_.id, TraceCat::kProto, "fault-txn", t0,
                             ctx_.clock->now(), "page", page);
      continue;
    }

    e.busy = true;
    const NodeId target = e.prob_owner;
    lock.unlock();
    ctx_.send(is_write ? MsgType::kWriteRequest : MsgType::kReadRequest, target,
              encode_req(page, ctx_.id));
    if (!is_write) prefetch_sequential(page);
    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
    ctx_.stats->histogram("proto.fault_service_ns").record(ctx_.clock->now() - t0);
    if (ctx_.trace != nullptr)
      ctx_.trace->complete(ctx_.id, TraceCat::kProto, "fault-txn", t0,
                           ctx_.clock->now(), "page", page);
  }
}

void IvyDynamicProtocol::prefetch_sequential(PageId page) {
  for (std::size_t k = 1; k <= ctx_.cfg->prefetch_pages; ++k) {
    const PageId next = page + static_cast<PageId>(k);
    if (next >= ctx_.table->n_pages()) return;
    auto& e = ctx_.table->entry(next);
    NodeId target;
    {
      const MutexLock lock(e.mutex);
      if (e.state != PageState::kInvalid || e.busy) continue;
      // An asynchronous read transaction: nobody waits; the normal reply
      // path installs the page and clears busy. A later fault on this page
      // simply joins the wait.
      e.busy = true;
      target = e.prob_owner;
    }
    ctx_.stats->counter("proto.prefetches").add();
    ctx_.send(MsgType::kReadRequest, target, encode_req(next, ctx_.id));
  }
}

void IvyDynamicProtocol::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kReadRequest:
    case MsgType::kWriteRequest: handle_request(msg); return;
    case MsgType::kReadReply: handle_read_reply(msg); return;
    case MsgType::kWriteReply: handle_write_reply(msg); return;
    case MsgType::kInvalidate: handle_invalidate(msg); return;
    case MsgType::kInvalidateAck: handle_invalidate_ack(msg); return;
    default:
      DSM_CHECK_MSG(false, "ivy-dynamic: unexpected message " << to_string(msg.type));
  }
}

void IvyDynamicProtocol::handle_request(const Message& msg) {
  const auto [page, requester] = parse_req(msg);
  auto& e = ctx_.table->entry(page);
  NodeId forward_to = kNoNode;
  {
    const MutexLock lock(e.mutex);
    if (e.busy) {
      // This node is itself acquiring the page (or finishing an upgrade);
      // park — it will soon be the owner and can serve, or will forward.
      e.parked.push_back(msg);
      ctx_.stats->counter("ivy.parked").add();
      return;
    }
    if (!e.is_owner) {
      forward_to = e.prob_owner;
      DSM_CHECK_MSG(forward_to != ctx_.id, "probable-owner self loop on page " << page);
      // Path compression: the requester is about to become (or talk to) the
      // owner, so future traffic should head its way.
      e.prob_owner = requester;
    }
  }
  if (forward_to != kNoNode) {
    ctx_.stats->counter("ivy.forwards").add();
    ctx_.send(msg.type, forward_to, msg.payload);
    return;
  }
  if (msg.type == MsgType::kReadRequest) {
    serve_read(page, requester);
  } else {
    serve_write(page, requester);
  }
}

void IvyDynamicProtocol::serve_read(PageId page, NodeId requester) {
  auto& e = ctx_.table->entry(page);
  std::vector<std::byte> bytes;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.is_owner && e.state != PageState::kInvalid);
    if (e.state == PageState::kReadWrite) {
      ctx_.view->protect(page, Access::kRead);
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, page, PageState::kReadOnly);
    }
    e.copyset.insert(requester);
    bytes = page_io::read_page(ctx_, page, e.state);
  }
  WireWriter w(bytes.size() + 8);
  w.put(page);
  page_io::put_page(ctx_, w, bytes);
  ctx_.send(MsgType::kReadReply, requester, std::move(w).take());
}

void IvyDynamicProtocol::serve_write(PageId page, NodeId requester) {
  auto& e = ctx_.table->entry(page);
  std::vector<std::byte> bytes;
  std::vector<NodeId> holders;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.is_owner && e.state != PageState::kInvalid);
    // Revoke-before-copy: see IvyManagerProtocol::handle_write_forward — a
    // concurrent app-thread store to another word of this page would be
    // lost if it landed between a copy-first and the zap. The copy reads
    // the service alias, which survives the app-view zap.
    const PageState had = e.state;
    ctx_.view->protect(page, Access::kNone);
    e.state = PageState::kInvalid;
    page_io::note_state(ctx_, page, PageState::kInvalid);
    bytes = page_io::read_page(ctx_, page, had);
    for (const NodeId n : e.copyset.members()) {
      if (n != requester) holders.push_back(n);
    }
    e.copyset.clear();
    e.is_owner = false;
    e.prob_owner = requester;
  }
  WireWriter w(bytes.size() + 16);
  w.put(page);
  w.put_vector(holders);
  page_io::put_page(ctx_, w, bytes);
  ctx_.send(MsgType::kWriteReply, requester, std::move(w).take());
}

void IvyDynamicProtocol::handle_read_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto bytes = page_io::get_page(ctx_, r);
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    if (e.discard_reply) {
      // A new writer invalidated the copy this reply carries while it was
      // in flight (we already acked the invalidation). Installing it would
      // be a stale read-only copy the writer believes is gone — drop it;
      // the faulting thread re-requests. prob_owner already points at the
      // new writer (set by the invalidation).
      e.discard_reply = false;
      e.busy = false;
      ctx_.stats->counter("ivy.discarded_replies").add();
    } else {
      page_io::install_page(ctx_, page, bytes, Access::kRead);
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, page, PageState::kReadOnly);
      e.prob_owner = msg.src;  // learned: the replier is the owner
      e.busy = false;
    }
  }
  e.cv.notify_all();
  replay_parked(page);
}

void IvyDynamicProtocol::handle_write_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto holders = r.get_vector<NodeId>();
  const auto bytes = page_io::get_page(ctx_, r);
  auto& e = ctx_.table->entry(page);
  bool done;
  {
    const MutexLock lock(e.mutex);
    page_io::install_page(ctx_, page, bytes, Access::kReadWrite);
    e.is_owner = true;
    e.prob_owner = ctx_.id;
    e.discard_reply = false;  // a write reply is authoritative (linearized transfer)
    e.copyset.clear();
    if (holders.empty()) {
      done = finish_write_locked(page, e);
    } else {
      e.acks_outstanding = static_cast<int>(holders.size());
      WireWriter w(8);
      w.put(page);
      w.put(ctx_.id);
      const auto payload = std::move(w).take();
      for (const NodeId n : holders) ctx_.send(MsgType::kInvalidate, n, payload);
      done = false;
    }
  }
  if (done) {
    e.cv.notify_all();
    replay_parked(page);
  }
}

bool IvyDynamicProtocol::finish_write_locked(PageId page, PageEntry& e) {
  ctx_.view->protect(page, Access::kReadWrite);
  e.state = PageState::kReadWrite;
  page_io::note_state(ctx_, page, PageState::kReadWrite);
  e.busy = false;
  return true;
}

void IvyDynamicProtocol::handle_invalidate(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto new_owner = r.get<NodeId>();
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    if (e.state != PageState::kInvalid) {
      ctx_.view->protect(page, Access::kNone);
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, page, PageState::kInvalid);
    }
    if (e.busy && !e.is_owner) {
      // Our read request is outstanding: its reply may carry the very copy
      // this message invalidates. Poison it (see handle_read_reply).
      e.discard_reply = true;
    }
    e.prob_owner = new_owner;
  }
  WireWriter w(4);
  w.put(page);
  ctx_.send(MsgType::kInvalidateAck, msg.src, std::move(w).take());
}

void IvyDynamicProtocol::handle_invalidate_ack(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  auto& e = ctx_.table->entry(page);
  bool done = false;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK(e.acks_outstanding > 0);
    if (--e.acks_outstanding == 0) done = finish_write_locked(page, e);
  }
  if (done) {
    e.cv.notify_all();
    replay_parked(page);
  }
}

void IvyDynamicProtocol::replay_parked(PageId page) {
  auto& e = ctx_.table->entry(page);
  for (;;) {
    Message next;
    {
      const MutexLock lock(e.mutex);
      if (e.busy || e.parked.empty()) return;
      next = std::move(e.parked.front());
      e.parked.pop_front();
    }
    handle_request(next);
  }
}

}  // namespace dsm
