// Li & Hudak's dynamic distributed manager: no manager at all. Every node
// keeps a *probable owner* hint per page; requests chase the hint chain until
// they reach the true owner, and every hop compresses the path by pointing
// its hint at the requester. Ownership migrates to writers, so after warm-up
// a migratory page costs one hop instead of the manager round trip — the
// classic result reproduced by bench_manager (F1).
#pragma once

#include "proto/protocol.hpp"

namespace dsm {

class IvyDynamicProtocol final : public Protocol {
 public:
  explicit IvyDynamicProtocol(NodeContext& ctx);

  std::string_view name() const override;
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

 private:
  void fault(PageId page, bool is_write);

  /// Owner-side: serve or forward a read/write request. Also the replay
  /// target for requests parked during an ownership transition.
  void handle_request(const Message& msg);
  void handle_read_reply(const Message& msg);
  void handle_write_reply(const Message& msg);
  void handle_invalidate(const Message& msg);
  void handle_invalidate_ack(const Message& msg);

  /// Serve a read to `requester` from this (owning) node.
  void serve_read(PageId page, NodeId requester);
  /// Transfer ownership + data to `requester`.
  void serve_write(PageId page, NodeId requester);
  /// Owner upgrading its own read-only copy: invalidate the copyset locally.
  void upgrade_in_place(PageId page);

  bool finish_write_locked(PageId page, PageEntry& entry);
  void replay_parked(PageId page);
  /// Fire-and-forget read requests for the next Config::prefetch_pages pages.
  void prefetch_sequential(PageId page);
};

}  // namespace dsm
