#include "proto/ec.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "mem/diff.hpp"
#include "proto/page_io.hpp"

namespace dsm {
namespace {

// Lock request payload : u32 seen_version
// Lock grant payload   : u8 kind, then
//     kind 0 (unbound)      : nothing
//     kind 1 (log entries)  : u32 current_version | u32 n_entries |
//                             n × { u32 version | u32 n_regions | n×bytes }
//     kind 2 (full regions) : u32 current_version | u32 n_regions | n×bytes
// Barrier arrive payload: u32 n | n × { u32 region_index | bytes diff }
// Barrier release       : u32 n_blobs | n × bytes (each an arrive blob)

constexpr std::uint8_t kGrantUnbound = 0;
constexpr std::uint8_t kGrantEntries = 1;
constexpr std::uint8_t kGrantFull = 2;

}  // namespace

EcProtocol::EcProtocol(NodeContext& ctx) : Protocol(ctx) {}

std::string_view EcProtocol::name() const { return "ec"; }

void EcProtocol::init_pages() {
  // No VM machinery at all: every page is writable everywhere; consistency
  // is the programmer's bindings' job.
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    e.state = PageState::kReadWrite;
    page_io::note_state(ctx_, p, PageState::kReadWrite);
    ctx_.view->protect(p, Access::kReadWrite);
  }
  const MutexLock guard(mutex_);
  lock_data_.clear();
  barrier_regions_.clear();
  barrier_scratch_.clear();
}

void EcProtocol::on_read_fault(PageId page) {
  DSM_CHECK_MSG(false, "entry consistency: unexpected fault on page "
                           << page << " — all pages are resident; did a binding fail?");
}

void EcProtocol::on_write_fault(PageId page) { on_read_fault(page); }

void EcProtocol::on_message(const Message& msg) {
  DSM_CHECK_MSG(false, "ec: unexpected message " << to_string(msg.type));
}

void EcProtocol::bind_lock_region(LockId lock, std::size_t offset, std::size_t size) {
  DSM_CHECK_MSG(offset + size <= ctx_.view->size_bytes(), "ec binding outside the shared heap");
  const MutexLock guard(mutex_);
  Region r{offset, size, {}};
  if (ctx_.lock_home(lock) == ctx_.id) {
    // The token starts at the lock's home: it is the data's initial holder,
    // so snapshot the pristine twin now.
    const auto live = region_span(r);
    r.twin.assign(live.begin(), live.end());
  }
  lock_data_[lock].regions.push_back(std::move(r));
}

void EcProtocol::bind_barrier_region(BarrierId barrier, std::size_t offset, std::size_t size) {
  DSM_CHECK_MSG(offset + size <= ctx_.view->size_bytes(), "ec binding outside the shared heap");
  const MutexLock guard(mutex_);
  Region r{offset, size, {}};
  const auto live = region_span(r);
  r.twin.assign(live.begin(), live.end());  // everyone holds barrier data
  barrier_regions_[barrier].push_back(std::move(r));
}

void EcProtocol::snapshot(std::vector<Region>& regions) {
  for (auto& r : regions) {
    const auto live = region_span(r);
    r.twin.assign(live.begin(), live.end());
  }
}

// ---------------------------------------------------------------------------
// Locks: versioned update logs riding the token-holder chain
// ---------------------------------------------------------------------------

void EcProtocol::fill_lock_request(LockId lock, WireWriter& out) {
  const MutexLock guard(mutex_);
  const auto it = lock_data_.find(lock);
  out.put(it == lock_data_.end() ? std::uint32_t{0} : it->second.seen_version);
}

void EcProtocol::fill_lock_grant(LockId lock, NodeId /*to*/,
                                 std::span<const std::byte> request_payload,
                                 WireWriter& out) {
  const MutexLock guard(mutex_);
  const auto it = lock_data_.find(lock);
  if (it == lock_data_.end()) {
    out.put(kGrantUnbound);
    return;
  }
  auto& L = it->second;

  // Close out this hold: one log entry for everything written since the
  // token arrived (possibly spanning several cached local re-acquires).
  bool dirty = false;
  LogEntry entry;
  for (auto& r : L.regions) {
    // An empty twin means this node never formally held the data (the
    // initial holder before any hand-off): diff against zeros, the heap's
    // initial contents.
    std::vector<std::byte> zero_base;
    std::span<const std::byte> base;
    if (r.twin.empty()) {
      zero_base.assign(r.size, std::byte{0});
      base = zero_base;
    } else {
      base = r.twin;
    }
    auto diff = encode_diff(region_span(r), base);
    if (!diff.empty()) dirty = true;
    ctx_.stats->counter("ec.diff_bytes").add(diff.size());
    entry.region_diffs.push_back(std::move(diff));
    r.twin.clear();  // the token (and with it the data) leaves this node
  }
  if (dirty) {
    entry.version = ++L.seen_version;
    if (ctx_.check != nullptr) {
      ctx_.check->on_lock_version(ctx_.id, lock, L.seen_version);
    }
    L.log.push_back(std::move(entry));
    while (L.log.size() > kLogCap) L.log.pop_front();
  }

  // What does the acquirer already have?
  std::uint32_t acquirer_version = 0;
  if (!request_payload.empty()) {
    WireReader r(request_payload);
    acquirer_version = r.get<std::uint32_t>();
  }

  const std::uint32_t oldest_logged =
      L.log.empty() ? L.seen_version + 1 : L.log.front().version;
  if (acquirer_version + 1 >= oldest_logged || acquirer_version >= L.seen_version) {
    // The log covers the gap: ship exactly the missing entries.
    out.put(kGrantEntries);
    out.put(L.seen_version);
    std::uint32_t count = 0;
    for (const auto& e : L.log) {
      if (e.version > acquirer_version) ++count;
    }
    out.put(count);
    for (const auto& e : L.log) {
      if (e.version <= acquirer_version) continue;
      out.put(e.version);
      out.put(static_cast<std::uint32_t>(e.region_diffs.size()));
      for (const auto& d : e.region_diffs) out.put_bytes(d);
    }
  } else {
    // Too far behind (entries pruned): ship the whole bound data.
    out.put(kGrantFull);
    out.put(L.seen_version);
    out.put(static_cast<std::uint32_t>(L.regions.size()));
    for (const auto& r : L.regions) {
      const auto live = region_span(r);
      out.put_bytes({live.data(), live.size()});
      ctx_.stats->counter("ec.full_transfers").add();
    }
  }
}

void EcProtocol::on_lock_granted(LockId lock, WireReader& in) {
  const MutexLock guard(mutex_);
  const auto it = lock_data_.find(lock);
  if (in.remaining() == 0) {
    // Centralized first-ever grant: the home had no release payload yet.
    if (it != lock_data_.end()) snapshot(it->second.regions);
    return;
  }
  const auto kind = in.get<std::uint8_t>();
  if (it == lock_data_.end()) {
    DSM_CHECK_MSG(kind == kGrantUnbound, "ec: grant carries data for unbound lock " << lock);
    return;
  }
  auto& L = it->second;

  if (kind == kGrantEntries) {
    const auto current = in.get<std::uint32_t>();
    const auto count = in.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto version = in.get<std::uint32_t>();
      const auto n_regions = in.get<std::uint32_t>();
      DSM_CHECK(n_regions == L.regions.size());
      LogEntry entry;
      entry.version = version;
      for (std::uint32_t r = 0; r < n_regions; ++r) {
        const auto diff = in.get_bytes();
        if (version > L.seen_version) {
          apply_diff(region_span(L.regions[r]), diff);
        }
        entry.region_diffs.emplace_back(diff.begin(), diff.end());
      }
      if (version > L.seen_version) {
        L.log.push_back(std::move(entry));
        while (L.log.size() > kLogCap) L.log.pop_front();
      }
    }
    L.seen_version = std::max(L.seen_version, current);
    if (ctx_.check != nullptr) {
      ctx_.check->on_lock_version(ctx_.id, lock, L.seen_version);
    }
  } else if (kind == kGrantFull) {
    const auto current = in.get<std::uint32_t>();
    const auto n_regions = in.get<std::uint32_t>();
    DSM_CHECK(n_regions == L.regions.size());
    for (std::uint32_t r = 0; r < n_regions; ++r) {
      const auto bytes = in.get_bytes();
      auto live = region_span(L.regions[r]);
      DSM_CHECK(bytes.size() == live.size());
      std::memcpy(live.data(), bytes.data(), bytes.size());
    }
    L.seen_version = std::max(L.seen_version, current);
    if (ctx_.check != nullptr) {
      ctx_.check->on_lock_version(ctx_.id, lock, L.seen_version);
    }
    L.log.clear();  // our old entries are useless to anyone we could serve
  } else {
    DSM_CHECK_MSG(kind == kGrantUnbound, "ec: bad grant kind");
  }
  snapshot(L.regions);
}

// ---------------------------------------------------------------------------
// Barriers: all-to-all diff exchange each round
// ---------------------------------------------------------------------------

void EcProtocol::fill_barrier_arrive(BarrierId barrier, WireWriter& out) {
  const MutexLock guard(mutex_);
  const auto it = barrier_regions_.find(barrier);
  if (it == barrier_regions_.end()) {
    out.put(std::uint32_t{0});
    return;
  }
  auto& regions = it->second;
  out.put(static_cast<std::uint32_t>(regions.size()));
  for (std::uint32_t i = 0; i < regions.size(); ++i) {
    auto& r = regions[i];
    const auto diff = encode_diff(region_span(r), r.twin);
    ctx_.stats->counter("ec.diff_bytes").add(diff.size());
    out.put(i);
    out.put_bytes(diff);
  }
}

void EcProtocol::on_barrier_collect(BarrierId barrier, NodeId /*from*/, WireReader& in) {
  const MutexLock guard(mutex_);
  const auto blob = in.get_raw(in.remaining());
  barrier_scratch_[barrier].emplace_back(blob.begin(), blob.end());
}

void EcProtocol::fill_barrier_release(BarrierId barrier, WireWriter& out) {
  const MutexLock guard(mutex_);
  auto& blobs = barrier_scratch_[barrier];
  out.put(static_cast<std::uint32_t>(blobs.size()));
  for (const auto& blob : blobs) out.put_bytes(blob);
  blobs.clear();
}

void EcProtocol::on_barrier_release(BarrierId barrier, WireReader& in) {
  const MutexLock guard(mutex_);
  const auto it = barrier_regions_.find(barrier);
  const auto n = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto blob = in.get_bytes();
    if (it == barrier_regions_.end()) continue;
    WireReader blob_reader(blob);
    auto& regions = it->second;
    const auto n_regions = blob_reader.get<std::uint32_t>();
    DSM_CHECK_MSG(n_regions == regions.size(),
                  "ec: barrier binding mismatch (" << n_regions << " vs " << regions.size()
                                                   << ")");
    for (std::uint32_t r = 0; r < n_regions; ++r) {
      const auto index = blob_reader.get<std::uint32_t>();
      DSM_CHECK(index < regions.size());
      const auto diff = blob_reader.get_bytes();
      apply_diff(region_span(regions[index]), diff);
    }
  }
  if (it != barrier_regions_.end()) snapshot(it->second);
}

}  // namespace dsm
