#include "proto/ec.hpp"
#include "proto/erc.hpp"
#include "proto/hlrc.hpp"
#include "proto/ivy_dynamic.hpp"
#include "proto/ivy_manager.hpp"
#include "proto/lrc.hpp"
#include "proto/protocol.hpp"
#include "proto/qrc.hpp"

namespace dsm {

const char* to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kIvyCentral: return "ivy-central";
    case ProtocolKind::kIvyFixed: return "ivy-fixed";
    case ProtocolKind::kIvyDynamic: return "ivy-dynamic";
    case ProtocolKind::kErcInvalidate: return "erc-invalidate";
    case ProtocolKind::kErcUpdate: return "erc-update";
    case ProtocolKind::kLrc: return "lrc";
    case ProtocolKind::kEc: return "ec";
    case ProtocolKind::kHlrc: return "hlrc";
    case ProtocolKind::kQrc: return "qrc";
  }
  return "?";
}

std::unique_ptr<Protocol> make_protocol(NodeContext& ctx) {
  switch (ctx.cfg->protocol) {
    case ProtocolKind::kIvyCentral:
      return std::make_unique<IvyManagerProtocol>(ctx, IvyManagerProtocol::Placement::kCentral);
    case ProtocolKind::kIvyFixed:
      return std::make_unique<IvyManagerProtocol>(
          ctx, IvyManagerProtocol::Placement::kFixedDistributed);
    case ProtocolKind::kIvyDynamic:
      return std::make_unique<IvyDynamicProtocol>(ctx);
    case ProtocolKind::kErcInvalidate:
      return std::make_unique<ErcProtocol>(ctx, ErcProtocol::Mode::kInvalidate);
    case ProtocolKind::kErcUpdate:
      return std::make_unique<ErcProtocol>(ctx, ErcProtocol::Mode::kUpdate);
    case ProtocolKind::kLrc:
      return std::make_unique<LrcProtocol>(ctx);
    case ProtocolKind::kEc:
      return std::make_unique<EcProtocol>(ctx);
    case ProtocolKind::kHlrc:
      return std::make_unique<HlrcProtocol>(ctx);
    case ProtocolKind::kQrc:
      return std::make_unique<QrcProtocol>(ctx);
  }
  DSM_CHECK_MSG(false, "unknown protocol kind");
  return nullptr;
}

}  // namespace dsm
