// Eager release consistency (Munin's write-shared protocol, home-based).
// Writers modify local copies freely between synchronization points (twins
// track their changes); at every release/barrier the writer flushes diffs to
// each page's *home*, whose copy is always authoritative, and the release
// does not complete until the home has either
//   * invalidated every other copy (invalidate mode), or
//   * propagated the diff to every other copy (update mode — this is the
//     multiple-writer protocol that defeats false sharing, see F2).
// Acquire moves no data: a node that lost its copy re-fetches from the home
// on its next fault.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/clock.hpp"
#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "proto/protocol.hpp"

namespace dsm {

class ErcProtocol final : public Protocol {
 public:
  enum class Mode { kInvalidate, kUpdate };

  ErcProtocol(NodeContext& ctx, Mode mode);

  std::string_view name() const override;
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

  void before_release(LockId) override { flush_dirty(); }
  void before_barrier(BarrierId) override { flush_dirty(); }

  // Crash fault tolerance (invalidate mode, Config::ft): the cheap
  // checkpoint/recovery path. Every Nth home version of a page is
  // snapshotted to the home's buddy (the next node); a restarted home
  // replays the buddy's snapshots — losing at most checkpoint_period - 1
  // versions per page — while parking requests behind the restore.
  void on_peer_down(NodeId peer) override;
  void on_peer_up(NodeId peer) override;
  void on_self_restart() override;

  /// Number of flushes performed (tests/benches).
  std::uint64_t flushes() const { return n_flushes_; }

  /// The node holding this node's checkpoints (tests).
  NodeId buddy() const {
    return static_cast<NodeId>((ctx_.id + 1) % ctx_.n_nodes);
  }

 private:
  /// Sends every dirty page's diff to its home and blocks until all homes
  /// acknowledge — the "eager" in eager release consistency.
  void flush_dirty();
  /// Fire-and-forget fetches of the next Config::prefetch_pages pages.
  void prefetch_sequential(PageId page);

  void handle_page_request(const Message& msg);  // at the home
  void handle_page_reply(const Message& msg);    // at the faulter
  void handle_update(const Message& msg);        // home (from writer) or holder (from home)
  void handle_update_ack(const Message& msg);    // home (from holder) or writer (final)
  void handle_invalidate(const Message& msg);    // at a copy holder
  void handle_invalidate_ack(const Message& msg);// at the home

  /// Home-side per-page release transaction. Invalidate mode may run two
  /// phases: invalidate clean copies, then push the diff to dirty "keepers"
  /// (concurrent writers whose copies cannot be destroyed but must still
  /// observe the released words — the correctness hole naive invalidation
  /// leaves under false sharing). `pending` is a node set, not a count, so
  /// a member's death can retire exactly its outstanding acks.
  struct HomeTxn {
    NodeId writer = kNoNode;
    std::set<NodeId> pending;
    bool keeper_phase = false;
    std::vector<NodeId> keepers;
    std::vector<std::byte> diff;
  };

  /// One buddy-held page snapshot (kCkptStore payload).
  struct Ckpt {
    std::uint32_t version = 0;
    std::vector<std::byte> bytes;
  };

  /// Home-side: begin (or park) the transaction for a writer's diff.
  void home_begin_transaction(const Message& msg);
  /// Home-side: transaction finished — ack the writer, replay parked.
  void home_finish_transaction(PageId page);
  /// Home-side: all invalidate acks in; either finish or push to keepers.
  void home_after_invalidations(PageId page);
  /// Home-side: an ack set drained — next phase or finish.
  void home_txn_advance(PageId page);
  /// Home-side, after a transaction: snapshot the page to the buddy when its
  /// version hits a checkpoint boundary.
  void maybe_checkpoint(PageId page);

  void handle_ckpt_store(const Message& msg);  // at the buddy
  void handle_ckpt_fetch(const Message& msg);  // at the buddy
  void handle_ckpt_data(const Message& msg);   // at the restarted home

  bool ft() const { return ctx_.cfg->ft.enabled; }

  Mode mode_;

  Mutex txn_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::map<PageId, HomeTxn> txns_ GUARDED_BY(txn_mutex_);

  // Pages written since the last flush. Written by whichever thread
  // services a write fault (uffd executors run several concurrently) and
  // drained by an app thread's release flush, so it gets its own leaf
  // mutex; flushers swap the list out rather than iterate it in place.
  Mutex dirty_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::vector<PageId> dirty_pages_ GUARDED_BY(dirty_mutex_);
  // Flush counter tests read after the run is quiescent (the join orders
  // the read); atomic because two app threads may flush concurrently.
  std::atomic<std::uint64_t> n_flushes_{0};

  // Release-flush rendezvous between the app thread and the service thread.
  Mutex flush_mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  CondVar flush_cv_;
  int flush_outstanding_ GUARDED_BY(flush_mutex_) = 0;
  // FT only: unacked flush fields by page, so a home's crash+restart can be
  // survived by re-sending verbatim (value-form diffs make that idempotent).
  std::map<PageId, std::vector<std::byte>> ft_outstanding_ GUARDED_BY(flush_mutex_);

  // --- checkpoint state (service thread only) -------------------------------
  std::map<PageId, Ckpt> ckpt_store_;  // snapshots held for our predecessor
  bool restoring_ = false;             // home pages not yet replayed
  std::deque<Message> restore_parked_;
  realclock::TimePoint restore_started_{};
};

}  // namespace dsm
