// Eager release consistency (Munin's write-shared protocol, home-based).
// Writers modify local copies freely between synchronization points (twins
// track their changes); at every release/barrier the writer flushes diffs to
// each page's *home*, whose copy is always authoritative, and the release
// does not complete until the home has either
//   * invalidated every other copy (invalidate mode), or
//   * propagated the diff to every other copy (update mode — this is the
//     multiple-writer protocol that defeats false sharing, see F2).
// Acquire moves no data: a node that lost its copy re-fetches from the home
// on its next fault.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <vector>

#include "proto/protocol.hpp"

namespace dsm {

class ErcProtocol final : public Protocol {
 public:
  enum class Mode { kInvalidate, kUpdate };

  ErcProtocol(NodeContext& ctx, Mode mode);

  std::string_view name() const override;
  void init_pages() override;
  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void on_message(const Message& msg) override;

  void before_release(LockId) override { flush_dirty(); }
  void before_barrier(BarrierId) override { flush_dirty(); }

  /// Number of flushes performed (tests/benches).
  std::uint64_t flushes() const { return n_flushes_; }

 private:
  /// Sends every dirty page's diff to its home and blocks until all homes
  /// acknowledge — the "eager" in eager release consistency.
  void flush_dirty();
  /// Fire-and-forget fetches of the next Config::prefetch_pages pages.
  void prefetch_sequential(PageId page);

  void handle_page_request(const Message& msg);  // at the home
  void handle_page_reply(const Message& msg);    // at the faulter
  void handle_update(const Message& msg);        // home (from writer) or holder (from home)
  void handle_update_ack(const Message& msg);    // home (from holder) or writer (final)
  void handle_invalidate(const Message& msg);    // at a copy holder
  void handle_invalidate_ack(const Message& msg);// at the home

  /// Home-side per-page release transaction. Invalidate mode may run two
  /// phases: invalidate clean copies, then push the diff to dirty "keepers"
  /// (concurrent writers whose copies cannot be destroyed but must still
  /// observe the released words — the correctness hole naive invalidation
  /// leaves under false sharing).
  struct HomeTxn {
    NodeId writer = kNoNode;
    int acks = 0;
    std::vector<NodeId> keepers;
    std::vector<std::byte> diff;
  };

  /// Home-side: begin (or park) the transaction for a writer's diff.
  void home_begin_transaction(const Message& msg);
  /// Home-side: transaction finished — ack the writer, replay parked.
  void home_finish_transaction(PageId page);
  /// Home-side: all invalidate acks in; either finish or push to keepers.
  void home_after_invalidations(PageId page);

  Mode mode_;

  std::mutex txn_mutex_;
  std::map<PageId, HomeTxn> txns_;

  // App-thread-only list of pages written since the last flush.
  std::vector<PageId> dirty_pages_;

  // Release-flush rendezvous between the app thread and the service thread.
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  int flush_outstanding_ = 0;
  std::uint64_t n_flushes_ = 0;
};

}  // namespace dsm
