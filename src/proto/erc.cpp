#include "proto/erc.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "mem/diff.hpp"
#include "proto/page_io.hpp"

namespace dsm {
namespace {

// Payload layouts:
//   kPageRequest  : u32 page | u32 requester
//   kPageReply    : u32 page | raw page bytes
//   kUpdate       : u32 page | u8 kind (0 = writer→home, 1 = home→holder) | bytes diff
//   kUpdateAck    : u32 page | u8 kind (0 = holder→home, 1 = home→writer final)
//   kInvalidate   : u32 page | u32 unused
//   kInvalidateAck: u32 page | u8 kept (1 = holder kept a dirty copy)
//   kCkptStore    : u32 page | u32 version | bytes raw page   (home → buddy)
//   kCkptFetch    : u32 requester                              (restarted home → buddy)
//   kCkptData     : u32 count | count × (u32 page | u32 version | bytes raw page)

constexpr std::uint8_t kToHome = 0;
constexpr std::uint8_t kFromHome = 1;

}  // namespace

ErcProtocol::ErcProtocol(NodeContext& ctx, Mode mode) : Protocol(ctx), mode_(mode) {}

std::string_view ErcProtocol::name() const {
  return mode_ == Mode::kInvalidate ? "erc-invalidate" : "erc-update";
}

void ErcProtocol::init_pages() {
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    if (ctx_.home_of(p) == ctx_.id) {
      // The home's copy is authoritative from the start; read-only so the
      // home's own writes are trapped and diffed like anyone else's.
      e.state = PageState::kReadOnly;
      page_io::note_state(ctx_, p, PageState::kReadOnly);
      ctx_.view->protect(p, Access::kRead);
    } else {
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, p, PageState::kInvalid);
      ctx_.view->protect(p, Access::kNone);
    }
    e.copyset.clear();
    e.busy = false;
    e.manager_busy = false;
    e.dirty = false;
    e.twin.reset();
    e.acks_outstanding = 0;
    e.pending_node = kNoNode;
    e.parked.clear();
    e.manager_parked.clear();
  }
  {
    const MutexLock lock(dirty_mutex_);
    dirty_pages_.clear();
  }
  flush_outstanding_ = 0;
  const MutexLock lock(txn_mutex_);
  txns_.clear();
}

void ErcProtocol::on_read_fault(PageId page) {
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  // Wait for our transaction (!busy), not the state: a racing invalidation
  // can revoke the fresh copy before this thread runs — re-fetch then.
  for (;;) {
    if (e.state != PageState::kInvalid) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }
    e.busy = true;
    lock.unlock();

    ctx_.clock->advance(ctx_.cfg->fault_ns);
    const VirtualTime t0 = ctx_.clock->now();
    ctx_.stats->counter("proto.read_faults").add();
    WireWriter w(8);
    w.put(page);
    w.put(ctx_.id);
    ctx_.send(MsgType::kPageRequest, ctx_.home_of(page), std::move(w).take());
    prefetch_sequential(page);

    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
    ctx_.stats->histogram("proto.fault_service_ns").record(ctx_.clock->now() - t0);
    if (ctx_.trace != nullptr)
      ctx_.trace->complete(ctx_.id, TraceCat::kProto, "fault-txn", t0,
                           ctx_.clock->now(), "page", page);
  }
}

void ErcProtocol::prefetch_sequential(PageId page) {
  for (std::size_t k = 1; k <= ctx_.cfg->prefetch_pages; ++k) {
    const PageId next = page + static_cast<PageId>(k);
    if (next >= ctx_.table->n_pages()) return;
    auto& e = ctx_.table->entry(next);
    {
      const MutexLock lock(e.mutex);
      if (e.state != PageState::kInvalid || e.busy) continue;
      e.busy = true;  // async fetch; the reply path completes it
    }
    ctx_.stats->counter("proto.prefetches").add();
    WireWriter w(8);
    w.put(next);
    w.put(ctx_.id);
    ctx_.send(MsgType::kPageRequest, ctx_.home_of(next), std::move(w).take());
  }
}

void ErcProtocol::on_write_fault(PageId page) {
  auto& e = ctx_.table->entry(page);
  RelockableMutexLock lock(e.mutex);
  ctx_.stats->counter("proto.write_faults").add();
  ctx_.clock->advance(ctx_.cfg->fault_ns);
  for (;;) {
    if (e.state == PageState::kReadWrite) return;
    if (e.busy) {
      e.cv.wait(e.mutex);
      continue;
    }
    if (e.state == PageState::kReadOnly) {
      // The multiple-writer trick: go writable locally, remember the
      // pristine twin, and settle up at the next release. Zero messages.
      e.twin = make_twin(ctx_.view->alias_span(page));
      ctx_.view->protect(page, Access::kReadWrite);
      e.state = PageState::kReadWrite;
      page_io::note_state(ctx_, page, PageState::kReadWrite);
      if (!e.dirty) {
        e.dirty = true;
        const MutexLock dirty(dirty_mutex_);
        dirty_pages_.push_back(page);
      }
      return;
    }
    // Invalid: fetch a copy from the home first, then loop into the
    // read-only upgrade branch above (re-requesting if a racing
    // invalidation revoked the copy before this thread ran).
    e.busy = true;
    lock.unlock();
    WireWriter w(8);
    w.put(page);
    w.put(ctx_.id);
    ctx_.send(MsgType::kPageRequest, ctx_.home_of(page), std::move(w).take());
    lock.lock();
    while (e.busy) e.cv.wait(e.mutex);
  }
}

void ErcProtocol::flush_dirty() {
  // Swap the dirty list out whole: another app thread may be appending (via
  // a concurrent write fault) or flushing at the same time. Whoever swaps a
  // page owns flushing it; a racer that swaps an empty list still waits out
  // the outstanding acks below, so no release completes before every page
  // dirtied under it has reached its home.
  std::vector<PageId> dirty;
  {
    const MutexLock lock(dirty_mutex_);
    dirty.swap(dirty_pages_);
  }
  if (dirty.empty()) {
    RelockableMutexLock lock(flush_mutex_);
    while (flush_outstanding_ != 0) flush_cv_.wait(flush_mutex_);
    return;
  }
  ++n_flushes_;
  {
    // Register the expected acks BEFORE any update goes out: the first ack
    // can arrive while we are still encoding the second diff.
    const MutexLock lock(flush_mutex_);
    flush_outstanding_ += static_cast<int>(dirty.size());
  }
  {
    // Release-time fan-out batching: updates for pages sharing a home
    // coalesce into one kBatch datagram when the scope closes.
    Network::BatchScope batch(ctx_.net);
    for (const PageId page : dirty) {
      auto& e = ctx_.table->entry(page);
      std::vector<std::byte> field;
      std::size_t diff_bytes = 0;
      {
        const MutexLock lock(e.mutex);
        DSM_CHECK(e.dirty && e.twin != nullptr);
        const auto current = ctx_.view->alias_span(page);
        const std::span<const std::byte> twin{e.twin.get(), ctx_.cfg->page_size};
        const auto diff = encode_diff(current, twin);
        diff_bytes = diff.size();
        if (ctx_.home_of(page) != ctx_.id && !ft()) {
          // The XOR form is sound here: the home's copy matches our twin on
          // every diffed word (DRF — nobody else wrote them this interval).
          // Under FT the value form is used instead: a flush re-sent to a
          // restarted home decodes against a rolled-back base, where an XOR
          // would corrupt the very words it released.
          field = page_io::pack_diff_field_xor(ctx_, diff, current, twin);
        } else {
          // Self-update via loopback: by decode time our live page already
          // holds the new values, so there is no twin-equal base to XOR
          // against — ship the value form.
          field = page_io::pack_diff_field(ctx_, diff);
        }
        e.twin.reset();
        e.dirty = false;
        // Re-protect so the next write re-twins in a fresh interval.
        ctx_.view->protect(page, Access::kRead);
        e.state = PageState::kReadOnly;
        page_io::note_state(ctx_, page, PageState::kReadOnly);
      }
      ctx_.stats->counter("erc.diff_bytes").add(diff_bytes);
      if (ft() && ctx_.home_of(page) != ctx_.id) {
        // Keep the encoded field until the home's final ack: if the home
        // crashes first, the kPeerUp handler re-sends it verbatim.
        const MutexLock lock(flush_mutex_);
        ft_outstanding_[page] = field;
      }
      WireWriter w(field.size() + 16);
      w.put(page);
      w.put(kToHome);
      w.put_bytes(field);
      ctx_.send(MsgType::kUpdate, ctx_.home_of(page), std::move(w).take());
    }
  }

  RelockableMutexLock lock(flush_mutex_);
  while (flush_outstanding_ != 0) flush_cv_.wait(flush_mutex_);
}

void ErcProtocol::on_message(const Message& msg) {
  switch (msg.type) {
    case MsgType::kPageRequest: handle_page_request(msg); return;
    case MsgType::kPageReply: handle_page_reply(msg); return;
    case MsgType::kUpdate: handle_update(msg); return;
    case MsgType::kUpdateAck: handle_update_ack(msg); return;
    case MsgType::kInvalidate: handle_invalidate(msg); return;
    case MsgType::kInvalidateAck: handle_invalidate_ack(msg); return;
    case MsgType::kCkptStore: handle_ckpt_store(msg); return;
    case MsgType::kCkptFetch: handle_ckpt_fetch(msg); return;
    case MsgType::kCkptData: handle_ckpt_data(msg); return;
    default:
      DSM_CHECK_MSG(false, "erc: unexpected message " << to_string(msg.type));
  }
}

void ErcProtocol::handle_page_request(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto requester = r.get<NodeId>();
  if (restoring_) {
    // Restarted home, pre-restore: the authoritative copy is still at the
    // buddy. Parked requests replay once the checkpoints install.
    restore_parked_.push_back(msg);
    return;
  }
  auto& e = ctx_.table->entry(page);
  std::vector<std::byte> bytes;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK_MSG(ctx_.home_of(page) == ctx_.id, "page request at non-home");
    DSM_CHECK(e.state != PageState::kInvalid);
    e.copyset.insert(requester);
    bytes = page_io::read_page(ctx_, page, e.state);
  }
  WireWriter w(bytes.size() + 8);
  w.put(page);
  page_io::put_page(ctx_, w, bytes);
  ctx_.send(MsgType::kPageReply, requester, std::move(w).take());
}

void ErcProtocol::handle_page_reply(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto bytes = page_io::get_page(ctx_, r);
  auto& e = ctx_.table->entry(page);
  {
    const MutexLock lock(e.mutex);
    page_io::install_page(ctx_, page, bytes, Access::kRead);
    e.state = PageState::kReadOnly;
    page_io::note_state(ctx_, page, PageState::kReadOnly);
    e.busy = false;
  }
  e.cv.notify_all();
}

void ErcProtocol::handle_update(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto kind = r.get<std::uint8_t>();

  if (kind == kFromHome) {
    // Home→holder updates never use the XOR form (no base negotiation), so
    // no decode base is needed.
    const auto diff = page_io::unpack_diff_field(ctx_, r.get_bytes(), {});
    // Copy holder: apply the diff to the live page, and to the twin as well
    // if we are mid-write, so our own later diff excludes these bytes.
    auto& e = ctx_.table->entry(page);
    {
      const MutexLock lock(e.mutex);
      if (e.state != PageState::kInvalid) {
        // Service window: never relax the app view's protection to write —
        // a concurrent app-thread store would slip through without faulting
        // (no twin, no dirty bit) and the write would be silently lost.
        apply_diff(ctx_.view->alias_span(page), diff);
      }
      if (e.twin != nullptr) {
        apply_diff({e.twin.get(), ctx_.cfg->page_size}, diff);
      }
    }
    WireWriter w(8);
    w.put(page);
    w.put(kToHome);
    ctx_.send(MsgType::kUpdateAck, msg.src, std::move(w).take());
    return;
  }
  home_begin_transaction(msg);
}

void ErcProtocol::home_begin_transaction(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  r.get<std::uint8_t>();
  const auto field = r.get_bytes();
  const NodeId writer = msg.src;

  if (restoring_) {
    restore_parked_.push_back(msg);
    return;
  }
  auto& e = ctx_.table->entry(page);
  std::vector<NodeId> targets;
  std::vector<std::byte> diff;
  {
    const MutexLock lock(e.mutex);
    DSM_CHECK_MSG(ctx_.home_of(page) == ctx_.id, "update at non-home");
    if (e.manager_busy) {
      e.manager_parked.push_back(msg);
      return;
    }
    e.manager_busy = true;

    // Decode under the entry lock, against the pre-apply home copy: for the
    // XOR form the base must match the writer's twin on every diffed word,
    // which DRF guarantees even for parked transactions replayed later
    // (intervening transactions touched disjoint words).
    diff = page_io::unpack_diff_field(ctx_, field, ctx_.view->alias_span(page));

    // The home copy is authoritative: fold the diff in (and into the home's
    // own twin if the home is itself mid-write on this page).
    apply_diff(ctx_.view->alias_span(page), diff);
    if (e.twin != nullptr) apply_diff({e.twin.get(), ctx_.cfg->page_size}, diff);
    ++e.version;
    if (ctx_.check != nullptr) {
      ctx_.check->on_page_version(ctx_.id, page, e.version);
    }

    for (const NodeId n : e.copyset.members()) {
      // Dead holders can never ack; skip them (their copies are gone with
      // them, and on_peer_down retires them from already-open transactions).
      if (n != writer && (!ft() || ctx_.net->liveness().alive(n))) targets.push_back(n);
    }
    if (mode_ == Mode::kInvalidate) {
      // Optimistically rebuild the copyset as the acks come back (keepers
      // re-add themselves via the `kept` flag). The copyset tracks non-home
      // holders only: the home's own copy is authoritative and never dies.
      e.copyset.clear();
      if (writer != ctx_.id) e.copyset.insert(writer);
    }
  }
  {
    const MutexLock lock(txn_mutex_);
    auto& txn = txns_[page];
    txn.writer = writer;
    txn.pending = std::set<NodeId>(targets.begin(), targets.end());
    txn.keeper_phase = false;
    txn.keepers.clear();
    txn.diff.assign(diff.begin(), diff.end());
  }

  if (targets.empty()) {
    home_finish_transaction(page);
    return;
  }
  if (mode_ == Mode::kInvalidate) {
    WireWriter w(8);
    w.put(page);
    w.put(NodeId{0});
    const auto payload = std::move(w).take();
    for (const NodeId n : targets) ctx_.send(MsgType::kInvalidate, n, payload);
  } else {
    const auto fanout = page_io::pack_diff_field(ctx_, diff);
    WireWriter w(fanout.size() + 16);
    w.put(page);
    w.put(kFromHome);
    w.put_bytes(fanout);
    const auto payload = std::move(w).take();
    for (const NodeId n : targets) ctx_.send(MsgType::kUpdate, n, payload);
  }
}

void ErcProtocol::home_after_invalidations(PageId page) {
  // Invalidate mode, phase 2: concurrent writers kept their copies (their
  // unflushed words must not be destroyed), but they still have to observe
  // the released words — push the diff to exactly those nodes.
  std::vector<NodeId> keepers;
  std::vector<std::byte> diff;
  {
    const MutexLock lock(txn_mutex_);
    auto& txn = txns_.at(page);
    txn.keeper_phase = true;
    if (txn.keepers.empty()) {
      // nothing more to do
    } else {
      keepers = txn.keepers;
      txn.keepers.clear();
      diff = txn.diff;
      txn.pending = std::set<NodeId>(keepers.begin(), keepers.end());
    }
  }
  if (keepers.empty()) {
    home_finish_transaction(page);
    return;
  }
  ctx_.stats->counter("erc.keeper_updates").add(keepers.size());
  const auto field = page_io::pack_diff_field(ctx_, diff);
  WireWriter w(field.size() + 16);
  w.put(page);
  w.put(kFromHome);
  w.put_bytes(field);
  const auto payload = std::move(w).take();
  for (const NodeId n : keepers) ctx_.send(MsgType::kUpdate, n, payload);
}

void ErcProtocol::home_finish_transaction(PageId page) {
  NodeId writer;
  {
    const MutexLock lock(txn_mutex_);
    auto& txn = txns_.at(page);
    writer = txn.writer;
    txn.diff.clear();
  }
  {
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    e.manager_busy = false;
  }
  if (ft()) maybe_checkpoint(page);
  WireWriter w(8);
  w.put(page);
  w.put(kFromHome);
  ctx_.send(MsgType::kUpdateAck, writer, std::move(w).take());

  // Replay updates parked behind this transaction.
  auto& e = ctx_.table->entry(page);
  for (;;) {
    Message next;
    {
      const MutexLock lock(e.mutex);
      if (e.manager_busy || e.manager_parked.empty()) return;
      next = std::move(e.manager_parked.front());
      e.manager_parked.pop_front();
    }
    home_begin_transaction(next);
  }
}

void ErcProtocol::handle_update_ack(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto kind = r.get<std::uint8_t>();

  if (kind == kFromHome) {
    // Final ack to the releasing writer.
    bool done;
    {
      const MutexLock lock(flush_mutex_);
      DSM_CHECK(flush_outstanding_ > 0);
      ft_outstanding_.erase(page);
      done = --flush_outstanding_ == 0;
    }
    if (done) flush_cv_.notify_all();
    return;
  }

  // Holder ack arriving back at the home.
  bool done;
  {
    const MutexLock lock(txn_mutex_);
    auto& txn = txns_.at(page);
    const bool erased = txn.pending.erase(msg.src) > 0;
    DSM_CHECK_MSG(erased || ft(), "erc: unexpected update ack");
    if (!erased) return;  // FT: the death handler already retired this ack
    done = txn.pending.empty();
  }
  if (done) home_txn_advance(page);
}

void ErcProtocol::handle_invalidate(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  auto& e = ctx_.table->entry(page);
  std::uint8_t kept = 0;
  {
    const MutexLock lock(e.mutex);
    if (e.dirty) {
      // A concurrent writer: dropping the copy would lose its unflushed
      // words. Keep it; its words are race-free by DRF, and its own flush
      // will settle the page. (This degradation is why invalidate-mode ERC
      // suffers under false sharing — measured in F2.)
      kept = 1;
    } else if (e.state != PageState::kInvalid) {
      ctx_.view->protect(page, Access::kNone);
      e.state = PageState::kInvalid;
      page_io::note_state(ctx_, page, PageState::kInvalid);
    }
  }
  WireWriter w(8);
  w.put(page);
  w.put(kept);
  ctx_.send(MsgType::kInvalidateAck, msg.src, std::move(w).take());
}

void ErcProtocol::handle_invalidate_ack(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto kept = r.get<std::uint8_t>();
  if (kept != 0) {
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    e.copyset.insert(msg.src);
  }
  bool done;
  {
    const MutexLock lock(txn_mutex_);
    auto& txn = txns_.at(page);
    const bool erased = txn.pending.erase(msg.src) > 0;
    DSM_CHECK_MSG(erased || ft(), "erc: unexpected invalidate ack");
    if (!erased) return;  // FT: the death handler already retired this ack
    if (kept != 0) txn.keepers.push_back(msg.src);
    done = txn.pending.empty();
  }
  if (done) home_after_invalidations(page);
}

void ErcProtocol::home_txn_advance(PageId page) {
  bool keeper_phase;
  {
    const MutexLock lock(txn_mutex_);
    keeper_phase = txns_.at(page).keeper_phase;
  }
  // Update mode has no second phase; invalidate mode runs invalidations then
  // keeper pushes. home_after_invalidations marks the phase transition.
  if (mode_ == Mode::kInvalidate && !keeper_phase) {
    home_after_invalidations(page);
  } else {
    home_finish_transaction(page);
  }
}

// --------------------------------------------------------------------------
// Crash fault tolerance: buddy checkpointing + recovery
// --------------------------------------------------------------------------

void ErcProtocol::maybe_checkpoint(PageId page) {
  const auto period = ctx_.cfg->ft.checkpoint_period;
  if (period == 0) return;
  std::uint32_t version;
  std::vector<std::byte> bytes;
  {
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    version = e.version;
    if (version % period != 0) return;
    const auto span = ctx_.view->alias_span(page);
    bytes.assign(span.begin(), span.end());
  }
  ctx_.stats->counter("ft.ckpt_stores").add();
  ctx_.stats->counter("ft.ckpt_bytes").add(bytes.size());
  WireWriter w(bytes.size() + 16);
  w.put(page);
  w.put(version);
  w.put_bytes(bytes);
  ctx_.send(MsgType::kCkptStore, buddy(), std::move(w).take());
}

void ErcProtocol::handle_ckpt_store(const Message& msg) {
  WireReader r(msg.payload);
  const auto page = r.get<PageId>();
  const auto version = r.get<std::uint32_t>();
  const auto bytes = r.get_bytes();
  auto& ckpt = ckpt_store_[page];
  // Retransmit reordering could deliver an older snapshot late.
  if (version < ckpt.version) return;
  ckpt.version = version;
  ckpt.bytes.assign(bytes.begin(), bytes.end());
}

void ErcProtocol::handle_ckpt_fetch(const Message& msg) {
  WireReader r(msg.payload);
  const auto requester = r.get<NodeId>();
  std::uint32_t count = 0;
  for (const auto& [page, ckpt] : ckpt_store_) {
    (void)ckpt;
    if (ctx_.home_of(page) == requester) ++count;
  }
  WireWriter w(64);
  w.put(count);
  for (const auto& [page, ckpt] : ckpt_store_) {
    if (ctx_.home_of(page) != requester) continue;
    w.put(page);
    w.put(ckpt.version);
    w.put_bytes(ckpt.bytes);
  }
  ctx_.send(MsgType::kCkptData, requester, std::move(w).take());
}

void ErcProtocol::handle_ckpt_data(const Message& msg) {
  if (!restoring_) return;  // duplicate restore reply
  WireReader r(msg.payload);
  const auto count = r.get<std::uint32_t>();
  std::size_t restored = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto page = r.get<PageId>();
    const auto version = r.get<std::uint32_t>();
    const auto bytes = r.get_bytes();
    auto& e = ctx_.table->entry(page);
    const MutexLock lock(e.mutex);
    DSM_CHECK(bytes.size() == ctx_.cfg->page_size);
    std::memcpy(ctx_.view->alias_span(page).data(), bytes.data(), bytes.size());
    e.version = version;
    ++restored;
  }
  // Every home page becomes servable now — pages the buddy had no snapshot
  // of restore to their initial zeroed state (version 0): writes past their
  // last checkpoint boundary are the documented bounded loss.
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    if (ctx_.home_of(p) != ctx_.id) continue;
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    e.state = PageState::kReadOnly;
    page_io::note_state(ctx_, p, PageState::kReadOnly);
    ctx_.view->protect(p, Access::kRead);
  }
  restoring_ = false;
  ctx_.stats->counter("ft.ckpt_restored_pages").add(restored);
  ctx_.stats->histogram("ft.recovery_us")
      .record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              realclock::now() - restore_started_)
              .count()));
  // Replay everything that arrived while the restore was in flight.
  std::deque<Message> parked;
  parked.swap(restore_parked_);
  for (const Message& m : parked) on_message(m);
}

void ErcProtocol::on_peer_down(NodeId peer) {
  if (peer == ctx_.id) return;
  // Home side: retire the dead node's outstanding acks — a transaction
  // waiting on them would wedge its writer forever. (Idempotent: a second
  // announcement finds the pending sets already clean.)
  std::vector<PageId> drained;
  {
    const MutexLock lock(txn_mutex_);
    for (auto& [page, txn] : txns_) {
      if (txn.pending.erase(peer) > 0 && txn.pending.empty()) {
        drained.push_back(page);
      }
    }
  }
  for (const PageId page : drained) home_txn_advance(page);

  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    if (ctx_.home_of(p) == ctx_.id) {
      // Its copies died with it; stop invalidating/updating them.
      const MutexLock lock(e.mutex);
      e.copyset.erase(peer);
    } else if (ctx_.home_of(p) == peer) {
      // Our clean copies of the dead home's pages may be newer than the
      // checkpoint it will restore from; drop them so post-restart reads
      // observe one consistent (if rolled-back) timeline. Dirty copies
      // stay: their flush re-sends to the restored home.
      const MutexLock lock(e.mutex);
      if (e.state == PageState::kReadOnly && !e.dirty && !e.busy) {
        ctx_.view->protect(p, Access::kNone);
        e.state = PageState::kInvalid;
        page_io::note_state(ctx_, p, PageState::kInvalid);
      }
    }
  }
}

void ErcProtocol::on_peer_up(NodeId peer) {
  if (peer == ctx_.id) {
    // We just restarted: pull our pages' snapshots back from the buddy.
    WireWriter w(8);
    w.put(ctx_.id);
    ctx_.send(MsgType::kCkptFetch, buddy(), std::move(w).take());
    return;
  }
  // A home we were mid-flush to came back: re-send the unacked fields (value
  // form — idempotent against the restored base).
  std::vector<std::pair<PageId, std::vector<std::byte>>> resend;
  {
    const MutexLock lock(flush_mutex_);
    for (const auto& [page, field] : ft_outstanding_) {
      if (ctx_.home_of(page) == peer) resend.emplace_back(page, field);
    }
  }
  for (auto& [page, field] : resend) {
    ctx_.stats->counter("ft.flush_resends").add();
    WireWriter w(field.size() + 16);
    w.put(page);
    w.put(kToHome);
    w.put_bytes(field);
    ctx_.send(MsgType::kUpdate, peer, std::move(w).take());
  }
}

void ErcProtocol::on_self_restart() {
  restore_started_ = realclock::now();
  for (PageId p = 0; p < ctx_.table->n_pages(); ++p) {
    auto& e = ctx_.table->entry(p);
    const MutexLock lock(e.mutex);
    e.state = PageState::kInvalid;
    page_io::note_state(ctx_, p, PageState::kInvalid);
    ctx_.view->protect(p, Access::kNone);
    e.copyset.clear();
    e.busy = false;
    e.manager_busy = false;
    e.dirty = false;
    e.twin.reset();
    e.acks_outstanding = 0;
    e.pending_node = kNoNode;
    e.parked.clear();
    e.manager_parked.clear();
    e.version = 0;
  }
  {
    const MutexLock lock(dirty_mutex_);
    dirty_pages_.clear();
  }
  {
    const MutexLock lock(flush_mutex_);
    flush_outstanding_ = 0;
    ft_outstanding_.clear();
  }
  flush_cv_.notify_all();
  {
    const MutexLock lock(txn_mutex_);
    txns_.clear();
  }
  // Snapshots we held for our predecessor died with us — its next restore
  // falls back to zeroed pages (bounded loss, documented).
  ckpt_store_.clear();
  restore_parked_.clear();
  // Requests racing in ahead of the buddy's kCkptData park behind this flag;
  // set before the runtime marks us alive.
  restoring_ = true;
}

}  // namespace dsm
