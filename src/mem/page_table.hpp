// Per-node page table: the coherence state machine's bookkeeping. Protocols
// own the transition logic; the table provides the fields, per-page locking,
// and the app-thread wait/notify discipline described in DESIGN.md
// ("No-blocking service rule").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bitset.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace dsm {

/// Logical coherence state of a page in one node's view. Mirrors the view's
/// mprotect rights (kInvalid=NONE, kReadOnly=READ, kReadWrite=READ|WRITE).
enum class PageState : std::uint8_t { kInvalid = 0, kReadOnly = 1, kReadWrite = 2 };

const char* to_string(PageState state);

/// All per-page fields any implemented protocol needs. Unused fields cost a
/// few bytes per page; sharing one entry type keeps the service-thread
/// dispatch and the tests uniform across protocols.
struct PageEntry {
  mutable std::mutex mutex;
  /// App thread waits here for its fault transition to complete; protocol
  /// code also reuses it for ack-counting waits.
  std::condition_variable cv;

  PageState state = PageState::kInvalid;

  /// A coherence transaction initiated by this node is in flight.
  bool busy = false;
  /// An invalidation overtook our in-flight read reply (IVY-dynamic): the
  /// reply's data is stale — drop it and re-request.
  bool discard_reply = false;
  /// Manager-side per-page transaction lock (IVY central/fixed manager).
  bool manager_busy = false;

  /// Authoritative owner, maintained at the manager (IVY central/fixed).
  NodeId owner = kNoNode;
  /// Probable owner hint (IVY dynamic distributed manager).
  NodeId prob_owner = kNoNode;
  /// This node is the true owner (IVY dynamic).
  bool is_owner = false;

  /// Nodes holding read copies; valid at the owner (IVY) or home (ERC/LRC).
  NodeSet copyset;

  /// Requests that arrived while `busy` — replayed on completion.
  std::deque<Message> parked;
  /// Requests that arrived while `manager_busy` — replayed on kConfirm.
  std::deque<Message> manager_parked;

  /// Pristine pre-write copy for diffing (multi-writer protocols).
  std::unique_ptr<std::byte[]> twin;
  /// Page written since the last release/barrier flush.
  bool dirty = false;

  /// Invalidate/update acknowledgements the app thread is waiting for.
  int acks_outstanding = 0;
  /// Home-side: the writer whose release transaction is in flight (ERC).
  NodeId pending_node = kNoNode;

  /// This view holds bytes for the page that form a consistent base (LRC):
  /// set once a copy is installed or at init on the home; an invalidation
  /// revokes access rights but keeps the bytes (and this flag).
  bool has_base = false;

  /// Generic monotone per-page version (ERC home version / LRC floor).
  std::uint32_t version = 0;
};

class PageTable {
 public:
  PageTable(std::size_t n_pages, std::size_t n_nodes);

  std::size_t n_pages() const { return entries_.size(); }
  PageEntry& entry(PageId page);
  const PageEntry& entry(PageId page) const;

  /// Snapshot of a page's state without holding the caller's lock (tests).
  PageState state_of(PageId page) const;

  /// Count of pages currently in `state` (tests/stats).
  std::size_t count_in_state(PageState state) const;

 private:
  std::vector<std::unique_ptr<PageEntry>> entries_;
};

}  // namespace dsm
