// Per-node page table: the coherence state machine's bookkeeping. Protocols
// own the transition logic; the table provides the fields, per-page locking,
// and the app-thread wait/notify discipline described in DESIGN.md
// ("No-blocking service rule").
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/bitset.hpp"
#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace dsm {

/// Logical coherence state of a page in one node's view. Mirrors the view's
/// mprotect rights (kInvalid=NONE, kReadOnly=READ, kReadWrite=READ|WRITE).
enum class PageState : std::uint8_t { kInvalid = 0, kReadOnly = 1, kReadWrite = 2 };

const char* to_string(PageState state);

/// All per-page fields any implemented protocol needs. Unused fields cost a
/// few bytes per page; sharing one entry type keeps the service-thread
/// dispatch and the tests uniform across protocols.
struct PageEntry {
  /// Outermost entry-layer lock: held across protocol transitions that call
  /// into the checker, the view's protect(), and (in some protocols) sends.
  mutable Mutex mutex ACQUIRED_BEFORE(lock_order::fabric_gate);
  /// App thread waits here for its fault transition to complete; protocol
  /// code also reuses it for ack-counting waits.
  CondVar cv;

  PageState state GUARDED_BY(mutex) = PageState::kInvalid;

  /// A coherence transaction initiated by this node is in flight.
  bool busy GUARDED_BY(mutex) = false;
  /// An invalidation overtook our in-flight read reply (IVY-dynamic): the
  /// reply's data is stale — drop it and re-request.
  bool discard_reply GUARDED_BY(mutex) = false;
  /// Manager-side per-page transaction lock (IVY central/fixed manager).
  bool manager_busy GUARDED_BY(mutex) = false;

  /// Authoritative owner, maintained at the manager (IVY central/fixed).
  NodeId owner GUARDED_BY(mutex) = kNoNode;
  /// Probable owner hint (IVY dynamic distributed manager).
  NodeId prob_owner GUARDED_BY(mutex) = kNoNode;
  /// This node is the true owner (IVY dynamic).
  bool is_owner GUARDED_BY(mutex) = false;

  /// Nodes holding read copies; valid at the owner (IVY) or home (ERC/LRC).
  NodeSet copyset GUARDED_BY(mutex);

  /// Requests that arrived while `busy` — replayed on completion.
  std::deque<Message> parked GUARDED_BY(mutex);
  /// Requests that arrived while `manager_busy` — replayed on kConfirm.
  std::deque<Message> manager_parked GUARDED_BY(mutex);

  /// Pristine pre-write copy for diffing (multi-writer protocols).
  std::unique_ptr<std::byte[]> twin GUARDED_BY(mutex);
  /// Page written since the last release/barrier flush.
  bool dirty GUARDED_BY(mutex) = false;

  /// Invalidate/update acknowledgements the app thread is waiting for.
  int acks_outstanding GUARDED_BY(mutex) = 0;
  /// Home-side: the writer whose release transaction is in flight (ERC).
  NodeId pending_node GUARDED_BY(mutex) = kNoNode;

  /// This view holds bytes for the page that form a consistent base (LRC):
  /// set once a copy is installed or at init on the home; an invalidation
  /// revokes access rights but keeps the bytes (and this flag).
  bool has_base GUARDED_BY(mutex) = false;

  /// Generic monotone per-page version (ERC home version / LRC floor).
  std::uint32_t version GUARDED_BY(mutex) = 0;
};

class PageTable {
 public:
  PageTable(std::size_t n_pages, std::size_t n_nodes);

  std::size_t n_pages() const { return entries_.size(); }
  PageEntry& entry(PageId page);
  const PageEntry& entry(PageId page) const;

  /// Snapshot of a page's state without holding the caller's lock (tests).
  PageState state_of(PageId page) const;

  /// Count of pages currently in `state` (tests/stats).
  std::size_t count_in_state(PageState state) const;

 private:
  std::vector<std::unique_ptr<PageEntry>> entries_;
};

}  // namespace dsm
