// Twin/diff machinery (TreadMarks): before the first write to a page between
// synchronization points, the protocol snapshots a pristine "twin"; at flush
// time the twin is compared word-by-word against the live page and only the
// changed runs are shipped. This is what makes multiple concurrent writers to
// one page mergeable and what defeats false sharing.
//
// Wire format of a diff: repeated records
//   u32 offset | u32 length | `length` raw bytes
// with offsets strictly increasing and runs non-overlapping.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace dsm {

/// Allocates and fills a pristine copy of `page`.
std::unique_ptr<std::byte[]> make_twin(std::span<const std::byte> page);

/// Encodes the changed runs of `current` relative to `twin`. Comparison is
/// 8-byte-word granular; adjacent changed words coalesce into one run.
///
/// `merge_gap` (bytes) absorbs short clean gaps into a run to reduce record
/// overhead — but an absorbed gap ships *unchanged* words, which silently
/// clobbers concurrent writers' words when diffs are merged. The default is
/// therefore 0 (exact diffs); only raise it for single-writer transfers.
std::vector<std::byte> encode_diff(std::span<const std::byte> current,
                                   std::span<const std::byte> twin,
                                   std::size_t merge_gap = 0);

/// Applies a diff produced by encode_diff onto `page`. Aborts on a malformed
/// diff (corruption is a protocol bug, not an input condition).
void apply_diff(std::span<std::byte> page, std::span<const std::byte> diff);

/// Applies only the run structure of a diff as zero-fill — used by tests.
struct DiffStats {
  std::size_t runs = 0;
  std::size_t payload_bytes = 0;  ///< sum of run lengths
  std::size_t wire_bytes = 0;     ///< payload + record headers
};

/// Walks a diff without applying it (validation, stats).
DiffStats inspect_diff(std::span<const std::byte> diff);

// --- wire codecs (see DESIGN.md "Wire-level batching & compression") -------

/// Like encode_diff, but each run's payload bytes are `current XOR twin`
/// instead of raw values. XOR payloads are mostly-zero for small updates
/// (only the low bytes of a counter change), which zero-run RLE then
/// collapses. Only sound when the decoder holds a base page equal to the
/// encoder's twin for every diffed word — see xor_diff_to_value.
std::vector<std::byte> encode_diff_xor(std::span<const std::byte> current,
                                       std::span<const std::byte> twin,
                                       std::size_t merge_gap = 0);

/// Rewrites an XOR-coded diff into a plain value diff by XORing each run
/// against `base` (the decoder's copy of the encoder's twin). The result is
/// apply_diff-compatible.
std::vector<std::byte> xor_diff_to_value(std::span<const std::byte> diff,
                                         std::span<const std::byte> base);

/// Zero-run RLE: repeated records of `u16 zeros | u16 literals | literal
/// bytes`. Long zero runs collapse to 4 bytes; incompressible data costs
/// ~4 bytes per 64 KiB of literals. decode(encode(x)) == x for any x.
std::vector<std::byte> zrle_encode(std::span<const std::byte> data);
std::vector<std::byte> zrle_decode(std::span<const std::byte> data);

// --- total variants for untrusted input -------------------------------------
// The aborting parsers above treat malformed input as a protocol bug. Wire
// input is not trusted: these variants walk the same formats but report
// failure (false / nullopt) instead of aborting, never read or write out of
// bounds, and leave outputs untouched on failure.

/// Validates the whole diff against `page.size()` first, then applies it —
/// a malformed diff modifies nothing.
[[nodiscard]] bool try_apply_diff(std::span<std::byte> page,
                                  std::span<const std::byte> diff);

/// inspect_diff without the aborts (also checks run monotonicity).
std::optional<DiffStats> try_inspect_diff(std::span<const std::byte> diff);

/// xor_diff_to_value without the aborts.
std::optional<std::vector<std::byte>> try_xor_diff_to_value(
    std::span<const std::byte> diff, std::span<const std::byte> base);

/// zrle_decode with an output cap: a 4-byte record can claim 64 KiB of
/// zeros, so an attacker-sized input must not dictate the allocation.
/// Returns nullopt on truncated records or when the output would exceed
/// `max_out` bytes.
std::optional<std::vector<std::byte>> try_zrle_decode(
    std::span<const std::byte> data, std::size_t max_out);

}  // namespace dsm
