// Pluggable fault engines. A FaultEngine owns how a node's app view traps —
// how coherence faults are detected, classified (read miss vs write
// miss/upgrade), routed into the protocol state machine, and how access
// rights are (re)installed once the protocol resolves them. Two engines
// implement the seam (selectable per run, like `Config::transport`):
//
//   SigsegvEngine  the historical trap path: per-page mprotect rights on the
//                  app view, a process-wide SIGSEGV handler resolving faults
//                  synchronously on the faulting thread (mem/fault.hpp).
//                  Bit-identical to the pre-seam system.
//   UffdEngine     the production trap path: the app view is registered with
//                  `userfaultfd` in minor-fault + write-protect mode, and a
//                  dedicated poller thread per region services faults with
//                  UFFDIO_CONTINUE / UFFDIO_WRITEPROTECT — protocol code runs
//                  on a normal thread, free of the signal-handler
//                  async-signal-safety straitjacket, which is what unlocks
//                  multi-threaded app nodes. See DESIGN.md "Fault engines".
//
// The seam placement mirrors the Transport seam: everything *above* —
// protocol transitions, page install contents (always through the service
// window alias), twins/diffs, dsmcheck hooks — is engine-independent, so the
// same workload produces the same fault sequence, message flow, and result
// checksums on either engine (proven by the ".uffd" conformance-test copies).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/fault.hpp"
#include "mem/region.hpp"
#include "trace/trace.hpp"

namespace dsm {

enum class FaultEngineKind : std::uint8_t {
  kSigsegv,  ///< mprotect + SIGSEGV handler (default; the historical path)
  kUffd,     ///< userfaultfd minor+write-protect with a poller thread
};

const char* to_string(FaultEngineKind kind);

/// Per-region wiring an engine needs beyond the fault callback itself. The
/// tracer/clock/node triple lets the uffd engine emit its service-leg spans
/// ("uffd-minor" / "uffd-wp") on the owning node's virtual timeline.
struct RegionHooks {
  /// Invoked once per trapped access with (page, byte offset, is_write).
  /// The handler must leave the page's final access rights installed via
  /// ViewRegion::protect before returning — on either engine an unresolved
  /// fault simply re-faults (SIGSEGV) or re-waits (uffd) forever, which the
  /// watchdog converts into a diagnostic abort.
  FaultHandler on_fault;
  /// SIGSEGV fallback on architectures whose trap frame does not report
  /// read-vs-write. The uffd engine classifies from the kernel event flags
  /// and never calls this.
  WriteInferrer infer_write;
  Tracer* trace = nullptr;        ///< null when tracing is off
  LogicalClock* clock = nullptr;  ///< the owning node's virtual clock
  NodeId node = kNoNode;
  /// Application threads that may fault on this region concurrently. 1 (the
  /// default) keeps the uffd engine on its historical inline service path —
  /// one event at a time on the poller thread, bit-identical ordering. N > 1
  /// makes the poller a dispatcher feeding min(N, kMaxAppThreads) executor
  /// threads: concurrent faults on *different* pages are serviced in
  /// parallel, concurrent faults on the *same* page coalesce into the one
  /// in-flight service (counted as mem.fault_coalesced). The sigsegv engine
  /// ignores this field — it is single-thread-only by construction.
  std::size_t app_threads = 1;
};

/// A fault engine: installs trap ownership over view regions and implements
/// per-page access-right changes. `protect` must be callable from any thread
/// (service threads install pages concurrently with app-thread faults) and
/// must never wake a faulting thread before its handler has completed — the
/// engine, not the protocol, owns resume ordering.
class FaultEngine {
 public:
  virtual ~FaultEngine() = default;

  virtual std::string_view name() const = 0;
  virtual FaultEngineKind kind() const = 0;

  /// Takes trap ownership of `view`'s app view; faults invoke
  /// `hooks.on_fault`. Also routes ViewRegion::protect through this engine
  /// for the region's lifetime. Returns a token for remove_region. The
  /// region must outlive its registration, and no fault may be in flight
  /// when remove_region is called (all app threads joined).
  virtual int add_region(ViewRegion* view, RegionHooks hooks) = 0;
  virtual void remove_region(int token) = 0;

  /// Sets `page`'s access rights on the app view: mprotect bits (sigsegv)
  /// or PTE presence + the uffd write-protect bit (uffd).
  virtual void protect(const ViewRegion& view, PageId page, Access access) = 0;

  /// Number of live registrations (tests).
  virtual int active_regions() const = 0;

  virtual void debug_dump(std::ostream& os) const;
};

// --- construction & environment --------------------------------------------

/// Builds the requested engine. `stats` carries the uffd engine's counters
/// (uffd.minor_faults, uffd.wp_faults, uffd.continues, uffd.writeprotects,
/// uffd.zaps, uffd.wakes); the sigsegv engine adds no counters (its path is
/// bit-identical to the pre-seam system). Callers must probe
/// `uffd_available` before requesting kUffd.
std::unique_ptr<FaultEngine> make_fault_engine(FaultEngineKind kind,
                                               StatsRegistry* stats);

/// Conformance-suite override: TUTORDSM_FAULT_ENGINE=uffd|sigsegv selects
/// the engine for programs that didn't pick one explicitly. Returns true
/// when the variable was set and applied; aborts on an unknown value.
bool fault_engine_kind_from_env(FaultEngineKind& kind);

/// Capability probe: can this kernel/process run the uffd engine? Requires
/// the userfaultfd syscall (user-mode-only creation works unprivileged),
/// minor-fault support on shmem (kernel >= 5.13) and write-protect support
/// on shmem (kernel >= 5.19). Returns false with a human-readable reason in
/// `*reason` (used by the tests' visible "[uffd unavailable]" skip note).
/// TUTORDSM_UFFD_UNAVAILABLE=1 forces false so CI can exercise the skip and
/// fallback paths on any kernel.
bool uffd_available(std::string* reason);

/// Internal: the uffd backend factory (uffd_engine.cpp). Aborts if
/// uffd_available() is false.
std::unique_ptr<FaultEngine> make_uffd_engine(StatsRegistry* stats);

/// While a fault handler runs on a uffd executor thread, the kernel thread
/// id of the *faulting* app thread (from UFFD_FEATURE_THREAD_ID); 0 on the
/// sigsegv engine (the handler runs on the faulting thread itself) and
/// outside fault service. The runtime maps it back to a (node, thread)
/// attachment for watchdog slots and checker epochs.
std::uint32_t current_fault_ktid();

namespace detail {
/// Engine-internal: scopes current_fault_ktid() around one handler call.
class FaultKtidScope {
 public:
  explicit FaultKtidScope(std::uint32_t ktid);
  ~FaultKtidScope();
  FaultKtidScope(const FaultKtidScope&) = delete;
  FaultKtidScope& operator=(const FaultKtidScope&) = delete;
};
}  // namespace detail

}  // namespace dsm
