#include "mem/fault.hpp"

#include <signal.h>
#include <ucontext.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"

namespace dsm {

struct FaultRouter::Slot {
  // `base` is the publication point: non-null means every other field is
  // valid (release store on publish, acquire load in the handler).
  std::atomic<std::byte*> base{nullptr};
  std::size_t size = 0;
  const ViewRegion* view = nullptr;
  FaultHandler on_fault;
  WriteInferrer infer_write;
  // Set while a slot is being reused, to serialize add/remove.
  std::atomic<bool> claimed{false};
};

namespace {

// Serializes add/remove/count of slots; the SIGSEGV handler itself is
// lock-free (acquire-load of slot.base) and never takes this. Registration
// happens during setup, never under fabric or entry locks.
Mutex g_registry_mutex ACQUIRED_BEFORE(lock_order::fabric_gate);

// True if the mcontext says the access was a write; nullopt if unknowable.
bool fault_was_write(const ucontext_t* uc, bool* known) {
#if defined(__x86_64__)
  // Page-fault error code bit 1: set for write accesses.
  *known = true;
  return (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#else
  (void)uc;
  *known = false;
  return false;
#endif
}

FaultRouter::Slot* g_slots = nullptr;

void sigsegv_handler(int signo, siginfo_t* info, void* context) {
  auto* addr = static_cast<std::byte*>(info->si_addr);
  if (g_slots != nullptr && addr != nullptr) {
    for (int i = 0; i < 128; ++i) {
      auto& slot = g_slots[i];
      std::byte* base = slot.base.load(std::memory_order_acquire);
      if (base == nullptr || addr < base || addr >= base + slot.size) continue;
      const PageId page = slot.view->page_of(addr);
      const std::size_t offset =
          static_cast<std::size_t>(addr - base) % slot.view->page_size();
      bool known = false;
      bool is_write = fault_was_write(static_cast<ucontext_t*>(context), &known);
      if (!known) is_write = slot.infer_write ? slot.infer_write(page) : true;
      slot.on_fault(page, offset, is_write);
      return;  // protection has been fixed; retry the faulting instruction
    }
  }
  // Not ours: restore the default handler and re-raise for a clean crash.
  // The process dies two lines down; a corrupted stdio stream is acceptable
  // in exchange for printing the crash address.
  // dsmlint:allow(signal-safety)
  std::fprintf(stderr, "[tutordsm] unhandled SIGSEGV at %p\n", static_cast<void*>(addr));
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FaultRouter::FaultRouter() {
  // Leaked on purpose: the handler may run during static destruction.
  slots_ = new Slot[kMaxRegions];
  g_slots = slots_;

  struct sigaction sa = {};
  sa.sa_sigaction = &sigsegv_handler;
  sa.sa_flags = SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  DSM_CHECK(::sigaction(SIGSEGV, &sa, nullptr) == 0);
  // glibc reports some protection faults as SIGBUS on a few platforms.
  DSM_CHECK(::sigaction(SIGBUS, &sa, nullptr) == 0);
}

FaultRouter& FaultRouter::instance() {
  static FaultRouter* router = new FaultRouter();  // leaked, see ctor
  return *router;
}

int FaultRouter::add_region(const ViewRegion* view, FaultHandler on_fault,
                            WriteInferrer infer_write) {
  DSM_CHECK(view != nullptr);
  const MutexLock lock(g_registry_mutex);
  for (int i = 0; i < kMaxRegions; ++i) {
    auto& slot = slots_[i];
    if (slot.claimed.load(std::memory_order_relaxed)) continue;
    slot.claimed.store(true, std::memory_order_relaxed);
    slot.view = view;
    slot.size = view->size_bytes();
    slot.on_fault = std::move(on_fault);
    slot.infer_write = std::move(infer_write);
    slot.base.store(view->base(), std::memory_order_release);  // publish
    return i;
  }
  DSM_CHECK_MSG(false, "fault router slot table exhausted (" << kMaxRegions << ")");
  return -1;
}

void FaultRouter::remove_region(int token) {
  DSM_CHECK(token >= 0 && token < kMaxRegions);
  const MutexLock lock(g_registry_mutex);
  auto& slot = slots_[token];
  slot.base.store(nullptr, std::memory_order_release);  // unpublish first
  // No faults can be in flight for this region by contract (all node threads
  // have joined before teardown), so clearing the callbacks is safe.
  slot.on_fault = nullptr;
  slot.infer_write = nullptr;
  slot.view = nullptr;
  slot.size = 0;
  slot.claimed.store(false, std::memory_order_relaxed);
}

int FaultRouter::active_regions() const {
  const MutexLock lock(g_registry_mutex);
  int n = 0;
  for (int i = 0; i < kMaxRegions; ++i) {
    if (slots_[i].base.load(std::memory_order_relaxed) != nullptr) ++n;
  }
  return n;
}

}  // namespace dsm
