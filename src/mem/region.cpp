#include "mem/region.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.hpp"

namespace dsm {
namespace {

int to_prot(Access access) {
  switch (access) {
    case Access::kNone: return PROT_NONE;
    case Access::kRead: return PROT_READ;
    case Access::kReadWrite: return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

}  // namespace

std::size_t ViewRegion::os_page_size() {
  static const auto size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

ViewRegion::ViewRegion(std::size_t n_pages, std::size_t page_size)
    : n_pages_(n_pages), page_size_(page_size) {
  DSM_CHECK_MSG(page_size_ > 0 && page_size_ % os_page_size() == 0,
                "DSM page size " << page_size_ << " must be a multiple of the OS page size "
                                 << os_page_size());
  DSM_CHECK(n_pages_ > 0);
  void* addr = ::mmap(nullptr, size_bytes(), PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  DSM_CHECK_MSG(addr != MAP_FAILED, "mmap failed: " << std::strerror(errno));
  base_ = static_cast<std::byte*>(addr);
}

ViewRegion::~ViewRegion() {
  if (base_ != nullptr) ::munmap(base_, size_bytes());
}

void ViewRegion::protect(PageId page, Access access) const {
  DSM_CHECK_MSG(page < n_pages_, "protect of out-of-range page " << page);
  const int rc = ::mprotect(page_ptr(page), page_size_, to_prot(access));
  DSM_CHECK_MSG(rc == 0, "mprotect(page " << page << ") failed: " << std::strerror(errno));
}

ViewRegion::ScopedWritable::ScopedWritable(const ViewRegion& view, PageId page,
                                           Access restore_to)
    : view_(view), page_(page), restore_to_(restore_to) {
  view_.protect(page_, Access::kReadWrite);
}

ViewRegion::ScopedWritable::~ScopedWritable() { view_.protect(page_, restore_to_); }

}  // namespace dsm
