#include "mem/region.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.hpp"

namespace dsm {
namespace {

int to_prot(Access access) {
  switch (access) {
    case Access::kNone: return PROT_NONE;
    case Access::kRead: return PROT_READ;
    case Access::kReadWrite: return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

}  // namespace

std::size_t ViewRegion::os_page_size() {
  static const auto size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

ViewRegion::ViewRegion(std::size_t n_pages, std::size_t page_size)
    : n_pages_(n_pages), page_size_(page_size) {
  DSM_CHECK_MSG(page_size_ > 0 && page_size_ % os_page_size() == 0,
                "DSM page size " << page_size_ << " must be a multiple of the OS page size "
                                 << os_page_size());
  DSM_CHECK(n_pages_ > 0);
  // Both the app view and the service window must alias the same physical
  // pages with independent protections, which anonymous MAP_PRIVATE memory
  // cannot do — back the region with a memfd and map it twice.
  const int fd = ::memfd_create("dsm-view", MFD_CLOEXEC);
  DSM_CHECK_MSG(fd >= 0, "memfd_create failed: " << std::strerror(errno));
  const int trc = ::ftruncate(fd, static_cast<off_t>(size_bytes()));
  DSM_CHECK_MSG(trc == 0, "ftruncate failed: " << std::strerror(errno));
  void* app = ::mmap(nullptr, size_bytes(), PROT_NONE, MAP_SHARED | MAP_NORESERVE, fd, 0);
  DSM_CHECK_MSG(app != MAP_FAILED, "mmap (app view) failed: " << std::strerror(errno));
  void* alias = ::mmap(nullptr, size_bytes(), PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_NORESERVE, fd, 0);
  DSM_CHECK_MSG(alias != MAP_FAILED, "mmap (service window) failed: " << std::strerror(errno));
  ::close(fd);  // the mappings keep the backing alive
  base_ = static_cast<std::byte*>(app);
  alias_ = static_cast<std::byte*>(alias);
}

ViewRegion::~ViewRegion() {
  if (base_ != nullptr) ::munmap(base_, size_bytes());
  if (alias_ != nullptr) ::munmap(alias_, size_bytes());
}

void ViewRegion::protect(PageId page, Access access) const {
  if (protect_route_) {
    protect_route_(page, access);
    return;
  }
  mprotect_page(page, access);
}

void ViewRegion::mprotect_page(PageId page, Access access) const {
  DSM_CHECK_MSG(page < n_pages_, "protect of out-of-range page " << page);
  const int rc = ::mprotect(page_ptr(page), page_size_, to_prot(access));
  DSM_CHECK_MSG(rc == 0, "mprotect(page " << page << ") failed: " << std::strerror(errno));
}

}  // namespace dsm
