#include "mem/fault_engine.hpp"

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "common/lock_order.hpp"
#include "common/logging.hpp"
#include "common/thread_annotations.hpp"

namespace dsm {

const char* to_string(FaultEngineKind kind) {
  switch (kind) {
    case FaultEngineKind::kSigsegv: return "sigsegv";
    case FaultEngineKind::kUffd: return "uffd";
  }
  return "?";
}

void FaultEngine::debug_dump(std::ostream& os) const {
  os << "  fault engine: " << name() << " (" << active_regions() << " regions)\n";
}

namespace {
thread_local std::uint32_t t_fault_ktid = 0;
}  // namespace

std::uint32_t current_fault_ktid() { return t_fault_ktid; }

namespace detail {
FaultKtidScope::FaultKtidScope(std::uint32_t ktid) { t_fault_ktid = ktid; }
FaultKtidScope::~FaultKtidScope() { t_fault_ktid = 0; }
}  // namespace detail

namespace {

// The historical trap path, wrapped behind the seam: registration delegates
// to the process-wide SIGSEGV FaultRouter, and protect() is raw mprotect.
// No protect route is installed on the region — ViewRegion::protect falls
// through to mprotect_page directly, so the fault path, syscall sequence,
// and counters are bit-identical to the pre-seam system.
class SigsegvEngine final : public FaultEngine {
 public:
  std::string_view name() const override { return "sigsegv"; }
  FaultEngineKind kind() const override { return FaultEngineKind::kSigsegv; }

  int add_region(ViewRegion* view, RegionHooks hooks) override {
    DSM_CHECK(view != nullptr && hooks.on_fault != nullptr);
    const int token = FaultRouter::instance().add_region(
        view, std::move(hooks.on_fault), std::move(hooks.infer_write));
    const MutexLock lock(mutex_);
    tokens_.push_back(token);
    return token;
  }

  void remove_region(int token) override {
    FaultRouter::instance().remove_region(token);
    const MutexLock lock(mutex_);
    std::erase(tokens_, token);
  }

  void protect(const ViewRegion& view, PageId page, Access access) override {
    view.mprotect_page(page, access);
  }

  int active_regions() const override {
    const MutexLock lock(mutex_);
    return static_cast<int>(tokens_.size());
  }

 private:
  // Never nested with the router's registry lock (add/remove release it
  // before taking this); nothing is acquired while this is held.
  mutable Mutex mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::vector<int> tokens_
      GUARDED_BY(mutex_);  ///< this engine's FaultRouter registrations
};

}  // namespace

std::unique_ptr<FaultEngine> make_fault_engine(FaultEngineKind kind,
                                               StatsRegistry* stats) {
  switch (kind) {
    case FaultEngineKind::kSigsegv: return std::make_unique<SigsegvEngine>();
    case FaultEngineKind::kUffd: return make_uffd_engine(stats);
  }
  DSM_CHECK_MSG(false, "unknown fault engine kind");
  return nullptr;
}

bool fault_engine_kind_from_env(FaultEngineKind& kind) {
  const char* value = std::getenv("TUTORDSM_FAULT_ENGINE");
  if (value == nullptr || *value == '\0') return false;
  if (std::strcmp(value, "sigsegv") == 0) {
    kind = FaultEngineKind::kSigsegv;
    return true;
  }
  if (std::strcmp(value, "uffd") == 0) {
    kind = FaultEngineKind::kUffd;
    return true;
  }
  DSM_CHECK_MSG(false, "TUTORDSM_FAULT_ENGINE must be 'sigsegv' or 'uffd', got '"
                           << value << "'");
  return false;
}

}  // namespace dsm
