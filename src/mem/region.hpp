// A node's private "view" of the shared address space, mapped twice over
// one memfd backing:
//
//   * the *app view* (`base()`): per-page protection encodes the coherence
//     state (PROT_NONE = invalid, PROT_READ = read-only copy,
//     PROT_READ|WRITE = owned/writable) — the same mprotect/SIGSEGV
//     machinery IVY- and TreadMarks-class systems used;
//   * the *service window* (`alias_ptr()`): an always-writable alias of the
//     same pages, for service threads installing remote data or applying
//     diffs.
//
// The service window exists because flipping the app view's protection to
// write into it opens a race: an app-thread store to a read-only page that
// lands inside the writable window retires silently instead of faulting, so
// the protocol never twins/diffs it and the write is lost. Writing through
// the alias leaves the app view's protection — and therefore the fault
// semantics — untouched at all times.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "common/types.hpp"

namespace dsm {

/// Access rights for a DSM page. The sigsegv engine maps these onto mprotect
/// bits; the uffd engine onto PTE presence + the userfaultfd write-protect
/// bit. Either way the app view traps exactly on accesses the rights forbid.
enum class Access : int { kNone = 0, kRead = 1, kReadWrite = 2 };

class ViewRegion {
 public:
  /// Maps `n_pages` pages of `page_size` bytes (page_size must be a
  /// multiple of the OS page size) with no access rights.
  ViewRegion(std::size_t n_pages, std::size_t page_size);
  ~ViewRegion();
  ViewRegion(const ViewRegion&) = delete;
  ViewRegion& operator=(const ViewRegion&) = delete;
  ViewRegion(ViewRegion&&) = delete;
  ViewRegion& operator=(ViewRegion&&) = delete;

  std::byte* base() const { return base_; }
  std::size_t n_pages() const { return n_pages_; }
  std::size_t page_size() const { return page_size_; }
  std::size_t size_bytes() const { return n_pages_ * page_size_; }

  /// Host OS page size (mprotect granularity).
  static std::size_t os_page_size();

  std::byte* page_ptr(PageId page) const { return base_ + page * page_size_; }
  std::span<std::byte> page_span(PageId page) const {
    return {page_ptr(page), page_size_};
  }

  /// The service window: the same physical page as `page_ptr(page)`, always
  /// readable and writable, never faulting. Service threads MUST move page
  /// contents through this alias — never by relaxing the app view's
  /// protection, which would let concurrent app-thread stores slip past the
  /// fault handler unrecorded (a lost update).
  std::byte* alias_ptr(PageId page) const { return alias_ + page * page_size_; }
  std::span<std::byte> alias_span(PageId page) const {
    return {alias_ptr(page), page_size_};
  }

  bool contains(const void* addr) const {
    const auto* p = static_cast<const std::byte*>(addr);
    return p >= base_ && p < base_ + size_bytes();
  }
  PageId page_of(const void* addr) const {
    return static_cast<PageId>(
        static_cast<std::size_t>(static_cast<const std::byte*>(addr) - base_) / page_size_);
  }
  std::size_t offset_of(const void* addr) const {
    return static_cast<std::size_t>(static_cast<const std::byte*>(addr) - base_);
  }

  /// Sets a page's access rights on the app view. Routed through the fault
  /// engine the region is registered with (FaultEngine::add_region installs
  /// the route); unregistered regions fall back to raw mprotect — the
  /// historical behaviour, kept so the region is usable standalone.
  void protect(PageId page, Access access) const;

  /// The raw mprotect path (the sigsegv engine's implementation, and the
  /// unregistered-region fallback). Aborts on failure (programming error).
  void mprotect_page(PageId page, Access access) const;

  /// Engine routing for protect(). Set/cleared by FaultEngine::add_region /
  /// remove_region; at most one engine owns a region at a time.
  using ProtectRoute = std::function<void(PageId, Access)>;
  void set_protect_route(ProtectRoute route) { protect_route_ = std::move(route); }
  bool has_protect_route() const { return static_cast<bool>(protect_route_); }

 private:
  std::size_t n_pages_;
  std::size_t page_size_;
  std::byte* base_ = nullptr;   ///< app view: access rights = coherence state
  std::byte* alias_ = nullptr;  ///< service window: always PROT_READ|WRITE
  ProtectRoute protect_route_;  ///< engine override for protect(); see above
};

}  // namespace dsm
