// A node's private "view" of the shared address space: an anonymous mmap
// whose per-page protection encodes the coherence state (PROT_NONE =
// invalid, PROT_READ = read-only copy, PROT_READ|WRITE = owned/writable).
// This is the same mprotect/SIGSEGV machinery IVY- and TreadMarks-class
// systems used; here every node's view lives in one process at a distinct
// base address (see DESIGN.md "Substitutions").
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace dsm {

/// Access rights for a DSM page, mapped onto mprotect bits.
enum class Access : int { kNone = 0, kRead = 1, kReadWrite = 2 };

class ViewRegion {
 public:
  /// Maps `n_pages` pages of `page_size` bytes (page_size must be a
  /// multiple of the OS page size) with no access rights.
  ViewRegion(std::size_t n_pages, std::size_t page_size);
  ~ViewRegion();
  ViewRegion(const ViewRegion&) = delete;
  ViewRegion& operator=(const ViewRegion&) = delete;
  ViewRegion(ViewRegion&&) = delete;
  ViewRegion& operator=(ViewRegion&&) = delete;

  std::byte* base() const { return base_; }
  std::size_t n_pages() const { return n_pages_; }
  std::size_t page_size() const { return page_size_; }
  std::size_t size_bytes() const { return n_pages_ * page_size_; }

  /// Host OS page size (mprotect granularity).
  static std::size_t os_page_size();

  std::byte* page_ptr(PageId page) const { return base_ + page * page_size_; }
  std::span<std::byte> page_span(PageId page) const {
    return {page_ptr(page), page_size_};
  }

  bool contains(const void* addr) const {
    const auto* p = static_cast<const std::byte*>(addr);
    return p >= base_ && p < base_ + size_bytes();
  }
  PageId page_of(const void* addr) const {
    return static_cast<PageId>(
        static_cast<std::size_t>(static_cast<const std::byte*>(addr) - base_) / page_size_);
  }
  std::size_t offset_of(const void* addr) const {
    return static_cast<std::size_t>(static_cast<const std::byte*>(addr) - base_);
  }

  /// Sets a page's protection. Aborts on mprotect failure (programming error).
  void protect(PageId page, Access access) const;

  /// Temporarily opens a page for the protocol to copy data in/out without
  /// disturbing the logical access state; restores `restore_to` on
  /// destruction. Used by service threads installing remote data.
  class ScopedWritable {
   public:
    ScopedWritable(const ViewRegion& view, PageId page, Access restore_to);
    ~ScopedWritable();
    ScopedWritable(const ScopedWritable&) = delete;
    ScopedWritable& operator=(const ScopedWritable&) = delete;

   private:
    const ViewRegion& view_;
    PageId page_;
    Access restore_to_;
  };

 private:
  std::size_t n_pages_;
  std::size_t page_size_;
  std::byte* base_ = nullptr;
};

}  // namespace dsm
