#include "mem/page_table.hpp"

#include "common/assert.hpp"

namespace dsm {

const char* to_string(PageState state) {
  switch (state) {
    case PageState::kInvalid: return "Invalid";
    case PageState::kReadOnly: return "ReadOnly";
    case PageState::kReadWrite: return "ReadWrite";
  }
  return "?";
}

PageTable::PageTable(std::size_t n_pages, std::size_t n_nodes) {
  entries_.reserve(n_pages);
  for (std::size_t i = 0; i < n_pages; ++i) {
    auto entry = std::make_unique<PageEntry>();
    // Sized before the table is published; the lock is for the analysis
    // (copyset is guarded and this is not PageEntry's own constructor).
    const MutexLock lock(entry->mutex);
    entry->copyset = NodeSet(n_nodes);
    entries_.push_back(std::move(entry));
  }
}

PageEntry& PageTable::entry(PageId page) {
  DSM_CHECK_MSG(page < entries_.size(), "page " << page << " out of range");
  return *entries_[page];
}

const PageEntry& PageTable::entry(PageId page) const {
  DSM_CHECK_MSG(page < entries_.size(), "page " << page << " out of range");
  return *entries_[page];
}

PageState PageTable::state_of(PageId page) const {
  const auto& e = entry(page);
  const MutexLock lock(e.mutex);
  return e.state;
}

std::size_t PageTable::count_in_state(PageState state) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    const MutexLock lock(e->mutex);
    if (e->state == state) ++n;
  }
  return n;
}

}  // namespace dsm
