#include "mem/diff.hpp"

#include <cstdint>
#include <cstring>

#include "common/assert.hpp"

namespace dsm {
namespace {

constexpr std::size_t kWord = 8;
constexpr std::size_t kRecordHeader = 2 * sizeof(std::uint32_t);

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

std::uint32_t read_u32(std::span<const std::byte> data, std::size_t at) {
  std::uint32_t v;
  std::memcpy(&v, data.data() + at, sizeof v);
  return v;
}

void append_u16(std::vector<std::byte>& out, std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

std::uint16_t read_u16(std::span<const std::byte> data, std::size_t at) {
  std::uint16_t v;
  std::memcpy(&v, data.data() + at, sizeof v);
  return v;
}

bool words_equal(const std::byte* a, const std::byte* b, std::size_t n) {
  return std::memcmp(a, b, n) == 0;
}

std::vector<std::byte> encode_diff_impl(std::span<const std::byte> current,
                                        std::span<const std::byte> twin,
                                        std::size_t merge_gap, bool xor_payload) {
  DSM_CHECK_MSG(current.size() == twin.size(), "diff size mismatch");
  std::vector<std::byte> out;

  const std::size_t size = current.size();
  std::size_t run_start = size;  // `size` means "no open run"
  std::size_t run_end = 0;

  auto flush_run = [&] {
    if (run_start >= size) return;
    append_u32(out, static_cast<std::uint32_t>(run_start));
    append_u32(out, static_cast<std::uint32_t>(run_end - run_start));
    if (xor_payload) {
      for (std::size_t k = run_start; k < run_end; ++k) {
        out.push_back(current[k] ^ twin[k]);
      }
    } else {
      out.insert(out.end(), current.begin() + static_cast<std::ptrdiff_t>(run_start),
                 current.begin() + static_cast<std::ptrdiff_t>(run_end));
    }
    run_start = size;
  };

  for (std::size_t off = 0; off < size; off += kWord) {
    const std::size_t n = std::min(kWord, size - off);
    const bool changed = !words_equal(current.data() + off, twin.data() + off, n);
    if (changed) {
      if (run_start >= size) {
        run_start = off;
      } else if (off - run_end > merge_gap) {
        flush_run();
        run_start = off;
      }
      run_end = off + n;
    }
  }
  flush_run();
  return out;
}

}  // namespace

std::unique_ptr<std::byte[]> make_twin(std::span<const std::byte> page) {
  auto twin = std::make_unique<std::byte[]>(page.size());
  std::memcpy(twin.get(), page.data(), page.size());
  return twin;
}

std::vector<std::byte> encode_diff(std::span<const std::byte> current,
                                   std::span<const std::byte> twin,
                                   std::size_t merge_gap) {
  return encode_diff_impl(current, twin, merge_gap, /*xor_payload=*/false);
}

std::vector<std::byte> encode_diff_xor(std::span<const std::byte> current,
                                       std::span<const std::byte> twin,
                                       std::size_t merge_gap) {
  return encode_diff_impl(current, twin, merge_gap, /*xor_payload=*/true);
}

std::vector<std::byte> xor_diff_to_value(std::span<const std::byte> diff,
                                         std::span<const std::byte> base) {
  std::vector<std::byte> out;
  out.reserve(diff.size());
  std::size_t at = 0;
  while (at < diff.size()) {
    DSM_CHECK_MSG(at + kRecordHeader <= diff.size(), "truncated diff header");
    const std::uint32_t offset = read_u32(diff, at);
    const std::uint32_t length = read_u32(diff, at + sizeof(std::uint32_t));
    append_u32(out, offset);
    append_u32(out, length);
    at += kRecordHeader;
    DSM_CHECK_MSG(at + length <= diff.size(), "truncated diff payload");
    DSM_CHECK_MSG(static_cast<std::size_t>(offset) + length <= base.size(),
                  "diff run [" << offset << "," << offset + length << ") exceeds page");
    for (std::uint32_t k = 0; k < length; ++k) {
      out.push_back(diff[at + k] ^ base[offset + k]);
    }
    at += length;
  }
  DSM_CHECK(at == diff.size());
  return out;
}

std::vector<std::byte> zrle_encode(std::span<const std::byte> data) {
  // Record: u16 zeros | u16 literals | literal bytes. A literal run is only
  // broken for a zero run long enough that a fresh record header (4 bytes)
  // pays for itself.
  constexpr std::size_t kMax = 0xFFFF;
  constexpr std::size_t kMinZeroRun = 8;
  std::vector<std::byte> out;
  out.reserve(data.size() / 8 + 16);
  const std::size_t n = data.size();
  std::size_t i = 0;
  while (i < n) {
    std::size_t zeros = 0;
    while (i + zeros < n && zeros < kMax && data[i + zeros] == std::byte{0}) ++zeros;
    i += zeros;
    const std::size_t lit_start = i;
    while (i < n && i - lit_start < kMax) {
      if (data[i] != std::byte{0}) {
        ++i;
        continue;
      }
      std::size_t z = 0;
      while (i + z < n && z < kMinZeroRun && data[i + z] == std::byte{0}) ++z;
      if (z >= kMinZeroRun || i + z == n) break;  // zeros start the next record
      i += z;  // short interior zero run: cheaper as literals
    }
    append_u16(out, static_cast<std::uint16_t>(zeros));
    append_u16(out, static_cast<std::uint16_t>(i - lit_start));
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(lit_start),
               data.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return out;
}

std::vector<std::byte> zrle_decode(std::span<const std::byte> data) {
  std::vector<std::byte> out;
  std::size_t at = 0;
  while (at < data.size()) {
    DSM_CHECK_MSG(at + 2 * sizeof(std::uint16_t) <= data.size(),
                  "truncated zrle header");
    const std::uint16_t zeros = read_u16(data, at);
    const std::uint16_t lits = read_u16(data, at + sizeof(std::uint16_t));
    at += 2 * sizeof(std::uint16_t);
    DSM_CHECK_MSG(at + lits <= data.size(), "truncated zrle literals");
    out.resize(out.size() + zeros, std::byte{0});
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(at),
               data.begin() + static_cast<std::ptrdiff_t>(at + lits));
    at += lits;
  }
  return out;
}

void apply_diff(std::span<std::byte> page, std::span<const std::byte> diff) {
  std::size_t at = 0;
  while (at < diff.size()) {
    DSM_CHECK_MSG(at + kRecordHeader <= diff.size(), "truncated diff header");
    const std::uint32_t offset = read_u32(diff, at);
    const std::uint32_t length = read_u32(diff, at + sizeof(std::uint32_t));
    at += kRecordHeader;
    DSM_CHECK_MSG(at + length <= diff.size(), "truncated diff payload");
    DSM_CHECK_MSG(static_cast<std::size_t>(offset) + length <= page.size(),
                  "diff run [" << offset << "," << offset + length << ") exceeds page");
    std::memcpy(page.data() + offset, diff.data() + at, length);
    at += length;
  }
  DSM_CHECK(at == diff.size());
}

DiffStats inspect_diff(std::span<const std::byte> diff) {
  DiffStats stats;
  std::size_t at = 0;
  std::uint64_t last_end = 0;
  while (at < diff.size()) {
    DSM_CHECK_MSG(at + kRecordHeader <= diff.size(), "truncated diff header");
    const std::uint32_t offset = read_u32(diff, at);
    const std::uint32_t length = read_u32(diff, at + sizeof(std::uint32_t));
    at += kRecordHeader + length;
    DSM_CHECK_MSG(at <= diff.size(), "truncated diff payload");
    DSM_CHECK_MSG(offset >= last_end, "diff runs out of order");
    last_end = static_cast<std::uint64_t>(offset) + length;
    ++stats.runs;
    stats.payload_bytes += length;
    stats.wire_bytes += kRecordHeader + length;
  }
  return stats;
}

namespace {

/// Bounds-only walk shared by the total variants: every record header and
/// payload in bounds, every run inside a page of `page_size` bytes
/// (SIZE_MAX = unconstrained), no trailing bytes.
bool diff_bounds_ok(std::span<const std::byte> diff, std::size_t page_size) {
  std::size_t at = 0;
  while (at < diff.size()) {
    if (diff.size() - at < kRecordHeader) return false;
    const std::uint32_t offset = read_u32(diff, at);
    const std::uint32_t length = read_u32(diff, at + sizeof(std::uint32_t));
    at += kRecordHeader;
    if (diff.size() - at < length) return false;
    if (page_size != SIZE_MAX &&
        (offset > page_size || page_size - offset < length)) {
      return false;
    }
    at += length;
  }
  return true;
}

}  // namespace

bool try_apply_diff(std::span<std::byte> page, std::span<const std::byte> diff) {
  if (!diff_bounds_ok(diff, page.size())) return false;
  apply_diff(page, diff);  // fully validated: the aborting walk cannot fire
  return true;
}

std::optional<DiffStats> try_inspect_diff(std::span<const std::byte> diff) {
  DiffStats stats;
  std::size_t at = 0;
  std::uint64_t last_end = 0;
  while (at < diff.size()) {
    if (diff.size() - at < kRecordHeader) return std::nullopt;
    const std::uint32_t offset = read_u32(diff, at);
    const std::uint32_t length = read_u32(diff, at + sizeof(std::uint32_t));
    at += kRecordHeader;
    if (diff.size() - at < length) return std::nullopt;
    if (offset < last_end) return std::nullopt;
    at += length;
    last_end = static_cast<std::uint64_t>(offset) + length;
    ++stats.runs;
    stats.payload_bytes += length;
    stats.wire_bytes += kRecordHeader + length;
  }
  return stats;
}

std::optional<std::vector<std::byte>> try_xor_diff_to_value(
    std::span<const std::byte> diff, std::span<const std::byte> base) {
  if (!diff_bounds_ok(diff, base.size())) return std::nullopt;
  return xor_diff_to_value(diff, base);
}

std::optional<std::vector<std::byte>> try_zrle_decode(
    std::span<const std::byte> data, std::size_t max_out) {
  std::vector<std::byte> out;
  std::size_t at = 0;
  while (at < data.size()) {
    if (data.size() - at < 2 * sizeof(std::uint16_t)) return std::nullopt;
    const std::uint16_t zeros = read_u16(data, at);
    const std::uint16_t lits = read_u16(data, at + sizeof(std::uint16_t));
    at += 2 * sizeof(std::uint16_t);
    if (data.size() - at < lits) return std::nullopt;
    if (max_out - out.size() < static_cast<std::size_t>(zeros) + lits) {
      return std::nullopt;  // claimed expansion exceeds the caller's cap
    }
    out.resize(out.size() + zeros, std::byte{0});
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(at),
               data.begin() + static_cast<std::ptrdiff_t>(at + lits));
    at += lits;
  }
  return out;
}

}  // namespace dsm
