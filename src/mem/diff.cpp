#include "mem/diff.hpp"

#include <cstdint>
#include <cstring>

#include "common/assert.hpp"

namespace dsm {
namespace {

constexpr std::size_t kWord = 8;
constexpr std::size_t kRecordHeader = 2 * sizeof(std::uint32_t);

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

std::uint32_t read_u32(std::span<const std::byte> data, std::size_t at) {
  std::uint32_t v;
  std::memcpy(&v, data.data() + at, sizeof v);
  return v;
}

bool words_equal(const std::byte* a, const std::byte* b, std::size_t n) {
  return std::memcmp(a, b, n) == 0;
}

}  // namespace

std::unique_ptr<std::byte[]> make_twin(std::span<const std::byte> page) {
  auto twin = std::make_unique<std::byte[]>(page.size());
  std::memcpy(twin.get(), page.data(), page.size());
  return twin;
}

std::vector<std::byte> encode_diff(std::span<const std::byte> current,
                                   std::span<const std::byte> twin,
                                   std::size_t merge_gap) {
  DSM_CHECK_MSG(current.size() == twin.size(), "diff size mismatch");
  std::vector<std::byte> out;

  const std::size_t size = current.size();
  std::size_t run_start = size;  // `size` means "no open run"
  std::size_t run_end = 0;

  auto flush_run = [&] {
    if (run_start >= size) return;
    append_u32(out, static_cast<std::uint32_t>(run_start));
    append_u32(out, static_cast<std::uint32_t>(run_end - run_start));
    out.insert(out.end(), current.begin() + static_cast<std::ptrdiff_t>(run_start),
               current.begin() + static_cast<std::ptrdiff_t>(run_end));
    run_start = size;
  };

  for (std::size_t off = 0; off < size; off += kWord) {
    const std::size_t n = std::min(kWord, size - off);
    const bool changed = !words_equal(current.data() + off, twin.data() + off, n);
    if (changed) {
      if (run_start >= size) {
        run_start = off;
      } else if (off - run_end > merge_gap) {
        flush_run();
        run_start = off;
      }
      run_end = off + n;
    }
  }
  flush_run();
  return out;
}

void apply_diff(std::span<std::byte> page, std::span<const std::byte> diff) {
  std::size_t at = 0;
  while (at < diff.size()) {
    DSM_CHECK_MSG(at + kRecordHeader <= diff.size(), "truncated diff header");
    const std::uint32_t offset = read_u32(diff, at);
    const std::uint32_t length = read_u32(diff, at + sizeof(std::uint32_t));
    at += kRecordHeader;
    DSM_CHECK_MSG(at + length <= diff.size(), "truncated diff payload");
    DSM_CHECK_MSG(static_cast<std::size_t>(offset) + length <= page.size(),
                  "diff run [" << offset << "," << offset + length << ") exceeds page");
    std::memcpy(page.data() + offset, diff.data() + at, length);
    at += length;
  }
  DSM_CHECK(at == diff.size());
}

DiffStats inspect_diff(std::span<const std::byte> diff) {
  DiffStats stats;
  std::size_t at = 0;
  std::uint64_t last_end = 0;
  while (at < diff.size()) {
    DSM_CHECK_MSG(at + kRecordHeader <= diff.size(), "truncated diff header");
    const std::uint32_t offset = read_u32(diff, at);
    const std::uint32_t length = read_u32(diff, at + sizeof(std::uint32_t));
    at += kRecordHeader + length;
    DSM_CHECK_MSG(at <= diff.size(), "truncated diff payload");
    DSM_CHECK_MSG(offset >= last_end, "diff runs out of order");
    last_end = static_cast<std::uint64_t>(offset) + length;
    ++stats.runs;
    stats.payload_bytes += length;
    stats.wire_bytes += kRecordHeader + length;
  }
  return stats;
}

}  // namespace dsm
