// The userfaultfd fault engine. The app view keeps the exact memfd
// double-map layout the sigsegv engine uses (region.hpp), but instead of
// mprotect rights it is registered with a userfaultfd in **minor-fault +
// write-protect** mode:
//
//   kNone       app-view PTEs zapped (MADV_DONTNEED). The shmem pages — and
//               therefore the bytes, still reachable through the service
//               window alias — survive; the next app touch raises a MINOR
//               fault (page in cache, absent from the VMA's page table).
//   kRead       PTE installed (UFFDIO_CONTINUE) with the uffd write-protect
//               bit set (UFFDIO_WRITEPROTECT): reads retire, writes raise a
//               WP fault.
//   kReadWrite  PTE installed, write-protect bit clear.
//
// Every page is pre-touched through the alias at registration so it exists
// in the shmem file from the start — all app faults are then MINOR or WP
// events, never MISSING, and UFFDIO_COPY's install-with-contents job is done
// by the alias write + CONTINUE pair instead (the alias already *is* the
// page). A dedicated poller thread per region reads fault events and runs
// the protocol fault handler — ordinary thread context, not a signal frame.
//
// Resume ordering is the load-bearing invariant: protect() NEVER wakes a
// blocked faulting thread (CONTINUE is issued with DONTWAKE; setting the WP
// bit never wakes by kernel rule; clearing it uses DONTWAKE). The poller
// alone wakes the faulted range, once, after the handler returns — exactly
// the sigsegv semantics, where the faulting instruction cannot retry before
// the in-handler protocol transaction completes. Without this, a protocol's
// intermediate read-install inside a write-fault transaction would wake the
// writer early and manufacture a second (WP) fault the sigsegv engine never
// sees, breaking conformance.
#include "mem/fault_engine.hpp"

#if defined(__linux__) && __has_include(<linux/userfaultfd.h>)
#include <linux/userfaultfd.h>
#endif

// The engine needs the minor-fault + write-protect userfaultfd API (kernel
// headers >= 5.19-era). Older build environments compile the probe-fails
// stub at the bottom of this file instead.
#if defined(UFFDIO_REGISTER_MODE_MINOR) && defined(UFFDIO_CONTINUE) && \
    defined(UFFD_FEATURE_MINOR_SHMEM) && defined(UFFD_FEATURE_WP_HUGETLBFS_SHMEM)
#define TUTORDSM_HAVE_UFFD 1
#else
#define TUTORDSM_HAVE_UFFD 0
#endif

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/lock_order.hpp"
#include "common/logging.hpp"
#include "common/thread_annotations.hpp"

#if TUTORDSM_HAVE_UFFD
#include <fcntl.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace dsm {

namespace {

bool uffd_forced_unavailable() {
  const char* value = std::getenv("TUTORDSM_UFFD_UNAVAILABLE");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

#if TUTORDSM_HAVE_UFFD

namespace {

// UFFD_USER_MODE_ONLY (kernel >= 5.11) lets unprivileged processes create a
// userfaultfd restricted to user-mode faults — all a DSM app view ever
// raises — even when vm.unprivileged_userfaultfd is 0.
#ifndef UFFD_USER_MODE_ONLY
#define UFFD_USER_MODE_ONLY 1
#endif

// UFFDIO_CONTINUE_MODE_WP (kernel >= 6.0 headers) — the ioctl mode bits are
// stable kernel ABI, so define the constant when building against older
// headers; whether the *running* kernel honors it is what the functional
// probe in uffd_available() below establishes (EINVAL there → unavailable).
#ifndef UFFDIO_CONTINUE_MODE_WP
#define UFFDIO_CONTINUE_MODE_WP (static_cast<__u64>(1) << 1)
#endif

// UFFD_FEATURE_EXACT_ADDRESS (kernel >= 5.18): without it fault addresses
// arrive page-masked, which would collapse every access to byte offset 0 —
// dsmcheck's word-granular race attribution needs the real address, exactly
// as the SIGSEGV trap frame delivers it.
#ifndef UFFD_FEATURE_EXACT_ADDRESS
#define UFFD_FEATURE_EXACT_ADDRESS (static_cast<__u64>(1) << 11)
#endif

// UFFD_FEATURE_THREAD_ID (kernel >= 4.14, far older than the minor-fault
// floor): stamps each event with the faulting thread's kernel tid, which is
// how a multi-threaded node attributes a fault serviced on an executor
// thread back to the (node, app-thread) pair that raised it.
#ifndef UFFD_FEATURE_THREAD_ID
#define UFFD_FEATURE_THREAD_ID (static_cast<__u64>(1) << 8)
#endif

// O_NONBLOCK is load-bearing, not a preference: poll(2) on a *blocking*
// userfaultfd reports POLLERR instead of "no events yet" (userfaultfd(2)),
// which would spin the poller forever while the faulting thread sleeps.
int open_uffd() {
  int fd = static_cast<int>(
      ::syscall(SYS_userfaultfd, O_CLOEXEC | O_NONBLOCK | UFFD_USER_MODE_ONLY));
  if (fd < 0 && errno == EINVAL) {
    // Pre-5.11 kernel: the UFFD_USER_MODE_ONLY flag is unknown; retry without
    // it (works when unprivileged userfaultfd is permitted).
    fd = static_cast<int>(::syscall(SYS_userfaultfd, O_CLOEXEC | O_NONBLOCK));
  }
  return fd;
}

constexpr std::uint64_t kNeededFeatures =
    UFFD_FEATURE_MINOR_SHMEM | UFFD_FEATURE_WP_HUGETLBFS_SHMEM |
    UFFD_FEATURE_EXACT_ADDRESS | UFFD_FEATURE_THREAD_ID;

/// One kernel fault event, classified and queued for an executor.
struct PendingFault {
  PageId page = kNoPage;
  std::size_t offset = 0;
  bool is_write = false;
  bool wp_fault = false;
  std::uint32_t ktid = 0;  ///< faulting thread's kernel tid (THREAD_ID)
};

/// One registered region: its own userfaultfd, its own poller thread. With
/// one app thread (hooks.app_threads == 1, the historical model) at most one
/// fault is ever pending, so the poller services events inline — the exact
/// pre-mt sequence. With N app threads the poller turns dispatcher: it
/// classifies events, coalesces same-page duplicates against the in-flight
/// set, and feeds an executor pool that runs the protocol handlers — so
/// faults on different pages are serviced concurrently.
struct UffdRegion {
  ViewRegion* view = nullptr;
  RegionHooks hooks;
  int uffd = -1;
  int stop_pipe[2] = {-1, -1};  ///< write end poked to stop the poller
  std::thread poller;

  // Executor-pool state; unused (pool empty) when app_threads == 1. The
  // queue mutex is held only around container flips — never across the
  // protocol handler, which takes page/fabric locks of its own.
  Mutex queue_mutex ACQUIRED_BEFORE(lock_order::fabric_gate);
  CondVar queue_cv;
  std::deque<PendingFault> queue GUARDED_BY(queue_mutex);
  std::set<PageId> in_flight GUARDED_BY(queue_mutex);
  bool stopping GUARDED_BY(queue_mutex) = false;
  std::vector<std::thread> pool;
};

class UffdEngine final : public FaultEngine {
 public:
  explicit UffdEngine(StatsRegistry* stats) : stats_(stats) {
    std::string reason;
    DSM_CHECK_MSG(uffd_available(&reason), "uffd engine requested but " << reason);
  }

  ~UffdEngine() override {
    // Engine teardown with regions still registered: release them (the
    // System removes explicitly; raw-engine users may rely on the dtor).
    std::vector<int> live;
    {
      const MutexLock lock(mutex_);
      for (std::size_t i = 0; i < regions_.size(); ++i) {
        if (regions_[i] != nullptr) live.push_back(static_cast<int>(i));
      }
    }
    for (const int token : live) remove_region(token);
  }

  std::string_view name() const override { return "uffd"; }
  FaultEngineKind kind() const override { return FaultEngineKind::kUffd; }

  int add_region(ViewRegion* view, RegionHooks hooks) override {
    DSM_CHECK(view != nullptr && hooks.on_fault != nullptr);
    DSM_CHECK_MSG(!view->has_protect_route(),
                  "region already registered with a fault engine");
    auto region = std::make_unique<UffdRegion>();
    region->view = view;
    region->hooks = std::move(hooks);

    region->uffd = open_uffd();
    DSM_CHECK_MSG(region->uffd >= 0, "userfaultfd failed: " << std::strerror(errno));
    struct uffdio_api api = {};
    api.api = UFFD_API;
    api.features = kNeededFeatures;
    DSM_CHECK_MSG(::ioctl(region->uffd, UFFDIO_API, &api) == 0,
                  "UFFDIO_API failed: " << std::strerror(errno));

    // The app view was mapped PROT_NONE (the sigsegv engine's all-invalid
    // state); under uffd the VMA itself is fully accessible and access
    // control lives in the PTEs instead.
    DSM_CHECK_MSG(::mprotect(view->base(), view->size_bytes(), PROT_READ | PROT_WRITE) == 0,
                  "mprotect(app view, RW) failed: " << std::strerror(errno));

    struct uffdio_register reg = {};
    reg.range.start = reinterpret_cast<unsigned long long>(view->base());  // NOLINT
    reg.range.len = view->size_bytes();
    reg.mode = UFFDIO_REGISTER_MODE_MINOR | UFFDIO_REGISTER_MODE_WP;
    DSM_CHECK_MSG(::ioctl(region->uffd, UFFDIO_REGISTER, &reg) == 0,
                  "UFFDIO_REGISTER failed: " << std::strerror(errno));

    // Pre-touch every page through the alias so it exists in the shmem file:
    // from here on, every app-view fault is MINOR (page in cache, no PTE),
    // never MISSING. Read-then-write-back keeps any existing bytes intact.
    for (PageId p = 0; p < view->n_pages(); ++p) {
      volatile std::byte* first = view->alias_ptr(p);
      *first = *first;
    }
    // All pages start invalid: zap whatever PTEs the pre-touch-era app view
    // may have had (normally none — the view was PROT_NONE until now).
    zap(*region, 0, view->n_pages());

    DSM_CHECK(::pipe2(region->stop_pipe, O_CLOEXEC) == 0);

    UffdRegion* raw = region.get();
    view->set_protect_route(
        [this, raw](PageId page, Access access) { do_protect(*raw, page, access); });
    // Multi-threaded nodes get an executor pool; a single-threaded node
    // keeps the historical inline-service poller (pool empty).
    if (region->hooks.app_threads > 1) {
      const std::size_t n_exec = std::min(region->hooks.app_threads, kMaxAppThreads);
      region->pool.reserve(n_exec);
      for (std::size_t i = 0; i < n_exec; ++i) {
        region->pool.emplace_back([this, raw] { executor_loop(*raw); });
      }
    }
    region->poller = std::thread([this, raw] { poll_loop(*raw); });

    const MutexLock lock(mutex_);
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i] == nullptr) {
        regions_[i] = std::move(region);
        return static_cast<int>(i);
      }
    }
    regions_.push_back(std::move(region));
    return static_cast<int>(regions_.size() - 1);
  }

  void remove_region(int token) override {
    std::unique_ptr<UffdRegion> region;
    {
      const MutexLock lock(mutex_);
      const auto idx = static_cast<std::size_t>(token);
      DSM_CHECK(token >= 0 && idx < regions_.size() && regions_[idx] != nullptr);
      region = std::move(regions_[idx]);
    }
    // No fault may be in flight by contract (app threads joined), so the
    // poller is blocked in poll(): poke it and join. Executors then drain
    // whatever the dispatcher already queued (nothing, by the same contract)
    // and exit on the stopping flag.
    const char byte = 's';
    DSM_CHECK(::write(region->stop_pipe[1], &byte, 1) == 1);
    region->poller.join();
    {
      const MutexLock lock(region->queue_mutex);
      region->stopping = true;
    }
    region->queue_cv.notify_all();
    for (auto& exec : region->pool) exec.join();
    region->view->set_protect_route(nullptr);

    struct uffdio_range range = {};
    range.start = reinterpret_cast<unsigned long long>(region->view->base());  // NOLINT
    range.len = region->view->size_bytes();
    ::ioctl(region->uffd, UFFDIO_UNREGISTER, &range);
    ::close(region->uffd);
    ::close(region->stop_pipe[0]);
    ::close(region->stop_pipe[1]);
    // Leave the app view PTE-less but RW-mapped; a later engine (or raw
    // mprotect use) re-establishes whatever rights it needs.
  }

  void protect(const ViewRegion& view, PageId page, Access access) override {
    UffdRegion* region = nullptr;
    {
      const MutexLock lock(mutex_);
      for (auto& candidate : regions_) {
        if (candidate != nullptr && candidate->view == &view) {
          region = candidate.get();
          break;
        }
      }
    }
    DSM_CHECK_MSG(region != nullptr, "protect on a region this engine does not own");
    do_protect(*region, page, access);
  }

  int active_regions() const override {
    const MutexLock lock(mutex_);
    int n = 0;
    for (const auto& region : regions_) {
      if (region != nullptr) ++n;
    }
    return n;
  }

  void debug_dump(std::ostream& os) const override {
    FaultEngine::debug_dump(os);
    if (stats_ == nullptr) return;
    const auto snap = stats_->snapshot();
    os << "    uffd: minor=" << snap.counter("uffd.minor_faults")
       << " wp=" << snap.counter("uffd.wp_faults")
       << " continues=" << snap.counter("uffd.continues")
       << " writeprotects=" << snap.counter("uffd.writeprotects")
       << " zaps=" << snap.counter("uffd.zaps")
       << " wakes=" << snap.counter("uffd.wakes")
       << " coalesced=" << snap.counter("mem.fault_coalesced") << '\n';
  }

 private:
  void count(const char* name) {
    if (stats_ != nullptr) stats_->counter(name).add();
  }

  static struct uffdio_range page_range(const UffdRegion& region, PageId page,
                                        std::size_t n = 1) {
    struct uffdio_range range = {};
    range.start =
        reinterpret_cast<unsigned long long>(region.view->page_ptr(page));  // NOLINT
    range.len = n * region.view->page_size();
    return range;
  }

  /// Zaps [first, first+n) pages' app-view PTEs. Bytes survive in shmem.
  void zap(const UffdRegion& region, PageId first, std::size_t n) {
    const int rc = ::madvise(region.view->page_ptr(first),
                             n * region.view->page_size(), MADV_DONTNEED);
    DSM_CHECK_MSG(rc == 0, "madvise(DONTNEED) failed: " << std::strerror(errno));
  }

  /// Installs the page's PTE from the shmem page cache, without waking any
  /// blocked faulter. `write_protected` must be baked into the CONTINUE
  /// itself (UFFDIO_CONTINUE_MODE_WP): installing writable and flipping the
  /// WP bit in a second ioctl would open a window where an app-thread store
  /// retires untrapped — a lost update the protocol never twins or diffs.
  /// Returns false on EEXIST (already mapped — the downgrade/upgrade case,
  /// where the caller adjusts the existing PTE's WP bit instead).
  bool map_page(const UffdRegion& region, PageId page, bool write_protected) {
    struct uffdio_continue cont = {};
    cont.range = page_range(region, page);
    cont.mode = UFFDIO_CONTINUE_MODE_DONTWAKE;
    if (write_protected) cont.mode |= UFFDIO_CONTINUE_MODE_WP;
    while (::ioctl(region.uffd, UFFDIO_CONTINUE, &cont) != 0) {
      if (errno == EEXIST) return false;
      DSM_CHECK_MSG(errno == EAGAIN,
                    "UFFDIO_CONTINUE(page " << page << ") failed: " << std::strerror(errno));
      cont.mapped = 0;  // retry after transient mm contention
    }
    count("uffd.continues");
    return true;
  }

  /// Sets or clears the page's uffd write-protect bit. Setting never wakes
  /// (kernel rule — WP|DONTWAKE is even rejected as EINVAL); clearing is
  /// issued with DONTWAKE so resume stays the poller's job.
  void write_protect(const UffdRegion& region, PageId page, bool protect_writes) {
    struct uffdio_writeprotect wp = {};
    wp.range = page_range(region, page);
    wp.mode = protect_writes ? std::uint64_t{UFFDIO_WRITEPROTECT_MODE_WP}
                             : std::uint64_t{UFFDIO_WRITEPROTECT_MODE_DONTWAKE};
    while (::ioctl(region.uffd, UFFDIO_WRITEPROTECT, &wp) != 0) {
      DSM_CHECK_MSG(errno == EAGAIN, "UFFDIO_WRITEPROTECT(page "
                                         << page << ") failed: " << std::strerror(errno));
    }
    count("uffd.writeprotects");
  }

  void do_protect(UffdRegion& region, PageId page, Access access) {
    DSM_CHECK_MSG(page < region.view->n_pages(),
                  "protect of out-of-range page " << page);
    switch (access) {
      case Access::kNone:
        zap(region, page, 1);
        count("uffd.zaps");
        return;
      case Access::kRead:
        // Freshly-installed PTE is born write-protected (atomic); an
        // already-mapped page (RW→R downgrade) flips its WP bit in place —
        // also atomic. Either way there is no writable instant in between.
        if (!map_page(region, page, /*write_protected=*/true)) {
          write_protect(region, page, /*protect_writes=*/true);
        }
        return;
      case Access::kReadWrite:
        if (!map_page(region, page, /*write_protected=*/false)) {
          write_protect(region, page, /*protect_writes=*/false);
        }
        return;
    }
  }

  void poll_loop(UffdRegion& region) {
    for (;;) {
      struct pollfd fds[2] = {{region.uffd, POLLIN, 0}, {region.stop_pipe[0], POLLIN, 0}};
      const int rc = ::poll(fds, 2, -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        DSM_CHECK_MSG(false, "uffd poll failed: " << std::strerror(errno));
      }
      if ((fds[1].revents & POLLIN) != 0) return;  // stop requested
      if ((fds[0].revents & POLLIN) == 0) continue;

      struct uffd_msg msg = {};
      const ssize_t n = ::read(region.uffd, &msg, sizeof(msg));
      if (n <= 0) continue;  // raced with teardown
      if (msg.event != UFFD_EVENT_PAGEFAULT) continue;

      const auto* addr = reinterpret_cast<const std::byte*>(  // NOLINT
          static_cast<std::uintptr_t>(msg.arg.pagefault.address));
      const auto flags = msg.arg.pagefault.flags;
      PendingFault fault;
      fault.page = region.view->page_of(addr);
      fault.offset = region.view->offset_of(addr) % region.view->page_size();
      fault.wp_fault = (flags & UFFD_PAGEFAULT_FLAG_WP) != 0;
      fault.is_write = (flags & UFFD_PAGEFAULT_FLAG_WRITE) != 0;
      fault.ktid = msg.arg.pagefault.feat.ptid;
      count(fault.wp_fault ? "uffd.wp_faults" : "uffd.minor_faults");

      if (region.pool.empty()) {
        // Single app thread: service inline on the poller — the historical
        // one-event-at-a-time sequence, bit-identical to the pre-mt engine.
        service_fault(region, fault);
        continue;
      }
      // Dispatcher mode. A second fault on a page whose service is already
      // in flight coalesces: the faulting thread stays parked, the one
      // whole-page UFFDIO_WAKE issued when that service completes wakes it
      // too, and if its rights are still insufficient it re-faults and gets
      // dispatched fresh. Everything else queues for the executor pool.
      bool dispatched = false;
      {
        const MutexLock lock(region.queue_mutex);
        if (region.in_flight.contains(fault.page)) {
          count("mem.fault_coalesced");
        } else {
          region.in_flight.insert(fault.page);
          region.queue.push_back(fault);
          dispatched = true;
        }
      }
      if (dispatched) region.queue_cv.notify_one();
    }
  }

  /// Runs the protocol handler for one classified fault. Called inline on
  /// the poller (single-thread mode) or on an executor thread (pool mode).
  void run_handler(UffdRegion& region, const PendingFault& fault) {
    // The uffd service leg: kernel event → protocol handler complete,
    // on the owning node's virtual timeline (the runtime's read-fault /
    // write-fault span opens inside this one).
    const TraceScope span(region.hooks.trace, region.hooks.node, TraceCat::kFault,
                          fault.wp_fault ? "uffd-wp" : "uffd-minor", region.hooks.clock,
                          "page", fault.page, "write",
                          static_cast<std::uint64_t>(fault.is_write));
    const detail::FaultKtidScope ktid_scope(fault.ktid);
    region.hooks.on_fault(fault.page, fault.offset, fault.is_write);
  }

  /// Single wake, after the handler installed the page's final rights — the
  /// uffd equivalent of returning from the SIGSEGV handler. Wakes every
  /// thread parked on the page, including coalesced same-page faulters.
  void wake_page(UffdRegion& region, PageId page) {
    struct uffdio_range wake = page_range(region, page);
    while (::ioctl(region.uffd, UFFDIO_WAKE, &wake) != 0) {
      DSM_CHECK_MSG(errno == EAGAIN, "UFFDIO_WAKE(page " << page
                                         << ") failed: " << std::strerror(errno));
    }
    count("uffd.wakes");
  }

  void service_fault(UffdRegion& region, const PendingFault& fault) {
    run_handler(region, fault);
    wake_page(region, fault.page);
  }

  /// Executor-pool worker: drain dispatched faults until teardown.
  void executor_loop(UffdRegion& region) {
    for (;;) {
      PendingFault fault;
      {
        MutexLock lock(region.queue_mutex);
        while (region.queue.empty() && !region.stopping)
          region.queue_cv.wait(region.queue_mutex);
        if (region.queue.empty()) return;  // stopping, drained
        fault = region.queue.front();
        region.queue.pop_front();
      }
      run_handler(region, fault);
      {
        // Retire the page from in_flight BEFORE waking it. A woken thread
        // whose rights are still insufficient re-faults immediately; if the
        // page were still marked in-flight the poller would coalesce that
        // fault against a wake that has already happened and the thread
        // would park forever. Erasing first means every fault the poller
        // coalesced is covered by the wake below, and any fault arriving
        // after the erase is dispatched fresh (a spurious re-service of a
        // page that already has rights is harmless, as with SIGSEGV races).
        const MutexLock lock(region.queue_mutex);
        region.in_flight.erase(fault.page);
      }
      wake_page(region, fault.page);
    }
  }

  StatsRegistry* stats_;
  // Guards the slot table only; pollers never take it (each owns its region
  // outright). Registration happens during setup, above the fabric bracket.
  mutable Mutex mutex_ ACQUIRED_BEFORE(lock_order::fabric_gate);
  std::vector<std::unique_ptr<UffdRegion>> regions_ GUARDED_BY(mutex_);
};

}  // namespace

// Functional capability probe: rather than trusting feature bits alone, run
// the engine's actual page lifecycle against a one-page scratch memfd —
// register MINOR|WP, pre-touch through an alias, then install the PTE
// write-protected in one atomic UFFDIO_CONTINUE. A kernel that advertises
// minor faults but predates UFFDIO_CONTINUE_MODE_WP (5.13..6.2) fails here
// instead of racing silently at run time.
bool uffd_available(std::string* reason) {
  const auto fail = [reason](const std::string& why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  if (uffd_forced_unavailable()) {
    return fail("disabled by TUTORDSM_UFFD_UNAVAILABLE");
  }
  const int fd = open_uffd();
  if (fd < 0) {
    return fail(std::string("userfaultfd syscall unavailable: ") + std::strerror(errno));
  }
  struct uffdio_api api = {};
  api.api = UFFD_API;
  api.features = kNeededFeatures;
  if (::ioctl(fd, UFFDIO_API, &api) != 0) {
    const std::string why =
        std::string("kernel lacks userfaultfd minor-fault/write-protect support "
                    "for shmem (need >= 5.19): UFFDIO_API failed: ") +
        std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  if ((kNeededFeatures & ~api.features) != 0) {
    ::close(fd);
    return fail("kernel lacks userfaultfd minor-fault/write-protect support "
                "for shmem (need >= 5.19)");
  }

  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const int memfd = ::memfd_create("dsm-uffd-probe", MFD_CLOEXEC);
  if (memfd < 0) {
    ::close(fd);
    return fail(std::string("memfd_create failed: ") + std::strerror(errno));
  }
  std::string why;
  void* app = MAP_FAILED;
  void* alias = MAP_FAILED;
  if (::ftruncate(memfd, static_cast<off_t>(page)) != 0) {
    why = std::string("ftruncate failed: ") + std::strerror(errno);
  } else {
    app = ::mmap(nullptr, page, PROT_READ | PROT_WRITE, MAP_SHARED, memfd, 0);
    alias = ::mmap(nullptr, page, PROT_READ | PROT_WRITE, MAP_SHARED, memfd, 0);
    if (app == MAP_FAILED || alias == MAP_FAILED) {
      why = std::string("mmap failed: ") + std::strerror(errno);
    }
  }
  if (why.empty()) {
    struct uffdio_register reg = {};
    reg.range.start = reinterpret_cast<unsigned long long>(app);  // NOLINT
    reg.range.len = page;
    reg.mode = UFFDIO_REGISTER_MODE_MINOR | UFFDIO_REGISTER_MODE_WP;
    if (::ioctl(fd, UFFDIO_REGISTER, &reg) != 0) {
      why = std::string("UFFDIO_REGISTER(MINOR|WP) failed: ") + std::strerror(errno);
    } else {
      volatile std::byte* touch = static_cast<std::byte*>(alias);
      *touch = *touch;  // materialise the shmem page so CONTINUE has a source
      struct uffdio_continue cont = {};
      cont.range = reg.range;
      cont.mode = UFFDIO_CONTINUE_MODE_DONTWAKE | UFFDIO_CONTINUE_MODE_WP;
      if (::ioctl(fd, UFFDIO_CONTINUE, &cont) != 0 && errno != EEXIST) {
        why = std::string("UFFDIO_CONTINUE(WP) failed (kernel < 6.3?): ") +
              std::strerror(errno);
      }
    }
  }
  if (app != MAP_FAILED) ::munmap(app, page);
  if (alias != MAP_FAILED) ::munmap(alias, page);
  ::close(memfd);
  ::close(fd);
  if (!why.empty()) return fail(why);
  return true;
}

std::unique_ptr<FaultEngine> make_uffd_engine(StatsRegistry* stats) {
  return std::make_unique<UffdEngine>(stats);
}

#else  // !TUTORDSM_HAVE_UFFD

bool uffd_available(std::string* reason) {
  if (reason != nullptr) {
    *reason = uffd_forced_unavailable()
                  ? "disabled by TUTORDSM_UFFD_UNAVAILABLE"
                  : "built without userfaultfd support (kernel headers lack "
                    "the minor-fault + write-protect API)";
  }
  return false;
}

std::unique_ptr<FaultEngine> make_uffd_engine(StatsRegistry*) {
  DSM_CHECK_MSG(false, "uffd engine requested but this build has no userfaultfd "
                       "support; probe uffd_available() first");
  return nullptr;
}

#endif  // TUTORDSM_HAVE_UFFD

}  // namespace dsm
