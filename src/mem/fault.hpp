// Process-wide SIGSEGV dispatcher. Each node registers its view region with a
// fault callback; the signal handler maps the faulting address to (region,
// page) and invokes the callback *synchronously on the faulting thread* —
// exactly how user-level software DSMs service page faults. Faults outside
// every registered region are re-raised with the default disposition so real
// bugs still produce a normal crash.
//
// Signal-safety notes: registration uses a fixed slot table with
// release/acquire publication so the handler never takes a lock; callbacks
// themselves run protocol code (sends, condvar waits), which is safe because
// the fault is synchronous — the thread was executing application code, not
// async-signal-unsafe library internals, when it trapped.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "mem/region.hpp"

namespace dsm {

/// Callback invoked for a fault on `page` of the registered region.
/// `offset` is the faulting byte within the page (from si_addr; feeds the
/// word-granular race detector); `is_write` distinguishes a read miss from a
/// write miss/upgrade.
using FaultHandler =
    std::function<void(PageId page, std::size_t offset, bool is_write)>;

/// Fallback used on architectures where the trap does not report read vs
/// write: given the page, return true if the faulting access must have been a
/// write (e.g. the page is currently readable). On x86-64 the page-fault
/// error code is used instead and this is never called.
using WriteInferrer = std::function<bool(PageId page)>;

class FaultRouter {
 public:
  /// The process-wide router. First use installs the SIGSEGV handler.
  static FaultRouter& instance();

  FaultRouter(const FaultRouter&) = delete;
  FaultRouter& operator=(const FaultRouter&) = delete;

  /// Registers a view; returns a slot token for remove_region. Thread-safe
  /// against the handler, but regions must outlive their registration.
  int add_region(const ViewRegion* view, FaultHandler on_fault, WriteInferrer infer_write);

  void remove_region(int token);

  /// Number of live registrations (for tests).
  int active_regions() const;

  struct Slot;  // public: the signal handler (file-scope) walks the table

 private:
  FaultRouter();
  static constexpr int kMaxRegions = 128;

  Slot* slots_;  // fixed array, leaked at exit (handler may outlive statics)
};

}  // namespace dsm
