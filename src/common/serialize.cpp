#include "common/serialize.hpp"

#include <bit>

// The in-process fabric never crosses a byte-order boundary; make the
// assumption explicit so a future socket transport knows where to add swaps.
static_assert(std::endian::native == std::endian::little,
              "tutordsm wire format assumes a little-endian host");
