// The repo-wide lock-order DAG, encoded for Clang's -Wthread-safety-beta
// ordering analysis (ACQUIRED_BEFORE/AFTER edges are checked only under
// the beta flag, which the CI static-analysis job enables).
//
// The gates below are phantom mutexes: declared, never locked. Each real
// mutex in src/ sandwiches itself between the gates of its layer via
// ACQUIRED_AFTER(<own layer's entry gate>) ACQUIRED_BEFORE(<next gate>),
// and the gate chain itself is declared, so ordering is transitive across
// layers even for mutex pairs with no direct edge:
//
//   [upper: SyncAgent, PageEntry, protocol metadata, fault engines]
//        |  ACQUIRED_BEFORE
//        v
//   fabric_gate
//        |
//   [Network::links_mutex_, Network::flight_mutex_, transport state]
//        |
//   mailbox_gate
//        |
//   [Mailbox::mutex_]
//        |
//   checker_gate
//        |
//   [DsmChecker::mutex_]
//        |
//   leaf_gate
//        |
//   [StatsRegistry::mutex_, the logging sink — innermost leaves]
//
// This is exactly the order the PR 4 ABBA deadlock violated: the abort
// path held the checker mutex and then block-acquired the network's
// fabric mutexes inside Network::debug_dump, while the daemon held a
// fabric mutex and was publishing into the checker. With the DAG
// declared, a blocking fabric acquisition under the checker capability
// is a compile error (see ci/thread_safety_fixtures/), and debug_dump
// itself is additionally policed by dsmlint's dump-context rule because
// the production call chain passes through a std::function boundary the
// (intraprocedural) analysis cannot follow.
//
// Pairs within one bracket are deliberately *unordered*: the code never
// nests them (protocol scopes are sequential; links_/flight_ are never
// held together), and leaving the edge undeclared means a future nesting
// in either direction is at least not blessed by the DAG.
//
// Declaration order below is innermost-first, because an attribute
// argument must refer to an already-declared variable.
#pragma once

#include "common/thread_annotations.hpp"

namespace dsm::lock_order {

inline Mutex leaf_gate;
inline Mutex checker_gate ACQUIRED_BEFORE(leaf_gate);
inline Mutex mailbox_gate ACQUIRED_BEFORE(checker_gate);
inline Mutex fabric_gate ACQUIRED_BEFORE(mailbox_gate);

}  // namespace dsm::lock_order
