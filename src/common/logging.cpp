#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"

namespace dsm {
namespace log_detail {
namespace {

int level_from_env() {
  const char* env = std::getenv("DSM_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  const std::string_view v{env};
  if (v == "error") return static_cast<int>(LogLevel::kError);
  if (v == "warn") return static_cast<int>(LogLevel::kWarn);
  if (v == "info") return static_cast<int>(LogLevel::kInfo);
  if (v == "debug") return static_cast<int>(LogLevel::kDebug);
  if (v == "trace") return static_cast<int>(LogLevel::kTrace);
  return static_cast<int>(LogLevel::kWarn);
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

// Innermost leaf: DSM_LOG_* fires under fabric locks (the daemon's
// retransmit warnings), so nothing may be acquired under the sink.
Mutex& sink_mutex() {
  static Mutex m ACQUIRED_AFTER(lock_order::leaf_gate);
  return m;
}

}  // namespace

std::atomic<int>& enabled_level() {
  static std::atomic<int> level{level_from_env()};
  return level;
}

void emit(LogLevel level, std::string_view message) {
  char line[1024];
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id()) % 0x10000;
  const int n = std::snprintf(line, sizeof line, "[dsm:%s %04zx] %.*s\n", tag(level), tid,
                              static_cast<int>(message.size()), message.data());
  if (n <= 0) return;
  const MutexLock lock(sink_mutex());
  std::fwrite(line, 1, static_cast<std::size_t>(std::min<int>(n, sizeof line - 1)), stderr);
}

}  // namespace log_detail

void set_log_level(LogLevel level) {
  log_detail::enabled_level().store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace dsm
