#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace dsm {
namespace {

int bucket_index(std::uint64_t sample) {
  if (sample == 0) return 0;
  return static_cast<int>(std::bit_width(sample));  // sample in [2^(i-1), 2^i)
}

std::uint64_t bucket_upper(int index) {
  if (index == 0) return 0;
  if (index >= 63) return ~0ULL;
  return (1ULL << index) - 1;
}

}  // namespace

void Histogram::record(std::uint64_t sample) {
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < sample &&
         !max_.compare_exchange_weak(prev, sample, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::quantile(double q) const {
  const auto n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) return std::min(bucket_upper(i), max());
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::uint64_t StatsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

std::string StatsSnapshot::to_string() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    out << "  " << name << " = " << value << '\n';
  }
  for (const auto& [name, h] : histograms) {
    out << "  " << name << ": n=" << h.count << " mean=" << h.mean
        << " p50=" << h.p50 << " p99=" << h.p99 << " max=" << h.max << '\n';
  }
  return out.str();
}

Counter& StatsRegistry::counter(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

StatsSnapshot StatsRegistry::snapshot() const {
  const MutexLock lock(mutex_);
  StatsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, h] : histograms_) {
    StatsSnapshot::HistView v;
    v.count = h->count();
    v.sum = h->sum();
    v.max = h->max();
    v.mean = h->mean();
    v.p50 = h->quantile(0.5);
    v.p99 = h->quantile(0.99);
    snap.histograms.emplace(name, v);
  }
  return snap;
}

void StatsRegistry::reset() {
  const MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dsm
