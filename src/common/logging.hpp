// Minimal leveled, thread-safe logger. Controlled by the DSM_LOG environment
// variable ("error", "warn", "info", "debug", "trace") or programmatically.
// Logging from fault handlers is safe: the sink writes with a single
// `fwrite` under a mutex and never allocates after the message is formatted
// (formatting allocates, but only on enabled levels — keep hot paths at
// trace/debug which default off).
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace dsm {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

namespace log_detail {

/// Currently enabled level; messages at levels above this are discarded.
std::atomic<int>& enabled_level();

/// Writes one formatted line (thread id, level tag, message) to stderr.
void emit(LogLevel level, std::string_view message);

/// Stream-style builder used by the DSM_LOG_* macros.
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { emit(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_detail

/// Sets the global log level (also initialized from $DSM_LOG on first use).
void set_log_level(LogLevel level);

/// True if messages at `level` are currently emitted.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= log_detail::enabled_level().load(std::memory_order_relaxed);
}

}  // namespace dsm

#define DSM_LOG(level)                       \
  if (!::dsm::log_enabled(level)) {          \
  } else                                     \
    ::dsm::log_detail::LineBuilder { level }

#define DSM_LOG_ERROR DSM_LOG(::dsm::LogLevel::kError)
#define DSM_LOG_WARN DSM_LOG(::dsm::LogLevel::kWarn)
#define DSM_LOG_INFO DSM_LOG(::dsm::LogLevel::kInfo)
#define DSM_LOG_DEBUG DSM_LOG(::dsm::LogLevel::kDebug)
#define DSM_LOG_TRACE DSM_LOG(::dsm::LogLevel::kTrace)
