// Per-node logical clock for the virtual-time performance model. One clock is
// shared by a node's app thread and service thread (a 1992 DSM node was a
// single CPU taking interrupts), so advances use an atomic fetch-max.
//
// This header is also the single sanctioned doorway to the *real* clock
// (dsm::realclock below). Virtual-time code must never consult wall or
// monotonic time directly — a bench that mixes the two produces numbers
// that depend on host load, and a protocol that does produces untestable
// timing behavior. dsmlint's wall-clock rule rejects std::chrono::
// steady_clock / system_clock / gettimeofday anywhere outside this file;
// infrastructure that legitimately needs host time (retransmit deadlines,
// watchdog ticks, chaos pauses) imports it from here, which keeps every
// such site greppable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/types.hpp"

namespace dsm {

namespace realclock {

/// Monotonic host time for infrastructure deadlines (retransmits, watchdog
/// ticks, recovery timeouts). Never use for the performance model — that is
/// LogicalClock's job.
using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

inline TimePoint now() { return Clock::now(); }

/// Sentinel deadline meaning "not armed".
constexpr TimePoint never() { return TimePoint::max(); }

/// Monotonic nanoseconds since an arbitrary epoch (watchdog heartbeats).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now().time_since_epoch())
          .count());
}

}  // namespace realclock

class LogicalClock {
 public:
  VirtualTime now() const { return time_.load(std::memory_order_relaxed); }

  /// Charge local work (computation, protocol software overhead).
  VirtualTime advance(VirtualTime delta) {
    return time_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }

  /// A message arrived / an event completed at absolute time `t`; the node
  /// cannot be "before" it afterwards. Returns the resulting local time.
  VirtualTime advance_to(VirtualTime t) {
    VirtualTime prev = time_.load(std::memory_order_relaxed);
    while (prev < t && !time_.compare_exchange_weak(prev, t, std::memory_order_relaxed)) {
    }
    return prev < t ? t : prev;
  }

  void reset() { time_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<VirtualTime> time_{0};
};

}  // namespace dsm
