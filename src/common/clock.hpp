// Per-node logical clock for the virtual-time performance model. One clock is
// shared by a node's app thread and service thread (a 1992 DSM node was a
// single CPU taking interrupts), so advances use an atomic fetch-max.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace dsm {

class LogicalClock {
 public:
  VirtualTime now() const { return time_.load(std::memory_order_relaxed); }

  /// Charge local work (computation, protocol software overhead).
  VirtualTime advance(VirtualTime delta) {
    return time_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }

  /// A message arrived / an event completed at absolute time `t`; the node
  /// cannot be "before" it afterwards. Returns the resulting local time.
  VirtualTime advance_to(VirtualTime t) {
    VirtualTime prev = time_.load(std::memory_order_relaxed);
    while (prev < t && !time_.compare_exchange_weak(prev, t, std::memory_order_relaxed)) {
    }
    return prev < t ? t : prev;
  }

  void reset() { time_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<VirtualTime> time_{0};
};

}  // namespace dsm
