// Deterministic pseudo-random numbers for workload generation. SplitMix64:
// tiny state, excellent distribution, reproducible across platforms — so every
// bench regenerates the same workload from the same seed.
#pragma once

#include <cstdint>

namespace dsm {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace dsm
