// Byte-buffer serialization for protocol messages. Little-endian on the wire
// (asserted at build time for the in-process fabric; a real transport would
// byte-swap here). Writer appends; Reader consumes with bounds checks.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace dsm {

/// Appends POD values and byte ranges to a growable buffer.
class WireWriter {
 public:
  WireWriter() = default;
  explicit WireWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& value) {
    // resize + memcpy rather than insert: GCC 12 misattributes the insert
    // inline chain as a write past the old capacity (-Wstringop-overflow).
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + sizeof(T));
    std::memcpy(buffer_.data() + old_size, &value, sizeof(T));
  }

  /// Length-prefixed byte range.
  void put_bytes(std::span<const std::byte> bytes) {
    put(static_cast<std::uint32_t>(bytes.size()));
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed vector of POD values.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& values) {
    put(static_cast<std::uint32_t>(values.size()));
    for (const T& v : values) put(v);
  }

  /// Raw (un-prefixed) bytes, for fixed-size page payloads.
  void put_raw(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  std::size_t size() const { return buffer_.size(); }
  std::vector<std::byte> take() && { return std::move(buffer_); }
  std::span<const std::byte> view() const { return buffer_; }

 private:
  std::vector<std::byte> buffer_;
};

/// Consumes values written by WireWriter, checking bounds on every read.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    DSM_CHECK_MSG(offset_ + sizeof(T) <= data_.size(),
                  "wire underflow: need " << sizeof(T) << " at offset " << offset_
                                          << " of " << data_.size());
    T value;
    std::memcpy(&value, data_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  /// Reads a length-prefixed byte range (view into the underlying buffer).
  std::span<const std::byte> get_bytes() {
    const auto n = get<std::uint32_t>();
    DSM_CHECK_MSG(offset_ + n <= data_.size(), "wire underflow reading " << n << " bytes");
    const auto view = data_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint32_t>();
    std::vector<T> values;
    values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) values.push_back(get<T>());
    return values;
  }

  /// Reads `n` raw bytes (no length prefix).
  std::span<const std::byte> get_raw(std::size_t n) {
    DSM_CHECK_MSG(offset_ + n <= data_.size(), "wire underflow reading raw " << n);
    const auto view = data_.subspan(offset_, n);
    offset_ += n;
    return view;
  }

  std::size_t remaining() const { return data_.size() - offset_; }
  bool done() const { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

}  // namespace dsm
