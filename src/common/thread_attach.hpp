// Per-thread node attachment. A DSM node may host several application
// threads; each must attach before touching shared memory or sync objects so
// faults, watchdog frames, and checker epochs can be attributed to a
// (node, thread) pair. Thread 0 is the node's primary thread, attached by the
// runtime itself; siblings created via Worker::spawn (or an explicit
// System::attach_thread) get 1..N-1.
//
// The attachment is thread-local: one thread can serve at most one node at a
// time, and attaching twice without a detach is a programming error that
// aborts (double-attach would silently mis-attribute every subsequent fault).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dsm {

struct ThreadAttachment {
  NodeId node = kNoNode;
  ThreadId tid = 0;
  /// Kernel thread id (gettid), recorded so uffd fault events carrying
  /// UFFD_FEATURE_THREAD_ID can be mapped back to (node, tid), and so
  /// diagnostic dumps can name the OS thread.
  std::uint32_t ktid = 0;
};

/// The calling thread's current attachment, or nullptr if unattached.
/// Service threads and test drivers are unattached; their accesses are
/// attributed to thread 0 of whatever node they act for.
const ThreadAttachment* current_attachment();

/// Attach the calling thread to `node` as app thread `tid`. Aborts if the
/// thread is already attached (to any node).
void attach_current_thread(NodeId node, ThreadId tid);

/// Detach the calling thread. Aborts if it is not attached.
void detach_current_thread();

/// The calling thread's kernel thread id (cached after first call).
std::uint32_t current_ktid();

/// RAII attach guard for scoped thread bodies.
class ScopedThreadAttach {
 public:
  ScopedThreadAttach(NodeId node, ThreadId tid) {
    attach_current_thread(node, tid);
  }
  ~ScopedThreadAttach() { detach_current_thread(); }
  ScopedThreadAttach(const ScopedThreadAttach&) = delete;
  ScopedThreadAttach& operator=(const ScopedThreadAttach&) = delete;
};

}  // namespace dsm
