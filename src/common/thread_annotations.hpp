// Clang thread-safety capability analysis for the whole repo.
//
// Two layers live here:
//
//  1. The attribute macros (GUARDED_BY, REQUIRES, ACQUIRED_BEFORE, ...) —
//     thin wrappers over Clang's capability attributes that expand to
//     nothing on GCC, so both toolchains stay first-class. The CI
//     `static-analysis` job builds with
//     `-Wthread-safety -Wthread-safety-beta -Werror=thread-safety` and
//     rejects any unguarded access to an annotated field, any REQUIRES
//     violation, and (via -Wthread-safety-beta) any acquisition that
//     contradicts the declared lock-order DAG.
//
//  2. Annotated synchronization types (Mutex, RecursiveMutex, MutexLock,
//     RecursiveMutexLock, CondVar) — the std:: primitives carry no
//     capability attributes on libstdc++, so the analysis cannot see a
//     std::lock_guard acquire anything. These wrappers are zero-overhead
//     (each holds exactly the std:: object; every method is a forwarding
//     inline) but declare their acquire/release semantics, which is what
//     makes GUARDED_BY fields checkable. All mutex-bearing classes in src/
//     use them.
//
// Lock-order DAG: every real mutex declares ACQUIRED_BEFORE/AFTER edges
// against the phantom anchors in lock_order.hpp; see DESIGN.md "Static
// analysis" for the diagram and the PR-4 deadlock this encodes away.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TUTORDSM_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define TUTORDSM_THREAD_ANNOTATION__(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) TUTORDSM_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY TUTORDSM_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) TUTORDSM_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) TUTORDSM_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) TUTORDSM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) TUTORDSM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) TUTORDSM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  TUTORDSM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) TUTORDSM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  TUTORDSM_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) TUTORDSM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  TUTORDSM_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) TUTORDSM_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  TUTORDSM_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) TUTORDSM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) TUTORDSM_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  TUTORDSM_THREAD_ANNOTATION__(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) TUTORDSM_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS TUTORDSM_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace dsm {

class CondVar;

/// std::mutex with capability attributes. Use MutexLock for scoped holds;
/// for try-lock sections call try_lock()/unlock() directly — the analysis
/// understands the `if (mu.try_lock()) { ... mu.unlock(); }` shape natively.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::recursive_mutex with capability attributes. The analysis is
/// intraprocedural, so re-entrant acquisition across call chains (the
/// checker's report → dump → dump_last_violation path) analyzes cleanly;
/// only a literal double-acquire inside one function would warn.
class CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::recursive_mutex mu_;
};

/// Scoped holder — the std::lock_guard shape, carrying the capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

class SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~RecursiveMutexLock() RELEASE() { mu_.unlock(); }
  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex& mu_;
};

/// Scoped holder that supports the protocols' unlock/relock fault pattern
/// (drop the entry lock around a blocking send, re-take it to re-check
/// state). Clang models relockable scoped capabilities natively, so calls
/// made between unlock() and lock() are correctly analyzed as lock-free.
class SCOPED_CAPABILITY RelockableMutexLock {
 public:
  explicit RelockableMutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
    held_ = true;
  }
  ~RelockableMutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }
  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  RelockableMutexLock(const RelockableMutexLock&) = delete;
  RelockableMutexLock& operator=(const RelockableMutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// std::condition_variable over the annotated Mutex. wait() takes the Mutex
/// itself (which the caller must hold, typically via a MutexLock in the same
/// scope) so the analysis can check the REQUIRES contract; internally the
/// held std::mutex is adopted into a std::unique_lock for the wait and
/// released back (still locked) afterwards — zero overhead, identical
/// semantics to waiting on the unique_lock directly.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  // Deliberately no predicate overloads: a predicate lambda cannot carry a
  // checkable REQUIRES against the caller's mutex, so guarded reads inside
  // it would escape (or falsely fail) the analysis. Call sites spell the
  // loop out — `while (!ready_) cv_.wait(mutex_);` — which the analysis
  // checks exactly like any other guarded access.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(inner, dur);
    inner.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(inner, deadline);
    inner.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dsm
