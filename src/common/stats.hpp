// Statistics registry: named atomic counters and fixed-bucket histograms.
// Every subsystem reports through a StatsRegistry owned by the runtime, so a
// run's traffic/fault/lock behaviour can be printed or asserted on in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"

namespace dsm {

/// A monotonically increasing 64-bit counter, safe for concurrent increment.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucketed histogram of nonnegative samples (e.g. message sizes,
/// fault-service virtual latencies). Buckets: [0], [1], [2,3], [4,7], ...
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t sample);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Approximate quantile (q in [0,1]) using bucket upper bounds.
  std::uint64_t quantile(double q) const;
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time view of a registry, for printing and test assertions.
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  struct HistView {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
  };
  std::map<std::string, HistView> histograms;

  /// Counter value, or 0 if the counter was never touched.
  std::uint64_t counter(std::string_view name) const;
  /// Renders a human-readable multi-line report.
  std::string to_string() const;
};

/// Thread-safe name → instrument registry. Lookup is a lock + map walk, so
/// callers should cache the returned reference (instruments live as long as
/// the registry).
class StatsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);
  StatsSnapshot snapshot() const;
  void reset();

 private:
  // Innermost leaf of the lock-order DAG: counter lookups happen under
  // fabric and checker locks (deliver, dsmcheck reports), so nothing may be
  // acquired while this is held.
  mutable Mutex mutex_ ACQUIRED_AFTER(lock_order::leaf_gate);
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace dsm
