// Small dynamic bitset used for page copysets (which nodes hold a copy).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace dsm {

/// Fixed-capacity-at-construction bitset over node ids.
class NodeSet {
 public:
  NodeSet() = default;
  explicit NodeSet(std::size_t n_nodes)
      : n_bits_(n_nodes), words_((n_nodes + 63) / 64, 0) {}

  std::size_t capacity() const { return n_bits_; }

  void insert(NodeId node) {
    DSM_DCHECK(node < n_bits_);
    words_[node / 64] |= (1ULL << (node % 64));
  }
  void erase(NodeId node) {
    DSM_DCHECK(node < n_bits_);
    words_[node / 64] &= ~(1ULL << (node % 64));
  }
  bool contains(NodeId node) const {
    DSM_DCHECK(node < n_bits_);
    return (words_[node / 64] >> (node % 64)) & 1ULL;
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }
  bool empty() const {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }
  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
    return total;
  }

  /// Union-in another set of the same capacity.
  void merge(const NodeSet& other) {
    DSM_DCHECK(other.n_bits_ == n_bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// Enumerates set members in increasing order.
  std::vector<NodeId> members() const {
    std::vector<NodeId> out;
    out.reserve(count());
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        out.push_back(static_cast<NodeId>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
    return out;
  }

  bool operator==(const NodeSet& other) const = default;

 private:
  std::size_t n_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dsm
