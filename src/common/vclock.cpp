#include "common/vclock.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace dsm {

void VectorClock::merge(const VectorClock& other) {
  DSM_CHECK(other.size() == size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::max(components_[i], other.components_[i]);
  }
}

bool VectorClock::dominates(const VectorClock& other) const {
  DSM_CHECK(other.size() == size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] < other.components_[i]) return false;
  }
  return true;
}

std::string VectorClock::to_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i != 0) out << ',';
    out << components_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace dsm
