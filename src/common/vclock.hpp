// Vector clocks, the happened-before bookkeeping for lazy release consistency
// (TreadMarks-style intervals and write notices).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dsm {

/// One logical-interval counter per node. Component i counts the intervals of
/// node i that this clock has "seen" (knows all writes of).
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n_nodes) : components_(n_nodes, 0) {}

  std::size_t size() const { return components_.size(); }
  std::uint32_t operator[](NodeId node) const { return components_[node]; }

  /// Advances this node's own component (a new interval begins).
  void tick(NodeId self) { ++components_[self]; }
  void set(NodeId node, std::uint32_t value) { components_[node] = value; }

  /// Component-wise max (what an acquirer learns from a releaser).
  void merge(const VectorClock& other);

  /// True if every component of this clock is >= the other's ("knows at
  /// least as much"). Note: !dominates(a,b) && !dominates(b,a) ⇒ concurrent.
  bool dominates(const VectorClock& other) const;

  /// True iff this clock has seen interval `interval` of node `node`.
  bool covers(NodeId node, std::uint32_t interval) const {
    return components_[node] >= interval;
  }

  bool operator==(const VectorClock& other) const = default;

  const std::vector<std::uint32_t>& components() const { return components_; }
  std::string to_string() const;

 private:
  std::vector<std::uint32_t> components_;
};

}  // namespace dsm
