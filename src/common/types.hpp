// Core identifier and time types shared by every tutordsm subsystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dsm {

/// Index of a node (one simulated machine) in the system, dense in [0, n).
using NodeId = std::uint32_t;

/// Index of a page within the shared address space, dense in [0, n_pages).
using PageId = std::uint32_t;

/// Identifier of a distributed lock. Lock homes are derived by modulo.
using LockId = std::uint32_t;

/// Identifier of a distributed barrier.
using BarrierId = std::uint32_t;

/// Virtual (simulated) time in nanoseconds. See DESIGN.md "Virtual time".
using VirtualTime = std::uint64_t;

/// Index of an application thread within its node, dense in [0, app_threads).
/// Thread 0 is the node's primary thread (the SPMD body); siblings created
/// by Worker::spawn get 1..N-1.
using ThreadId = std::uint32_t;

/// Upper bound on app threads per node. Fixed so per-(node,thread) state
/// (watchdog slots, checker vector-clock units) can be sized once at
/// construction without depending on the runtime config.
inline constexpr std::size_t kMaxAppThreads = 8;

/// Sentinel for "no node" (e.g. an unowned page, an empty queue head).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no page".
inline constexpr PageId kNoPage = std::numeric_limits<PageId>::max();

}  // namespace dsm
