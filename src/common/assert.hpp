// Checked-assertion macros. DSM_CHECK is always on (protocol invariants are
// cheap relative to page faults); DSM_DCHECK compiles away in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dsm::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr,
                                      const std::string& msg) {
  std::fprintf(stderr, "[tutordsm] CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

/// Lazily builds the failure message only on the failing path.
class CheckMessage {
 public:
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace dsm::detail

#define DSM_CHECK(expr)                                                     \
  if (expr) {                                                               \
  } else                                                                    \
    ::dsm::detail::check_failed(__FILE__, __LINE__, #expr,                  \
                                ::dsm::detail::CheckMessage{}.str())

#define DSM_CHECK_MSG(expr, ...)                                            \
  if (expr) {                                                               \
  } else                                                                    \
    ::dsm::detail::check_failed(                                            \
        __FILE__, __LINE__, #expr,                                          \
        (::dsm::detail::CheckMessage{} << __VA_ARGS__).str())

#ifdef NDEBUG
#define DSM_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define DSM_DCHECK(expr) DSM_CHECK(expr)
#endif
