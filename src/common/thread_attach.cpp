#include "common/thread_attach.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include "common/assert.hpp"

namespace dsm {
namespace {

thread_local ThreadAttachment t_attachment;
thread_local bool t_attached = false;
thread_local std::uint32_t t_ktid = 0;

}  // namespace

std::uint32_t current_ktid() {
  if (t_ktid == 0)
    t_ktid = static_cast<std::uint32_t>(::syscall(SYS_gettid));
  return t_ktid;
}

const ThreadAttachment* current_attachment() {
  return t_attached ? &t_attachment : nullptr;
}

void attach_current_thread(NodeId node, ThreadId tid) {
  DSM_CHECK_MSG(!t_attached, "thread already attached to node "
                                 << t_attachment.node << " (thread "
                                 << t_attachment.tid
                                 << "); detach before re-attaching");
  DSM_CHECK_MSG(tid < kMaxAppThreads,
                "thread id " << tid << " exceeds kMaxAppThreads");
  t_attachment = ThreadAttachment{node, tid, current_ktid()};
  t_attached = true;
}

void detach_current_thread() {
  DSM_CHECK_MSG(t_attached, "detach of an unattached thread");
  t_attached = false;
  t_attachment = ThreadAttachment{};
}

}  // namespace dsm
