// Shared test helpers.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "mem/fault_engine.hpp"

namespace dsm::test {

/// A load the optimizer cannot elide — plain `(void)*p` may be removed at
/// -O2, which would silently skip the page fault the test is exercising.
template <typename T>
T force_read(const T* p) {
  return *const_cast<const volatile T*>(p);
}

/// Non-empty when this process was asked to run on the uffd fault engine
/// (TUTORDSM_FAULT_ENGINE=uffd — the ".uffd" conformance copies) but the
/// kernel can't: the fixture should GTEST_SKIP() << *reason, so the ctest
/// log shows a visible "[uffd unavailable] ..." skip instead of silently
/// exercising the sigsegv fallback and calling it conformance.
inline std::optional<std::string> uffd_skip_reason() {
  const char* engine = std::getenv("TUTORDSM_FAULT_ENGINE");
  if (engine == nullptr || std::string_view(engine) != "uffd") return std::nullopt;
  std::string reason;
  if (uffd_available(&reason)) return std::nullopt;
  return "[uffd unavailable] " + reason;
}

}  // namespace dsm::test
