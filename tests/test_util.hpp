// Shared test helpers.
#pragma once

namespace dsm::test {

/// A load the optimizer cannot elide — plain `(void)*p` may be removed at
/// -O2, which would silently skip the page fault the test is exercising.
template <typename T>
T force_read(const T* p) {
  return *const_cast<const volatile T*>(p);
}

}  // namespace dsm::test
