// gtest-dependent shared test helpers. Kept separate from test_util.hpp,
// which the benches also include and which therefore must stay gtest-free.
#pragma once

#include <gtest/gtest.h>

#include "test_util.hpp"

/// Drop-in first statement for every suite that participates in the ".uffd"
/// conformance copies (tests/CMakeLists.txt): when the run asks for the uffd
/// fault engine on a kernel that can't provide it, skip *visibly* — the
/// ctest log shows "[uffd unavailable] <reason>" — rather than letting the
/// runtime's sigsegv fallback pass the test and masquerade as conformance.
/// Plain runs (no TUTORDSM_FAULT_ENGINE=uffd) are untouched.
#define TUTORDSM_SKIP_IF_UFFD_UNAVAILABLE()                     \
  do {                                                          \
    if (const auto reason_ = ::dsm::test::uffd_skip_reason()) { \
      GTEST_SKIP() << *reason_;                                 \
    }                                                           \
  } while (false)
