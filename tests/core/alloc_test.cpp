#include <gtest/gtest.h>

#include "core/dsm.hpp"

namespace dsm {
namespace {

Config cfg_pages(std::size_t n_pages) {
  Config cfg;
  cfg.n_nodes = 2;
  cfg.n_pages = n_pages;
  cfg.page_size = ViewRegion::os_page_size();
  return cfg;
}

TEST(Alloc, OffsetsAdvance) {
  System sys(cfg_pages(4));
  const auto a = sys.alloc<int>();
  const auto b = sys.alloc<int>();
  EXPECT_EQ(b.offset, a.offset + sizeof(int));
}

TEST(Alloc, RespectsAlignment) {
  System sys(cfg_pages(4));
  sys.alloc<char>(3);
  const auto d = sys.alloc<double>();
  EXPECT_EQ(d.offset % alignof(double), 0u);
}

TEST(Alloc, PageAlignedVariant) {
  System sys(cfg_pages(4));
  sys.alloc<char>(100);
  const auto p = sys.alloc_page_aligned<int>(10);
  EXPECT_EQ(p.offset % sys.config().page_size, 0u);
}

TEST(Alloc, HandleArithmetic) {
  System sys(cfg_pages(4));
  const auto arr = sys.alloc<std::uint64_t>(8);
  EXPECT_EQ((arr + 3).offset, arr.offset + 3 * sizeof(std::uint64_t));
}

TEST(Alloc, HeapUsedTracksAllocations) {
  System sys(cfg_pages(4));
  EXPECT_EQ(sys.heap_used(), 0u);
  sys.alloc<int>(10);
  EXPECT_EQ(sys.heap_used(), 40u);
}

TEST(Alloc, MemoryIsZeroInitialized) {
  System sys(cfg_pages(4));
  const auto arr = sys.alloc<std::uint64_t>(128);
  std::atomic<int> nonzero{0};
  sys.run([&](Worker& w) {
    if (w.id() != 0) return;
    for (int i = 0; i < 128; ++i) {
      if (w.get(arr)[i] != 0) nonzero++;
    }
  });
  EXPECT_EQ(nonzero.load(), 0);
}

TEST(Alloc, DifferentNodesResolveToSameOffset) {
  System sys(cfg_pages(4));
  const auto cell = sys.alloc<int>();
  std::vector<std::size_t> offsets(2);
  sys.run([&](Worker& w) {
    offsets[w.id()] = static_cast<std::size_t>(
        reinterpret_cast<std::byte*>(w.get(cell)) -
        reinterpret_cast<std::byte*>(w.get(Shared<int>{0})));
  });
  EXPECT_EQ(offsets[0], offsets[1]);
  EXPECT_EQ(offsets[0], cell.offset);
}

TEST(AllocDeathTest, ExhaustionAborts) {
  System sys(cfg_pages(1));
  EXPECT_DEATH(sys.alloc<std::byte>(2 * sys.config().page_size), "heap exhausted");
}

}  // namespace
}  // namespace dsm
