// End-to-end runtime behaviour that is protocol-independent: SPMD execution,
// shared-memory visibility through barriers, virtual time, stats, reuse.
#include <gtest/gtest.h>

#include <numeric>

#include "core/dsm.hpp"

namespace dsm {
namespace {

Config small_config(ProtocolKind protocol = ProtocolKind::kIvyDynamic,
                    std::size_t nodes = 4) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 32;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = protocol;
  return cfg;
}

TEST(Runtime, RunsBodyOncePerNode) {
  System sys(small_config());
  std::vector<std::atomic<int>> ran(4);
  for (auto& r : ran) r = 0;
  sys.run([&](Worker& w) { ran[w.id()]++; });
  for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(Runtime, WorkerIdentity) {
  System sys(small_config());
  sys.run([&](Worker& w) {
    EXPECT_LT(w.id(), 4u);
    EXPECT_EQ(w.n_nodes(), 4u);
  });
}

TEST(Runtime, SharedWriteVisibleAfterBarrier) {
  System sys(small_config());
  const auto cell = sys.alloc<int>();
  std::atomic<int> mismatches{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) *w.get(cell) = 1234;
    w.barrier(0);
    if (*w.get(cell) != 1234) mismatches++;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Runtime, VirtualTimeAdvancesWithCompute) {
  System sys(small_config());
  sys.reset_clocks();
  sys.run([&](Worker& w) { w.compute(1000); });
  // 1000 ops × 10 ns default.
  EXPECT_GE(sys.virtual_time(), 10'000u);
}

TEST(Runtime, ResetClocksZeroes) {
  System sys(small_config());
  sys.run([&](Worker& w) { w.compute(10); });
  sys.reset_clocks();
  EXPECT_EQ(sys.virtual_time(), 0u);
}

TEST(Runtime, WorkerNowIsMonotone) {
  System sys(small_config());
  sys.run([&](Worker& w) {
    const auto t0 = w.now();
    w.compute(100);
    EXPECT_GT(w.now(), t0);
  });
}

TEST(Runtime, RunCanBeRepeated) {
  System sys(small_config());
  const auto cell = sys.alloc<int>();
  for (int round = 1; round <= 3; ++round) {
    std::atomic<int> seen{0};
    sys.run([&](Worker& w) {
      if (w.id() == 0) *w.get(cell) = round;
      w.barrier(0);
      if (*w.get(cell) == round) seen++;
    });
    EXPECT_EQ(seen.load(), 4) << "round " << round;
  }
}

TEST(Runtime, SingleNodeSystemWorks) {
  System sys(small_config(ProtocolKind::kIvyDynamic, 1));
  const auto data = sys.alloc<int>(100);
  int sum = 0;
  sys.run([&](Worker& w) {
    for (int i = 0; i < 100; ++i) w.get(data)[i] = i;
    w.barrier(0);
    for (int i = 0; i < 100; ++i) sum += w.get(data)[i];
  });
  EXPECT_EQ(sum, 4950);
}

TEST(Runtime, StatsCountFaults) {
  System sys(small_config());
  sys.reset_stats();
  const auto cell = sys.alloc_page_aligned<int>();
  sys.run([&](Worker& w) {
    if (w.id() == 1) *w.get(cell) = 7;  // cell's home is page 0 → node 0
    w.barrier(0);
  });
  const auto snap = sys.stats();
  EXPECT_GE(snap.counter("proto.write_faults"), 1u);
  EXPECT_GT(snap.counter("net.msgs"), 0u);
}

TEST(Runtime, MessageCountsBalanceAfterRun) {
  System sys(small_config());
  const auto data = sys.alloc<int>(64);
  sys.run([&](Worker& w) {
    w.get(data)[w.id()] = static_cast<int>(w.id());
    w.barrier(0);
  });
  // If drain worked, a second run cannot see stale traffic: just verify a
  // subsequent trivial run completes (would deadlock/abort otherwise).
  sys.run([](Worker& w) { w.barrier(0); });
  SUCCEED();
}

TEST(Runtime, EveryNodeSeesItsOwnView) {
  System sys(small_config());
  std::vector<const std::byte*> bases(4, nullptr);
  const auto cell = sys.alloc<int>();
  sys.run([&](Worker& w) { bases[w.id()] = reinterpret_cast<std::byte*>(w.get(cell)); });
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) EXPECT_NE(bases[i], bases[j]);
  }
}

TEST(Runtime, SelectedFaultEngineActuallyServicesFaults) {
  // The conformance matrix relies on TUTORDSM_FAULT_ENGINE flipping the trap
  // path for real — a silent fallback would make every .uffd copy vacuous.
  // So assert end-to-end: the engine the runtime reports is the one whose
  // counters move when a workload faults.
  Config cfg = small_config();
  System sys(cfg);
  const auto cell = sys.alloc_page_aligned<int>();
  sys.run([&](Worker& w) {
    if (w.id() == 1) *w.get(cell) = 7;
    w.barrier(0);
  });
  const auto snap = sys.stats();
  if (sys.fault_engine().kind() == FaultEngineKind::kUffd) {
    EXPECT_GE(snap.counter("uffd.minor_faults") + snap.counter("uffd.wp_faults"),
              1u);
  } else {
    EXPECT_EQ(snap.counter("uffd.minor_faults"), 0u);
    EXPECT_EQ(snap.counter("uffd.wp_faults"), 0u);
  }
  // Either way the protocol saw the same faults through the seam.
  EXPECT_GE(snap.counter("proto.write_faults"), 1u);
}

TEST(RuntimeDeathTest, ReentrantRunAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  System sys(small_config(ProtocolKind::kIvyDynamic, 1));
  EXPECT_DEATH(sys.run([&](Worker&) { sys.run([](Worker&) {}); }), "not reentrant");
}

}  // namespace
}  // namespace dsm
