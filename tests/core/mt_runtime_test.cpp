// Multi-threaded app nodes: attach/detach lifecycle, same-page fault
// coalescing, write-upgrade storms, and the 8-thread wake fan-out — the
// runtime-level proofs behind the .mt2/.mt4 conformance copies. Everything
// here requires the uffd engine (the sigsegv engine services faults in the
// faulting thread's signal frame and is single-thread-only), so each test
// skips visibly where the kernel can't do minor-fault + write-protect
// userfaultfd.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_attach.hpp"
#include "core/dsm.hpp"

namespace dsm {
namespace {

Config mt_config(std::size_t nodes, std::size_t app_threads,
                 ProtocolKind protocol = ProtocolKind::kIvyDynamic) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 32;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = protocol;
  cfg.fault_engine = FaultEngineKind::kUffd;
  cfg.app_threads = app_threads;
  return cfg;
}

#define REQUIRE_UFFD()                                        \
  do {                                                        \
    std::string reason;                                       \
    if (!uffd_available(&reason))                             \
      GTEST_SKIP() << "[uffd unavailable] " << reason;        \
  } while (0)

// attach_thread hands out sibling slots 1..kMaxAppThreads-1, detach_thread
// vacates them for reuse, and a Worker::spawn sibling sees a non-zero tid
// while the primary body keeps tid 0.
TEST(MtRuntime, AttachDetachLifecycle) {
  REQUIRE_UFFD();
  System sys(mt_config(2, 1));

  // Direct lifecycle, off the run path: a raw thread attaches, observes its
  // attachment, detaches, and the slot is reusable by the next thread.
  ThreadId first = 0;
  std::thread t1([&] {
    first = sys.attach_thread(0);
    const ThreadAttachment* att = current_attachment();
    ASSERT_NE(att, nullptr);
    EXPECT_EQ(att->node, 0u);
    EXPECT_EQ(att->tid, first);
    sys.detach_thread(0, first);
    EXPECT_EQ(current_attachment(), nullptr);
  });
  t1.join();
  EXPECT_GE(first, 1u);
  EXPECT_LT(first, kMaxAppThreads);

  ThreadId second = 0;
  std::thread t2([&] {
    second = sys.attach_thread(0);
    sys.detach_thread(0, second);
  });
  t2.join();
  EXPECT_EQ(second, first);  // the vacated slot was reused

  // Through the run path: spawn gives the sibling its own Worker handle with
  // a sibling tid; the primary body is always tid 0.
  std::atomic<ThreadId> sibling_tid{0};
  sys.run([&](Worker& w) {
    EXPECT_EQ(w.tid(), 0u);
    if (w.id() != 0) return;
    std::thread sib = w.spawn([&](Worker& s) {
      EXPECT_EQ(s.id(), 0u);
      sibling_tid = s.tid();
    });
    sib.join();
  });
  EXPECT_GE(sibling_tid.load(), 1u);
}

TEST(MtRuntimeDeathTest, DoubleAttachAborts) {
  REQUIRE_UFFD();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  System sys(mt_config(2, 1));
  EXPECT_DEATH(
      {
        sys.attach_thread(0);
        sys.attach_thread(0);  // same thread, second attach
      },
      "already attached");
}

// The coalescing gate: two nodes ping-pong one page (node 1 writes,
// invalidating node 0's copy; node 0's threads re-fault it) while several
// sibling readers on node 0 race into the same read fault. Concurrent
// same-page faults must fold into one in-flight service — visible as
// mem.fault_coalesced ticking — rather than each issuing its own fetch.
TEST(MtRuntime, SamePageFaultsCoalesce) {
  REQUIRE_UFFD();
  System sys(mt_config(2, 2));
  const auto cell = sys.alloc_page_aligned<int>();
  std::atomic<bool> done{false};
  sys.run([&](Worker& w) {
    if (w.id() == 1) {
      int i = 0;
      while (!done.load(std::memory_order_relaxed))
        *w.get(cell) = ++i;  // each write re-invalidates node 0's readers
      return;
    }
    std::vector<std::thread> sibs;
    for (int s = 0; s < 3; ++s) {
      sibs.push_back(w.spawn([&](Worker& r) {
        const volatile int* p = r.get(cell);
        int sink = 0;
        while (!done.load(std::memory_order_relaxed)) sink += *p;
        (void)sink;
      }));
    }
    // Primary reads too, and watches the counter; bounded so a regression
    // fails fast instead of hanging the suite.
    const volatile int* p = w.get(cell);
    int sink = 0;
    for (int round = 0; round < 200'000; ++round) {
      sink += *p;
      if (round % 256 == 0 &&
          sys.stats().counter("mem.fault_coalesced") > 0)
        break;
    }
    done = true;
    for (auto& t : sibs) t.join();
  });
  EXPECT_GT(sys.stats().counter("mem.fault_coalesced"), 0u)
      << "concurrent same-page faults never coalesced into one service";
}

// Write-upgrade storm: four threads on one node concurrently take their
// first write fault on the same page (16 pages in a row). Every slot must
// come out with its writer's value — no lost wake, no lost write, no
// deadlock between the colliding upgrade services.
TEST(MtRuntime, SamePageWriteUpgradeStorm) {
  REQUIRE_UFFD();
  constexpr std::size_t kPages = 16;
  constexpr std::size_t kWriters = 4;  // primary + 3 spawned siblings
  System sys(mt_config(2, 2));
  const std::size_t ints_per_page = sys.config().page_size / sizeof(int);
  const auto arr = sys.alloc_page_aligned<int>(kPages * ints_per_page);

  std::atomic<int> mismatches{0};
  sys.run([&](Worker& w) {
    if (w.id() != 0) return;
    // Rendezvous so all writers hit page p's first fault together.
    std::atomic<int> arrived[kPages] = {};
    auto writer_body = [&](Worker& self, std::size_t slot) {
      for (std::size_t p = 0; p < kPages; ++p) {
        arrived[p].fetch_add(1);
        while (arrived[p].load() < static_cast<int>(kWriters))
          std::this_thread::yield();
        w.get(arr)[p * ints_per_page + slot] = static_cast<int>(p * 100 + slot);
      }
      (void)self;
    };
    std::vector<std::thread> sibs;
    for (std::size_t s = 1; s < kWriters; ++s)
      sibs.push_back(w.spawn([&, s](Worker& self) { writer_body(self, s); }));
    writer_body(w, 0);
    for (auto& t : sibs) t.join();
    for (std::size_t p = 0; p < kPages; ++p) {
      for (std::size_t s = 0; s < kWriters; ++s) {
        if (w.get(arr)[p * ints_per_page + s] != static_cast<int>(p * 100 + s))
          mismatches++;
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// Fan-out: eight app threads on one node (primary + scratch sibling + six
// spawned) fault eight different pages at once. Different-page faults must
// service in parallel and every parked thread must be woken — the test
// passing at all (inside the watchdog bound) is the proof; the fault
// counters confirm each page actually trapped.
TEST(MtRuntime, EightThreadPollerWakeFanOut) {
  REQUIRE_UFFD();
  constexpr int kSpawned = 6;  // + primary + the app_threads=2 scratch sibling = 8
  System sys(mt_config(2, 2));
  const std::size_t ints_per_page = sys.config().page_size / sizeof(int);
  const auto arr = sys.alloc_page_aligned<int>(8 * ints_per_page);

  std::atomic<int> zeros_seen{0};
  sys.run([&](Worker& w) {
    if (w.id() != 0) return;
    std::atomic<int> arrived{0};
    auto touch = [&](std::size_t slot) {
      arrived.fetch_add(1);
      while (arrived.load() < kSpawned + 1) std::this_thread::yield();
      if (w.get(arr)[slot * ints_per_page] == 0) zeros_seen++;  // first touch
    };
    std::vector<std::thread> sibs;
    for (std::size_t s = 1; s <= kSpawned; ++s)
      sibs.push_back(w.spawn([&, s](Worker&) { touch(s); }));
    touch(0);
    for (auto& t : sibs) t.join();
  });
  EXPECT_EQ(zeros_seen.load(), kSpawned + 1);
  // How many of the eight pages trap depends on the initial owner layout
  // (owner copies are mapped from the start), so gate on "some trapped",
  // not an exact count.
  EXPECT_GT(sys.stats().counter("uffd.minor_faults"), 0u);
}

}  // namespace
}  // namespace dsm
