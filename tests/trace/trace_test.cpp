// Tracer unit + integration suite: span open/close balance, ring-buffer
// overflow accounting, timestamp monotonicity, Chrome-trace JSON round-trip
// (validated with a minimal in-test JSON parser), and the zero-overhead-off
// contract at the System level.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dsm.hpp"

namespace dsm {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to round-trip the exporter's output.
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const { return obj.at(key); }
  bool has(const std::string& key) const { return obj.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = Json::Type::kString;
      return string(out.str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out.type = Json::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.type = Json::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return number(out);
  }
  bool string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            c = static_cast<char>(std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc;
        }
      }
      out.push_back(c);
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.type = Json::Type::kNumber;
    out.number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }
  bool array(Json& out) {
    if (!consume('[')) return false;
    out.type = Json::Type::kArray;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      Json elem;
      if (!value(elem)) return false;
      out.arr.push_back(std::move(elem));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool object(Json& out) {
    if (!consume('{')) return false;
    out.type = Json::Type::kObject;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      skip_ws();
      if (!string(key)) return false;
      if (!consume(':')) return false;
      Json val;
      if (!value(val)) return false;
      out.obj.emplace(std::move(key), std::move(val));
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TraceConfig small_config(std::size_t spans) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.buffer_spans = spans;
  return cfg;
}

// ---------------------------------------------------------------------------
// Balance and accounting
// ---------------------------------------------------------------------------

TEST(TracerTest, ScopesBalanceOpenAndClose) {
  Tracer tracer(2, small_config(64));
  LogicalClock clock;
  EXPECT_EQ(tracer.open_spans(), 0);
  {
    TraceScope outer(&tracer, 0, TraceCat::kFault, "outer", &clock, "page", 7);
    clock.advance(100);
    EXPECT_EQ(tracer.open_spans(0), 1);
    {
      TraceScope inner(&tracer, 0, TraceCat::kProto, "inner", &clock);
      clock.advance(50);
      EXPECT_EQ(tracer.open_spans(0), 2);
    }
    EXPECT_EQ(tracer.open_spans(0), 1);
  }
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.events(0).size(), 2u);
  EXPECT_EQ(tracer.events(1).size(), 0u);
}

TEST(TracerTest, NullTracerScopeIsANoOp) {
  LogicalClock clock;
  TraceScope scope(nullptr, 0, TraceCat::kSync, "nothing", &clock);
  // No crash, nothing to assert — the scope must simply not dereference.
}

TEST(TracerTest, DirectRecordsNeverUnbalance) {
  Tracer tracer(1, small_config(64));
  tracer.instant(0, TraceCat::kNet, "send", 10, "dst", 1, "seq", 3);
  tracer.complete(0, TraceCat::kNet, "transit", 10, 25, "src", 0);
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_EQ(tracer.recorded(), 2u);
}

TEST(TracerTest, OverflowDropsOldestAndAccountsEveryLoss) {
  Counter dropped;
  TraceConfig cfg = small_config(4);  // power of two already
  Tracer tracer(1, cfg, &dropped);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.complete(0, TraceCat::kProto, "span", i, i + 1, "i", i);
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.dropped(0), 6u);
  EXPECT_EQ(dropped.value(), 6u);
  const auto events = tracer.events(0);
  ASSERT_EQ(events.size(), 4u);
  // Drop-oldest: the survivors are the newest four, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].vstart, 6 + i);
  }
}

TEST(TracerTest, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(1, small_config(5));
  EXPECT_EQ(tracer.capacity(), 8u);
}

TEST(TracerTest, ClearResetsEverything) {
  Counter dropped;
  Tracer tracer(2, small_config(4), &dropped);
  for (int i = 0; i < 9; ++i) tracer.instant(1, TraceCat::kSync, "x", 1);
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_TRUE(tracer.events(1).empty());
}

TEST(TracerTest, ConcurrentRecordsAllLand) {
  Counter dropped;
  Tracer tracer(2, small_config(1 << 12), &dropped);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEach = 1'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < kEach; ++i) {
        tracer.complete(static_cast<NodeId>(t % 2), TraceCat::kNet, "c", i, i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.recorded(), kThreads * kEach);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.events(0).size() + tracer.events(1).size(), kThreads * kEach);
}

// ---------------------------------------------------------------------------
// Timestamp monotonicity
// ---------------------------------------------------------------------------

TEST(TracerTest, VirtualAndRealTimestampsAreMonotonePerSpan) {
  Tracer tracer(1, small_config(256));
  LogicalClock clock;
  for (int i = 0; i < 50; ++i) {
    TraceScope scope(&tracer, 0, TraceCat::kProto, "work", &clock);
    clock.advance(static_cast<VirtualTime>(i * 3 + 1));
  }
  const auto events = tracer.events(0);
  ASSERT_EQ(events.size(), 50u);
  VirtualTime prev_vstart = 0;
  for (const auto& ev : events) {
    EXPECT_LE(ev.vstart, ev.vend);
    EXPECT_LE(ev.rstart_ns, ev.rend_ns);
    // Single-threaded recording: ring order matches virtual-time order.
    EXPECT_GE(ev.vstart, prev_vstart);
    prev_vstart = ev.vstart;
  }
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

TEST(TracerTest, JsonParsesAndRoundTripsEveryRecordedSpan) {
  Tracer tracer(3, small_config(256));
  LogicalClock clock;
  tracer.complete(0, TraceCat::kFault, "read-fault", 1'000, 6'500, "page", 4);
  tracer.complete(1, TraceCat::kNet, "ReadRequest", 2'000, 12'345, "src", 0, "seq", 9);
  tracer.instant(2, TraceCat::kNet, "send", 777);

  std::ostringstream os;
  tracer.write_json(os);
  Json root;
  ASSERT_TRUE(JsonParser(os.str()).parse(root)) << os.str();
  ASSERT_EQ(root.type, Json::Type::kObject);
  ASSERT_TRUE(root.has("traceEvents"));

  std::vector<const Json*> spans;
  for (const auto& ev : root.at("traceEvents").arr) {
    ASSERT_EQ(ev.type, Json::Type::kObject);
    ASSERT_TRUE(ev.has("ph"));
    const auto& ph = ev.at("ph").str;
    ASSERT_TRUE(ph == "X" || ph == "M") << ph;
    if (ph == "X") spans.push_back(&ev);
  }
  ASSERT_EQ(spans.size(), 3u);

  // pid = node, tid = category, ts/dur in µs carrying the exact virtual ns.
  EXPECT_EQ(spans[0]->at("name").str, "read-fault");
  EXPECT_EQ(spans[0]->at("pid").number, 0);
  EXPECT_EQ(spans[0]->at("cat").str, "fault");
  EXPECT_DOUBLE_EQ(spans[0]->at("ts").number * 1000.0, 1'000.0);
  EXPECT_DOUBLE_EQ(spans[0]->at("dur").number * 1000.0, 5'500.0);
  EXPECT_EQ(spans[0]->at("args").at("page").number, 4);

  EXPECT_EQ(spans[1]->at("name").str, "ReadRequest");
  EXPECT_EQ(spans[1]->at("pid").number, 1);
  EXPECT_EQ(spans[1]->at("cat").str, "net");
  EXPECT_DOUBLE_EQ(spans[1]->at("ts").number * 1000.0, 2'000.0);
  EXPECT_DOUBLE_EQ(spans[1]->at("dur").number * 1000.0, 10'345.0);
  EXPECT_EQ(spans[1]->at("args").at("src").number, 0);
  EXPECT_EQ(spans[1]->at("args").at("seq").number, 9);

  EXPECT_EQ(spans[2]->at("pid").number, 2);
  EXPECT_DOUBLE_EQ(spans[2]->at("dur").number, 0.0);

  EXPECT_EQ(root.at("otherData").at("dropped").number, 0);
}

TEST(TracerTest, MergedGroupsRemapPidsAndLabelProcesses) {
  std::vector<TraceGroup> groups;
  groups.push_back({"alpha", 2, {TraceEvent{"a", nullptr, nullptr, 0, 0, 1, 2, 0, 0, 1,
                                            TraceCat::kProto}}});
  groups.push_back({"beta", 2, {TraceEvent{"b", nullptr, nullptr, 0, 0, 3, 4, 0, 0, 0,
                                           TraceCat::kNet}}});
  std::ostringstream os;
  write_chrome_trace(os, groups, 5);
  Json root;
  ASSERT_TRUE(JsonParser(os.str()).parse(root)) << os.str();
  double pid_a = -1, pid_b = -1;
  bool saw_beta_label = false;
  for (const auto& ev : root.at("traceEvents").arr) {
    if (ev.at("ph").str == "X" && ev.at("name").str == "a") pid_a = ev.at("pid").number;
    if (ev.at("ph").str == "X" && ev.at("name").str == "b") pid_b = ev.at("pid").number;
    if (ev.at("ph").str == "M" && ev.at("name").str == "process_name" &&
        ev.at("args").at("name").str == "beta/node 0") {
      saw_beta_label = true;
    }
  }
  EXPECT_EQ(pid_a, 1);  // group 0, node 1
  EXPECT_EQ(pid_b, 2);  // group 1, node 0 → stride 2
  EXPECT_TRUE(saw_beta_label);
  EXPECT_EQ(root.at("otherData").at("dropped").number, 5);
}

TEST(TracerTest, JsonEscapesControlCharactersInNames) {
  Tracer tracer(1, small_config(16));
  tracer.instant(0, TraceCat::kSync, "quote\"back\\slash\nnewline", 1);
  std::ostringstream os;
  tracer.write_json(os);
  Json root;
  ASSERT_TRUE(JsonParser(os.str()).parse(root)) << os.str();
  for (const auto& ev : root.at("traceEvents").arr) {
    if (ev.at("ph").str == "X") {
      EXPECT_EQ(ev.at("name").str, "quote\"back\\slash\nnewline");
    }
  }
}

// ---------------------------------------------------------------------------
// Diagnostic dump
// ---------------------------------------------------------------------------

TEST(TracerTest, DumpTailShowsAccountingAndLastSpans) {
  Tracer tracer(2, small_config(16));
  tracer.complete(0, TraceCat::kFault, "write-fault", 100, 900, "page", 3);
  std::ostringstream os;
  tracer.dump_tail(os, 8);
  const auto text = os.str();
  EXPECT_NE(text.find("recorded=1"), std::string::npos) << text;
  EXPECT_NE(text.find("write-fault"), std::string::npos) << text;
  EXPECT_NE(text.find("page=3"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// System integration: the overhead contract and end-to-end spans
// ---------------------------------------------------------------------------

TEST(TraceSystemTest, TracerIsNullWhenDisabled) {
  Config cfg;
  cfg.n_nodes = 2;
  System sys(cfg);
  EXPECT_EQ(sys.tracer(), nullptr);
  // And the diagnostic dump carries no trace section.
  std::ostringstream os;
  sys.dump_diagnostics(os);
  EXPECT_EQ(os.str().find("trace:"), std::string::npos);
}

TEST(TraceSystemTest, TracedRunRecordsAllCategoriesAndBalances) {
  Config cfg;
  cfg.n_nodes = 3;
  cfg.protocol = ProtocolKind::kIvyDynamic;
  cfg.trace.enabled = true;
  System sys(cfg);
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    w.barrier(0);
    for (int i = 0; i < 3; ++i) {
      w.acquire(1);
      *w.get(cell) += 1;
      w.release(1);
    }
    w.barrier(0);
  });

  ASSERT_NE(sys.tracer(), nullptr);
  const Tracer& tracer = *sys.tracer();
  EXPECT_EQ(tracer.open_spans(), 0);  // nothing outlives System::run
  EXPECT_EQ(tracer.dropped(), 0u);

  bool saw_fault = false, saw_proto = false, saw_sync = false, saw_net = false;
  for (const auto& ev : tracer.all_events()) {
    EXPECT_LE(ev.vstart, ev.vend);
    EXPECT_LE(ev.rstart_ns, ev.rend_ns);
    switch (ev.cat) {
      case TraceCat::kFault: saw_fault = true; break;
      case TraceCat::kProto: saw_proto = true; break;
      case TraceCat::kSync: saw_sync = true; break;
      case TraceCat::kNet: saw_net = true; break;
      case TraceCat::kCount_: FAIL() << "invalid category"; break;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_proto);
  EXPECT_TRUE(saw_sync);
  EXPECT_TRUE(saw_net);

  // The whole run exports as parseable Chrome-trace JSON.
  std::ostringstream os;
  tracer.write_json(os);
  Json root;
  ASSERT_TRUE(JsonParser(os.str()).parse(root));
  EXPECT_GT(root.at("traceEvents").arr.size(), 0u);

  // And the watchdog's diagnostic dump now carries the trace tail.
  std::ostringstream dump;
  sys.dump_diagnostics(dump);
  EXPECT_NE(dump.str().find("trace: recorded="), std::string::npos);
}

TEST(TraceSystemTest, TracingDoesNotChangeVirtualResults) {
  // Tracing must never advance virtual time: the same workload, traced and
  // untraced, produces the same checksum (virtual makespans are compared
  // loosely — thread interleaving may differ, the data must not).
  std::uint64_t sums[2] = {};
  for (int pass = 0; pass < 2; ++pass) {
    Config cfg;
    cfg.n_nodes = 3;
    cfg.trace.enabled = pass == 1;
    System sys(cfg);
    const auto data = sys.alloc_page_aligned<std::uint64_t>(64);
    sys.run([&](Worker& w) {
      w.get(data)[w.id()] = w.id() + 10;
      w.barrier(0);
      if (w.id() == 0) {
        std::uint64_t s = 0;
        for (std::size_t i = 0; i < sys.config().n_nodes; ++i) s += w.get(data)[i];
        sums[pass] = s;
      }
      w.barrier(0);
    });
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], 33u);
}

}  // namespace
}  // namespace dsm
