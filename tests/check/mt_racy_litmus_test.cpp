// Negative litmus tests for the race detector with *intra-node* racers: two
// app threads of the same node are distinct FastTrack units (node, tid), so
// an unsynchronized pair between them must be flagged — with the sibling's
// per-thread epoch ("c@node.tid") in the report — while the lock-ordered
// twin stays silent. The detector sits on the fault path, so each staged
// access is arranged to actually fault (reads before write-upgrades, a
// remote read to downgrade between two same-node writes).
//
// Worker::spawn requires the uffd engine, so these skip visibly where the
// kernel can't do minor-fault + write-protect userfaultfd. And like the
// cross-node racy litmus, the races are deliberate: this binary must never
// run under TSan (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "core/dsm.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

Config mt_racy_config() {
  Config cfg;
  cfg.n_nodes = 3;
  cfg.n_pages = 8;
  cfg.protocol = ProtocolKind::kIvyDynamic;
  cfg.check_level = CheckLevel::kCount;
  cfg.fault_engine = FaultEngineKind::kUffd;
  return cfg;
}

#define REQUIRE_UFFD()                                        \
  do {                                                        \
    std::string reason;                                       \
    if (!uffd_available(&reason))                             \
      GTEST_SKIP() << "[uffd unavailable] " << reason;        \
  } while (0)

/// The report must carry the sibling's per-thread identity — both the
/// spelled-out actor and the dotted epoch — so an intra-node race is
/// debuggable down to the thread.
void expect_sibling_race_report(const System& sys) {
  ASSERT_NE(sys.checker(), nullptr);
  EXPECT_GE(sys.stats().counter("check.races"), 1u);
  const std::string report = sys.checker()->last_violation();
  EXPECT_NE(report.find("data race on page 0"), std::string::npos) << report;
  EXPECT_NE(report.find("node 1 (thread 1)"), std::string::npos) << report;
  EXPECT_NE(report.find("@1.1"), std::string::npos) << report;
}

// WR shape: tid 0 read-faults the cell (node 1 gets a read-only copy), then
// its sibling write-upgrades the same word with no lock between them. In
// the DSM happens-before model (release/acquire and barrier edges only —
// thread spawn is not a synchronization edge) the pair is unordered.
TEST(MtRacyLitmus, IntraNodeWriteReadRaceIsFlagged) {
  REQUIRE_UFFD();
  System sys(mt_racy_config());
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> sink{0};
  sys.run([&](Worker& w) {
    if (w.id() != 1) return;
    sink = test::force_read(w.get(cell));               // R by (1, 0)
    w.spawn([&](Worker& s) { *s.get(cell) = 7; }).join();  // W by (1, 1)
  });
  expect_sibling_race_report(sys);
}

// WW shape: tid 0 writes, a remote read downgrades node 1's copy (so the
// sibling's write faults and is observed), then the sibling writes the same
// word. The sibling's write conflicts with both the unordered prior write
// and the remote read; every report names the sibling as the accessor.
TEST(MtRacyLitmus, IntraNodeWriteWriteRaceIsFlagged) {
  REQUIRE_UFFD();
  System sys(mt_racy_config());
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<int> stage{0};
  std::atomic<std::uint64_t> sink{0};
  sys.run([&](Worker& w) {
    if (w.id() == 2) {
      while (stage.load() < 1) std::this_thread::yield();
      sink = test::force_read(w.get(cell));  // downgrades node 1 to read-only
      stage = 2;
    }
    if (w.id() != 1) return;
    *w.get(cell) = 1;  // W by (1, 0)
    stage = 1;
    std::thread sib = w.spawn([&](Worker& s) {
      while (stage.load() < 2) std::this_thread::yield();
      *s.get(cell) = 2;  // W by (1, 1): write-upgrade fault, observed
    });
    sib.join();
  });
  expect_sibling_race_report(sys);
}

// The lock-ordered twin of the WR shape: the sibling acquires the lock tid 0
// released after its read, so the release/acquire edge orders the pair and
// the detector must stay silent — while still observing both accesses.
TEST(MtRacyLitmus, LockOrderedSiblingTwinStaysSilent) {
  REQUIRE_UFFD();
  System sys(mt_racy_config());
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> sink{0};
  sys.run([&](Worker& w) {
    if (w.id() != 1) return;
    w.acquire(0);
    sink = test::force_read(w.get(cell));
    w.release(0);
    w.spawn([&](Worker& s) {
        s.acquire(0);
        *s.get(cell) = 7;
        s.release(0);
      }).join();
  });
  ASSERT_NE(sys.checker(), nullptr);
  EXPECT_EQ(sys.checker()->violations(), 0u);
  EXPECT_GT(sys.stats().counter("check.accesses"), 0u);
}

}  // namespace
}  // namespace dsm
