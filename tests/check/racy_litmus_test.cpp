// Negative litmus tests for the race detector: small programs with a known,
// deliberate data race must be flagged, and their DRF twins must stay
// silent. Layout puts the contended cell on page 0 (homed/managed on node
// 0), and the racy accessors are nodes 1 and 2 — non-home nodes start with
// the page invalid, so both racy accesses fault and both are observed.
//
// NOTE: these programs contain real C++ data races by design, so this
// binary must never run under TSan (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "core/dsm.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

std::string case_name(const ::testing::TestParamInfo<ProtocolKind>& pi) {
  std::string s = to_string(pi.param);
  for (auto& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

Config racy_config(ProtocolKind protocol, CheckLevel level) {
  Config cfg;
  cfg.n_nodes = 3;
  cfg.n_pages = 8;
  cfg.protocol = protocol;
  cfg.check_level = level;
  return cfg;
}

/// The report must name the page, both access epochs, and the missing
/// happens-before edge — enough to debug the race from the one line.
void expect_race_report(const System& sys) {
  ASSERT_NE(sys.checker(), nullptr);
  EXPECT_GE(sys.stats().counter("check.races"), 1u);
  const std::string report = sys.checker()->last_violation();
  EXPECT_NE(report.find("data race on page 0"), std::string::npos) << report;
  EXPECT_NE(report.find("at epoch"), std::string::npos) << report;
  EXPECT_NE(report.find("conflicts with"), std::string::npos) << report;
  EXPECT_NE(report.find("@"), std::string::npos) << report;
  EXPECT_NE(report.find("no happens-before edge"), std::string::npos) << report;
}

// Every page-fault protocol: the detector sits on the fault path, so it is
// protocol-independent. EC is excluded — its pages are writable everywhere
// and never fault, so the detector is blind there by design.
class RacyLitmusTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RacyLitmusTest, UnorderedWritesAreFlagged) {
  System sys(racy_config(GetParam(), CheckLevel::kCount));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    w.barrier(0);
    // Nodes 1 and 2 write the same word in the same barrier round with no
    // lock between them: a write-write race whichever order they land in.
    if (w.id() == 1) *w.get(cell) = 1;
    if (w.id() == 2) *w.get(cell) = 2;
    w.barrier(0);
  });
  expect_race_report(sys);
}

TEST_P(RacyLitmusTest, UnorderedWriteAgainstReadIsFlagged) {
  System sys(racy_config(GetParam(), CheckLevel::kCount));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> sink{0};
  sys.run([&](Worker& w) {
    w.barrier(0);
    if (w.id() == 1) *w.get(cell) = 42;
    if (w.id() == 2) sink = test::force_read(w.get(cell));
    w.barrier(0);
  });
  expect_race_report(sys);
}

TEST_P(RacyLitmusTest, LockOrderedTwinStaysSilent) {
  // The same two writes, now each inside the same critical section: the
  // release/acquire edge orders them and the detector must stay silent.
  System sys(racy_config(GetParam(), CheckLevel::kCount));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    w.barrier(0);
    if (w.id() == 1 || w.id() == 2) {
      w.acquire(0);
      *w.get(cell) += w.id();
      w.release(0);
    }
    w.barrier(0);
  });
  ASSERT_NE(sys.checker(), nullptr);
  EXPECT_EQ(sys.checker()->violations(), 0u);
  EXPECT_GT(sys.stats().counter("check.accesses"), 0u);
}

TEST_P(RacyLitmusTest, BarrierOrderedTwinStaysSilent) {
  // Write and read separated by a barrier: ordered, silent.
  System sys(racy_config(GetParam(), CheckLevel::kCount));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<std::uint64_t> sink{0};
  sys.run([&](Worker& w) {
    if (w.id() == 1) *w.get(cell) = 7;
    w.barrier(0);
    if (w.id() == 2) sink = test::force_read(w.get(cell));
    w.barrier(0);
  });
  ASSERT_NE(sys.checker(), nullptr);
  EXPECT_EQ(sys.checker()->violations(), 0u);
  EXPECT_EQ(sink.load(), 7u);
}

INSTANTIATE_TEST_SUITE_P(
    FaultingProtocols, RacyLitmusTest,
    ::testing::Values(ProtocolKind::kIvyCentral, ProtocolKind::kIvyFixed,
                      ProtocolKind::kIvyDynamic, ProtocolKind::kErcInvalidate,
                      ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
                      ProtocolKind::kHlrc),
    case_name);

TEST(RacyLitmusDeathTest, AssertModeAbortsWithTheRaceReport) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        System sys(racy_config(ProtocolKind::kIvyDynamic, CheckLevel::kAssert));
        const auto cell = sys.alloc_page_aligned<std::uint64_t>();
        sys.run([&](Worker& w) {
          w.barrier(0);
          if (w.id() == 1) *w.get(cell) = 1;
          if (w.id() == 2) *w.get(cell) = 2;
          w.barrier(0);
        });
      },
      "\\[dsmcheck\\] VIOLATION.*data race on page 0");
}

}  // namespace
}  // namespace dsm
