// Unit tests of the dsmcheck engine driven directly through its hook API —
// no System, no threads, no faults. Count mode throughout, so violations
// accumulate in counters instead of aborting.
#include "check/checker.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/stats.hpp"

namespace dsm {
namespace {

class CheckerTest : public ::testing::Test {
 protected:
  std::unique_ptr<DsmChecker> make(std::size_t n_nodes = 2, bool swmr = false) {
    DsmChecker::Setup setup;
    setup.n_nodes = n_nodes;
    setup.n_pages = 8;
    setup.page_size = 4096;
    setup.n_locks = 4;
    setup.n_barriers = 2;
    setup.level = CheckLevel::kCount;
    setup.swmr = swmr;
    setup.protocol = "unit";
    setup.stats = &stats_;
    return std::make_unique<DsmChecker>(std::move(setup));
  }

  std::uint64_t races() const { return stats_.snapshot().counter("check.races"); }

  StatsRegistry stats_;
};

TEST_F(CheckerTest, UnorderedWritesToSameWordAreARace) {
  auto chk = make();
  chk->on_access(0, 3, 16, /*is_write=*/true);
  chk->on_access(1, 3, 16, /*is_write=*/true);
  EXPECT_EQ(races(), 1u);
  EXPECT_EQ(chk->violations(), 1u);
  // The report names the page, both epochs, and the missing HB edge.
  const std::string report = chk->last_violation();
  EXPECT_NE(report.find("data race on page 3"), std::string::npos) << report;
  EXPECT_NE(report.find("1@0"), std::string::npos) << report;
  EXPECT_NE(report.find("1@1"), std::string::npos) << report;
  EXPECT_NE(report.find("happens-before"), std::string::npos) << report;
}

TEST_F(CheckerTest, UnorderedWriteThenReadIsARace) {
  auto chk = make();
  chk->on_access(0, 1, 0, true);
  chk->on_access(1, 1, 0, false);
  EXPECT_EQ(races(), 1u);
}

TEST_F(CheckerTest, UnorderedReadThenWriteIsARace) {
  auto chk = make();
  chk->on_access(0, 1, 0, false);
  chk->on_access(1, 1, 0, true);
  EXPECT_EQ(races(), 1u);
}

TEST_F(CheckerTest, ConcurrentReadsAreNotARace) {
  auto chk = make();
  chk->on_access(0, 1, 0, false);
  chk->on_access(1, 1, 0, false);
  EXPECT_EQ(races(), 0u);
}

TEST_F(CheckerTest, DistinctWordsOnOnePageDoNotConflict) {
  auto chk = make();
  chk->on_access(0, 1, 0, true);
  chk->on_access(1, 1, 8, true);   // next word
  chk->on_access(1, 1, 4096 - 8, true);
  EXPECT_EQ(races(), 0u);
}

TEST_F(CheckerTest, SubWordOffsetsShareOneWord) {
  auto chk = make();
  chk->on_access(0, 1, 8, true);
  chk->on_access(1, 1, 13, true);  // same aligned 8-byte word as offset 8
  EXPECT_EQ(races(), 1u);
}

TEST_F(CheckerTest, SameNodeAccessesAreProgramOrdered) {
  auto chk = make();
  chk->on_access(0, 1, 0, true);
  chk->on_access(0, 1, 0, true);
  chk->on_access(0, 1, 0, false);
  EXPECT_EQ(races(), 0u);
}

TEST_F(CheckerTest, ReleaseAcquireOrdersTheWrites) {
  auto chk = make();
  chk->on_lock_acquired(0, 0, DsmChecker::LockMode::kMutex);
  chk->on_access(0, 1, 0, true);
  chk->on_lock_released(0, 0, DsmChecker::LockMode::kMutex);
  chk->on_lock_acquired(1, 0, DsmChecker::LockMode::kMutex);
  chk->on_access(1, 1, 0, true);
  chk->on_lock_released(1, 0, DsmChecker::LockMode::kMutex);
  EXPECT_EQ(races(), 0u);
}

TEST_F(CheckerTest, ADifferentLockDoesNotOrderTheWrites) {
  auto chk = make();
  chk->on_lock_acquired(0, 0, DsmChecker::LockMode::kMutex);
  chk->on_access(0, 1, 0, true);
  chk->on_lock_released(0, 0, DsmChecker::LockMode::kMutex);
  chk->on_lock_acquired(1, 1, DsmChecker::LockMode::kMutex);
  chk->on_access(1, 1, 0, true);
  chk->on_lock_released(1, 1, DsmChecker::LockMode::kMutex);
  EXPECT_EQ(races(), 1u);
}

TEST_F(CheckerTest, BarrierOrdersAllPriorWrites) {
  auto chk = make();
  chk->on_access(0, 2, 0, true);
  chk->on_barrier_arrive(0, 0);
  chk->on_barrier_arrive(1, 0);
  chk->on_barrier_depart(0, 0);
  chk->on_barrier_depart(1, 0);
  chk->on_access(1, 2, 0, true);
  EXPECT_EQ(races(), 0u);
}

TEST_F(CheckerTest, SecondBarrierRoundStillOrders) {
  auto chk = make();
  for (int round = 0; round < 2; ++round) {
    const NodeId writer = static_cast<NodeId>(round % 2);
    chk->on_access(writer, 2, 0, true);
    chk->on_barrier_arrive(0, 0);
    chk->on_barrier_arrive(1, 0);
    chk->on_barrier_depart(0, 0);
    chk->on_barrier_depart(1, 0);
  }
  EXPECT_EQ(races(), 0u);
}

TEST_F(CheckerTest, TransitiveHappensBeforeIsCarried) {
  auto chk = make(3);
  chk->on_access(0, 1, 0, true);
  // 0 -> 1 via lock 0, then 1 -> 2 via lock 1: node 2 is ordered after
  // node 0's write it never directly synchronized with.
  chk->on_lock_acquired(0, 0, DsmChecker::LockMode::kMutex);
  chk->on_lock_released(0, 0, DsmChecker::LockMode::kMutex);
  chk->on_lock_acquired(1, 0, DsmChecker::LockMode::kMutex);
  chk->on_lock_released(1, 0, DsmChecker::LockMode::kMutex);
  chk->on_lock_acquired(1, 1, DsmChecker::LockMode::kMutex);
  chk->on_lock_released(1, 1, DsmChecker::LockMode::kMutex);
  chk->on_lock_acquired(2, 1, DsmChecker::LockMode::kMutex);
  chk->on_access(2, 1, 0, true);
  EXPECT_EQ(races(), 0u);
}

TEST_F(CheckerTest, DoubleExclusiveGrantIsATokenViolation) {
  auto chk = make();
  chk->on_lock_acquired(0, 2, DsmChecker::LockMode::kMutex);
  chk->on_lock_acquired(1, 2, DsmChecker::LockMode::kMutex);
  EXPECT_EQ(stats_.snapshot().counter("check.token"), 1u);
}

TEST_F(CheckerTest, WriteGrantWhileReadersHoldIsATokenViolation) {
  auto chk = make();
  chk->on_lock_acquired(0, 2, DsmChecker::LockMode::kRead);
  chk->on_lock_acquired(1, 2, DsmChecker::LockMode::kWrite);
  EXPECT_EQ(stats_.snapshot().counter("check.token"), 1u);
}

TEST_F(CheckerTest, ConcurrentReadersAreLegal) {
  auto chk = make();
  chk->on_lock_acquired(0, 2, DsmChecker::LockMode::kRead);
  chk->on_lock_acquired(1, 2, DsmChecker::LockMode::kRead);
  chk->on_lock_released(0, 2, DsmChecker::LockMode::kRead);
  chk->on_lock_released(1, 2, DsmChecker::LockMode::kRead);
  EXPECT_EQ(chk->violations(), 0u);
}

TEST_F(CheckerTest, TwoWritableCopiesViolateSwmr) {
  auto chk = make(2, /*swmr=*/true);
  chk->on_page_state(0, 5, PageState::kReadWrite);
  chk->on_page_state(1, 5, PageState::kReadWrite);
  EXPECT_EQ(stats_.snapshot().counter("check.swmr"), 1u);
  EXPECT_NE(chk->last_violation().find("SWMR"), std::string::npos);
}

TEST_F(CheckerTest, ReaderBesideWriterViolatesSwmr) {
  auto chk = make(2, true);
  chk->on_page_state(0, 5, PageState::kReadWrite);
  chk->on_page_state(1, 5, PageState::kReadOnly);
  EXPECT_EQ(stats_.snapshot().counter("check.swmr"), 1u);
}

TEST_F(CheckerTest, WriterAfterInvalidationIsLegalSwmr) {
  auto chk = make(2, true);
  chk->on_page_state(0, 5, PageState::kReadWrite);
  chk->on_page_state(0, 5, PageState::kInvalid);
  chk->on_page_state(1, 5, PageState::kReadWrite);
  chk->on_page_state(1, 5, PageState::kReadOnly);
  chk->on_page_state(0, 5, PageState::kReadOnly);
  EXPECT_EQ(chk->violations(), 0u);
}

TEST_F(CheckerTest, MultiWriterProtocolsSkipSwmr) {
  auto chk = make(2, /*swmr=*/false);
  chk->on_page_state(0, 5, PageState::kReadWrite);
  chk->on_page_state(1, 5, PageState::kReadWrite);
  EXPECT_EQ(chk->violations(), 0u);
}

TEST_F(CheckerTest, PageVersionMustStrictlyIncrease) {
  auto chk = make();
  chk->on_page_version(0, 1, 1);
  chk->on_page_version(0, 1, 2);
  EXPECT_EQ(chk->violations(), 0u);
  chk->on_page_version(0, 1, 2);  // stall
  EXPECT_EQ(stats_.snapshot().counter("check.version"), 1u);
  chk->on_page_version(0, 1, 1);  // regression
  EXPECT_EQ(stats_.snapshot().counter("check.version"), 2u);
}

TEST_F(CheckerTest, LockVersionMayRepeatButNotRegress) {
  auto chk = make();
  chk->on_lock_version(0, 1, 3);
  chk->on_lock_version(0, 1, 3);
  EXPECT_EQ(chk->violations(), 0u);
  chk->on_lock_version(0, 1, 2);
  EXPECT_EQ(stats_.snapshot().counter("check.version"), 1u);
}

TEST_F(CheckerTest, VectorClockMustDominatePrevious) {
  auto chk = make();
  VectorClock a(2);
  a.tick(0);
  chk->on_vclock(0, a);
  a.tick(1);
  chk->on_vclock(0, a);
  EXPECT_EQ(chk->violations(), 0u);
  VectorClock regressed(2);  // all zeros: dominated by a, not dominating
  chk->on_vclock(0, regressed);
  EXPECT_EQ(stats_.snapshot().counter("check.vclock"), 1u);
}

TEST_F(CheckerTest, DeliverySeqMustBeContiguousPerLink) {
  auto chk = make();
  Message msg;
  msg.type = MsgType::kReadRequest;
  msg.src = 0;
  msg.dst = 1;
  msg.seq = 0;
  chk->on_deliver(msg);
  msg.seq = 1;
  chk->on_deliver(msg);
  EXPECT_EQ(chk->violations(), 0u);
  msg.seq = 3;  // hole: seq 2 skipped
  chk->on_deliver(msg);
  EXPECT_EQ(stats_.snapshot().counter("check.order"), 1u);
}

TEST_F(CheckerTest, ControlTrafficWithoutSeqIsIgnored) {
  auto chk = make();
  Message msg;
  msg.type = MsgType::kWakeup;
  msg.src = 0;
  msg.dst = 0;
  msg.seq = Message::kNoSeq;
  chk->on_deliver(msg);
  chk->on_deliver(msg);
  EXPECT_EQ(chk->violations(), 0u);
}

TEST_F(CheckerTest, LinksTrackSeqIndependently) {
  auto chk = make();
  Message msg;
  msg.type = MsgType::kReadRequest;
  msg.seq = 0;
  msg.src = 0;
  msg.dst = 1;
  chk->on_deliver(msg);
  msg.src = 1;
  msg.dst = 0;
  chk->on_deliver(msg);  // seq 0 again, different link: fine
  EXPECT_EQ(chk->violations(), 0u);
}

TEST_F(CheckerTest, DumpIncludesLastViolation) {
  auto chk = make();
  chk->on_access(0, 3, 0, true);
  chk->on_access(1, 3, 0, true);
  std::ostringstream os;
  chk->dump_last_violation(os);
  EXPECT_NE(os.str().find("data race on page 3"), std::string::npos);
  EXPECT_NE(os.str().find("[dsmcheck]"), std::string::npos);
}

TEST_F(CheckerTest, CleanRunDumpsNothing) {
  auto chk = make();
  chk->on_access(0, 3, 0, true);
  std::ostringstream os;
  chk->dump_last_violation(os);
  EXPECT_TRUE(os.str().empty());
}

}  // namespace
}  // namespace dsm
