// The workload library against sequential references, across all protocols.
// These are the system's integration tests: if a protocol breaks ordering or
// loses a diff anywhere, a checksum here goes wrong.
#include <gtest/gtest.h>

#include "apps/gauss.hpp"
#include "apps/matmul.hpp"
#include "apps/quicksort.hpp"
#include "apps/sor.hpp"
#include "apps/task_queue.hpp"
#include "core/dsm.hpp"

namespace dsm {
namespace {

Config app_config(ProtocolKind kind, std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.n_pages = 96;  // ~384 KiB shared heap
  cfg.protocol = kind;
  return cfg;
}

class AppsTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AppsTest, SorMatchesSequentialReference) {
  System sys(app_config(GetParam(), 4));
  apps::SorParams params;
  params.rows = 24;
  params.cols = 24;
  params.iterations = 4;
  const auto result = apps::run_sor(sys, params);
  const double expected = apps::sor_reference_checksum(params);
  EXPECT_NEAR(result.checksum, expected, 1e-9 * std::abs(expected) + 1e-12);
  EXPECT_GT(result.virtual_ns, 0u);
}

TEST_P(AppsTest, SorUnevenPartition) {
  System sys(app_config(GetParam(), 3));  // 25 rows over 3 nodes
  apps::SorParams params;
  params.rows = 25;
  params.cols = 16;
  params.iterations = 3;
  const auto result = apps::run_sor(sys, params);
  EXPECT_NEAR(result.checksum, apps::sor_reference_checksum(params), 1e-9);
}

TEST_P(AppsTest, MatmulMatchesSequentialReference) {
  System sys(app_config(GetParam(), 4));
  apps::MatmulParams params;
  params.n = 24;
  const auto result = apps::run_matmul(sys, params);
  EXPECT_DOUBLE_EQ(result.checksum, apps::matmul_reference_checksum(params));
}

TEST_P(AppsTest, GaussSolvesToOnes) {
  System sys(app_config(GetParam(), 4));
  apps::GaussParams params;
  params.n = 20;
  const auto result = apps::run_gauss(sys, params);
  EXPECT_LT(result.max_error, 1e-9);
}

TEST_P(AppsTest, TaskQueueExecutesEveryTaskOnce) {
  System sys(app_config(GetParam(), 4));
  apps::TaskQueueParams params;
  params.n_tasks = 40;
  params.task_grain = 500;
  const auto result = apps::run_task_queue(sys, params);
  EXPECT_EQ(result.tasks_executed, 40u);
  EXPECT_EQ(result.per_consumer[0], 0u);  // the producer does not consume
}

TEST_P(AppsTest, TaskQueueSmallCapacityBackpressure) {
  System sys(app_config(GetParam(), 3));
  apps::TaskQueueParams params;
  params.n_tasks = 30;
  params.capacity = 2;  // forces producer back-off
  params.task_grain = 200;
  const auto result = apps::run_task_queue(sys, params);
  EXPECT_EQ(result.tasks_executed, 30u);
}

TEST_P(AppsTest, QuicksortSortsAndPreservesElements) {
  if (GetParam() == ProtocolKind::kEc) {
    GTEST_SKIP() << "quicksort's dynamic range ownership has no static EC binding";
  }
  apps::QuicksortParams params;
  params.n = 2048;
  params.threshold = 128;
  auto cfg = app_config(GetParam(), 4);
  cfg.n_pages = apps::quicksort_pages_needed(params, cfg.page_size);
  System sys(cfg);
  const auto result = apps::run_quicksort(sys, params);
  EXPECT_TRUE(result.sorted);
  EXPECT_TRUE(result.permutation_ok);
}

TEST_P(AppsTest, QuicksortWithDuplicateHeavyInput) {
  if (GetParam() == ProtocolKind::kEc) {
    GTEST_SKIP() << "quicksort's dynamic range ownership has no static EC binding";
  }
  apps::QuicksortParams params;
  params.n = 1024;
  params.threshold = 64;
  params.seed = 7;  // different value distribution
  auto cfg = app_config(GetParam(), 3);
  cfg.n_pages = apps::quicksort_pages_needed(params, cfg.page_size);
  System sys(cfg);
  const auto result = apps::run_quicksort(sys, params);
  EXPECT_TRUE(result.sorted);
  EXPECT_TRUE(result.permutation_ok);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, AppsTest,
                         ::testing::Values(ProtocolKind::kIvyCentral,
                                           ProtocolKind::kIvyFixed,
                                           ProtocolKind::kIvyDynamic,
                                           ProtocolKind::kErcInvalidate,
                                           ProtocolKind::kErcUpdate, ProtocolKind::kLrc, ProtocolKind::kHlrc,
                                           ProtocolKind::kEc),
                         [](const ::testing::TestParamInfo<ProtocolKind>& pi) {
                           std::string s = to_string(pi.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST(AppsScaling, SorSingleNodeEqualsReference) {
  System sys(app_config(ProtocolKind::kIvyDynamic, 1));
  apps::SorParams params;
  params.rows = 16;
  params.cols = 16;
  params.iterations = 5;
  const auto result = apps::run_sor(sys, params);
  EXPECT_DOUBLE_EQ(result.checksum, apps::sor_reference_checksum(params));
}

TEST(AppsScaling, MoreNodesThanRowsStillCorrect) {
  System sys(app_config(ProtocolKind::kLrc, 6));
  apps::SorParams params;
  params.rows = 4;  // nodes 4 and 5 own zero rows
  params.cols = 8;
  params.iterations = 2;
  const auto result = apps::run_sor(sys, params);
  EXPECT_NEAR(result.checksum, apps::sor_reference_checksum(params), 1e-9);
}

TEST(AppsScaling, VirtualTimeShrinksWithMoreNodes) {
  // The core promise of the virtual-time model: a coarse-grained workload
  // gets faster (in virtual ns) with more nodes — provided the problem is
  // big enough that compute dwarfs the data motion (at the default
  // 10 MB/s, a 32x32 matmul genuinely does NOT scale; use a faster link).
  apps::MatmulParams params;
  params.n = 96;
  auto cfg1 = app_config(ProtocolKind::kLrc, 1);
  auto cfg4 = app_config(ProtocolKind::kLrc, 4);
  cfg1.n_pages = cfg4.n_pages = 192;
  cfg1.link.ns_per_byte = cfg4.link.ns_per_byte = 1;  // ~1 GB/s
  System sys1(cfg1);
  System sys4(cfg4);
  const auto t1 = apps::run_matmul(sys1, params).virtual_ns;
  const auto t4 = apps::run_matmul(sys4, params).virtual_ns;
  EXPECT_LT(t4, t1);
}

}  // namespace
}  // namespace dsm
