#include "mem/page_table.hpp"

#include <gtest/gtest.h>

namespace dsm {
namespace {

TEST(PageTable, InitialState) {
  PageTable table(16, 4);
  EXPECT_EQ(table.n_pages(), 16u);
  for (PageId p = 0; p < 16; ++p) {
    EXPECT_EQ(table.state_of(p), PageState::kInvalid);
    EXPECT_TRUE(table.entry(p).copyset.empty());
    EXPECT_FALSE(table.entry(p).busy);
    EXPECT_FALSE(table.entry(p).has_base);
  }
}

TEST(PageTable, EntriesAreIndependent) {
  PageTable table(4, 2);
  {
    const std::lock_guard<std::mutex> lock(table.entry(1).mutex);
    table.entry(1).state = PageState::kReadWrite;
  }
  EXPECT_EQ(table.state_of(1), PageState::kReadWrite);
  EXPECT_EQ(table.state_of(0), PageState::kInvalid);
}

TEST(PageTable, CountInState) {
  PageTable table(8, 2);
  for (PageId p = 0; p < 3; ++p) {
    const std::lock_guard<std::mutex> lock(table.entry(p).mutex);
    table.entry(p).state = PageState::kReadOnly;
  }
  EXPECT_EQ(table.count_in_state(PageState::kReadOnly), 3u);
  EXPECT_EQ(table.count_in_state(PageState::kInvalid), 5u);
}

TEST(PageTable, CopysetSizedToNodes) {
  PageTable table(1, 7);
  auto& e = table.entry(0);
  e.copyset.insert(6);
  EXPECT_TRUE(e.copyset.contains(6));
}

TEST(PageTable, StateNamesReadable) {
  EXPECT_STREQ(to_string(PageState::kInvalid), "Invalid");
  EXPECT_STREQ(to_string(PageState::kReadOnly), "ReadOnly");
  EXPECT_STREQ(to_string(PageState::kReadWrite), "ReadWrite");
}

TEST(PageTableDeathTest, OutOfRangeAborts) {
  PageTable table(2, 2);
  EXPECT_DEATH(table.entry(2), "out of range");
}

}  // namespace
}  // namespace dsm
