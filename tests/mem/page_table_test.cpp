#include "mem/page_table.hpp"

#include <gtest/gtest.h>

#include "common/thread_annotations.hpp"

namespace dsm {
namespace {

TEST(PageTable, InitialState) {
  PageTable table(16, 4);
  EXPECT_EQ(table.n_pages(), 16u);
  for (PageId p = 0; p < 16; ++p) {
    EXPECT_EQ(table.state_of(p), PageState::kInvalid);
    PageEntry& e = table.entry(p);
    const MutexLock lock(e.mutex);
    EXPECT_TRUE(e.copyset.empty());
    EXPECT_FALSE(e.busy);
    EXPECT_FALSE(e.has_base);
  }
}

TEST(PageTable, EntriesAreIndependent) {
  PageTable table(4, 2);
  {
    PageEntry& e = table.entry(1);
    const MutexLock lock(e.mutex);
    e.state = PageState::kReadWrite;
  }
  EXPECT_EQ(table.state_of(1), PageState::kReadWrite);
  EXPECT_EQ(table.state_of(0), PageState::kInvalid);
}

TEST(PageTable, CountInState) {
  PageTable table(8, 2);
  for (PageId p = 0; p < 3; ++p) {
    PageEntry& e = table.entry(p);
    const MutexLock lock(e.mutex);
    e.state = PageState::kReadOnly;
  }
  EXPECT_EQ(table.count_in_state(PageState::kReadOnly), 3u);
  EXPECT_EQ(table.count_in_state(PageState::kInvalid), 5u);
}

TEST(PageTable, CopysetSizedToNodes) {
  PageTable table(1, 7);
  auto& e = table.entry(0);
  const MutexLock lock(e.mutex);
  e.copyset.insert(6);
  EXPECT_TRUE(e.copyset.contains(6));
}

TEST(PageTable, StateNamesReadable) {
  EXPECT_STREQ(to_string(PageState::kInvalid), "Invalid");
  EXPECT_STREQ(to_string(PageState::kReadOnly), "ReadOnly");
  EXPECT_STREQ(to_string(PageState::kReadWrite), "ReadWrite");
}

TEST(PageTableDeathTest, OutOfRangeAborts) {
  PageTable table(2, 2);
  EXPECT_DEATH(table.entry(2), "out of range");
}

}  // namespace
}  // namespace dsm
