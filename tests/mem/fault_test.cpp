// End-to-end tests of the SIGSEGV machinery: the same syscall path the
// protocols use, exercised directly.
#include "mem/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "mem/region.hpp"

namespace dsm {
namespace {

TEST(FaultRouter, ReadFaultIsReportedAndResolved) {
  auto& router = FaultRouter::instance();
  ViewRegion view(2, ViewRegion::os_page_size());
  std::atomic<int> faults{0};
  std::atomic<bool> last_was_write{true};

  const int token = router.add_region(
      &view,
      [&](PageId page, std::size_t, bool is_write) {
        ++faults;
        last_was_write = is_write;
        view.protect(page, Access::kReadWrite);  // resolve
      },
      [](PageId) { return false; });

  volatile std::byte* p = view.page_ptr(1);
  const std::byte value = *p;  // read fault
  EXPECT_EQ(value, std::byte{0});
  EXPECT_EQ(faults.load(), 1);
  EXPECT_FALSE(last_was_write.load());

  router.remove_region(token);
}

TEST(FaultRouter, WriteFaultDistinguishedFromRead) {
  auto& router = FaultRouter::instance();
  ViewRegion view(1, ViewRegion::os_page_size());
  view.protect(0, Access::kRead);
  std::atomic<bool> saw_write{false};

  const int token = router.add_region(
      &view,
      [&](PageId page, std::size_t, bool is_write) {
        saw_write = is_write;
        view.protect(page, Access::kReadWrite);
      },
      [](PageId) { return true; });

  volatile std::byte* p = view.page_ptr(0);
  *p = std::byte{42};  // write fault on a read-only page
  EXPECT_TRUE(saw_write.load());
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{42});

  router.remove_region(token);
}

TEST(FaultRouter, FaultReportsCorrectPageAndOffset) {
  auto& router = FaultRouter::instance();
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(4, os);
  std::atomic<PageId> faulted{kNoPage};
  std::atomic<std::size_t> offset{~std::size_t{0}};

  const int token = router.add_region(
      &view,
      [&](PageId page, std::size_t off, bool) {
        faulted = page;
        offset = off;
        view.protect(page, Access::kReadWrite);
      },
      [](PageId) { return false; });

  volatile std::byte* p = view.page_ptr(2) + 17;
  (void)*p;
  EXPECT_EQ(faulted.load(), 2u);
  EXPECT_EQ(offset.load(), 17u);
  router.remove_region(token);
}

TEST(FaultRouter, TwoRegionsRouteIndependently) {
  auto& router = FaultRouter::instance();
  ViewRegion a(1, ViewRegion::os_page_size());
  ViewRegion b(1, ViewRegion::os_page_size());
  std::atomic<int> a_faults{0}, b_faults{0};

  const int ta = router.add_region(
      &a,
      [&](PageId page, std::size_t, bool) {
        ++a_faults;
        a.protect(page, Access::kReadWrite);
      },
      [](PageId) { return false; });
  const int tb = router.add_region(
      &b,
      [&](PageId page, std::size_t, bool) {
        ++b_faults;
        b.protect(page, Access::kReadWrite);
      },
      [](PageId) { return false; });

  (void)*static_cast<volatile std::byte*>(b.page_ptr(0));
  (void)*static_cast<volatile std::byte*>(a.page_ptr(0));
  EXPECT_EQ(a_faults.load(), 1);
  EXPECT_EQ(b_faults.load(), 1);
  router.remove_region(ta);
  router.remove_region(tb);
}

TEST(FaultRouter, NoRefaultAfterResolution) {
  auto& router = FaultRouter::instance();
  ViewRegion view(1, ViewRegion::os_page_size());
  std::atomic<int> faults{0};
  const int token = router.add_region(
      &view,
      [&](PageId page, std::size_t, bool) {
        ++faults;
        view.protect(page, Access::kReadWrite);
      },
      [](PageId) { return false; });

  volatile std::byte* p = view.page_ptr(0);
  (void)*p;
  (void)*p;
  *p = std::byte{1};
  EXPECT_EQ(faults.load(), 1);
  router.remove_region(token);
}

TEST(FaultRouter, ActiveRegionsTracksRegistrations) {
  auto& router = FaultRouter::instance();
  const int before = router.active_regions();
  ViewRegion view(1, ViewRegion::os_page_size());
  const int token = router.add_region(
      &view, [&](PageId page, std::size_t, bool) { view.protect(page, Access::kReadWrite); },
      [](PageId) { return false; });
  EXPECT_EQ(router.active_regions(), before + 1);
  router.remove_region(token);
  EXPECT_EQ(router.active_regions(), before);
}

}  // namespace
}  // namespace dsm
