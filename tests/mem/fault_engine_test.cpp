// FaultEngine seam tests: construction and env selection, the uffd
// capability probe, and — parameterized over every engine the host can run —
// the trap contract the protocols rely on: read/write classification,
// correct page/offset attribution, no re-fault after resolution, write
// upgrades, invalidation that preserves page bytes, and clean poller
// lifecycle across repeated register/unregister cycles.
#include "mem/fault_engine.hpp"

#include <gtest/gtest.h>

#include <sys/mman.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/stats.hpp"
#include "mem/region.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

bool host_can_run(FaultEngineKind kind) {
  return kind == FaultEngineKind::kSigsegv || uffd_available(nullptr);
}

// --- construction & environment --------------------------------------------

TEST(FaultEngineFactory, BuildsTheRequestedKind) {
  StatsRegistry stats;
  const auto sig = make_fault_engine(FaultEngineKind::kSigsegv, &stats);
  EXPECT_EQ(sig->kind(), FaultEngineKind::kSigsegv);
  EXPECT_EQ(sig->name(), "sigsegv");
  if (uffd_available(nullptr)) {
    const auto uffd = make_fault_engine(FaultEngineKind::kUffd, &stats);
    EXPECT_EQ(uffd->kind(), FaultEngineKind::kUffd);
    EXPECT_EQ(uffd->name(), "uffd");
  }
}

TEST(FaultEngineFactory, EnvOverrideFlipsTheKind) {
  const char* saved = std::getenv("TUTORDSM_FAULT_ENGINE");
  const std::string saved_value = saved != nullptr ? saved : "";

  FaultEngineKind kind = FaultEngineKind::kSigsegv;
  ::unsetenv("TUTORDSM_FAULT_ENGINE");
  EXPECT_FALSE(fault_engine_kind_from_env(kind));
  EXPECT_EQ(kind, FaultEngineKind::kSigsegv);

  ::setenv("TUTORDSM_FAULT_ENGINE", "uffd", 1);
  EXPECT_TRUE(fault_engine_kind_from_env(kind));
  EXPECT_EQ(kind, FaultEngineKind::kUffd);

  ::setenv("TUTORDSM_FAULT_ENGINE", "sigsegv", 1);
  EXPECT_TRUE(fault_engine_kind_from_env(kind));
  EXPECT_EQ(kind, FaultEngineKind::kSigsegv);

  if (saved != nullptr) {
    ::setenv("TUTORDSM_FAULT_ENGINE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("TUTORDSM_FAULT_ENGINE");
  }
}

TEST(FaultEngineFactoryDeathTest, UnknownEnvValueAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ::setenv("TUTORDSM_FAULT_ENGINE", "page-genie", 1);
        FaultEngineKind kind = FaultEngineKind::kSigsegv;
        fault_engine_kind_from_env(kind);
      },
      "TUTORDSM_FAULT_ENGINE");
}

TEST(UffdProbe, ForcedUnavailableOverridesTheKernel) {
  ::setenv("TUTORDSM_UFFD_UNAVAILABLE", "1", 1);
  std::string reason;
  EXPECT_FALSE(uffd_available(&reason));
  EXPECT_NE(reason.find("TUTORDSM_UFFD_UNAVAILABLE"), std::string::npos);
  ::unsetenv("TUTORDSM_UFFD_UNAVAILABLE");
}

TEST(UffdProbe, UnavailableComesWithAReason) {
  std::string reason = "unset";
  if (uffd_available(&reason)) {
    // Probe succeeded: the engine must actually construct and register.
    StatsRegistry stats;
    const auto engine = make_fault_engine(FaultEngineKind::kUffd, &stats);
    EXPECT_EQ(engine->active_regions(), 0);
  } else {
    EXPECT_FALSE(reason.empty());
    EXPECT_NE(reason, "unset");
  }
}

// --- the trap contract, on every engine the host can run -------------------

class FaultEngineContractTest : public ::testing::TestWithParam<FaultEngineKind> {
 protected:
  void SetUp() override {
    if (!host_can_run(GetParam())) {
      std::string reason;
      uffd_available(&reason);
      GTEST_SKIP() << "[uffd unavailable] " << reason;
    }
    engine_ = make_fault_engine(GetParam(), &stats_);
  }

  /// Registers `view` with a handler that records the last fault and
  /// resolves it by installing `resolve_as` rights.
  int register_counting(ViewRegion& view, Access resolve_as = Access::kReadWrite) {
    RegionHooks hooks;
    hooks.on_fault = [this, &view, resolve_as](PageId page, std::size_t offset,
                                               bool is_write) {
      ++faults_;
      last_page_ = page;
      last_offset_ = offset;
      last_was_write_ = is_write;
      view.protect(page, resolve_as);
    };
    hooks.infer_write = [](PageId) { return false; };
    return engine_->add_region(&view, std::move(hooks));
  }

  StatsRegistry stats_;
  std::unique_ptr<FaultEngine> engine_;
  std::atomic<int> faults_{0};
  std::atomic<PageId> last_page_{kNoPage};
  std::atomic<std::size_t> last_offset_{~std::size_t{0}};
  std::atomic<bool> last_was_write_{false};
};

TEST_P(FaultEngineContractTest, ReadOfInvalidPageClassifiesAsRead) {
  ViewRegion view(2, ViewRegion::os_page_size());
  const int token = register_counting(view);
  volatile std::byte* p = view.page_ptr(1);
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{0});
  EXPECT_EQ(faults_.load(), 1);
  EXPECT_FALSE(last_was_write_.load());
  EXPECT_EQ(last_page_.load(), 1u);
  engine_->remove_region(token);
}

TEST_P(FaultEngineContractTest, WriteToInvalidPageClassifiesAsWrite) {
  ViewRegion view(1, ViewRegion::os_page_size());
  RegionHooks hooks;
  hooks.on_fault = [this, &view](PageId page, std::size_t, bool is_write) {
    ++faults_;
    last_was_write_ = is_write;
    view.protect(page, Access::kReadWrite);
  };
  // The sigsegv trap frame reports write-vs-read on x86/arm64 directly; the
  // inferrer is the fallback for architectures where it doesn't, and says
  // "invalid page + some access" — the protocols infer write from state
  // kInvalid the same way. The uffd engine never consults it.
  hooks.infer_write = [](PageId) { return true; };
  const int token = engine_->add_region(&view, std::move(hooks));

  volatile std::byte* p = view.page_ptr(0);
  *p = std::byte{7};
  EXPECT_EQ(faults_.load(), 1);
  EXPECT_TRUE(last_was_write_.load());
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{7});  // and no re-fault
  EXPECT_EQ(faults_.load(), 1);
  engine_->remove_region(token);
}

TEST_P(FaultEngineContractTest, WriteUpgradeOnReadOnlyPageClassifiesAsWrite) {
  ViewRegion view(1, ViewRegion::os_page_size());
  const int token = register_counting(view);

  // Install read rights proactively (no fault): the downgrade-install path.
  volatile std::byte* p = view.page_ptr(0);
  engine_->protect(view, 0, Access::kRead);
  EXPECT_EQ(faults_.load(), 0);
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{0});  // readable: no fault
  EXPECT_EQ(faults_.load(), 0);

  *p = std::byte{9};  // write to a read-only page: the upgrade fault
  EXPECT_EQ(faults_.load(), 1);
  EXPECT_TRUE(last_was_write_.load());
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{9});
  engine_->remove_region(token);
}

TEST_P(FaultEngineContractTest, FaultReportsCorrectPageAndOffset) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(4, os);
  const int token = register_counting(view);
  volatile std::byte* p = view.page_ptr(2) + 17;
  (void)*p;
  EXPECT_EQ(last_page_.load(), 2u);
  EXPECT_EQ(last_offset_.load(), 17u);
  engine_->remove_region(token);
}

TEST_P(FaultEngineContractTest, DoubleFaultSequenceReadThenWriteUpgrade) {
  // The protocols' hottest sequence: read miss → kRead install → write
  // upgrade → kReadWrite. Both engines must see exactly two faults with the
  // right classifications — the uffd engine's single-wake-after-resolve rule
  // is what keeps a spurious third fault from appearing here.
  ViewRegion view(1, ViewRegion::os_page_size());
  std::atomic<int> reads{0}, writes{0};
  RegionHooks hooks;
  hooks.on_fault = [&](PageId page, std::size_t, bool is_write) {
    if (is_write) {
      ++writes;
      view.protect(page, Access::kReadWrite);
    } else {
      ++reads;
      view.protect(page, Access::kRead);
    }
  };
  hooks.infer_write = [](PageId) { return false; };
  const int token = engine_->add_region(&view, std::move(hooks));

  volatile std::byte* p = view.page_ptr(0);
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{0});  // read miss
  *p = std::byte{5};            // write upgrade
  EXPECT_EQ(reads.load(), 1);
  EXPECT_EQ(writes.load(), 1);
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{5});
  EXPECT_EQ(reads.load() + writes.load(), 2);  // and nothing spurious
  engine_->remove_region(token);
}

TEST_P(FaultEngineContractTest, InvalidationPreservesPageBytes) {
  // LRC/HLRC depend on this: invalidating a page (kNone) revokes the app
  // view's access but must NOT destroy the bytes — the service window still
  // reads them (has_base diffs), and a later re-install serves them again.
  ViewRegion view(1, ViewRegion::os_page_size());
  const int token = register_counting(view);

  volatile std::byte* p = view.page_ptr(0);
  *p = std::byte{0xAB};  // write fault → kReadWrite, byte lands in the page
  EXPECT_EQ(faults_.load(), 1);

  engine_->protect(view, 0, Access::kNone);  // service-side invalidation
  EXPECT_EQ(static_cast<std::byte>(*view.alias_ptr(0)), std::byte{0xAB});

  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{0xAB});  // app re-fault re-installs the same bytes
  EXPECT_EQ(faults_.load(), 2);
  EXPECT_FALSE(last_was_write_.load());  // a read fault, not a WP fault
  engine_->remove_region(token);
}

TEST_P(FaultEngineContractTest, ProtectIsCallableFromAnotherThread) {
  // Service threads install pages concurrently with the app thread: protect
  // must work off-thread, and a page installed proactively (no fault
  // pending) must be readable with no fault at all.
  ViewRegion view(2, ViewRegion::os_page_size());
  const int token = register_counting(view);

  view.alias_ptr(1)[0] = std::byte{0x5C};  // service-side content install
  std::thread([&] { engine_->protect(view, 1, Access::kRead); }).join();

  volatile std::byte* p = view.page_ptr(1);
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{0x5C});
  EXPECT_EQ(faults_.load(), 0);
  engine_->remove_region(token);
}

TEST_P(FaultEngineContractTest, TwoRegionsRouteIndependently) {
  ViewRegion a(1, ViewRegion::os_page_size());
  ViewRegion b(1, ViewRegion::os_page_size());
  std::atomic<int> a_faults{0}, b_faults{0};
  RegionHooks ha;
  ha.on_fault = [&](PageId page, std::size_t, bool) {
    ++a_faults;
    a.protect(page, Access::kReadWrite);
  };
  ha.infer_write = [](PageId) { return false; };
  RegionHooks hb;
  hb.on_fault = [&](PageId page, std::size_t, bool) {
    ++b_faults;
    b.protect(page, Access::kReadWrite);
  };
  hb.infer_write = [](PageId) { return false; };
  const int ta = engine_->add_region(&a, std::move(ha));
  const int tb = engine_->add_region(&b, std::move(hb));
  EXPECT_EQ(engine_->active_regions(), 2);

  (void)*static_cast<volatile std::byte*>(b.page_ptr(0));
  (void)*static_cast<volatile std::byte*>(a.page_ptr(0));
  EXPECT_EQ(a_faults.load(), 1);
  EXPECT_EQ(b_faults.load(), 1);
  engine_->remove_region(ta);
  engine_->remove_region(tb);
  EXPECT_EQ(engine_->active_regions(), 0);
}

TEST_P(FaultEngineContractTest, PollerLifecycleSurvivesRepeatedCycles) {
  // Register/fault/unregister in a tight loop: every cycle spawns and joins
  // the uffd poller (a no-op for sigsegv). A leaked thread, fd, or stale
  // protect route shows up as a hang or a wrong count here.
  for (int cycle = 0; cycle < 8; ++cycle) {
    ViewRegion view(1, ViewRegion::os_page_size());
    EXPECT_FALSE(view.has_protect_route());
    const int token = register_counting(view);
    volatile std::byte* p = view.page_ptr(0);
    *p = static_cast<std::byte>(cycle);
    engine_->remove_region(token);
    EXPECT_FALSE(view.has_protect_route());
  }
  EXPECT_EQ(faults_.load(), 8);
  EXPECT_EQ(engine_->active_regions(), 0);
}

TEST_P(FaultEngineContractTest, RemoveMidFaultlessOperationIsImmediate) {
  // remove_region with the poller idle (blocked in poll, no fault in
  // flight) must return promptly — the stop pipe, not a fault, wakes it.
  ViewRegion view(1, ViewRegion::os_page_size());
  const int token = register_counting(view);
  const auto start = std::chrono::steady_clock::now();
  engine_->remove_region(token);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1000);
}

TEST_P(FaultEngineContractTest, EngineDestructionReleasesLiveRegions) {
  // A raw-engine user that forgets remove_region must still tear down
  // cleanly (the System always removes explicitly; this is the safety net).
  auto engine = make_fault_engine(GetParam(), &stats_);
  ViewRegion view(1, ViewRegion::os_page_size());
  RegionHooks hooks;
  hooks.on_fault = [&view](PageId page, std::size_t, bool) {
    view.protect(page, Access::kReadWrite);
  };
  hooks.infer_write = [](PageId) { return false; };
  engine->add_region(&view, std::move(hooks));
  (void)*static_cast<volatile std::byte*>(view.page_ptr(0));
  engine.reset();  // dtor must join pollers / drop router entries
  EXPECT_FALSE(view.has_protect_route());
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultEngineContractTest,
                         ::testing::Values(FaultEngineKind::kSigsegv,
                                           FaultEngineKind::kUffd),
                         [](const ::testing::TestParamInfo<FaultEngineKind>& pi) {
                           return std::string(to_string(pi.param));
                         });

// --- engine-specific edges --------------------------------------------------

TEST(SigsegvEngineTest, UnmappedAddressOutsideAnyRegionStillDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A stray pointer must remain a crash, not be swallowed by the DSM's
  // SIGSEGV handler: the router forwards faults outside every registered
  // region to the default disposition.
  EXPECT_DEATH(
      {
        StatsRegistry stats;
        const auto engine = make_fault_engine(FaultEngineKind::kSigsegv, &stats);
        ViewRegion view(1, ViewRegion::os_page_size());
        RegionHooks hooks;
        hooks.on_fault = [&view](PageId page, std::size_t, bool) {
          view.protect(page, Access::kReadWrite);
        };
        hooks.infer_write = [](PageId) { return false; };
        engine->add_region(&view, std::move(hooks));
        void* trap = ::mmap(nullptr, ViewRegion::os_page_size(), PROT_NONE,
                            MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        *static_cast<volatile char*>(trap) = 1;
      },
      ".*");
}

TEST(UffdEngineTest, UnmappedAddressOutsideTheRegionStillDies) {
  if (!uffd_available(nullptr)) GTEST_SKIP() << "[uffd unavailable]";
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        StatsRegistry stats;
        const auto engine = make_fault_engine(FaultEngineKind::kUffd, &stats);
        ViewRegion view(1, ViewRegion::os_page_size());
        RegionHooks hooks;
        hooks.on_fault = [&view](PageId page, std::size_t, bool) {
          view.protect(page, Access::kReadWrite);
        };
        hooks.infer_write = [](PageId) { return false; };
        engine->add_region(&view, std::move(hooks));
        void* trap = ::mmap(nullptr, ViewRegion::os_page_size(), PROT_NONE,
                            MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        *static_cast<volatile char*>(trap) = 1;
      },
      ".*");
}

TEST(UffdEngineTest, CountersAccountForTheFaultLifecycle) {
  if (!uffd_available(nullptr)) GTEST_SKIP() << "[uffd unavailable]";
  StatsRegistry stats;
  const auto engine = make_fault_engine(FaultEngineKind::kUffd, &stats);
  ViewRegion view(2, ViewRegion::os_page_size());
  RegionHooks hooks;
  hooks.on_fault = [&view](PageId page, std::size_t, bool is_write) {
    view.protect(page, is_write ? Access::kReadWrite : Access::kRead);
  };
  hooks.infer_write = [](PageId) { return false; };
  const int token = engine->add_region(&view, std::move(hooks));

  volatile std::byte* p = view.page_ptr(0);
  EXPECT_EQ(static_cast<std::byte>(*p), std::byte{0});  // minor fault → kRead
  *p = std::byte{1};            // wp fault → kReadWrite
  engine->protect(view, 0, Access::kNone);  // zap

  // The faulting thread resumes the instant the kernel wakes it; the
  // poller's own uffd.wakes increment lands just after. Give it a moment.
  for (int i = 0; i < 1000 && stats.snapshot().counter("uffd.wakes") < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("uffd.minor_faults"), 1u);
  EXPECT_EQ(snap.counter("uffd.wp_faults"), 1u);
  EXPECT_EQ(snap.counter("uffd.wakes"), 2u);
  EXPECT_EQ(snap.counter("uffd.zaps"), 1u);
  EXPECT_GE(snap.counter("uffd.continues"), 1u);
  engine->remove_region(token);
}

TEST(UffdEngineTest, SkipHelperReportsOnlyUnderUffdEnv) {
  const char* saved = std::getenv("TUTORDSM_FAULT_ENGINE");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("TUTORDSM_FAULT_ENGINE");
  EXPECT_FALSE(test::uffd_skip_reason().has_value());

  ::setenv("TUTORDSM_FAULT_ENGINE", "uffd", 1);
  ::setenv("TUTORDSM_UFFD_UNAVAILABLE", "1", 1);
  const auto reason = test::uffd_skip_reason();
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("[uffd unavailable]"), std::string::npos);
  ::unsetenv("TUTORDSM_UFFD_UNAVAILABLE");

  if (saved != nullptr) {
    ::setenv("TUTORDSM_FAULT_ENGINE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("TUTORDSM_FAULT_ENGINE");
  }
}

}  // namespace
}  // namespace dsm
