#include "mem/region.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace dsm {
namespace {

TEST(ViewRegion, GeometryAccessors) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(8, os);
  EXPECT_EQ(view.n_pages(), 8u);
  EXPECT_EQ(view.page_size(), os);
  EXPECT_EQ(view.size_bytes(), 8 * os);
  EXPECT_NE(view.base(), nullptr);
}

TEST(ViewRegion, PagePointersAreContiguous) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(4, os);
  EXPECT_EQ(view.page_ptr(1), view.base() + os);
  EXPECT_EQ(view.page_ptr(3), view.base() + 3 * os);
}

TEST(ViewRegion, ContainsAndPageOf) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(4, os);
  EXPECT_TRUE(view.contains(view.base()));
  EXPECT_TRUE(view.contains(view.base() + 4 * os - 1));
  EXPECT_FALSE(view.contains(view.base() + 4 * os));
  EXPECT_EQ(view.page_of(view.base() + 2 * os + 5), 2u);
  EXPECT_EQ(view.offset_of(view.base() + 2 * os + 5), 2 * os + 5);
}

TEST(ViewRegion, MultiOsPageDsmPages) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(2, 4 * os);
  EXPECT_EQ(view.page_of(view.base() + 3 * os), 0u);
  EXPECT_EQ(view.page_of(view.base() + 5 * os), 1u);
}

TEST(ViewRegion, WritableAfterProtect) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(2, os);
  view.protect(0, Access::kReadWrite);
  std::memset(view.page_ptr(0), 0x5A, os);
  EXPECT_EQ(static_cast<unsigned char>(*view.page_ptr(0)), 0x5Au);
}

TEST(ViewRegion, MemoryStartsZeroed) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(1, os);
  view.protect(0, Access::kRead);
  for (std::size_t i = 0; i < os; ++i) {
    ASSERT_EQ(view.page_ptr(0)[i], std::byte{0});
  }
}

TEST(ViewRegion, ScopedWritableRestores) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(1, os);
  view.protect(0, Access::kRead);
  {
    const ViewRegion::ScopedWritable open(view, 0, Access::kRead);
    view.page_ptr(0)[0] = std::byte{7};  // must not fault
  }
  // Still readable afterwards (we can't probe "not writable" without the
  // fault router, covered by fault_test).
  EXPECT_EQ(view.page_ptr(0)[0], std::byte{7});
}

TEST(ViewRegionDeathTest, NonMultiplePageSizeAborts) {
  EXPECT_DEATH(ViewRegion(1, 100), "multiple of the OS page size");
}

TEST(ViewRegionDeathTest, ProtectOutOfRangeAborts) {
  ViewRegion view(1, ViewRegion::os_page_size());
  EXPECT_DEATH(view.protect(5, Access::kRead), "out-of-range");
}

}  // namespace
}  // namespace dsm
