#include "mem/region.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace dsm {
namespace {

TEST(ViewRegion, GeometryAccessors) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(8, os);
  EXPECT_EQ(view.n_pages(), 8u);
  EXPECT_EQ(view.page_size(), os);
  EXPECT_EQ(view.size_bytes(), 8 * os);
  EXPECT_NE(view.base(), nullptr);
}

TEST(ViewRegion, PagePointersAreContiguous) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(4, os);
  EXPECT_EQ(view.page_ptr(1), view.base() + os);
  EXPECT_EQ(view.page_ptr(3), view.base() + 3 * os);
}

TEST(ViewRegion, ContainsAndPageOf) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(4, os);
  EXPECT_TRUE(view.contains(view.base()));
  EXPECT_TRUE(view.contains(view.base() + 4 * os - 1));
  EXPECT_FALSE(view.contains(view.base() + 4 * os));
  EXPECT_EQ(view.page_of(view.base() + 2 * os + 5), 2u);
  EXPECT_EQ(view.offset_of(view.base() + 2 * os + 5), 2 * os + 5);
}

TEST(ViewRegion, MultiOsPageDsmPages) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(2, 4 * os);
  EXPECT_EQ(view.page_of(view.base() + 3 * os), 0u);
  EXPECT_EQ(view.page_of(view.base() + 5 * os), 1u);
}

TEST(ViewRegion, WritableAfterProtect) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(2, os);
  view.protect(0, Access::kReadWrite);
  std::memset(view.page_ptr(0), 0x5A, os);
  EXPECT_EQ(static_cast<unsigned char>(*view.page_ptr(0)), 0x5Au);
}

TEST(ViewRegion, MemoryStartsZeroed) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(1, os);
  view.protect(0, Access::kRead);
  for (std::size_t i = 0; i < os; ++i) {
    ASSERT_EQ(view.page_ptr(0)[i], std::byte{0});
  }
}

TEST(ViewRegion, ServiceWindowAliasesTheAppView) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(2, os);
  // Writable through the alias regardless of the app view's protection —
  // including PROT_NONE (page 1 is never opened).
  view.alias_ptr(1)[0] = std::byte{9};
  view.protect(0, Access::kRead);
  view.alias_ptr(0)[0] = std::byte{7};  // must not fault
  // The same physical bytes show through both mappings.
  EXPECT_EQ(view.page_ptr(0)[0], std::byte{7});
  EXPECT_EQ(view.alias_ptr(0)[0], std::byte{7});
  view.protect(1, Access::kRead);
  EXPECT_EQ(view.page_ptr(1)[0], std::byte{9});
}

TEST(ViewRegion, AppViewWritesShowThroughTheAlias) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(1, os);
  view.protect(0, Access::kReadWrite);
  view.page_ptr(0)[5] = std::byte{42};
  EXPECT_EQ(view.alias_ptr(0)[5], std::byte{42});
}

TEST(ViewRegion, AliasPagesAreContiguous) {
  const auto os = ViewRegion::os_page_size();
  ViewRegion view(4, os);
  EXPECT_EQ(view.alias_ptr(3), view.alias_ptr(0) + 3 * os);
  EXPECT_FALSE(view.contains(view.alias_ptr(0)));  // alias is not the app view
}

TEST(ViewRegionDeathTest, NonMultiplePageSizeAborts) {
  EXPECT_DEATH(ViewRegion(1, 100), "multiple of the OS page size");
}

TEST(ViewRegionDeathTest, ProtectOutOfRangeAborts) {
  ViewRegion view(1, ViewRegion::os_page_size());
  EXPECT_DEATH(view.protect(5, Access::kRead), "out-of-range");
}

}  // namespace
}  // namespace dsm
