#include "mem/diff.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"

namespace dsm {
namespace {

std::vector<std::byte> bytes(std::size_t n, unsigned char fill = 0) {
  return std::vector<std::byte>(n, std::byte{fill});
}

TEST(Diff, IdenticalPagesProduceEmptyDiff) {
  auto page = bytes(4096, 0xAA);
  const auto twin = make_twin(page);
  EXPECT_TRUE(encode_diff(page, {twin.get(), page.size()}).empty());
}

TEST(Diff, SingleWordChange) {
  auto page = bytes(4096);
  const auto twin = make_twin(page);
  page[100] = std::byte{0xFF};
  const auto diff = encode_diff(page, {twin.get(), page.size()});
  const auto stats = inspect_diff(diff);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_LE(stats.payload_bytes, 8u);  // one word
}

TEST(Diff, ApplyRestoresChanges) {
  auto page = bytes(4096);
  const auto twin = make_twin(page);
  page[0] = std::byte{1};
  page[1000] = std::byte{2};
  page[4095] = std::byte{3};
  const auto diff = encode_diff(page, {twin.get(), page.size()});

  auto other = bytes(4096);
  apply_diff(other, diff);
  EXPECT_EQ(other, page);
}

TEST(Diff, AdjacentChangesCoalesce) {
  auto page = bytes(4096);
  const auto twin = make_twin(page);
  for (std::size_t i = 64; i < 128; ++i) page[i] = std::byte{0xCC};
  const auto diff = encode_diff(page, {twin.get(), page.size()});
  EXPECT_EQ(inspect_diff(diff).runs, 1u);
}

TEST(Diff, DistantChangesStaySeparate) {
  auto page = bytes(4096);
  const auto twin = make_twin(page);
  page[0] = std::byte{1};
  page[2048] = std::byte{1};
  const auto diff = encode_diff(page, {twin.get(), page.size()});
  EXPECT_EQ(inspect_diff(diff).runs, 2u);
}

TEST(Diff, ExactDiffsKeepCleanGapsOut) {
  // Exact (merge_gap = 0) diffs must NOT ship unchanged words: an absorbed
  // gap would clobber a concurrent writer's words at merge time.
  auto page = bytes(4096);
  const auto twin = make_twin(page);
  page[0] = std::byte{1};
  page[16] = std::byte{1};  // one clean 8-byte word between the two writes
  const auto diff = encode_diff(page, {twin.get(), page.size()});
  const auto stats = inspect_diff(diff);
  EXPECT_EQ(stats.runs, 2u);
  EXPECT_EQ(stats.payload_bytes, 16u);
}

TEST(Diff, ExplicitMergeGapAbsorbsShortGaps) {
  auto page = bytes(4096);
  const auto twin = make_twin(page);
  page[0] = std::byte{1};
  page[16] = std::byte{1};
  const auto diff = encode_diff(page, {twin.get(), page.size()}, /*merge_gap=*/8);
  EXPECT_EQ(inspect_diff(diff).runs, 1u);
}

TEST(Diff, FullPageChangeIsOneRun) {
  auto page = bytes(4096, 0x11);
  const auto twin = make_twin(page);
  std::memset(page.data(), 0x22, page.size());
  const auto diff = encode_diff(page, {twin.get(), page.size()});
  const auto stats = inspect_diff(diff);
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.payload_bytes, 4096u);
}

TEST(Diff, NonOverlappingDiffsCompose) {
  // Two writers touch disjoint halves; applying both diffs to the base gives
  // the merged page — the multiple-writer property ERC/LRC rely on.
  const auto base = bytes(4096);
  auto w1 = base;
  auto w2 = base;
  for (std::size_t i = 0; i < 1024; ++i) w1[i] = std::byte{0xA1};
  for (std::size_t i = 3000; i < 3500; ++i) w2[i] = std::byte{0xB2};
  const auto d1 = encode_diff(w1, base);
  const auto d2 = encode_diff(w2, base);

  auto merged = base;
  apply_diff(merged, d1);
  apply_diff(merged, d2);
  for (std::size_t i = 0; i < 1024; ++i) ASSERT_EQ(merged[i], std::byte{0xA1});
  for (std::size_t i = 3000; i < 3500; ++i) ASSERT_EQ(merged[i], std::byte{0xB2});
  for (std::size_t i = 1024; i < 3000; ++i) ASSERT_EQ(merged[i], std::byte{0});
}

TEST(Diff, LaterApplyWinsOnOverlap) {
  const auto base = bytes(64);
  auto w1 = base;
  auto w2 = base;
  w1[8] = std::byte{0x11};
  w2[8] = std::byte{0x22};
  auto out = base;
  apply_diff(out, encode_diff(w1, base));
  apply_diff(out, encode_diff(w2, base));
  EXPECT_EQ(out[8], std::byte{0x22});
}

TEST(Diff, NonPageSizedSpans) {
  // EC diffs arbitrary bound regions, not just pages.
  auto region = bytes(100);
  const auto twin = make_twin(region);
  region[99] = std::byte{9};
  const auto diff = encode_diff(region, {twin.get(), region.size()});
  auto other = bytes(100);
  apply_diff(other, diff);
  EXPECT_EQ(other[99], std::byte{9});
}

TEST(Diff, RandomizedRoundTrip) {
  SplitMix64 rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    auto base = bytes(4096);
    for (auto& b : base) b = std::byte{static_cast<unsigned char>(rng.next())};
    auto modified = base;
    const auto n_changes = 1 + rng.next_below(200);
    for (std::uint64_t c = 0; c < n_changes; ++c) {
      modified[rng.next_below(4096)] = std::byte{static_cast<unsigned char>(rng.next())};
    }
    const auto diff = encode_diff(modified, base);
    auto restored = base;
    apply_diff(restored, diff);
    ASSERT_EQ(restored, modified) << "trial " << trial;
  }
}

TEST(Diff, DiffSizeScalesWithDirtyFraction) {
  const auto base = bytes(4096);
  auto quarter = base;
  auto full = base;
  for (std::size_t i = 0; i < 1024; ++i) quarter[i] = std::byte{1};
  for (std::size_t i = 0; i < 4096; ++i) full[i] = std::byte{1};
  EXPECT_LT(encode_diff(quarter, base).size(), encode_diff(full, base).size());
  EXPECT_LE(encode_diff(full, base).size(), 4096u + 16u);
}

// --- wire codecs: zero-run RLE and XOR diffs -------------------------------

TEST(Zrle, AllZeroPageCollapses) {
  const auto page = bytes(4096);
  const auto packed = zrle_encode(page);
  EXPECT_LE(packed.size(), 8u);  // one record per 64 KiB of zeros
  EXPECT_EQ(zrle_decode(packed), page);
}

TEST(Zrle, AllRandomPageStaysNearIncompressible) {
  SplitMix64 rng(99);
  auto page = bytes(4096);
  for (auto& b : page) {
    // Avoid zero bytes entirely: pure literals, maximal overhead.
    b = std::byte{static_cast<unsigned char>(1 + rng.next_below(255))};
  }
  const auto packed = zrle_encode(page);
  EXPECT_LE(packed.size(), page.size() + 16u);  // bounded framing overhead
  EXPECT_EQ(zrle_decode(packed), page);
}

TEST(Zrle, SingleWordInZeroPage) {
  auto page = bytes(4096);
  page[2048] = std::byte{0x42};
  const auto packed = zrle_encode(page);
  EXPECT_LE(packed.size(), 16u);
  EXPECT_EQ(zrle_decode(packed), page);
}

TEST(Zrle, TrailingZerosRestored) {
  // A page whose data sits at the front and zeros run to the end — the
  // decode must reproduce the exact size, not stop at the last literal.
  auto page = bytes(4096);
  for (std::size_t i = 0; i < 100; ++i) page[i] = std::byte{0xEE};
  const auto decoded = zrle_decode(zrle_encode(page));
  ASSERT_EQ(decoded.size(), page.size());
  EXPECT_EQ(decoded, page);
}

TEST(Zrle, AlreadyCompressedInputRoundTrips) {
  // Compressing a zrle stream again must still round-trip (the escape path
  // cares about size, not content).
  auto page = bytes(4096);
  for (std::size_t i = 0; i < 4096; i += 9) page[i] = std::byte{0x17};
  const auto once = zrle_encode(page);
  EXPECT_EQ(zrle_decode(zrle_encode(once)), once);
}

TEST(Zrle, EmptyInput) { EXPECT_TRUE(zrle_decode(zrle_encode({})).empty()); }

TEST(Zrle, PropertyDecodeEncodeIsIdentity) {
  // Randomized inputs mixing zero runs of every length with literal spans.
  SplitMix64 rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::byte> data;
    const auto chunks = 1 + rng.next_below(20);
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const auto len = rng.next_below(300);
      if (rng.next_below(2) == 0) {
        data.insert(data.end(), len, std::byte{0});
      } else {
        for (std::uint64_t i = 0; i < len; ++i) {
          data.push_back(std::byte{static_cast<unsigned char>(rng.next())});
        }
      }
    }
    ASSERT_EQ(zrle_decode(zrle_encode(data)), data) << "trial " << trial;
  }
}

TEST(XorDiff, RoundTripsThroughBase) {
  // encoder: diff = xor(current, twin); decoder holds base == twin and must
  // recover the exact value diff.
  auto base = bytes(4096);
  SplitMix64 rng(7);
  for (auto& b : base) b = std::byte{static_cast<unsigned char>(rng.next())};
  auto current = base;
  current[128] = std::byte{0x01};
  current[129] = std::byte{0xFF};
  current[3000] = std::byte{0x55};
  const auto xor_diff = encode_diff_xor(current, base);
  const auto value_diff = xor_diff_to_value(xor_diff, base);
  EXPECT_EQ(value_diff, encode_diff(current, base));
  auto restored = base;
  apply_diff(restored, value_diff);
  EXPECT_EQ(restored, current);
}

TEST(XorDiff, SmallDeltasAreMostlyZero) {
  // The point of the XOR form: on a single-writer transfer (merge_gap
  // absorbs the clean gaps), scattered counter bumps on an otherwise
  // incompressible page XOR down to lone bytes in long zero runs, which
  // zrle crushes — while the value diff must ship the page content itself.
  SplitMix64 rng(5150);
  auto base = bytes(4096);
  for (auto& b : base) {
    b = std::byte{static_cast<unsigned char>(1 + rng.next_below(255))};
  }
  auto current = base;
  for (std::size_t i = 0; i < 4096; i += 64) current[i] ^= std::byte{0x01};
  constexpr std::size_t kGap = 64;
  const auto xored = zrle_encode(encode_diff_xor(current, base, kGap));
  const auto plain = zrle_encode(encode_diff(current, base, kGap));
  EXPECT_LT(xored.size() * 4, plain.size());
}

TEST(XorDiff, RandomizedPipelineMatchesValueDiff) {
  SplitMix64 rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    auto base = bytes(4096);
    for (auto& b : base) b = std::byte{static_cast<unsigned char>(rng.next())};
    auto current = base;
    const auto n_changes = 1 + rng.next_below(100);
    for (std::uint64_t c = 0; c < n_changes; ++c) {
      current[rng.next_below(4096)] = std::byte{static_cast<unsigned char>(rng.next())};
    }
    // Full wire pipeline: xor-encode, zrle, un-zrle, rebase — must equal the
    // plain value diff byte for byte.
    const auto wire = zrle_encode(encode_diff_xor(current, base));
    const auto recovered = xor_diff_to_value(zrle_decode(wire), base);
    ASSERT_EQ(recovered, encode_diff(current, base)) << "trial " << trial;
  }
}

TEST(DiffDeathTest, MalformedDiffAborts) {
  auto page = bytes(64);
  std::vector<std::byte> garbage(6, std::byte{0xFF});
  EXPECT_DEATH(apply_diff(page, garbage), "truncated diff");
}

TEST(DiffDeathTest, OutOfRangeRunAborts) {
  auto small_page = bytes(16);
  auto big_page = bytes(4096);
  const auto twin = make_twin(big_page);
  big_page[100] = std::byte{1};
  const auto diff = encode_diff(big_page, {twin.get(), big_page.size()});
  EXPECT_DEATH(apply_diff(small_page, diff), "exceeds page");
}

TEST(Diff, SizeMismatchedTwinAborts) {
  auto page = bytes(64);
  auto twin = bytes(32);
  EXPECT_DEATH(encode_diff(page, twin), "size mismatch");
}

}  // namespace
}  // namespace dsm
