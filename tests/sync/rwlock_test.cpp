// Reader-writer locks: concurrent readers, exclusive writers, writer
// preference, and consistency payloads riding the grants — across the
// protocols whose grant plumbing differs.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"

#include "../test_util.hpp"

namespace dsm {
namespace {

Config rw_config(ProtocolKind protocol, std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 16;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = protocol;
  return cfg;
}

class RwLockTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RwLockTest, ReadersOverlapWritersExclude) {
  System sys(rw_config(GetParam(), 6));
  std::atomic<int> readers_inside{0};
  std::atomic<int> writers_inside{0};
  std::atomic<int> max_readers{0};
  std::atomic<int> violations{0};

  sys.run([&](Worker& w) {
    for (int i = 0; i < 10; ++i) {
      if (w.id() % 3 == 0) {
        // Writer.
        w.acquire_write(1);
        if (writers_inside.fetch_add(1) != 0) violations++;
        if (readers_inside.load() != 0) violations++;
        std::this_thread::sleep_for(std::chrono::microseconds(30));
        writers_inside.fetch_sub(1);
        w.release_write(1);
      } else {
        // Reader.
        w.acquire_read(1);
        const int now = readers_inside.fetch_add(1) + 1;
        int prev = max_readers.load();
        while (prev < now && !max_readers.compare_exchange_weak(prev, now)) {
        }
        if (writers_inside.load() != 0) violations++;
        std::this_thread::sleep_for(std::chrono::microseconds(30));
        readers_inside.fetch_sub(1);
        w.release_read(1);
      }
    }
  });
  EXPECT_EQ(violations.load(), 0);
  // With 4 readers hammering, overlap should actually happen.
  EXPECT_GE(max_readers.load(), 2);
}

TEST_P(RwLockTest, ReadersSeeTheLastWritersData) {
  System sys(rw_config(GetParam(), 4));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  std::atomic<int> stale{0};
  std::atomic<std::uint64_t> published{0};

  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) w.bind(1, cell);
    w.barrier(0);
    if (w.id() == 0) {
      for (std::uint64_t round = 1; round <= 8; ++round) {
        w.acquire_write(1);
        *w.get(cell) = round;
        published = round;
        w.release_write(1);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    } else {
      for (int i = 0; i < 8; ++i) {
        w.acquire_read(1);
        // Must see at least the last value published BEFORE our acquire.
        const std::uint64_t floor = published.load();
        if (test::force_read(w.get(cell)) < floor) stale++;
        w.release_read(1);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });
  EXPECT_EQ(stale.load(), 0);
}

TEST_P(RwLockTest, WriterNotStarvedByReaderStream) {
  System sys(rw_config(GetParam(), 5));
  std::atomic<bool> writer_done{false};
  std::atomic<int> reads_after_writer_queued{0};
  std::atomic<bool> writer_queued{false};

  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      writer_queued = true;
      w.acquire_write(2);
      writer_done = true;
      w.release_write(2);
    } else {
      for (int i = 0; i < 50 && !writer_done.load(); ++i) {
        w.acquire_read(2);
        if (writer_queued.load() && !writer_done.load()) reads_after_writer_queued++;
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        w.release_read(2);
      }
    }
  });
  EXPECT_TRUE(writer_done.load());
  // Writer preference: once queued, at most the already-admitted readers
  // (≤ 4) plus a small scheduling window may still read.
  EXPECT_LE(reads_after_writer_queued.load(), 12);
}

TEST_P(RwLockTest, RwAndMutexLocksCoexistOnDifferentIds) {
  System sys(rw_config(GetParam(), 3));
  const auto a = sys.alloc_page_aligned<std::uint64_t>();
  const auto b = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind(3, a);
      w.bind(4, b);
    }
    w.barrier(0);
    for (int i = 0; i < 10; ++i) {
      w.acquire(3);  // plain mutex
      *w.get(a) += 1;
      w.release(3);
      w.acquire_write(4);  // rw writer
      *w.get(b) += 1;
      w.release_write(4);
    }
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(3);
      EXPECT_EQ(*w.get(a), 30u);
      w.release(3);
      w.acquire_read(4);
      EXPECT_EQ(test::force_read(w.get(b)), 30u);
      w.release_read(4);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Protocols, RwLockTest,
                         ::testing::Values(ProtocolKind::kIvyDynamic,
                                           ProtocolKind::kErcUpdate, ProtocolKind::kLrc,
                                           ProtocolKind::kHlrc, ProtocolKind::kEc),
                         [](const ::testing::TestParamInfo<ProtocolKind>& pi) {
                           std::string s = to_string(pi.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST(RwLockDeathTest, ReleaseReadWithoutAcquireAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Config cfg = rw_config(ProtocolKind::kIvyDynamic, 1);
  System sys(cfg);
  EXPECT_DEATH(sys.run([](Worker& w) { w.release_read(0); }), "not read-held");
}

}  // namespace
}  // namespace dsm
