#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"

namespace dsm {
namespace {

Config make_config(ProtocolKind protocol, std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 32;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = protocol;
  return cfg;
}

class BarrierTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(BarrierTest, NobodyPassesEarly) {
  System sys(make_config(GetParam(), 5));
  std::atomic<int> arrived{0};
  std::atomic<int> early{0};
  sys.run([&](Worker& w) {
    arrived++;
    w.barrier(0);
    if (arrived.load() != 5) early++;
  });
  EXPECT_EQ(early.load(), 0);
}

TEST_P(BarrierTest, ReusableAcrossGenerations) {
  System sys(make_config(GetParam(), 3));
  std::atomic<int> phase{0};
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    for (int round = 0; round < 20; ++round) {
      if (w.id() == 0) phase = round;
      w.barrier(0);
      if (phase.load() != round) errors++;
      w.barrier(0);
    }
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(BarrierTest, MultipleBarrierIdsIndependent) {
  System sys(make_config(GetParam(), 3));
  std::atomic<int> count{0};
  sys.run([&](Worker& w) {
    w.barrier(0);
    count++;
    w.barrier(1);
    w.barrier(2);
  });
  EXPECT_EQ(count.load(), 3);
}

TEST_P(BarrierTest, SingleNodeBarrierIsImmediate) {
  System sys(make_config(GetParam(), 1));
  sys.run([&](Worker& w) {
    for (int i = 0; i < 100; ++i) w.barrier(0);
  });
  SUCCEED();
}

TEST_P(BarrierTest, PublishesDataAcrossIt) {
  System sys(make_config(GetParam(), 4));
  const auto slots = sys.alloc_page_aligned<std::uint64_t>(
      4 * sys.config().page_size / sizeof(std::uint64_t));
  const std::size_t stride = sys.config().page_size / sizeof(std::uint64_t);
  std::atomic<int> errors{0};
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) {
      w.bind_barrier(0, slots, 4 * stride);
    }
    w.get(slots)[w.id() * stride] = 1000 + w.id();
    w.barrier(0);
    for (std::uint64_t n = 0; n < 4; ++n) {
      if (w.get(slots)[n * stride] != 1000 + n) errors++;
    }
    w.barrier(0);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(BarrierTest, BarrierCountStat) {
  System sys(make_config(GetParam(), 2));
  sys.reset_stats();
  sys.run([&](Worker& w) {
    w.barrier(0);
    w.barrier(0);
  });
  EXPECT_EQ(sys.stats().counter("sync.barriers"), 4u);  // 2 nodes × 2
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, BarrierTest,
                         ::testing::Values(ProtocolKind::kIvyCentral,
                                           ProtocolKind::kIvyFixed,
                                           ProtocolKind::kIvyDynamic,
                                           ProtocolKind::kErcInvalidate,
                                           ProtocolKind::kErcUpdate, ProtocolKind::kLrc, ProtocolKind::kHlrc,
                                           ProtocolKind::kEc),
                         [](const ::testing::TestParamInfo<ProtocolKind>& pi) {
                           std::string s = to_string(pi.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

}  // namespace
}  // namespace dsm
