// Sync-layer crash tests: a dead holder's lock token is regenerated exactly
// once (the checker aborts on a double mint), reader-writer grants survive a
// reader's death, and barriers settle against the live worker set instead of
// waiting forever for a node that will never arrive.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/dsm.hpp"

namespace dsm {
namespace {

Config ft_sync_config(std::size_t nodes) {
  Config cfg;
  cfg.n_nodes = nodes;
  cfg.n_pages = 8;
  cfg.page_size = ViewRegion::os_page_size();
  cfg.protocol = ProtocolKind::kQrc;
  cfg.ft.enabled = true;
  cfg.ft.replication = nodes;
  cfg.check_level = CheckLevel::kAssert;
  return cfg;
}

void wait_for(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(FtLockTest, DeadHolderTokenRegeneratedExactlyOnce) {
  Config cfg = ft_sync_config(3);
  cfg.ft.faults = {{/*node=*/2, /*kill_at=*/1'000'000'000, /*restart=*/false}};
  System sys(cfg);
  std::atomic<bool> held{false};
  std::atomic<int> completed{0};
  sys.run([&](Worker& w) {
    if (w.id() == 2) {
      w.acquire(0);
      held = true;
      w.compute(1'000'000'000);  // dies inside the critical section
    } else {
      wait_for(held);
      w.acquire(0);  // blocks until the dead holder's token is regenerated
      completed++;
      w.release(0);
      w.barrier(0);
    }
  });
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(sys.stats().counter("ft.token_regens"), 1u);
}

TEST(FtLockTest, DeadReaderReleasesItsRwGrant) {
  Config cfg = ft_sync_config(3);
  cfg.ft.faults = {{/*node=*/2, /*kill_at=*/1'000'000'000, /*restart=*/false}};
  System sys(cfg);
  std::atomic<bool> held{false};
  std::atomic<bool> got_write{false};
  sys.run([&](Worker& w) {
    if (w.id() == 2) {
      w.acquire_read(0);
      held = true;
      w.compute(1'000'000'000);  // dies holding a read grant
    } else if (w.id() == 1) {
      wait_for(held);
      w.acquire_write(0);  // excluded until the dead reader's grant is regenerated
      got_write = true;
      w.release_write(0);
    }
  });
  EXPECT_TRUE(got_write.load());
  EXPECT_EQ(sys.stats().counter("ft.token_regens"), 1u);
}

TEST(FtLockTest, BarrierSettlesAgainstTheLiveWorkerSet) {
  Config cfg = ft_sync_config(3);
  cfg.ft.faults = {{/*node=*/2, /*kill_at=*/1'000'000'000, /*restart=*/false}};
  System sys(cfg);
  std::atomic<int> passed{0};
  sys.run([&](Worker& w) {
    if (w.id() == 2) w.compute(1'000'000'000);  // dies before ever arriving
    w.barrier(0);
    passed++;
    w.barrier(1);
    passed++;
  });
  // Only the survivors cross; neither barrier round waits for the dead node.
  EXPECT_EQ(passed.load(), 4);
  EXPECT_EQ(sys.stats().counter("ft.kills"), 1u);
}

}  // namespace
}  // namespace dsm
