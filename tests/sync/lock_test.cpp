// Lock correctness under both policies × several protocols: mutual
// exclusion, fairness-ish progress, lock caching, payload plumbing.
#include <gtest/gtest.h>

#include <atomic>

#include "core/dsm.hpp"

namespace dsm {
namespace {

struct LockCase {
  LockPolicy policy;
  ProtocolKind protocol;
};

class LockTest : public ::testing::TestWithParam<LockCase> {
 protected:
  Config make_config(std::size_t nodes) const {
    Config cfg;
    cfg.n_nodes = nodes;
    cfg.n_pages = 32;
    cfg.page_size = ViewRegion::os_page_size();
    cfg.protocol = GetParam().protocol;
    cfg.lock_policy = GetParam().policy;
    return cfg;
  }
};

TEST_P(LockTest, MutualExclusionOnSharedCounter) {
  System sys(make_config(4));
  const auto counter = sys.alloc_page_aligned<std::uint64_t>();
  constexpr int kIncrements = 50;
  std::uint64_t final_value = 0;
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) w.bind(1, counter);
    w.barrier(0);
    for (int i = 0; i < kIncrements; ++i) {
      w.acquire(1);
      *w.get(counter) += 1;
      w.release(1);
    }
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(1);
      final_value = *w.get(counter);
      w.release(1);
    }
  });
  EXPECT_EQ(final_value, 4u * kIncrements);
}

TEST_P(LockTest, CriticalSectionsNeverOverlap) {
  System sys(make_config(4));
  std::atomic<int> inside{0};
  std::atomic<int> overlaps{0};
  sys.run([&](Worker& w) {
    for (int i = 0; i < 20; ++i) {
      w.acquire(0);
      if (inside.fetch_add(1) != 0) overlaps++;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      inside.fetch_sub(1);
      w.release(0);
    }
  });
  EXPECT_EQ(overlaps.load(), 0);
}

TEST_P(LockTest, DistinctLocksAreIndependent) {
  System sys(make_config(3));
  std::atomic<int> acquired{0};
  sys.run([&](Worker& w) {
    // Each node uses a different lock: no contention, must all succeed.
    const LockId mine = w.id();
    w.acquire(mine);
    acquired++;
    w.release(mine);
  });
  EXPECT_EQ(acquired.load(), 3);
}

TEST_P(LockTest, ReacquireByLastHolder) {
  System sys(make_config(2));
  std::atomic<int> count{0};
  sys.run([&](Worker& w) {
    if (w.id() == 0) {
      for (int i = 0; i < 10; ++i) {
        w.acquire(3);
        count++;
        w.release(3);
      }
    }
  });
  EXPECT_EQ(count.load(), 10);
  if (GetParam().policy == LockPolicy::kForwardChain) {
    // After the first round trip the token is cached locally.
    EXPECT_GE(sys.stats().counter("sync.local_acquires"), 8u);
  }
}

TEST_P(LockTest, HomeNodeFastPath) {
  System sys(make_config(2));
  std::atomic<int> count{0};
  sys.run([&](Worker& w) {
    // Lock 0 is homed at node 0; its own acquires should still work.
    if (w.id() == 0) {
      w.acquire(0);
      count++;
      w.release(0);
    }
  });
  EXPECT_EQ(count.load(), 1);
}

TEST_P(LockTest, ContendedHandoffCompletes) {
  System sys(make_config(6));
  const auto cell = sys.alloc_page_aligned<std::uint64_t>();
  sys.run([&](Worker& w) {
    if (sys.config().protocol == ProtocolKind::kEc) w.bind(2, cell);
    w.barrier(0);
    for (int i = 0; i < 10; ++i) {
      w.acquire(2);
      *w.get(cell) += 1;
      w.release(2);
    }
    w.barrier(0);
    if (w.id() == 0) {
      w.acquire(2);
      EXPECT_EQ(*w.get(cell), 60u);
      w.release(2);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndProtocols, LockTest,
    ::testing::Values(
        LockCase{LockPolicy::kForwardChain, ProtocolKind::kIvyDynamic},
        LockCase{LockPolicy::kCentralized, ProtocolKind::kIvyDynamic},
        LockCase{LockPolicy::kForwardChain, ProtocolKind::kLrc},
        LockCase{LockPolicy::kCentralized, ProtocolKind::kLrc},
        LockCase{LockPolicy::kForwardChain, ProtocolKind::kErcUpdate},
        LockCase{LockPolicy::kForwardChain, ProtocolKind::kEc},
        LockCase{LockPolicy::kCentralized, ProtocolKind::kEc}),
    [](const ::testing::TestParamInfo<LockCase>& pi) {
      return std::string(pi.param.policy == LockPolicy::kCentralized ? "central"
                                                                        : "chain") +
             "_" + [&] {
               std::string s = to_string(pi.param.protocol);
               for (auto& c : s) {
                 if (c == '-') c = '_';
               }
               return s;
             }();
    });

TEST(LockDeathTest, RecursiveAcquireAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Config cfg;
  cfg.n_nodes = 1;
  cfg.n_pages = 8;
  cfg.page_size = ViewRegion::os_page_size();
  System sys(cfg);
  EXPECT_DEATH(sys.run([](Worker& w) {
                 w.acquire(0);
                 w.acquire(0);
               }),
               "recursive acquire");
}

TEST(LockDeathTest, ReleaseWithoutAcquireAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Config cfg;
  cfg.n_nodes = 1;
  cfg.n_pages = 8;
  cfg.page_size = ViewRegion::os_page_size();
  System sys(cfg);
  EXPECT_DEATH(sys.run([](Worker& w) { w.release(0); }), "not held");
}

}  // namespace
}  // namespace dsm
