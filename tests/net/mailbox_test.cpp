#include <gtest/gtest.h>

#include <thread>

#include "net/network.hpp"

namespace dsm {
namespace {

Message make_msg(MsgType type, NodeId src = 0, NodeId dst = 0) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  return m;
}

TEST(Mailbox, FifoOrder) {
  Mailbox mb;
  mb.push(make_msg(MsgType::kReadRequest));
  mb.push(make_msg(MsgType::kWriteRequest));
  EXPECT_EQ(mb.pop()->type, MsgType::kReadRequest);
  EXPECT_EQ(mb.pop()->type, MsgType::kWriteRequest);
}

TEST(Mailbox, TryPopOnEmptyReturnsNothing) {
  Mailbox mb;
  EXPECT_FALSE(mb.try_pop().has_value());
}

TEST(Mailbox, SizeTracksContents) {
  Mailbox mb;
  EXPECT_EQ(mb.size(), 0u);
  mb.push(make_msg(MsgType::kUpdate));
  mb.push(make_msg(MsgType::kUpdate));
  EXPECT_EQ(mb.size(), 2u);
  mb.try_pop();
  EXPECT_EQ(mb.size(), 1u);
}

TEST(Mailbox, PopBlocksUntilPush) {
  Mailbox mb;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.push(make_msg(MsgType::kLockGrant));
  });
  const auto msg = mb.pop();  // must block, then receive
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kLockGrant);
  producer.join();
}

TEST(Mailbox, CloseReleasesBlockedPopper) {
  Mailbox mb;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.close();
  });
  EXPECT_FALSE(mb.pop().has_value());
  closer.join();
}

TEST(Mailbox, DrainsQueueBeforeReportingClosed) {
  Mailbox mb;
  mb.push(make_msg(MsgType::kConfirm));
  mb.close();
  EXPECT_TRUE(mb.pop().has_value());
  EXPECT_FALSE(mb.pop().has_value());
}

TEST(Mailbox, DrainTakesEverythingInOrder) {
  Mailbox mb;
  mb.push(make_msg(MsgType::kReadRequest));
  mb.push(make_msg(MsgType::kWriteRequest));
  mb.push(make_msg(MsgType::kUpdate));
  const auto burst = mb.drain();
  ASSERT_EQ(burst.size(), 3u);
  EXPECT_EQ(burst[0].type, MsgType::kReadRequest);
  EXPECT_EQ(burst[1].type, MsgType::kWriteRequest);
  EXPECT_EQ(burst[2].type, MsgType::kUpdate);
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, DrainBlocksUntilPush) {
  Mailbox mb;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.push(make_msg(MsgType::kLockGrant));
  });
  const auto burst = mb.drain();  // must block, then receive
  ASSERT_EQ(burst.size(), 1u);
  EXPECT_EQ(burst.front().type, MsgType::kLockGrant);
  producer.join();
}

TEST(Mailbox, DrainReturnsEmptyOnClose) {
  Mailbox mb;
  mb.push(make_msg(MsgType::kConfirm));
  mb.close();
  EXPECT_EQ(mb.drain().size(), 1u);  // pending messages drain first
  EXPECT_TRUE(mb.drain().empty());
}

TEST(Mailbox, ManyProducersOneConsumer) {
  Mailbox mb;
  constexpr int kProducers = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kEach; ++i) mb.push(make_msg(MsgType::kUpdate));
    });
  }
  int received = 0;
  for (int i = 0; i < kProducers * kEach; ++i) {
    if (mb.pop().has_value()) ++received;
  }
  EXPECT_EQ(received, kProducers * kEach);
  for (auto& p : producers) p.join();
}

}  // namespace
}  // namespace dsm
