// Tests for the wire-optimisation layer: scoped batching into kBatch
// envelopes (seq allocation, chunking, singleton fallback, loss recovery)
// and piggybacked/delayed cumulative acks. The wire knobs default off, so
// every test opts in explicitly.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "net/network.hpp"

namespace dsm {
namespace {

Message make_msg(MsgType type, NodeId src, NodeId dst, std::size_t payload_bytes = 0,
                 VirtualTime send_time = 0) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.send_time = send_time;
  m.payload.resize(payload_bytes);
  return m;
}

template <typename Pred>
bool poll_until(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

WireConfig batching_on() {
  WireConfig wire;
  wire.batching = true;
  return wire;
}

TEST(BatchTest, ScopeCoalescesSameLinkSendsIntoOneEnvelope) {
  StatsRegistry stats;
  Network net(4, LinkModel{}, &stats, {}, {}, batching_on());
  {
    Network::BatchScope scope(&net);
    net.send(make_msg(MsgType::kUpdate, 0, 1, 8, /*send_time=*/100));
    net.send(make_msg(MsgType::kInvalidate, 0, 1, 0, /*send_time=*/200));
    net.send(make_msg(MsgType::kConfirm, 0, 1, 0, /*send_time=*/150));
    net.send(make_msg(MsgType::kUpdate, 0, 2));  // different link
  }
  auto a = net.recv(1);
  auto b = net.recv(1);
  auto c = net.recv(1);
  auto d = net.recv(2);
  ASSERT_TRUE(a && b && c && d);
  // Inner messages unpack in staging order with consecutive seqs.
  EXPECT_EQ(a->type, MsgType::kUpdate);
  EXPECT_EQ(b->type, MsgType::kInvalidate);
  EXPECT_EQ(c->type, MsgType::kConfirm);
  EXPECT_EQ(a->seq, 0u);
  EXPECT_EQ(b->seq, 1u);
  EXPECT_EQ(c->seq, 2u);
  // One wire transfer: all inner messages share the envelope's timing,
  // which departs with the latest staged member.
  EXPECT_EQ(a->send_time, 200u);
  EXPECT_EQ(a->arrival_time, b->arrival_time);
  EXPECT_EQ(a->arrival_time, c->arrival_time);

  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.batches"), 1u);
  EXPECT_EQ(snap.counter("net.batched_msgs"), 3u);
  EXPECT_EQ(snap.counter("net.datagrams"), 2u);  // envelope + the 0->2 single
  EXPECT_EQ(snap.counter("net.msgs"), 4u);       // per-inner accounting intact
  EXPECT_GE(snap.counter("net.bytes_saved"), 1u);
}

TEST(BatchTest, SingletonGroupSkipsEnvelopeFraming) {
  StatsRegistry stats;
  Network net(2, LinkModel{}, &stats, {}, {}, batching_on());
  {
    Network::BatchScope scope(&net);
    net.send(make_msg(MsgType::kUpdate, 0, 1));
  }
  auto msg = net.recv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->seq, 0u);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.batches"), 0u);
  EXPECT_EQ(snap.counter("net.datagrams"), 1u);
}

TEST(BatchTest, OversizeGroupChunksAtMaxBatchMsgs) {
  StatsRegistry stats;
  auto wire = batching_on();
  wire.max_batch_msgs = 2;
  Network net(2, LinkModel{}, &stats, {}, {}, wire);
  {
    Network::BatchScope scope(&net);
    for (int i = 0; i < 5; ++i) net.send(make_msg(MsgType::kUpdate, 0, 1));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto msg = net.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->seq, i);
  }
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.batches"), 2u);       // 2 + 2 + a trailing single
  EXPECT_EQ(snap.counter("net.batched_msgs"), 4u);
  EXPECT_EQ(snap.counter("net.datagrams"), 3u);
}

TEST(BatchTest, ScopeWithoutBatchingIsInert) {
  StatsRegistry stats;
  Network net(2, LinkModel{}, &stats);  // wire knobs all off
  {
    Network::BatchScope scope(&net);
    net.send(make_msg(MsgType::kUpdate, 0, 1));
    // Inert scope: the send is not staged, it is already on the wire.
    EXPECT_TRUE(net.recv(1).has_value());
  }
  EXPECT_EQ(stats.snapshot().counter("net.batches"), 0u);
}

TEST(BatchTest, DroppedEnvelopeRetransmitsAsAUnit) {
  StatsRegistry stats;
  ReliabilityConfig rel;
  rel.rto_ms = 1;
  rel.rto_max_ms = 8;
  Network net(2, LinkModel{}, &stats, rel, {}, batching_on());
  std::atomic<bool> dropped{false};
  net.set_drop_hook([&](const Message& m) {
    return m.type == MsgType::kBatch && !dropped.exchange(true);
  });
  {
    Network::BatchScope scope(&net);
    net.send(make_msg(MsgType::kUpdate, 0, 1));
    net.send(make_msg(MsgType::kConfirm, 0, 1));
  }
  auto a = net.recv(1);
  auto b = net.recv(1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->type, MsgType::kUpdate);
  EXPECT_EQ(a->seq, 0u);
  EXPECT_EQ(b->type, MsgType::kConfirm);
  EXPECT_EQ(b->seq, 1u);
  EXPECT_TRUE(poll_until([&] { return net.idle(); }));
  const auto snap = stats.snapshot();
  EXPECT_GE(snap.counter("net.retransmits"), 1u);
  EXPECT_EQ(snap.counter("net.dropped"), 1u);
  EXPECT_EQ(net.messages_sent(), 2u);  // both inner messages, exactly once
}

TEST(BatchTest, DuplicatedEnvelopeDeliversInnerMessagesOnce) {
  StatsRegistry stats;
  ChaosConfig chaos;
  chaos.enabled = true;
  chaos.seed = 7;
  chaos.duplicate_probability = 1.0;
  Network net(2, LinkModel{}, &stats, {}, chaos, batching_on());
  {
    Network::BatchScope scope(&net);
    net.send(make_msg(MsgType::kUpdate, 0, 1));
    net.send(make_msg(MsgType::kConfirm, 0, 1));
  }
  ASSERT_TRUE(net.recv(1).has_value());
  ASSERT_TRUE(net.recv(1).has_value());
  EXPECT_TRUE(poll_until(
      [&] { return stats.snapshot().counter("net.dups_suppressed") >= 1; }));
  EXPECT_EQ(net.messages_sent(), 2u);  // the cloned envelope never unpacked
}

TEST(BatchTest, ExplicitFlushKeepsScopeUsable) {
  StatsRegistry stats;
  Network net(2, LinkModel{}, &stats, {}, {}, batching_on());
  Network::BatchScope scope(&net);
  net.send(make_msg(MsgType::kUpdate, 0, 1));
  net.send(make_msg(MsgType::kUpdate, 0, 1));
  scope.flush();
  EXPECT_EQ(stats.snapshot().counter("net.batches"), 1u);
  net.send(make_msg(MsgType::kConfirm, 0, 1));
  net.send(make_msg(MsgType::kConfirm, 0, 1));
  scope.flush();
  EXPECT_EQ(stats.snapshot().counter("net.batches"), 2u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto msg = net.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->seq, i);
  }
}

TEST(PiggybackTest, SteadyBidirectionalTrafficNeedsNoStandaloneAcks) {
  StatsRegistry stats;
  ReliabilityConfig rel;
  rel.rto_ms = 300;  // the RTO must never beat the delayed ack here
  WireConfig wire;
  wire.piggyback_acks = true;
  wire.delayed_ack_us = 100'000;  // park the fallback far beyond the test body
  Network net(2, LinkModel{}, &stats, rel, {}, wire);
  // Request/response ping-pong: every reverse-direction send has a pending
  // cumulative ack to carry, so no standalone kAck should ever be emitted
  // while traffic flows.
  for (int i = 0; i < 20; ++i) {
    net.send(make_msg(MsgType::kUpdate, 0, 1));
    ASSERT_TRUE(net.recv(1).has_value());
    net.send(make_msg(MsgType::kUpdateAck, 1, 0));
    ASSERT_TRUE(net.recv(0).has_value());
  }
  auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.acks_standalone"), 0u);
  EXPECT_GE(snap.counter("net.acks_piggybacked"), 38u);  // all but the opener(s)
  // The tail messages have no reverse traffic left; the delayed-ack timer
  // finishes the job and the fabric quiesces.
  EXPECT_TRUE(poll_until([&] { return net.idle(); }));
  snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.acks"), 40u);
  EXPECT_LE(snap.counter("net.acks_standalone"), 2u);
}

TEST(PiggybackTest, QuietLinkFallsBackToDelayedStandaloneAck) {
  StatsRegistry stats;
  ReliabilityConfig rel;
  rel.rto_ms = 300;  // the delayed ack must always win the race with the RTO
  WireConfig wire;
  wire.piggyback_acks = true;
  wire.delayed_ack_us = 1000;
  Network net(2, LinkModel{}, &stats, rel, {}, wire);
  net.send(make_msg(MsgType::kUpdate, 0, 1));
  ASSERT_TRUE(net.recv(1).has_value());
  // No reverse traffic: only the delayed standalone ack can complete the
  // sender's in-flight entry.
  EXPECT_TRUE(poll_until([&] { return net.idle(); }));
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.acks"), 1u);
  EXPECT_EQ(snap.counter("net.acks_standalone"), 1u);
  EXPECT_EQ(snap.counter("net.acks_piggybacked"), 0u);
  EXPECT_EQ(net.messages_sent(), 1u);  // the kAck never reaches a mailbox
}

TEST(PiggybackTest, BatchedFanOutWithPiggybackStaysExactUnderDrops) {
  StatsRegistry stats;
  ReliabilityConfig rel;
  rel.rto_ms = 1;
  rel.rto_max_ms = 8;
  ChaosConfig chaos;
  chaos.enabled = true;
  chaos.seed = 1234;
  chaos.drop_probability = 0.2;
  auto wire = batching_on();
  wire.piggyback_acks = true;
  Network net(3, LinkModel{}, &stats, rel, chaos, wire);
  constexpr int kRounds = 50;
  std::thread echo([&] {
    // Node 1 echoes everything so node 0's acks can piggyback.
    for (int i = 0; i < 2 * kRounds; ++i) {
      ASSERT_TRUE(net.recv(1).has_value());
      net.send(make_msg(MsgType::kUpdateAck, 1, 0));
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    Network::BatchScope scope(&net);
    net.send(make_msg(MsgType::kUpdate, 0, 1, 16));
    net.send(make_msg(MsgType::kInvalidate, 0, 1));
    net.send(make_msg(MsgType::kUpdate, 0, 2, 16));
  }
  for (std::uint64_t i = 0; i < 2 * kRounds; ++i) {
    ASSERT_TRUE(net.recv(0).has_value());
  }
  for (std::uint64_t i = 0; i < kRounds; ++i) {
    auto msg = net.recv(2);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->seq, i);  // the 0->2 singletons stay link-FIFO
  }
  echo.join();
  EXPECT_TRUE(poll_until([&] { return net.idle(); }));
  // Exactly-once in spite of 20% loss over envelopes and acks.
  EXPECT_EQ(net.messages_sent(), 5u * kRounds);
}

}  // namespace
}  // namespace dsm
