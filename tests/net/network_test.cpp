#include "net/network.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace dsm {
namespace {

Message make_msg(MsgType type, NodeId src, NodeId dst, std::size_t payload_bytes = 0,
                 VirtualTime send_time = 0) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.send_time = send_time;
  m.payload.resize(payload_bytes);
  return m;
}

class NetworkTest : public ::testing::Test {
 protected:
  StatsRegistry stats_;
  LinkModel link_{.latency_ns = 1000, .ns_per_byte = 10, .loopback_ns = 50};
  Network net_{4, link_, &stats_};
};

TEST_F(NetworkTest, DeliversToDestination) {
  net_.send(make_msg(MsgType::kReadRequest, 0, 2));
  const auto msg = net_.recv(2);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kReadRequest);
  EXPECT_EQ(msg->src, 0u);
}

TEST_F(NetworkTest, StampsArrivalWithLatencyAndBandwidth) {
  net_.send(make_msg(MsgType::kUpdate, 0, 1, /*payload=*/100, /*send_time=*/500));
  const auto msg = net_.recv(1);
  ASSERT_TRUE(msg.has_value());
  // wire = 22-byte header + 100 payload; cost = 1000 + 10 * 122.
  EXPECT_EQ(msg->arrival_time, 500u + 1000u + 10u * msg->wire_size());
}

TEST_F(NetworkTest, LoopbackIsCheap) {
  net_.send(make_msg(MsgType::kConfirm, 3, 3, 0, 100));
  const auto msg = net_.recv(3);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->arrival_time, 150u);
}

TEST_F(NetworkTest, PerLinkFifo) {
  for (int i = 0; i < 10; ++i) {
    auto m = make_msg(MsgType::kUpdate, 0, 1, 0, static_cast<VirtualTime>(i));
    net_.send(std::move(m));
  }
  VirtualTime last = 0;
  for (int i = 0; i < 10; ++i) {
    const auto msg = net_.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_GE(msg->send_time, last);
    last = msg->send_time;
  }
}

TEST_F(NetworkTest, MulticastReachesAllDestinations) {
  const std::vector<NodeId> dsts{1, 2, 3};
  net_.multicast(dsts, make_msg(MsgType::kInvalidate, 0, kNoNode));
  for (const NodeId d : dsts) {
    const auto msg = net_.recv(d);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->dst, d);
  }
}

TEST_F(NetworkTest, CountsTrafficByType) {
  net_.send(make_msg(MsgType::kReadRequest, 0, 1));
  net_.send(make_msg(MsgType::kReadRequest, 0, 1));
  net_.send(make_msg(MsgType::kInvalidate, 1, 0));
  const auto snap = stats_.snapshot();
  EXPECT_EQ(snap.counter("net.msgs"), 3u);
  EXPECT_EQ(snap.counter("net.msgs.ReadRequest"), 2u);
  EXPECT_EQ(snap.counter("net.msgs.Invalidate"), 1u);
  EXPECT_GT(snap.counter("net.bytes"), 0u);
}

TEST_F(NetworkTest, DropHookDiscardsWhenUnreliable) {
  // With the reliable sublayer disabled (the seed's fire-and-forget fabric),
  // a dropped message is simply gone and later traffic overtakes it.
  StatsRegistry stats;
  Network net(4, link_, &stats, ReliabilityConfig{.enabled = false});
  net.set_drop_hook([](const Message& m) { return m.type == MsgType::kUpdate; });
  net.send(make_msg(MsgType::kUpdate, 0, 1));
  net.send(make_msg(MsgType::kConfirm, 0, 1));
  const auto msg = net.recv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kConfirm);
  EXPECT_EQ(stats.snapshot().counter("net.dropped"), 1u);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST_F(NetworkTest, ShutdownUnblocksReceivers) {
  std::thread receiver([&] { EXPECT_FALSE(net_.recv(1).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  net_.shutdown();
  receiver.join();
}

TEST_F(NetworkTest, WireSizeIncludesHeader) {
  // type(2) + src(4) + dst(4) + seq(8) + length(4) = 22-byte header.
  const auto m = make_msg(MsgType::kUpdate, 0, 1, 100);
  EXPECT_EQ(m.wire_size(), 122u);
}

TEST(MessageType, AllTypesHaveNames) {
  for (std::uint16_t t = 0; t < static_cast<std::uint16_t>(MsgType::kCount_); ++t) {
    EXPECT_NE(to_string(static_cast<MsgType>(t)), "Unknown");
  }
}

TEST(NetworkDeathTest, SendToUnknownNodeAborts) {
  StatsRegistry stats;
  Network net(2, LinkModel{}, &stats);
  EXPECT_DEATH(net.send(make_msg(MsgType::kConfirm, 0, 5)), "unknown node");
}

}  // namespace
}  // namespace dsm
