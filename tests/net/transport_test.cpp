// Transport seam tests: the wire datagram codec's round-trip and rejection
// properties, and the UDP backend driven as a real fabric — delivery, FIFO,
// wire acks, and the counters that account for garbage arriving on a socket.
#include "net/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/stats.hpp"
#include "net/network.hpp"

namespace dsm {
namespace {

Message make_msg(MsgType type, NodeId src, NodeId dst, std::size_t payload_bytes = 0,
                 VirtualTime send_time = 0) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.send_time = send_time;
  m.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    m.payload[i] = static_cast<std::byte>(i * 37 + 11);
  }
  return m;
}

// --- local replica of the header codec, so tests can patch one field and
// re-validate the checksum (proving the *field* check rejects, not just the
// checksum). CodecReplicaIsFaithful guards against drift.

void put_u16_at(std::vector<std::byte>& wire, std::size_t at, std::uint16_t v) {
  wire[at] = static_cast<std::byte>(v & 0xFF);
  wire[at + 1] = static_cast<std::byte>(v >> 8);
}

void put_u32_at(std::vector<std::byte>& wire, std::size_t at, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    wire[at + i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t fnv1a(std::span<const std::byte> bytes, std::uint32_t h) {
  for (const std::byte b : bytes) {
    h ^= std::to_integer<std::uint32_t>(b);
    h *= 16777619u;
  }
  return h;
}

/// Recomputes the header checksum after a test patched a field.
void refresh_checksum(std::vector<std::byte>& wire) {
  constexpr std::size_t kChecksumAt = 60;
  std::uint32_t h = fnv1a({wire.data(), kChecksumAt}, 2166136261u);
  h = fnv1a({wire.data() + kWireHeaderSize, wire.size() - kWireHeaderSize}, h);
  put_u32_at(wire, kChecksumAt, h);
}

constexpr std::size_t kNodes = 4;

TEST(WireCodec, CodecReplicaIsFaithful) {
  // refresh_checksum over an *unmodified* datagram must keep it decodable;
  // if this fails, the patch-based rejection tests below prove nothing.
  auto wire = encode_datagram(make_msg(MsgType::kUpdate, 0, 1, 57), 3, 7);
  refresh_checksum(wire);
  EXPECT_TRUE(decode_datagram(wire, kNodes).has_value());
}

TEST(WireCodec, RoundTripsAllFields) {
  Message m = make_msg(MsgType::kWriteReply, 2, 3, 123, /*send_time=*/987654);
  m.seq = 42;
  m.arrival_time = 1234567;
  m.ack_upto = 17;
  const auto wire = encode_datagram(m, /*attempt=*/5, /*epoch=*/9);
  ASSERT_EQ(wire.size(), kWireHeaderSize + 123);

  const auto dg = decode_datagram(wire, kNodes);
  ASSERT_TRUE(dg.has_value());
  EXPECT_EQ(dg->msg.type, MsgType::kWriteReply);
  EXPECT_EQ(dg->msg.src, 2u);
  EXPECT_EQ(dg->msg.dst, 3u);
  EXPECT_EQ(dg->msg.seq, 42u);
  EXPECT_EQ(dg->msg.send_time, 987654u);
  EXPECT_EQ(dg->msg.arrival_time, 1234567u);
  EXPECT_EQ(dg->msg.ack_upto, 17u);
  EXPECT_EQ(dg->msg.payload, m.payload);
  EXPECT_EQ(dg->attempt, 5u);
  EXPECT_EQ(dg->epoch, 9u);
}

TEST(WireCodec, RoundTripsEmptyPayloadAndSentinelSeq) {
  Message m = make_msg(MsgType::kAck, 1, 0);
  m.seq = Message::kNoSeq;
  m.ack_upto = 99;
  const auto dg = decode_datagram(encode_datagram(m, 0, 1), kNodes);
  ASSERT_TRUE(dg.has_value());
  EXPECT_EQ(dg->msg.seq, Message::kNoSeq);
  EXPECT_EQ(dg->msg.ack_upto, 99u);
  EXPECT_TRUE(dg->msg.payload.empty());
}

TEST(WireCodec, RoundTripsBatchEnvelope) {
  std::vector<Message> inner;
  inner.push_back(make_msg(MsgType::kUpdate, 0, 1, 40));
  inner.push_back(make_msg(MsgType::kInvalidate, 0, 1));
  Message env = make_msg(MsgType::kBatch, 0, 1);
  env.seq = 7;
  env.payload = pack_batch(inner);
  const auto dg = decode_datagram(encode_datagram(env, 0, 2), kNodes);
  ASSERT_TRUE(dg.has_value());
  EXPECT_EQ(batch_count(dg->msg), 2u);
}

TEST(WireCodec, RejectsEveryTruncation) {
  const auto wire = encode_datagram(make_msg(MsgType::kPageReply, 1, 2, 80), 0, 1);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_datagram({wire.data(), len}, kNodes).has_value())
        << "length " << len;
  }
}

TEST(WireCodec, RejectsTrailingBytes) {
  auto wire = encode_datagram(make_msg(MsgType::kUpdate, 0, 1, 16), 0, 1);
  wire.push_back(std::byte{0});
  EXPECT_FALSE(decode_datagram(wire, kNodes).has_value());
}

TEST(WireCodec, RejectsEverySingleBitFlip) {
  // FNV-1a's per-byte step is bijective in the accumulator, so any single
  // flipped bit — header or payload — must change the checksum.
  const auto wire = encode_datagram(make_msg(MsgType::kDiffReply, 3, 0, 48), 2, 1);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    auto mutated = wire;
    mutated[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_FALSE(decode_datagram(mutated, kNodes).has_value()) << "bit " << bit;
  }
}

TEST(WireCodec, RejectsBadMagic) {
  auto wire = encode_datagram(make_msg(MsgType::kUpdate, 0, 1, 8), 0, 1);
  put_u32_at(wire, 0, 0xDEADBEEF);
  refresh_checksum(wire);
  EXPECT_FALSE(decode_datagram(wire, kNodes).has_value());
}

TEST(WireCodec, RejectsUnknownVersion) {
  auto wire = encode_datagram(make_msg(MsgType::kUpdate, 0, 1, 8), 0, 1);
  put_u16_at(wire, 4, kWireVersion + 1);
  refresh_checksum(wire);
  EXPECT_FALSE(decode_datagram(wire, kNodes).has_value());
}

TEST(WireCodec, RejectsTypesThatNeverTravel) {
  // In-process control types and out-of-range values must not cross a
  // socket even inside a checksum-valid frame.
  const std::uint16_t bad_types[] = {
      static_cast<std::uint16_t>(MsgType::kShutdown),
      static_cast<std::uint16_t>(MsgType::kWakeup),
      static_cast<std::uint16_t>(MsgType::kCount_),
      999,
  };
  for (const std::uint16_t t : bad_types) {
    auto wire = encode_datagram(make_msg(MsgType::kUpdate, 0, 1, 8), 0, 1);
    put_u16_at(wire, 6, t);
    refresh_checksum(wire);
    EXPECT_FALSE(decode_datagram(wire, kNodes).has_value()) << "type " << t;
  }
}

TEST(WireCodec, AllowsRendezvousAndAckTypes) {
  // kExitReady/kExitGo/kAck are the control types that legitimately cross
  // process boundaries.
  for (const MsgType t : {MsgType::kExitReady, MsgType::kExitGo, MsgType::kAck}) {
    const auto wire = encode_datagram(make_msg(t, 1, 0), 0, 1);
    EXPECT_TRUE(decode_datagram(wire, kNodes).has_value())
        << "type " << to_string(t);
  }
}

TEST(WireCodec, RejectsOutOfRangeEndpoints) {
  // encode_datagram serializes whatever it is given; the receiver must
  // reject endpoints outside the fleet, and self-sends never hit the wire.
  EXPECT_FALSE(
      decode_datagram(encode_datagram(make_msg(MsgType::kUpdate, 7, 1), 0, 1), kNodes));
  EXPECT_FALSE(
      decode_datagram(encode_datagram(make_msg(MsgType::kUpdate, 1, 7), 0, 1), kNodes));
  EXPECT_FALSE(
      decode_datagram(encode_datagram(make_msg(MsgType::kUpdate, 2, 2), 0, 1), kNodes));
}

TEST(WireCodec, RejectsPayloadLengthMismatch) {
  for (const std::uint32_t claimed : {15u, 17u, 0u, 0xFFFFFFFFu}) {
    auto wire = encode_datagram(make_msg(MsgType::kUpdate, 0, 1, 16), 0, 1);
    put_u32_at(wire, 56, claimed);
    refresh_checksum(wire);
    EXPECT_FALSE(decode_datagram(wire, kNodes).has_value()) << "claimed " << claimed;
  }
}

TEST(WireCodec, RejectsStructurallyInvalidBatchPayload) {
  // A checksum-valid kBatch whose payload does not frame must be rejected
  // at the datagram boundary, before it can reach unpack_batch.
  Message env = make_msg(MsgType::kBatch, 0, 1);
  env.payload.resize(10);  // garbage: claims some count, frames truncated
  env.payload[0] = std::byte{3};
  EXPECT_FALSE(decode_datagram(encode_datagram(env, 0, 1), kNodes).has_value());
}

// --- backend behavior -------------------------------------------------------

TEST(InprocTransport, IsTheDefaultBackend) {
  StatsRegistry stats;
  Network net(4, LinkModel{}, &stats);
  EXPECT_EQ(net.transport().name(), "inproc");
  EXPECT_FALSE(net.transport().wire_acks());
  EXPECT_TRUE(net.transport().endpoints().empty());
}

TransportConfig udp_config() {
  TransportConfig cfg;
  cfg.kind = TransportKind::kUdp;
  return cfg;
}

/// Parses "epoch=N" out of the transport's debug dump — tests need the live
/// epoch to craft stale (or deliberately non-stale) raw datagrams.
std::uint32_t transport_epoch(const Network& net) {
  std::ostringstream os;
  net.transport().debug_dump(os);
  const std::string dump = os.str();
  const std::size_t at = dump.find("epoch=");
  EXPECT_NE(at, std::string::npos) << dump;
  return static_cast<std::uint32_t>(std::stoul(dump.substr(at + 6)));
}

/// Sends raw bytes to a "host:port" endpoint from a throwaway socket.
void inject_raw(const std::string& endpoint, std::span<const std::byte> bytes) {
  const std::size_t colon = endpoint.rfind(':');
  ASSERT_NE(colon, std::string::npos);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(
      std::stoul(endpoint.substr(colon + 1))));
  ASSERT_EQ(::inet_pton(AF_INET, endpoint.substr(0, colon).c_str(), &addr.sin_addr), 1);
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  const ssize_t sent = ::sendto(fd, bytes.data(), bytes.size(), 0,
                                reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  ::close(fd);
  ASSERT_EQ(sent, static_cast<ssize_t>(bytes.size()));
}

/// Polls until `counter` reaches `at_least` (receiver threads are async).
bool wait_counter(const StatsRegistry& stats, const char* counter,
                  std::uint64_t at_least,
                  std::chrono::milliseconds deadline = std::chrono::seconds(5)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (stats.snapshot().counter(counter) >= at_least) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

class UdpTransportTest : public ::testing::Test {
 protected:
  StatsRegistry stats_;
  LinkModel link_{.latency_ns = 1000, .ns_per_byte = 10, .loopback_ns = 50};
  Network net_{4, link_, &stats_, {}, {}, {}, nullptr, udp_config()};
};

TEST_F(UdpTransportTest, ExposesHostedEndpoints) {
  EXPECT_EQ(net_.transport().name(), "udp");
  EXPECT_TRUE(net_.transport().wire_acks());
  const auto eps = net_.transport().endpoints();
  ASSERT_EQ(eps.size(), 4u);
  for (const auto& ep : eps) {
    EXPECT_EQ(ep.rfind("127.0.0.1:", 0), 0u) << ep;
    EXPECT_NE(ep, "127.0.0.1:0");
  }
}

TEST_F(UdpTransportTest, DeliversToDestination) {
  net_.send(make_msg(MsgType::kReadRequest, 0, 2, 64));
  const auto msg = net_.recv(2);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kReadRequest);
  EXPECT_EQ(msg->src, 0u);
  EXPECT_EQ(msg->payload.size(), 64u);
}

TEST_F(UdpTransportTest, PerLinkFifoSurvivesTheKernel) {
  for (int i = 0; i < 50; ++i) {
    net_.send(make_msg(MsgType::kUpdate, 0, 1, 0, static_cast<VirtualTime>(i)));
  }
  VirtualTime last = 0;
  for (int i = 0; i < 50; ++i) {
    const auto msg = net_.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_GE(msg->send_time, last);
    last = msg->send_time;
  }
}

TEST_F(UdpTransportTest, MulticastReachesAllDestinations) {
  const std::vector<NodeId> dsts{1, 2, 3};
  net_.multicast(dsts, make_msg(MsgType::kInvalidate, 0, kNoNode));
  for (const NodeId d : dsts) {
    const auto msg = net_.recv(d);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->dst, d);
  }
}

TEST_F(UdpTransportTest, WireAcksDrainInFlightState) {
  for (int i = 0; i < 8; ++i) net_.send(make_msg(MsgType::kUpdate, 0, 1, 32));
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(net_.recv(1).has_value());
  // Delivery raced ahead of the ack path; the fabric is quiescent only once
  // kAck datagrams crossed back and completed every in-flight entry.
  const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!net_.idle() && std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(net_.idle());
  EXPECT_GE(stats_.snapshot().counter("net.acks_wire"), 1u);
}

TEST_F(UdpTransportTest, GarbageDatagramsAreCountedAndHarmless) {
  const auto eps = net_.transport().endpoints();
  std::vector<std::byte> junk(100);
  for (std::size_t i = 0; i < junk.size(); ++i) junk[i] = static_cast<std::byte>(i);
  for (int i = 0; i < 5; ++i) inject_raw(eps[0], junk);
  EXPECT_TRUE(wait_counter(stats_, "net.malformed_dropped", 5));

  // The fabric still works after eating garbage.
  net_.send(make_msg(MsgType::kConfirm, 1, 0));
  const auto msg = net_.recv(0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kConfirm);
}

TEST_F(UdpTransportTest, StaleEpochDatagramsAreCounted) {
  const auto eps = net_.transport().endpoints();
  // Structurally perfect, but from an epoch that is not this fabric's: the
  // straggler-rejection path for sequential Systems on one inherited socket.
  const auto wire =
      encode_datagram(make_msg(MsgType::kUpdate, 1, 0, 8), 0, transport_epoch(net_) + 1000);
  inject_raw(eps[0], wire);
  EXPECT_TRUE(wait_counter(stats_, "net.stale_dropped", 1));
  EXPECT_EQ(stats_.snapshot().counter("net.malformed_dropped"), 0u);
}

TEST_F(UdpTransportTest, RespawnedIncarnationResetsAndStragglersAreStale) {
  const auto eps = net_.transport().endpoints();
  const std::uint32_t ordinal = transport_epoch(net_) & 0xFFFFu;

  // Establish incarnation 0 for src 1 with ordinary traffic.
  net_.send(make_msg(MsgType::kUpdate, 1, 0, 8));
  ASSERT_TRUE(net_.recv(0).has_value());

  // A datagram whose epoch carries a *higher* incarnation announces that the
  // peer process was respawned (dsmrun bumps DSM_INCARNATION on respawn):
  // the receiver resets the link and records the fresh incarnation.
  const auto respawn =
      encode_datagram(make_msg(MsgType::kUpdate, 1, 0, 8), 0, (1u << 16) | ordinal);
  inject_raw(eps[0], respawn);
  const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (net_.liveness().incarnation(1) < 1 && std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(net_.liveness().incarnation(1), 1u);

  // A pre-crash straggler (the old incarnation) is stale — counted, never
  // delivered. Marked with a distinctive send_time so delivery would show.
  const VirtualTime kStaleMark = 0xDEAD;
  const auto straggler = encode_datagram(
      make_msg(MsgType::kUpdate, 1, 0, 8, kStaleMark), 0, (0u << 16) | ordinal);
  inject_raw(eps[0], straggler);
  EXPECT_TRUE(wait_counter(stats_, "net.stale_dropped", 1));

  // The fabric still works, and the straggler never surfaced in the mailbox
  // (drain everything up to a fresh sentinel from an untouched link).
  net_.send(make_msg(MsgType::kConfirm, 2, 0));
  for (;;) {
    const auto msg = net_.recv(0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_NE(msg->send_time, kStaleMark);
    if (msg->type == MsgType::kConfirm) break;
  }
}

TEST_F(UdpTransportTest, MisdirectedDatagramsAreCounted) {
  const auto eps = net_.transport().endpoints();
  // Valid frame for node 2, thrown at node 0's socket.
  const auto wire =
      encode_datagram(make_msg(MsgType::kUpdate, 1, 2, 8), 0, transport_epoch(net_));
  inject_raw(eps[0], wire);
  EXPECT_TRUE(wait_counter(stats_, "net.malformed_dropped", 1));
}

TEST(UdpTransportLifecycle, TwoFabricsCoexistAndStopCleanly) {
  // Ephemeral ports: two UDP networks in one process never collide, and
  // explicit shutdown() then destruction is not a double-stop.
  StatsRegistry stats_a, stats_b;
  Network a(2, LinkModel{}, &stats_a, {}, {}, {}, nullptr, udp_config());
  Network b(2, LinkModel{}, &stats_b, {}, {}, {}, nullptr, udp_config());
  EXPECT_NE(a.transport().endpoints(), b.transport().endpoints());
  a.send(make_msg(MsgType::kUpdate, 0, 1));
  b.send(make_msg(MsgType::kUpdate, 1, 0));
  EXPECT_TRUE(a.recv(1).has_value());
  EXPECT_TRUE(b.recv(0).has_value());
  a.shutdown();
  b.shutdown();
}

}  // namespace
}  // namespace dsm
