// Tests for the reliable delivery sublayer: sequence numbering,
// retransmit-after-drop, duplicate suppression, ack-loss replay, retry-cap
// give-up, chaos delays, and pause injection. Retransmit timers are real
// time, so these tests use aggressive RTOs (1 ms) and poll counters with a
// generous deadline instead of sleeping fixed amounts.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "net/network.hpp"

namespace dsm {
namespace {

Message make_msg(MsgType type, NodeId src, NodeId dst, std::size_t payload_bytes = 0,
                 VirtualTime send_time = 0) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.send_time = send_time;
  m.payload.resize(payload_bytes);
  return m;
}

/// Polls `pred` until it holds or ~5 s elapse (retransmit daemons run on
/// real time; the timeout only binds on failure).
template <typename Pred>
bool poll_until(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

ReliabilityConfig fast_rto() {
  ReliabilityConfig r;
  r.rto_ms = 1;
  r.rto_max_ms = 8;
  return r;
}

TEST(ReliableTest, AssignsSequenceNumbersPerLink) {
  StatsRegistry stats;
  Network net(4, LinkModel{}, &stats);
  net.send(make_msg(MsgType::kUpdate, 0, 1));
  net.send(make_msg(MsgType::kConfirm, 0, 1));
  net.send(make_msg(MsgType::kUpdate, 0, 2));

  auto a = net.recv(1);
  auto b = net.recv(1);
  auto c = net.recv(2);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->seq, 0u);
  EXPECT_EQ(b->seq, 1u);
  EXPECT_EQ(c->seq, 0u);  // an independent (src,dst) channel
}

TEST(ReliableTest, ControlAndLoopbackBypassReliability) {
  StatsRegistry stats;
  Network net(4, LinkModel{}, &stats);
  net.send(make_msg(MsgType::kWakeup, 0, 1));
  net.send(make_msg(MsgType::kConfirm, 2, 2));

  auto a = net.recv(1);
  auto b = net.recv(2);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->seq, Message::kNoSeq);
  EXPECT_EQ(b->seq, Message::kNoSeq);
  EXPECT_TRUE(net.idle());  // nothing tracked, nothing to retransmit
}

TEST(ReliableTest, RetransmitRedeliversAfterDrop) {
  StatsRegistry stats;
  Network net(2, LinkModel{}, &stats, fast_rto());
  // Drop only the first wire attempt of the kUpdate; the retransmit must
  // arrive and the parked kConfirm (seq 1) must follow it, in order.
  std::atomic<bool> dropped{false};
  net.set_drop_hook([&](const Message& m) {
    return m.type == MsgType::kUpdate && !dropped.exchange(true);
  });
  net.send(make_msg(MsgType::kUpdate, 0, 1));
  net.send(make_msg(MsgType::kConfirm, 0, 1));

  auto a = net.recv(1);
  auto b = net.recv(1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->type, MsgType::kUpdate);
  EXPECT_EQ(b->type, MsgType::kConfirm);
  EXPECT_TRUE(poll_until([&] { return net.idle(); }));
  const auto snap = stats.snapshot();
  EXPECT_GE(snap.counter("net.retransmits"), 1u);
  EXPECT_EQ(snap.counter("net.dropped"), 1u);
  EXPECT_EQ(snap.counter("net.acks"), 2u);
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(ReliableTest, DuplicateDeliveredOnceAndCounted) {
  StatsRegistry stats;
  ChaosConfig chaos;
  chaos.enabled = true;
  chaos.seed = 7;
  chaos.duplicate_probability = 1.0;
  Network net(2, LinkModel{}, &stats, fast_rto(), chaos);
  net.send(make_msg(MsgType::kUpdate, 0, 1));

  auto msg = net.recv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kUpdate);
  EXPECT_TRUE(poll_until(
      [&] { return stats.snapshot().counter("net.dups_suppressed") >= 1; }));
  EXPECT_EQ(net.messages_sent(), 1u);  // the clone never reached the mailbox
}

TEST(ReliableTest, AckLossTriggersRetransmitAndDedup) {
  StatsRegistry stats;
  ChaosConfig chaos;
  chaos.enabled = true;
  chaos.seed = 7;
  chaos.ack_drop_probability = 1.0;  // sender never learns of the delivery
  auto rel = fast_rto();
  rel.max_retries = 2;
  Network net(2, LinkModel{}, &stats, rel, chaos);
  net.send(make_msg(MsgType::kUpdate, 0, 1));

  auto msg = net.recv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(poll_until([&] { return stats.snapshot().counter("net.gave_up") == 1; }));
  const auto snap = stats.snapshot();
  // Original + 2 retransmits all arrived; only the first was delivered.
  EXPECT_EQ(snap.counter("net.retransmits"), 2u);
  EXPECT_EQ(snap.counter("net.dups_suppressed"), 2u);
  EXPECT_EQ(snap.counter("net.acks_dropped"), 3u);
  EXPECT_EQ(snap.counter("net.acks"), 0u);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_TRUE(net.idle());
}

TEST(ReliableTest, GivesUpAfterRetryCap) {
  StatsRegistry stats;
  auto rel = fast_rto();
  rel.max_retries = 3;
  Network net(2, LinkModel{}, &stats, rel);
  net.set_drop_hook([](const Message&) { return true; });  // a severed link
  net.send(make_msg(MsgType::kUpdate, 0, 1));

  EXPECT_TRUE(poll_until([&] { return stats.snapshot().counter("net.gave_up") == 1; }));
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.retransmits"), 3u);
  EXPECT_EQ(snap.counter("net.dropped"), 4u);  // original + every retransmit
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_TRUE(net.idle());  // given up: no longer tracked
}

TEST(ReliableTest, DelayedDeliveriesStayInOrder) {
  StatsRegistry stats;
  ChaosConfig chaos;
  chaos.enabled = true;
  chaos.seed = 11;
  chaos.delay_probability = 1.0;  // every attempt jittered by a hashed amount
  chaos.delay_max_us = 200;
  Network net(2, LinkModel{}, &stats, fast_rto(), chaos);
  for (int i = 0; i < 8; ++i) net.send(make_msg(MsgType::kUpdate, 0, 1));

  for (std::uint64_t i = 0; i < 8; ++i) {
    auto msg = net.recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->seq, i);  // reorder buffer restores link FIFO
  }
  EXPECT_GE(stats.snapshot().counter("net.chaos_delayed"), 8u);
}

TEST(ReliableTest, InjectedPauseHoldsDelivery) {
  StatsRegistry stats;
  Network net(2, LinkModel{}, &stats, fast_rto());
  net.inject_pause(1, 30'000);  // 30 ms
  const auto start = std::chrono::steady_clock::now();
  net.send(make_msg(MsgType::kConfirm, 0, 1));
  auto msg = net.recv(1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kConfirm);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 10);
}

TEST(ReliableTest, ZeroChaosMatchesSeedTimings) {
  // With no chaos and no drops, the reliable sublayer must not perturb
  // virtual time: arrival = send + link cost, exactly as the seed computed.
  StatsRegistry stats;
  Network net(2, LinkModel{.latency_ns = 1000, .ns_per_byte = 10, .loopback_ns = 50},
              &stats);
  net.send(make_msg(MsgType::kUpdate, 0, 1, /*payload=*/100, /*send_time=*/500));
  auto msg = net.recv(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->arrival_time, 500u + 1000u + 10u * msg->wire_size());
  EXPECT_TRUE(poll_until([&] { return net.idle(); }));
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.counter("net.retransmits"), 0u);
  EXPECT_EQ(snap.counter("net.dropped"), 0u);
}

}  // namespace
}  // namespace dsm
