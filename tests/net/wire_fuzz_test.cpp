// Wire-format fuzzing. Two layers:
//
//   1. Socket fuzz: >1000 mutated datagrams — systematic header truncations,
//      random truncations, bit flips, duplicates, raw garbage — thrown at a
//      live UDP fabric's sockets. Every one must be accounted for in
//      net.malformed_dropped / net.stale_dropped (never delivered, never a
//      crash), and the fabric must still deliver real traffic afterwards.
//   2. Parser properties: the total (`try_`) variants of the batch, diff,
//      and zrle parsers reject every truncation and structural defect
//      without aborting, and agree with the trusted parsers on valid input.
//
// The CI asan-ubsan matrix job runs this file under sanitizers, which is
// what gives "never crash" teeth. TUTORDSM_FUZZ_SEED reseeds the random
// corpus (the CI seed sweep runs several).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <random>
#include <set>
#include <thread>

#include "common/stats.hpp"
#include "mem/diff.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"

namespace dsm {
namespace {

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("TUTORDSM_FUZZ_SEED"); env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1992;
}

Message make_msg(MsgType type, NodeId src, NodeId dst, std::size_t payload_bytes = 0) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.seq = 3;
  m.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    m.payload[i] = static_cast<std::byte>(i * 131 + 7);
  }
  return m;
}

// --- socket fuzz ------------------------------------------------------------

void inject_raw(const std::string& endpoint, std::span<const std::byte> bytes) {
  const std::size_t colon = endpoint.rfind(':');
  ASSERT_NE(colon, std::string::npos);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(
      std::stoul(endpoint.substr(colon + 1))));
  ASSERT_EQ(::inet_pton(AF_INET, endpoint.substr(0, colon).c_str(), &addr.sin_addr), 1);
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  const ssize_t sent = ::sendto(fd, bytes.data(), bytes.size(), 0,
                                reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  ::close(fd);
  ASSERT_EQ(sent, static_cast<ssize_t>(bytes.size()));
}

std::uint32_t transport_epoch(const Network& net) {
  std::ostringstream os;
  net.transport().debug_dump(os);
  const std::string dump = os.str();
  const std::size_t at = dump.find("epoch=");
  EXPECT_NE(at, std::string::npos) << dump;
  return static_cast<std::uint32_t>(std::stoul(dump.substr(at + 6)));
}

TEST(WireFuzz, SocketCorpusIsFullyAccountedFor) {
  TransportConfig udp;
  udp.kind = TransportKind::kUdp;
  StatsRegistry stats;
  Network net(4, LinkModel{.latency_ns = 1000, .ns_per_byte = 10}, &stats, {}, {},
              {}, nullptr, udp);
  const auto eps = net.transport().endpoints();
  ASSERT_EQ(eps.size(), 4u);

  const std::uint64_t seed = fuzz_seed();
  std::mt19937_64 rng(seed);
  std::printf("wire fuzz seed: %llu\n", static_cast<unsigned long long>(seed));

  // Base corpus: representative frames from a *foreign* epoch, so even an
  // intact frame is dropped (stale) instead of entering the fabric — every
  // injected datagram must land in exactly one of the two drop counters.
  const std::uint32_t stale_epoch = transport_epoch(net) + 1000;
  std::vector<std::vector<std::byte>> bases;
  bases.push_back(encode_datagram(make_msg(MsgType::kUpdate, 0, 1, 100), 0, stale_epoch));
  bases.push_back(encode_datagram(make_msg(MsgType::kPageReply, 2, 3, 1024), 1, stale_epoch));
  bases.push_back(encode_datagram(make_msg(MsgType::kAck, 1, 0), 0, stale_epoch));
  bases.push_back(encode_datagram(make_msg(MsgType::kBarrierArrive, 3, 0, 24), 0, stale_epoch));
  {
    std::vector<Message> inner;
    inner.push_back(make_msg(MsgType::kUpdate, 0, 2, 48));
    inner.push_back(make_msg(MsgType::kInvalidate, 0, 2));
    inner.push_back(make_msg(MsgType::kDiffReply, 0, 2, 200));
    Message env = make_msg(MsgType::kBatch, 0, 2);
    env.payload = pack_batch(inner);
    bases.push_back(encode_datagram(env, 0, stale_epoch));
  }

  std::uint64_t injected = 0;
  const auto accounted = [&] {
    const auto snap = stats.snapshot();
    return snap.counter("net.malformed_dropped") + snap.counter("net.stale_dropped");
  };
  // Inject in bounded chunks and wait for the receivers to catch up, so the
  // corpus can be far larger than one socket buffer without kernel drops
  // breaking the exact accounting.
  const auto settle = [&] {
    const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (accounted() < injected && std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(accounted(), injected) << "datagrams lost below the counters";
  };
  const auto pick_endpoint = [&]() -> const std::string& {
    return eps[rng() % eps.size()];
  };

  // Systematic truncations at every header length (and the empty datagram).
  for (std::size_t len = 0; len <= kWireHeaderSize; ++len) {
    inject_raw(pick_endpoint(), {bases[0].data(), len});
    ++injected;
  }
  settle();

  std::uniform_int_distribution<int> kind_dist(0, 4);
  for (int i = 0; i < 1200; ++i) {
    std::vector<std::byte> frame = bases[rng() % bases.size()];
    switch (kind_dist(rng)) {
      case 0: {  // random truncation
        frame.resize(rng() % frame.size());
        break;
      }
      case 1: {  // 1..8 bit flips anywhere
        const int flips = 1 + static_cast<int>(rng() % 8);
        for (int f = 0; f < flips; ++f) {
          const std::size_t bit = rng() % (frame.size() * 8);
          frame[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        }
        break;
      }
      case 2: {  // payload-only corruption (header checksum must catch it)
        if (frame.size() > kWireHeaderSize) {
          const std::size_t at =
              kWireHeaderSize + rng() % (frame.size() - kWireHeaderSize);
          frame[at] ^= std::byte{0xFF};
        }
        break;
      }
      case 3: {  // raw garbage, arbitrary length
        frame.resize(rng() % 300);
        for (auto& b : frame) b = static_cast<std::byte>(rng());
        break;
      }
      default:  // verbatim duplicate (stale epoch)
        break;
    }
    if (frame.empty()) frame.resize(1, std::byte{0});
    inject_raw(pick_endpoint(), frame);
    ++injected;
    if (injected % 64 == 0) settle();
  }
  settle();
  ASSERT_GE(injected, 1000u);

  // Nothing from the corpus was ever delivered…
  EXPECT_EQ(net.messages_sent(), 0u);
  // …and the fabric still carries real traffic.
  net.send(make_msg(MsgType::kReadRequest, 0, 3, 16));
  const auto msg = net.recv(3);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kReadRequest);
}

// --- batch payload properties -----------------------------------------------

void append_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>(v >> 8));
}

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

Message batch_envelope(std::vector<std::byte> payload) {
  Message env = make_msg(MsgType::kBatch, 0, 1);
  env.seq = 10;
  env.payload = std::move(payload);
  return env;
}

TEST(BatchPayload, ValidEnvelopeRoundTrips) {
  std::vector<Message> inner;
  inner.push_back(make_msg(MsgType::kUpdate, 0, 1, 32));
  inner.push_back(make_msg(MsgType::kLockGrant, 0, 1, 8));
  inner.push_back(make_msg(MsgType::kConfirm, 0, 1));
  const Message env = batch_envelope(pack_batch(inner));
  EXPECT_TRUE(batch_payload_well_formed(env.payload));
  const auto out = try_unpack_batch(env);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_EQ((*out)[0].type, MsgType::kUpdate);
  EXPECT_EQ((*out)[2].type, MsgType::kConfirm);
  EXPECT_EQ((*out)[1].seq, env.seq + 1);
  EXPECT_EQ((*out)[1].payload, inner[1].payload);
}

TEST(BatchPayload, EveryTruncationIsRejected) {
  std::vector<Message> inner;
  inner.push_back(make_msg(MsgType::kUpdate, 0, 1, 16));
  inner.push_back(make_msg(MsgType::kInvalidate, 0, 1));
  const std::vector<std::byte> valid = pack_batch(inner);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const std::span<const std::byte> prefix{valid.data(), len};
    EXPECT_FALSE(batch_payload_well_formed(prefix)) << "length " << len;
    EXPECT_FALSE(try_unpack_batch(batch_envelope({prefix.begin(), prefix.end()})))
        << "length " << len;
  }
}

TEST(BatchPayload, RejectsZeroCountAndTrailingBytes) {
  std::vector<std::byte> zero;
  append_u32(zero, 0);
  EXPECT_FALSE(batch_payload_well_formed(zero));

  auto trailing = pack_batch({make_msg(MsgType::kUpdate, 0, 1, 4)});
  trailing.push_back(std::byte{0});
  EXPECT_FALSE(batch_payload_well_formed(trailing));
}

TEST(BatchPayload, RejectsInnerTypesThatCannotBeBatched) {
  // Nested batches, acks, and runtime-control types never travel inside an
  // envelope; a frame claiming one is structural corruption.
  for (const MsgType t : {MsgType::kBatch, MsgType::kAck, MsgType::kShutdown,
                          MsgType::kWakeup, MsgType::kExitReady, MsgType::kCount_}) {
    std::vector<std::byte> payload;
    append_u32(payload, 1);
    append_u16(payload, static_cast<std::uint16_t>(t));
    append_u32(payload, 0);
    EXPECT_FALSE(batch_payload_well_formed(payload)) << to_string(t);
  }
}

TEST(BatchPayload, RejectsOversizedFrameLength) {
  std::vector<std::byte> payload;
  append_u32(payload, 1);
  append_u16(payload, static_cast<std::uint16_t>(MsgType::kUpdate));
  append_u32(payload, 0xFFFFFFFF);  // frame claims 4 GiB
  EXPECT_FALSE(batch_payload_well_formed(payload));
}

// --- diff parser properties -------------------------------------------------

std::vector<std::byte> make_page(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::byte> page(n);
  for (auto& b : page) b = static_cast<std::byte>(rng());
  return page;
}

TEST(DiffParsers, TryApplyMatchesTrustedApplyOnValidInput) {
  std::vector<std::byte> twin = make_page(512, 1);
  std::vector<std::byte> page = twin;
  page[0] = std::byte{0xAA};
  page[100] = std::byte{0xBB};
  page[511] = std::byte{0xCC};
  const auto diff = encode_diff(page, twin);

  std::vector<std::byte> via_trusted = twin;
  apply_diff(via_trusted, diff);
  std::vector<std::byte> via_total = twin;
  ASSERT_TRUE(try_apply_diff(via_total, diff));
  EXPECT_EQ(via_total, via_trusted);
  EXPECT_EQ(via_total, page);
}

/// Offsets at which a prefix of `diff` is itself a whole-record diff — a
/// truncation *between* records is structurally valid, just shorter.
std::set<std::size_t> diff_record_boundaries(std::span<const std::byte> diff) {
  std::set<std::size_t> bounds;
  std::size_t at = 0;
  while (at < diff.size()) {
    std::uint32_t length = 0;
    std::memcpy(&length, diff.data() + at + 4, sizeof length);
    at += 8 + length;
    bounds.insert(at);
  }
  return bounds;
}

TEST(DiffParsers, TruncatedDiffModifiesNothing) {
  std::vector<std::byte> twin = make_page(256, 2);
  std::vector<std::byte> page = twin;
  page[8] = std::byte{1};
  page[128] = std::byte{2};
  const auto diff = encode_diff(page, twin);
  const auto bounds = diff_record_boundaries(diff);
  ASSERT_GE(bounds.size(), 2u);  // two separate runs: mid-diff boundary exists
  for (std::size_t len = 1; len < diff.size(); ++len) {
    std::vector<std::byte> victim = twin;
    if (bounds.count(len) != 0) {
      // A whole-record prefix is a valid (shorter) diff and applies cleanly.
      EXPECT_TRUE(try_apply_diff(victim, {diff.data(), len})) << "length " << len;
      continue;
    }
    EXPECT_FALSE(try_apply_diff(victim, {diff.data(), len})) << "length " << len;
    EXPECT_EQ(victim, twin) << "partial application at length " << len;
  }
}

TEST(DiffParsers, RunBeyondPageIsRejected) {
  std::vector<std::byte> diff;
  append_u32(diff, 250);  // offset
  append_u32(diff, 16);   // length: runs past a 256-byte page
  diff.resize(diff.size() + 16, std::byte{0x5A});
  std::vector<std::byte> page(256, std::byte{0});
  EXPECT_FALSE(try_apply_diff(page, diff));
  EXPECT_FALSE(try_xor_diff_to_value(diff, page).has_value());
  // inspect has no page bound, but the same record parses structurally.
  EXPECT_TRUE(try_inspect_diff(diff).has_value());
}

TEST(DiffParsers, InspectAgreesWithTrustedAndRejectsDisorder) {
  std::vector<std::byte> twin = make_page(512, 3);
  std::vector<std::byte> page = twin;
  page[16] = std::byte{9};
  page[400] = std::byte{9};
  const auto diff = encode_diff(page, twin);
  const DiffStats trusted = inspect_diff(diff);
  const auto total = try_inspect_diff(diff);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->runs, trusted.runs);
  EXPECT_EQ(total->payload_bytes, trusted.payload_bytes);
  EXPECT_EQ(total->wire_bytes, trusted.wire_bytes);

  std::vector<std::byte> disordered;
  append_u32(disordered, 100);
  append_u32(disordered, 4);
  disordered.resize(disordered.size() + 4, std::byte{1});
  append_u32(disordered, 50);  // runs must be strictly increasing
  append_u32(disordered, 4);
  disordered.resize(disordered.size() + 4, std::byte{2});
  EXPECT_FALSE(try_inspect_diff(disordered).has_value());
}

TEST(DiffParsers, TryXorMatchesTrustedOnValidInput) {
  std::vector<std::byte> twin = make_page(512, 4);
  std::vector<std::byte> page = twin;
  page[32] = std::byte{0x11};
  page[300] = std::byte{0x22};
  const auto xdiff = encode_diff_xor(page, twin);
  const auto trusted = xor_diff_to_value(xdiff, twin);
  const auto total = try_xor_diff_to_value(xdiff, twin);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(*total, trusted);
  const auto bounds = diff_record_boundaries(xdiff);
  for (std::size_t len = 1; len < xdiff.size(); ++len) {
    EXPECT_EQ(try_xor_diff_to_value({xdiff.data(), len}, twin).has_value(),
              bounds.count(len) != 0)
        << "length " << len;
  }
}

// --- zrle parser properties -------------------------------------------------

TEST(ZrleParser, RoundTripsUnderExactCap) {
  std::vector<std::byte> data = make_page(4096, 5);
  for (std::size_t i = 100; i < 3000; ++i) data[i] = std::byte{0};  // long zero run
  const auto packed = zrle_encode(data);
  const auto out = try_zrle_decode(packed, data.size());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
  EXPECT_EQ(*out, zrle_decode(packed));
}

TEST(ZrleParser, OutputCapDefeatsZipBombs) {
  // 400 bytes claiming 100 × 64 KiB of zeros: the cap must reject before
  // any multi-megabyte allocation happens.
  std::vector<std::byte> bomb;
  for (int i = 0; i < 100; ++i) {
    append_u16(bomb, 0xFFFF);  // zeros
    append_u16(bomb, 0);       // literals
  }
  EXPECT_FALSE(try_zrle_decode(bomb, 64 * 1024).has_value());
  // The same input is fine under a cap that accommodates it.
  const auto out = try_zrle_decode(bomb, 100 * 0xFFFF);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 100u * 0xFFFF);
}

TEST(ZrleParser, EveryMidRecordTruncationIsRejected) {
  std::vector<std::byte> data(100, std::byte{7});
  data.resize(200, std::byte{0});
  const auto packed = zrle_encode(data);
  // Whole-record prefixes decode (to shorter data); anything else rejects.
  std::set<std::size_t> bounds;
  for (std::size_t at = 0; at < packed.size();) {
    std::uint16_t lits = 0;
    std::memcpy(&lits, packed.data() + at + 2, sizeof lits);
    at += 4 + lits;
    bounds.insert(at);
  }
  for (std::size_t len = 1; len < packed.size(); ++len) {
    EXPECT_EQ(try_zrle_decode({packed.data(), len}, data.size()).has_value(),
              bounds.count(len) != 0)
        << "length " << len;
  }
}

// --- random-buffer totality -------------------------------------------------

TEST(ParserTotality, RandomBuffersNeverCrashAnyTotalParser) {
  // Pure totality sweep: random bytes through every `try_` parser and the
  // datagram decoder. The assertions are weak on purpose — the sanitizer
  // jobs turn "walked off the buffer" into a failure here.
  std::mt19937_64 rng(fuzz_seed() ^ 0x5EED);
  std::vector<std::byte> page(256, std::byte{0});
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> buf(rng() % 300);
    for (auto& b : buf) b = static_cast<std::byte>(rng());

    (void)decode_datagram(buf, 4);
    (void)batch_payload_well_formed(buf);
    (void)try_inspect_diff(buf);
    (void)try_zrle_decode(buf, 1 << 20);
    const std::vector<std::byte> before = page;
    if (!try_apply_diff(page, buf)) {
      EXPECT_EQ(page, before) << "rejected diff mutated the page";
    }
    (void)try_xor_diff_to_value(buf, page);

    Message env = make_msg(MsgType::kBatch, 0, 1);
    env.payload = buf;
    (void)try_unpack_batch(env);
  }
}

}  // namespace
}  // namespace dsm
